package sita

import (
	"fmt"
	"testing"

	"sita/internal/core"
	"sita/internal/experiment"
	"sita/internal/policy"
	"sita/internal/queueing"
	"sita/internal/server"
	"sita/internal/trace"
)

// The benchmarks below regenerate every table and figure of the paper at a
// reduced-but-representative scale (the paper-scale runs are driven by
// cmd/sweep). One benchmark per experiment: BenchmarkTable1,
// BenchmarkFigure2 ... BenchmarkFigure13, plus the ablation drivers and
// micro-benchmarks of the hot paths.

// benchConfig trims the trace so a full -bench=. run finishes in minutes.
func benchConfig() experiment.Config {
	cfg := experiment.Default()
	cfg.Jobs = 20000
	return cfg
}

func benchExperiment(b *testing.B, id string) {
	cfg := benchConfig()
	driver := experiment.Drivers()[id]
	if driver == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := driver(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no output tables")
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }

func BenchmarkCutoffSensitivity(b *testing.B) { benchExperiment(b, "cutoff-sensitivity") }
func BenchmarkMisclassification(b *testing.B) { benchExperiment(b, "misclassification") }
func BenchmarkBurstiness(b *testing.B)        { benchExperiment(b, "burstiness") }
func BenchmarkMultiCutoff(b *testing.B)       { benchExperiment(b, "multi-cutoff") }
func BenchmarkFairnessProfile(b *testing.B)   { benchExperiment(b, "fairness-profile") }

// BenchmarkSimulatorThroughput measures raw simulated jobs/second per
// policy — the cost of one dispatch + service cycle through the event
// engine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	wl, err := LoadWorkload("psc-c90", 9)
	if err != nil {
		b.Fatal(err)
	}
	jobs := wl.JobsAtLoad(0.7, 4, true, 9)
	design, err := NewDesign(SITAUFair, 0.7, wl.Size, 4)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		build func() Policy
	}{
		{"Random", func() Policy { return policy.NewRandom(NewRNG(9, 50)) }},
		{"LeastWorkLeft", func() Policy { return policy.NewLeastWorkLeft() }},
		{"CentralQueue", func() Policy { return policy.NewCentralQueue() }},
		{"SITA-U-fair", func() Policy { return design.Policy() }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := server.Run(jobs, server.Config{Hosts: 4, Policy: c.build()})
				if res.Slowdown.Count() == 0 {
					b.Fatal("no jobs completed")
				}
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkManyHosts measures per-arrival host selection as the host
// count grows: the indexed policies (O(log h) or O(1) via the View argmin
// queries) against their retained linear-scan references (O(h)). The same
// trace is re-dispatched at every h, so the jobs/s ratio between
// <policy> and <policy>-scan at a given h is the fast path's speedup;
// BENCH_4.json records the medians.
func BenchmarkManyHosts(b *testing.B) {
	wl, err := LoadWorkload("psc-c90", 9)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		build func() Policy
	}{
		{"LeastWorkLeft", func() Policy { return policy.NewLeastWorkLeft() }},
		{"LeastWorkLeft-scan", func() Policy { return policy.NewScanLeastWorkLeft() }},
		{"ShortestQueue", func() Policy { return policy.NewShortestQueue() }},
		{"ShortestQueue-scan", func() Policy { return policy.NewScanShortestQueue() }},
		{"CentralQueue", func() Policy { return policy.NewCentralQueue() }},
		{"CentralQueue-scan", func() Policy { return policy.NewScanCentralQueue() }},
	}
	for _, h := range []int{16, 128, 1024} {
		jobs := wl.JobsAtLoad(0.7, h, true, 9)
		if len(jobs) > 20000 {
			jobs = jobs[:20000]
		}
		for _, c := range cases {
			b.Run(fmt.Sprintf("h%d/%s", h, c.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := server.Run(jobs, server.Config{Hosts: h, Policy: c.build()})
					if res.Slowdown.Count() == 0 {
						b.Fatal("no jobs completed")
					}
				}
				b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			})
		}
	}
}

// BenchmarkDirectVsEngine measures the oblivious-policy direct-recurrence
// fast path against the event-heap engine on the same 100k-job C90 stream:
// identical Run call, identical output bytes (the differential tests prove
// it), only the dispatch toggled via SetDirectEnabled. The <policy>/h=N
// direct-to-engine ns/op ratio is the fast path's speedup; BENCH_9.json
// records the medians.
func BenchmarkDirectVsEngine(b *testing.B) {
	prof := trace.C90()
	prof.Jobs = 100000
	wl, err := WorkloadFromProfile(prof, 9)
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []int{2, 32} {
		jobs := wl.JobsAtLoad(0.7, h, true, 9)
		// The full (h-1)-cutoff SITA design keeps the policy in the
		// oblivious family at every h; the grouped SITA+LWL hybrid the
		// 2-cutoff Design builds for h > 2 reads backlogs and stays on
		// the engine by design.
		design, err := core.NewDesignFull(core.SITAE, 0.7, wl.Size, h)
		if err != nil {
			b.Fatal(err)
		}
		// EstimatedLWL is deliberately absent: its Assign is an O(h)
		// believed-backlog scan that dominates both paths symmetrically,
		// so its cells measure the policy, not the dispatch machinery.
		// The differential tests still cover its direct-path parity.
		cases := []struct {
			name  string
			build func() Policy
		}{
			{"Random", func() Policy { return policy.NewRandom(NewRNG(9, 60)) }},
			{"RoundRobin", func() Policy { return policy.NewRoundRobin() }},
			{"SITA-E", func() Policy { return design.Policy() }},
		}
		for _, c := range cases {
			for _, mode := range []struct {
				name   string
				direct bool
			}{{"direct", true}, {"engine", false}} {
				b.Run(fmt.Sprintf("%s/h%d/%s", c.name, h, mode.name), func(b *testing.B) {
					server.SetDirectEnabled(mode.direct)
					defer server.SetDirectEnabled(true)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						res := server.Run(jobs, server.Config{Hosts: h, Policy: c.build()})
						if res.Slowdown.Count() == 0 {
							b.Fatal("no jobs completed")
						}
					}
					b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
				})
			}
		}
	}
}

// BenchmarkCutoffSearch measures the analytic cutoff optimizers, the
// expensive step of deploying SITA-U.
func BenchmarkCutoffSearch(b *testing.B) {
	wl, err := LoadWorkload("psc-c90", 9)
	if err != nil {
		b.Fatal(err)
	}
	lambda := 2 * 0.7 / wl.Size.Moment(1)
	b.Run("SITA-E", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			queueing.EqualLoadCutoff(wl.Size)
		}
	})
	b.Run("SITA-U-opt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queueing.OptimalCutoff(lambda, wl.Size); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SITA-U-fair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queueing.FairCutoff(lambda, wl.Size); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, h := range []int{4, 8} {
		b.Run(fmt.Sprintf("multi-opt-h%d", h), func(b *testing.B) {
			lam := float64(h) * 0.7 / wl.Size.Moment(1)
			for i := 0; i < b.N; i++ {
				if _, err := queueing.OptimalCutoffs(lam, wl.Size, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMG1Analysis measures a single Pollaczek-Khinchine evaluation —
// the inner loop of every cutoff search.
func BenchmarkMG1Analysis(b *testing.B) {
	wl, err := LoadWorkload("psc-c90", 9)
	if err != nil {
		b.Fatal(err)
	}
	lambda := 2 * 0.7 / wl.Size.Moment(1)
	cut := queueing.EqualLoadCutoff(wl.Size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := queueing.NewSITA(lambda, wl.Size, []float64{cut}).Analyze()
		if r.MeanSlowdown <= 1 {
			b.Fatal("bogus analysis")
		}
	}
}

func BenchmarkTAGS(b *testing.B)             { benchExperiment(b, "tags") }
func BenchmarkTailLatency(b *testing.B)      { benchExperiment(b, "tail-latency") }
func BenchmarkDerivation(b *testing.B)       { benchExperiment(b, "derivation") }
func BenchmarkSJF(b *testing.B)              { benchExperiment(b, "sjf") }
func BenchmarkEstimateNoise(b *testing.B)    { benchExperiment(b, "estimate-noise") }
func BenchmarkResponseTime(b *testing.B)     { benchExperiment(b, "response-time") }
func BenchmarkVarianceAnalysis(b *testing.B) { benchExperiment(b, "variance-analysis") }
