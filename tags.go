package sita

import (
	"sita/internal/dist"
	"sita/internal/tags"
	"sita/internal/workload"
)

// TAGS (Task Assignment by Guessing Size) is the companion policy for
// distributed servers where job sizes are unknown at dispatch time: every
// job starts on the first host and is killed-and-restarted up the host
// chain each time it outlives that host's cutoff. See internal/tags.

// TAGSResult aggregates one TAGS simulation.
type TAGSResult = tags.Result

// TAGSAnalysis is the analytic model of a TAGS system.
type TAGSAnalysis = tags.Analysis

// SimulateTAGS runs jobs through a TAGS system with the given internal kill
// cutoffs (len = hosts-1, ascending).
func SimulateTAGS(jobs []Job, cutoffs []float64, warmup float64) *TAGSResult {
	return tags.Simulate(jobs, cutoffs, warmup)
}

// NewTAGSAnalysis builds the analytic model for total arrival rate lambda.
func NewTAGSAnalysis(lambda float64, size dist.Distribution, cutoffs []float64) TAGSAnalysis {
	return tags.NewAnalysis(lambda, size, cutoffs)
}

// OptimalTAGSCutoffs searches for the kill cutoffs minimizing analytic mean
// slowdown for h hosts.
func OptimalTAGSCutoffs(lambda float64, size dist.Distribution, h int) ([]float64, error) {
	return tags.OptimalCutoffs(lambda, size, h)
}

// compile-time guard that the facade job type matches the tags package's.
var _ = func(j workload.Job) Job { return j }
