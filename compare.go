package sita

import (
	"fmt"
	"sort"

	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/server"
	"sita/internal/sim"
)

// PolicyOutcome is one row of a Compare run: a policy's simulated metrics
// and, where a closed form exists, its analytic prediction.
type PolicyOutcome struct {
	Name          string
	MeanSlowdown  float64
	VarSlowdown   float64
	MeanResponse  float64
	MaxSlowdown   float64
	Predicted     float64 // analytic mean slowdown; 0 when no closed form applies
	HasPrediction bool
	// ShortMean and LongMean are the per-class slowdowns for SITA designs
	// (0 for policies without a size cutoff).
	ShortMean, LongMean float64
}

// Compare runs every task assignment policy on the same re-timed job
// stream and returns the outcomes sorted by mean slowdown (best first).
// It is the programmatic counterpart of `cmd/simserver -policy all`.
func Compare(wl *Workload, load float64, hosts int, jobs int, seed uint64) ([]PolicyOutcome, error) {
	if wl == nil {
		return nil, fmt.Errorf("sita: nil workload")
	}
	jobList := wl.JobsAtLoad(load, hosts, true, seed)
	if jobs > 0 && jobs < len(jobList) {
		jobList = jobList[:jobs]
	}

	type entry struct {
		name   string
		pol    Policy
		design *Design
	}
	entries := []entry{
		{"Random", policy.NewRandom(sim.NewRNG(seed, 100)), nil},
		{"Round-Robin", policy.NewRoundRobin(), nil},
		{"Shortest-Queue", policy.NewShortestQueue(), nil},
		{"Least-Work-Left", policy.NewLeastWorkLeft(), nil},
		{"Central-Queue", policy.NewCentralQueue(), nil},
	}
	for _, v := range []Variant{core.SITAE, core.SITAUOpt, core.SITAUFair, core.SITARule} {
		d, err := NewDesign(v, load, wl.Size, hosts)
		if err != nil {
			continue // infeasible at this load; skip like the paper's plots do
		}
		entries = append(entries, entry{d.Variant.String(), d.Policy(), d})
	}

	var out []PolicyOutcome
	for _, e := range entries {
		opts := SimOptions{Warmup: 0.1}
		if e.design != nil {
			opts.SizeClass = e.design.Classify
		}
		res := server.Run(jobList, server.Config{
			Hosts:          hosts,
			Policy:         e.pol,
			WarmupFraction: opts.Warmup,
			SizeClass:      opts.SizeClass,
		})
		o := PolicyOutcome{
			Name:         e.name,
			MeanSlowdown: res.Slowdown.Mean(),
			VarSlowdown:  res.Slowdown.Variance(),
			MeanResponse: res.Response.Mean(),
			MaxSlowdown:  res.Slowdown.Max(),
		}
		if p, err := Predict(e.name, load, wl.Size, hosts); err == nil {
			o.Predicted = p
			o.HasPrediction = true
		}
		if e.design != nil {
			if audit, err := e.design.Audit(res); err == nil {
				o.ShortMean, o.LongMean = audit.ShortMean, audit.LongMean
			}
		}
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MeanSlowdown < out[j].MeanSlowdown })
	return out, nil
}
