module sita

go 1.22
