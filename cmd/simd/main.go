// Command simd is the persistent simulation service: a long-running HTTP
// server answering policy-evaluation requests on top of the deterministic
// simulation library, with request caching, admission control, deadlines,
// graceful drain, and an observability surface.
//
// Endpoints:
//
//	POST /v1/simulate   run (or serve from cache) one policy evaluation
//	GET  /v1/advise     SITA cutoff recommendations from the queueing analysis
//	GET  /healthz       liveness (503 once draining)
//	GET  /metrics       Prometheus text format
//	GET  /debug/vars    expvar
//	     /debug/pprof/  runtime profiling
//
// Usage:
//
//	simd -addr :8080
//	simd -addr :8080 -sims 8 -queue 128 -cache-mb 128 -timeout 30s
//
// On SIGINT/SIGTERM the server stops accepting connections, refuses new
// requests with 503, lets every admitted simulation finish (bounded by
// -drain), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sita/internal/catalog"
	"sita/internal/server"
	"sita/internal/service"
	"sita/internal/streamcache"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		sims     = flag.Int("sims", runtime.GOMAXPROCS(0), "max concurrently executing simulations")
		queue    = flag.Int("queue", 64, "max requests waiting for a simulation slot before 429")
		cacheMB  = flag.Int("cache-mb", 64, "response cache bound in MiB (0 disables caching)")
		streamMB = flag.Int("stream-cache-mb", streamcache.DefaultMaxBytes>>20,
			"job-stream cache bound in MiB (0 disables stream sharing; results are identical either way)")
		maxJobs = flag.Int("max-jobs", 2_000_000, "largest per-request job count accepted")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTO   = flag.Duration("max-timeout", 120*time.Second, "ceiling on requested deadlines")
		drain   = flag.Duration("drain", 60*time.Second, "shutdown drain budget for in-flight simulations")
		quiet   = flag.Bool("quiet", false, "suppress the JSON access log on stderr")
		direct  = flag.Bool("direct", true,
			"oblivious-policy direct-recurrence fast path (false forces the event engine; responses are byte-identical either way)")
	)
	flag.Parse()
	server.SetDirectEnabled(*direct)
	if err := catalog.CheckWorkers(*sims); err != nil {
		fatal(fmt.Errorf("-sims: %w", err))
	}
	if *queue < 0 {
		fatal(fmt.Errorf("-queue must be >= 0, got %d", *queue))
	}
	if *cacheMB < 0 {
		fatal(fmt.Errorf("-cache-mb must be >= 0, got %d", *cacheMB))
	}
	if *maxJobs < 1 {
		fatal(fmt.Errorf("-max-jobs must be >= 1, got %d", *maxJobs))
	}
	if *streamMB < 0 {
		fatal(fmt.Errorf("-stream-cache-mb must be >= 0, got %d", *streamMB))
	}
	streamcache.Shared.SetMaxBytes(int64(*streamMB) << 20)

	cfg := service.Config{
		MaxConcurrent:  *sims,
		MaxQueue:       *queue,
		CacheBytes:     int64(*cacheMB) << 20,
		MaxJobs:        *maxJobs,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
	}
	if *cacheMB == 0 {
		cfg.CacheBytes = -1 // Config treats 0 as "default", negative as off
	}
	if *queue == 0 {
		cfg.MaxQueue = -1 // likewise: 0 means default, negative means none
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	svc := service.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "simd: listening on %s (%d sim slots, queue %d, cache %d MiB)\n",
			*addr, *sims, *queue, *cacheMB)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "simd: %v, draining (budget %v)\n", sig, *drain)
		// Shutdown ordering: stop the listener and wait for connections
		// (http.Server.Shutdown), while the service refuses new requests
		// and waits out admitted simulations (service.Shutdown). Both
		// share the drain budget; on expiry, connections are cut.
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		svcDone := make(chan error, 1)
		go func() { svcDone <- svc.Shutdown(ctx) }()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "simd: drain budget exceeded, cutting connections: %v\n", err)
			httpSrv.Close()
		}
		if err := <-svcDone; err != nil {
			fmt.Fprintf(os.Stderr, "simd: simulations still running at exit: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "simd: drained cleanly")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}
