// Command cutoff derives SITA size cutoffs for a workload and prints the
// analytic performance prediction for each variant: the tool an operator
// would run before configuring a duration-partitioned distributed server.
//
// Usage:
//
//	cutoff -profile psc-c90 -load 0.7            # all variants, 2 hosts
//	cutoff -profile psc-c90 -load 0.7 -hosts 8   # full multi-cutoff vectors
//	cutoff -in mylog.swf -load 0.5               # from a real SWF log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"sita"
	"sita/internal/catalog"
	"sita/internal/core"
	"sita/internal/queueing"
)

func main() {
	var (
		profile = flag.String("profile", "psc-c90", "workload profile")
		in      = flag.String("in", "", "derive from this SWF file instead of a built-in profile")
		load    = flag.Float64("load", 0.7, "system load in (0,1)")
		hosts   = flag.Int("hosts", 2, "number of hosts")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if *in == "" {
		if err := catalog.CheckProfile(*profile); err != nil {
			fatal(fmt.Errorf("-profile: %w", err))
		}
	}
	if err := catalog.CheckLoad(*load); err != nil {
		fatal(fmt.Errorf("-load: %w", err))
	}
	if err := catalog.CheckHosts(*hosts); err != nil {
		fatal(fmt.Errorf("-hosts: %w", err))
	}

	var wl *sita.Workload
	var err error
	if *in != "" {
		wl, err = sita.WorkloadFromSWF(*in)
	} else {
		wl, err = sita.LoadWorkload(*profile, *seed)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload %s: mean %.1fs, support [%.1f, %.0f], C^2 %.1f\n",
		wl.Profile.Name, wl.Size.Moment(1), wl.Size.K, wl.Size.P, scv(wl))
	fmt.Printf("system: %d hosts at load %.2f\n\n", *hosts, *load)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "variant\tcutoff(s)\tshort-load frac\tpredicted E[S]\tpredicted Var[S]\thost loads\n")
	for _, v := range core.Variants() {
		d, err := sita.NewDesign(v, *load, wl.Size, 2)
		if err != nil {
			fmt.Fprintf(w, "%s\t-\t-\t-\t-\t%v\n", v, err)
			continue
		}
		loads := make([]string, len(d.Predicted.Hosts))
		for i, h := range d.Predicted.Hosts {
			loads[i] = fmt.Sprintf("%.3f", h.Load)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%.2f\t%.3g\t%s\n",
			v, d.Cutoff, d.ShortLoadFraction(),
			d.Predicted.MeanSlowdown, d.Predicted.VarSlowdown,
			strings.Join(loads, " "))
	}
	w.Flush()

	if *hosts > 2 {
		lambda := float64(*hosts) * *load / wl.Size.Moment(1)
		fmt.Printf("\nfull multi-cutoff vectors for %d hosts (the search the paper calls too expensive):\n", *hosts)
		if cuts, err := queueing.EqualLoadCutoffs(wl.Size, *hosts); err == nil {
			fmt.Printf("  SITA-E      %v\n", round(cuts))
		}
		if cuts, err := queueing.OptimalCutoffs(lambda, wl.Size, *hosts); err == nil {
			fmt.Printf("  SITA-U-opt  %v\n", round(cuts))
		} else {
			fmt.Printf("  SITA-U-opt  %v\n", err)
		}
		if cuts, err := queueing.FairCutoffs(lambda, wl.Size, *hosts); err == nil {
			fmt.Printf("  SITA-U-fair %v\n", round(cuts))
		} else {
			fmt.Printf("  SITA-U-fair %v\n", err)
		}
	}
}

func scv(wl *sita.Workload) float64 {
	m1, m2 := wl.Size.Moment(1), wl.Size.Moment(2)
	return m2/(m1*m1) - 1
}

func round(cuts []float64) []string {
	out := make([]string, len(cuts))
	for i, c := range cuts {
		out[i] = fmt.Sprintf("%.1f", c)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cutoff:", err)
	os.Exit(1)
}
