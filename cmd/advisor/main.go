// Command advisor is the operator-facing capstone: given a workload (a
// built-in profile or a real SWF log), a host count and a system load, it
// characterizes the workload, predicts every policy's performance,
// recommends a task assignment design, and verifies the recommendation by
// simulation.
//
// Usage:
//
//	advisor -profile psc-c90 -load 0.7
//	advisor -in mylog.swf -hosts 4 -load 0.6 -slo 50
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sita"
	"sita/internal/catalog"
	"sita/internal/core"
	"sita/internal/dist"
)

func main() {
	var (
		profile = flag.String("profile", "psc-c90", "workload profile")
		in      = flag.String("in", "", "characterize this SWF log instead of a built-in profile")
		hosts   = flag.Int("hosts", 2, "number of hosts")
		load    = flag.Float64("load", 0.7, "system load in (0,1)")
		slo     = flag.Float64("slo", 0, "mean-slowdown objective (0 = none); reported against the recommendation")
		jobs    = flag.Int("jobs", 30000, "jobs for the verification simulation")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if *in == "" {
		if err := catalog.CheckProfile(*profile); err != nil {
			fatal(fmt.Errorf("-profile: %w", err))
		}
	}
	if err := catalog.CheckHosts(*hosts); err != nil {
		fatal(fmt.Errorf("-hosts: %w", err))
	}
	if err := catalog.CheckLoad(*load); err != nil {
		fatal(fmt.Errorf("-load: %w", err))
	}
	if err := catalog.CheckJobs(*jobs); err != nil {
		fatal(fmt.Errorf("-jobs: %w", err))
	}

	var wl *sita.Workload
	var err error
	if *in != "" {
		wl, err = sita.WorkloadFromSWF(*in)
	} else {
		wl, err = sita.LoadWorkload(*profile, *seed)
	}
	if err != nil {
		fatal(err)
	}

	// 1. Characterize.
	st := wl.Trace.ComputeStats()
	scv := dist.SquaredCV(wl.Size)
	fmt.Printf("workload %s\n", wl.Profile.Name)
	fmt.Printf("  %d jobs, mean %.0fs, range [%.0fs, %.0fs]\n", st.Jobs, st.Mean, st.Min, st.Max)
	fmt.Printf("  size C^2 = %.1f (fitted Bounded Pareto alpha = %.2f)\n", scv, wl.Size.Alpha)
	tail := wl.Size.LoadCutoff(0.5)
	fmt.Printf("  heavy tail: the biggest %.2f%% of jobs carry half the load (cutoff %.0fs)\n",
		100*(1-wl.Size.CDF(tail)), tail)

	// 2. Predict every policy (2-host closed forms; simulation covers the
	//    configured host count below).
	fmt.Printf("\nanalytic predictions (2 hosts, load %.2f):\n", *load)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  policy\tE[S]\tneeds job sizes?\n")
	for _, name := range []string{"Random", "Round-Robin", "Least-Work-Left", "SITA-E", "SITA-U-fair", "SITA-U-opt"} {
		v, err := sita.Predict(name, *load, wl.Size, 2)
		if err != nil {
			fmt.Fprintf(w, "  %s\t-\t\n", name)
			continue
		}
		needs := "no"
		switch name {
		case "Least-Work-Left":
			needs = "estimates"
		case "SITA-E", "SITA-U-fair", "SITA-U-opt":
			needs = "one cutoff"
		}
		fmt.Fprintf(w, "  %s\t%.1f\t%s\n", name, v, needs)
	}
	w.Flush()

	// 3. Recommend: SITA-U-fair (the paper's bottom line — nearly optimal
	//    *and* fair); fall back to SITA-U-opt if fairness derivation fails.
	design, err := sita.NewDesign(sita.SITAUFair, *load, wl.Size, *hosts)
	if err != nil {
		design, err = sita.NewDesign(sita.SITAUOpt, *load, wl.Size, *hosts)
	}
	if err != nil {
		fatal(fmt.Errorf("no feasible SITA design at load %v: %w", *load, err))
	}
	fmt.Printf("\nrecommendation: %s on %d hosts\n", design.Variant, *hosts)
	fmt.Printf("  size cutoff: %.0fs (jobs up to this run on the short side: %d of %d hosts)\n",
		design.Cutoff, design.ShortHosts, *hosts)
	fmt.Printf("  short side carries %.0f%% of the load (rule of thumb: %.0f%%)\n",
		100*design.ShortLoadFraction(), 100*core.RuleOfThumbFraction(*load))

	// 4. Verify by simulation on the configured host count.
	sim := wl.JobsAtLoad(*load, *hosts, true, *seed)
	if *jobs > 0 && *jobs < len(sim) {
		sim = sim[:*jobs]
	}
	res := sita.SimulateOpts(design.Policy(), sim, *hosts, sita.SimOptions{
		Warmup:    0.1,
		SizeClass: design.Classify,
	})
	fmt.Printf("\nverification (simulated %d jobs on %d hosts):\n", len(sim), *hosts)
	fmt.Printf("  mean slowdown %.1f, variance %.3g, p-max %.0f\n",
		res.Slowdown.Mean(), res.Slowdown.Variance(), res.Slowdown.Max())
	if audit, err := design.Audit(res); err == nil {
		fmt.Printf("  fairness: short jobs E[S] = %.1f, long jobs E[S] = %.1f\n",
			audit.ShortMean, audit.LongMean)
	}
	baseline := sita.SimulateOpts(sita.NewLeastWorkLeftPolicy(), sim, *hosts, sita.SimOptions{Warmup: 0.1})
	fmt.Printf("  vs Least-Work-Left: %.1f (%.1fx better)\n",
		baseline.Slowdown.Mean(), baseline.Slowdown.Mean()/res.Slowdown.Mean())

	if *slo > 0 {
		verdict := "MEETS"
		if res.Slowdown.Mean() > *slo {
			verdict = "MISSES"
		}
		fmt.Printf("\nSLO: mean slowdown <= %.0f -> recommendation %s the objective (measured %.1f)\n",
			*slo, verdict, res.Slowdown.Mean())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advisor:", err)
	os.Exit(1)
}
