// Command tracegen synthesizes supercomputing job traces calibrated to the
// paper's workloads and writes them in Standard Workload Format, or prints
// the Table-1 characterization of an existing SWF file.
//
// Usage:
//
//	tracegen -profile psc-c90 -o c90.swf        # generate + write SWF
//	tracegen -profile ctc-sp2 -jobs 10000 -stats # generate + characterize
//	tracegen -in some-archive-log.swf -stats     # characterize a real log
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sita/internal/catalog"
	"sita/internal/trace"
)

func main() {
	var (
		profile = flag.String("profile", "psc-c90", "workload profile to synthesize")
		jobs    = flag.Int("jobs", 0, "number of jobs (0 = profile default)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output SWF path (default: none)")
		in      = flag.String("in", "", "characterize this SWF file instead of generating")
		stats   = flag.Bool("stats", false, "print the Table-1 characterization row")
	)
	flag.Parse()

	if *in == "" {
		if err := catalog.CheckProfile(*profile); err != nil {
			fatal(fmt.Errorf("-profile: %w", err))
		}
	}
	if err := catalog.CheckJobs(*jobs); err != nil {
		fatal(fmt.Errorf("-jobs: %w", err))
	}

	var tr *trace.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.ReadSWF(*in, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		p, err := trace.ByName(*profile)
		if err != nil {
			fatal(err)
		}
		if *jobs > 0 {
			p.Jobs = *jobs
		}
		tr, err = trace.Generate(p, *seed)
		if err != nil {
			fatal(err)
		}
	}

	if *stats || *out == "" {
		printStats(tr)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteSWF(tr, f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d jobs to %s\n", tr.Len(), *out)
	}
}

func printStats(tr *trace.Trace) {
	st := tr.ComputeStats()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "trace\tjobs\tmean(s)\tmin(s)\tmax(s)\tC^2\ttail@halfload\tgap C^2\n")
	fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.4f\t%.1f\n",
		st.Name, st.Jobs, st.Mean, st.Min, st.Max, st.SquaredCV, st.TailJobFraction, st.GapSCV)
	w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
