// Command simserver runs one distributed-server simulation and prints a
// metrics report: slowdown and response statistics, per-host utilization,
// and the short/long fairness audit for SITA policies.
//
// Usage:
//
//	simserver -policy sita-u-fair -hosts 2 -load 0.7
//	simserver -policy lwl -hosts 8 -load 0.7 -profile ctc-sp2 -bursty
//	simserver -policy all -load 0.7           # compare every policy
//
// With -policy all the per-policy simulations run concurrently on -workers
// goroutines (default: all CPUs); the report is identical for any count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"sita"
	"sita/internal/catalog"
	"sita/internal/policy"
	"sita/internal/profiling"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/streamcache"
)

func main() {
	var (
		policyName = flag.String("policy", "sita-u-fair", "random | round-robin | shortest-queue | lwl | central-queue | sita-e | sita-u-opt | sita-u-fair | sita-u-rule | all")
		hosts      = flag.Int("hosts", 2, "number of hosts")
		load       = flag.Float64("load", 0.7, "system load in (0,1)")
		profile    = flag.String("profile", "psc-c90", "workload profile")
		jobs       = flag.Int("jobs", 0, "number of jobs (0 = profile default)")
		seed       = flag.Uint64("seed", 1, "random seed")
		warmup     = flag.Float64("warmup", 0.1, "warmup fraction excluded from statistics")
		bursty     = flag.Bool("bursty", false, "use the trace's bursty interarrival gaps instead of Poisson")
		ps         = flag.Bool("ps", false, "run hosts as Processor-Sharing instead of FCFS run-to-completion (ideal-fairness reference)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent policy simulations for -policy all")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on successful exit")
	)
	flag.Parse()

	if *policyName != "all" {
		if err := catalog.CheckPolicy(*policyName); err != nil {
			fatal(fmt.Errorf("-policy: %w", err))
		}
	}
	if err := catalog.CheckHosts(*hosts); err != nil {
		fatal(fmt.Errorf("-hosts: %w", err))
	}
	if err := catalog.CheckLoad(*load); err != nil {
		fatal(fmt.Errorf("-load: %w", err))
	}
	if err := catalog.CheckProfile(*profile); err != nil {
		fatal(fmt.Errorf("-profile: %w", err))
	}
	if err := catalog.CheckJobs(*jobs); err != nil {
		fatal(fmt.Errorf("-jobs: %w", err))
	}
	if err := catalog.CheckWarmup(*warmup); err != nil {
		fatal(fmt.Errorf("-warmup: %w", err))
	}
	if err := catalog.CheckWorkers(*workers); err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}

	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "simserver:", err)
		}
	}()

	wl, err := sita.LoadWorkload(*profile, *seed)
	if err != nil {
		fatal(err)
	}
	if *jobs > 0 && *jobs < wl.Trace.Len() {
		// Truncate derives a child trace with its own cache identity;
		// slicing Jobs in place would desynchronize the precomputed mean.
		wl.Trace = wl.Trace.Truncate(*jobs)
	}
	jobList := streamcache.Shared.JobsAtLoad(wl.Trace, *load, *hosts, !*bursty, *seed)

	names := []string{*policyName}
	if *policyName == "all" {
		names = catalog.PolicyNames()
	}

	// Each policy's simulation is an independent cell: policies are built
	// inside the cell, jobList is shared read-only, and rows come back in
	// name order, so the report does not depend on scheduling.
	rows, err := runner.Map(*workers, names, func(_ int, name string) (string, error) {
		p, design, err := catalog.Build(name, *load, wl, *hosts, *seed)
		if err != nil {
			return "", err
		}
		opts := sita.SimOptions{Warmup: *warmup}
		if design != nil {
			opts.SizeClass = design.Classify
		}
		var res *sita.Result
		if *ps {
			res = sita.SimulatePS(p, jobList, *hosts, opts)
		} else {
			res = sita.SimulateOpts(p, jobList, *hosts, opts)
		}
		short, long := "-", "-"
		if design != nil {
			if a, err := design.Audit(res); err == nil {
				short = fmt.Sprintf("%.2f", a.ShortMean)
				long = fmt.Sprintf("%.2f", a.LongMean)
			}
		}
		return fmt.Sprintf("%s\t%.3f\t%.3g\t%.1f\t%.1f\t%s\t%s",
			res.PolicyName, res.Slowdown.Mean(), res.Slowdown.Variance(),
			res.Response.Mean(), res.Slowdown.Max(), short, long), nil
	})
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tmean slowdown\tvar slowdown\tmean response(s)\tmax slowdown\tshort E[S]\tlong E[S]\n")
	for _, row := range rows {
		fmt.Fprintln(w, row)
	}
	w.Flush()

	fmt.Printf("\nworkload: %s, %d jobs, system load %.2f, %d hosts, %s arrivals\n",
		wl.Profile.Name, len(jobList), *load, *hosts, arrivalKind(*bursty))
	if len(names) == 1 {
		p, _, err := catalog.Build(names[0], *load, wl, *hosts, *seed)
		if err != nil {
			fatal(err)
		}
		res := sita.SimulateOpts(p, jobList, *hosts, sita.SimOptions{Warmup: *warmup})
		fmt.Println("\nper-host accounting:")
		fr := res.LoadFractions()
		for i := 0; i < *hosts; i++ {
			fmt.Printf("  host %2d: %8d jobs, load share %.3f, utilization %.3f\n",
				i, res.PerHostJobs[i], fr[i], res.Utilization(i))
		}
	}
}

func arrivalKind(bursty bool) string {
	if bursty {
		return "scaled-trace (bursty)"
	}
	return "Poisson"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simserver:", err)
	os.Exit(1)
}

// Ensure the server package's Policy interface stays satisfied by what we
// hand to Simulate (compile-time check useful when refactoring).
var _ server.Policy = policy.NewLeastWorkLeft()
