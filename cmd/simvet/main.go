// Command simvet runs the simulator's static-analysis suite over the
// given package patterns (default ./...) and exits nonzero on findings.
// It is the CI gate for the determinism and numeric-correctness
// contracts; see internal/analysis for the analyzers and the
// //lint:allow suppression syntax.
//
// Usage:
//
//	go run ./cmd/simvet ./...
//	go run ./cmd/simvet -list            # describe the analyzers
//	go run ./cmd/simvet ./internal/sim   # one package
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"sita/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simvet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simvet:", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
