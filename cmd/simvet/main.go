// Command simvet runs the simulator's static-analysis suite over the
// given package patterns (default ./...) and exits nonzero on findings.
// It is the CI gate for the determinism and numeric-correctness
// contracts; see internal/analysis for the analyzers and the
// //lint:allow suppression syntax.
//
// Usage:
//
//	go run ./cmd/simvet ./...
//	go run ./cmd/simvet -list                               # describe the analyzers
//	go run ./cmd/simvet ./internal/sim                      # one package
//	go run ./cmd/simvet -json ./...                         # machine-readable report
//	go run ./cmd/simvet -baseline simvet.baseline.json ./.. # fail only on new findings
//
// A baseline file is a JSON array of accepted findings, each matched by
// (analyzer, file, message) — deliberately line-independent, so code
// motion above a finding does not churn the baseline. Every entry
// carries a mandatory reason, keeping the accepted set auditable.
// Baselined findings are reported (and marked in -json output) but do
// not fail the run; entries that no longer match anything are stale and
// fail the run under -failstale, so the baseline can only shrink.
//
// Exit status: 0 clean, 1 findings (or stale baseline under
// -failstale), 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sita/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	baselinePath := flag.String("baseline", "", "JSON baseline of accepted findings; only new findings fail")
	failStale := flag.Bool("failstale", false, "exit nonzero when baseline entries no longer reproduce")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simvet [-list] [-json] [-baseline file] [-failstale] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	if *failStale && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "simvet: -failstale requires -baseline")
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simvet:", err)
		os.Exit(2)
	}

	var baseline []baselineEntry
	if *baselinePath != "" {
		baseline, err = readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simvet:", err)
			os.Exit(2)
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	findings := toFindings(diags, wd)
	fresh, stale := applyBaseline(findings, baseline)

	if *jsonOut {
		// Keep empty collections as [] rather than null so downstream
		// jq/length checks work without null guards.
		if findings == nil {
			findings = []finding{}
		}
		if stale == nil {
			stale = []baselineEntry{}
		}
		rep := report{Findings: findings, StaleBaseline: stale}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "simvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			suffix := ""
			if f.Baselined {
				suffix = " [baselined]"
			}
			fmt.Printf("%s:%d:%d: %s (%s)%s\n", f.File, f.Line, f.Column, f.Message, f.Analyzer, suffix)
		}
	}

	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "simvet: stale baseline entry: %s in %s (%q) no longer reproduces; delete it\n",
			e.Analyzer, e.File, e.Message)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "simvet: %d new finding(s) in %d package(s)\n", len(fresh), len(pkgs))
		os.Exit(1)
	}
	if *failStale && len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "simvet: %d stale baseline entr(y/ies)\n", len(stale))
		os.Exit(1)
	}
}
