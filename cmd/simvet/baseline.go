package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sita/internal/analysis"
)

// finding is one diagnostic in the machine-readable report. File is
// module-relative with forward slashes, so reports are stable across
// checkouts and operating systems.
type finding struct {
	Analyzer  string `json:"analyzer"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// baselineEntry is one accepted finding in the checked-in baseline.
// Matching is by (analyzer, file, message) and ignores line/column, so
// unrelated edits above a finding do not churn the baseline. Reason is
// mandatory: a baseline without rationale is just a muted alarm.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Reason   string `json:"reason"`
}

// report is the top-level -json document.
type report struct {
	Findings      []finding       `json:"findings"`
	StaleBaseline []baselineEntry `json:"stale_baseline"`
}

// readBaseline loads and validates a baseline file. Every entry must
// name an analyzer, a file, a message, and a reason.
func readBaseline(path string) ([]baselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for i, e := range entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("baseline %s: entry %d needs analyzer, file, and message", path, i)
		}
		if e.Reason == "" {
			return nil, fmt.Errorf("baseline %s: entry %d (%s in %s) needs a reason", path, i, e.Analyzer, e.File)
		}
	}
	return entries, nil
}

// toFindings converts analyzer diagnostics to report findings, making
// file paths module-relative to root where possible.
func toFindings(diags []analysis.Diagnostic, root string) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		out = append(out, finding{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// applyBaseline marks findings matched by the baseline (mutating their
// Baselined field in place) and partitions the result: fresh findings
// that should fail the run, and stale baseline entries that matched
// nothing and should be deleted. One entry may cover several identical
// findings (the same message can recur in a file at different lines).
func applyBaseline(findings []finding, baseline []baselineEntry) (fresh []finding, stale []baselineEntry) {
	type key struct{ analyzer, file, message string }
	matched := make(map[key]bool, len(baseline))
	accepted := make(map[key]bool, len(baseline))
	for _, e := range baseline {
		accepted[key{e.Analyzer, e.File, e.Message}] = true
	}
	for i := range findings {
		k := key{findings[i].Analyzer, findings[i].File, findings[i].Message}
		if accepted[k] {
			findings[i].Baselined = true
			matched[k] = true
		} else {
			fresh = append(fresh, findings[i])
		}
	}
	for _, e := range baseline {
		if !matched[key{e.Analyzer, e.File, e.Message}] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
