package main

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"sita/internal/analysis"
)

func entry(an, file, msg string) baselineEntry {
	return baselineEntry{Analyzer: an, File: file, Message: msg, Reason: "test"}
}

func TestApplyBaselinePartition(t *testing.T) {
	findings := []finding{
		{Analyzer: "detflow", File: "a/x.go", Line: 10, Message: "reaches time.Now"},
		{Analyzer: "floateq", File: "b/y.go", Line: 3, Message: "exact comparison"},
		// Same (analyzer, file, message) at another line: one baseline
		// entry must cover both occurrences.
		{Analyzer: "detflow", File: "a/x.go", Line: 42, Message: "reaches time.Now"},
	}
	baseline := []baselineEntry{
		entry("detflow", "a/x.go", "reaches time.Now"),
		entry("pairing", "gone.go", "Acquire without Release"), // matches nothing
	}

	fresh, stale := applyBaseline(findings, baseline)

	if len(fresh) != 1 || fresh[0].Analyzer != "floateq" {
		t.Errorf("fresh = %+v, want only the floateq finding", fresh)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %+v, want only the pairing entry", stale)
	}
	if !findings[0].Baselined || !findings[2].Baselined {
		t.Errorf("both detflow occurrences should be marked baselined: %+v", findings)
	}
	if findings[1].Baselined {
		t.Errorf("the floateq finding must not be baselined: %+v", findings[1])
	}
}

func TestApplyBaselineLineIndependent(t *testing.T) {
	// A finding that moved lines (code inserted above it) still matches.
	findings := []finding{{Analyzer: "allocfree", File: "p/q.go", Line: 99, Message: "calls append"}}
	fresh, stale := applyBaseline(findings, []baselineEntry{entry("allocfree", "p/q.go", "calls append")})
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("fresh=%v stale=%v, want both empty", fresh, stale)
	}
}

func TestApplyBaselineEmpty(t *testing.T) {
	findings := []finding{{Analyzer: "maporder", File: "m.go", Message: "map range"}}
	fresh, stale := applyBaseline(findings, nil)
	if len(fresh) != 1 || len(stale) != 0 {
		t.Errorf("fresh=%v stale=%v, want all findings fresh and no stale", fresh, stale)
	}
}

func TestToFindingsRelativizesPaths(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod", "root")
	diags := []analysis.Diagnostic{
		{
			Analyzer: "detflow",
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "sim", "engine.go"), Line: 7, Column: 2},
			Message:  "m",
		},
		{
			Analyzer: "floateq",
			Pos:      token.Position{Filename: string(filepath.Separator) + filepath.Join("elsewhere", "z.go"), Line: 1, Column: 1},
			Message:  "n",
		},
	}
	fs := toFindings(diags, root)
	if fs[0].File != "internal/sim/engine.go" {
		t.Errorf("in-module path = %q, want module-relative slash path", fs[0].File)
	}
	// Out-of-module paths relativize too (filepath.Rel succeeds with ..),
	// which is fine: the baseline matches whatever toFindings emits, and
	// the emission is deterministic for a fixed working directory.
	if fs[1].Line != 1 || fs[1].Analyzer != "floateq" {
		t.Errorf("second finding mangled: %+v", fs[1])
	}
}

func TestReadBaselineValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if got, err := readBaseline(write("ok.json",
		`[{"analyzer":"detflow","file":"a.go","message":"m","reason":"accepted: legacy path"}]`)); err != nil || len(got) != 1 {
		t.Errorf("valid baseline: got %v, %v", got, err)
	}
	if got, err := readBaseline(write("empty.json", `[]`)); err != nil || len(got) != 0 {
		t.Errorf("empty baseline: got %v, %v", got, err)
	}
	if _, err := readBaseline(write("noreason.json",
		`[{"analyzer":"detflow","file":"a.go","message":"m"}]`)); err == nil {
		t.Error("entry without reason must be rejected")
	}
	if _, err := readBaseline(write("nofile.json",
		`[{"analyzer":"detflow","message":"m","reason":"r"}]`)); err == nil {
		t.Error("entry without file must be rejected")
	}
	if _, err := readBaseline(write("garbage.json", `{not json`)); err == nil {
		t.Error("malformed JSON must be rejected")
	}
	if _, err := readBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must be rejected")
	}
}
