// Command sweep regenerates the paper's tables and figures.
//
// Usage:
//
//	sweep -exp fig4                 # one experiment, text tables on stdout
//	sweep -exp all -out results/    # everything, one .txt + .csv per table
//	sweep -exp fig2 -profile psc-j90 -jobs 30000 -loads 0.3,0.5,0.7
//	sweep -exp all -workers 8       # fan simulation cells out over 8 CPUs
//
// Simulation cells (one run per (policy, load) pair) execute concurrently
// on -workers goroutines (default: all CPUs). Output is bit-identical for
// any worker count — per-cell seeds depend only on the cell's coordinates.
//
// Experiment ids: table1, fig2..fig13, cutoff-sensitivity,
// misclassification, burstiness, multi-cutoff, fairness-profile.
//
// Some sweeps are opt-in and excluded from -exp all (and from results/):
//
//	sweep -exp many-hosts           # indexed policies at h = 64..4096
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sita/internal/catalog"
	"sita/internal/experiment"
	"sita/internal/profiling"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/streamcache"
	"sita/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		profile  = flag.String("profile", "psc-c90", "workload profile (psc-c90, psc-j90, ctc-sp2)")
		jobs     = flag.Int("jobs", 0, "cap on trace length per point (0 = profile default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		warmup   = flag.Float64("warmup", 0.1, "warmup fraction excluded from statistics")
		loads    = flag.String("loads", "", "comma-separated system loads (default per experiment)")
		outDir   = flag.String("out", "", "directory for .txt and .csv outputs (default: stdout only)")
		csvOnly  = flag.Bool("csv", false, "print CSV instead of aligned text")
		asPlot   = flag.Bool("plot", false, "print ASCII line charts (log-y) instead of tables")
		reps     = flag.Int("rep", 1, "number of replications (hash-derived seeds); > 1 reports mean and 95% CI tables")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells; output is identical for any value")
		progress = flag.Bool("progress", false, "report per-experiment cell progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on successful exit")
		cacheMiB = flag.Int("stream-cache", streamcache.DefaultMaxBytes>>20,
			"job-stream cache budget in MiB (0 disables caching; output is identical either way)")
		direct = flag.Bool("direct", true,
			"oblivious-policy direct-recurrence fast path (0 forces the event engine; output is byte-identical either way)")
	)
	flag.Parse()
	server.SetDirectEnabled(*direct)

	if err := catalog.CheckProfile(*profile); err != nil {
		fatal(fmt.Errorf("-profile: %w", err))
	}
	if err := catalog.CheckJobs(*jobs); err != nil {
		fatal(fmt.Errorf("-jobs: %w", err))
	}
	if err := catalog.CheckWarmup(*warmup); err != nil {
		fatal(fmt.Errorf("-warmup: %w", err))
	}
	if err := catalog.CheckWorkers(*workers); err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}
	if *reps < 1 {
		fatal(fmt.Errorf("-rep must be >= 1, got %d", *reps))
	}

	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}()

	if *cacheMiB < 0 {
		fatal(fmt.Errorf("-stream-cache must be >= 0 MiB, got %d", *cacheMiB))
	}
	streamcache.Shared.SetMaxBytes(int64(*cacheMiB) << 20)

	cfg := experiment.Default()
	p, err := trace.ByName(*profile)
	if err != nil {
		fatal(err)
	}
	cfg.Profile = p
	cfg.Jobs = *jobs
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	cfg.Workers = *workers
	if *progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r# %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *loads != "" {
		cfg.Loads = nil
		for _, s := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(fmt.Errorf("bad load %q: %w", s, err))
			}
			if err := catalog.CheckLoad(v); err != nil {
				fatal(fmt.Errorf("-loads: %w", err))
			}
			cfg.Loads = append(cfg.Loads, v)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.IDs()
	}
	drivers := experiment.Drivers()
	for _, id := range ids {
		driver, ok := drivers[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(experiment.IDs(), ", ")))
		}
		//lint:allow nowallclock wall-clock runtime is operator progress output, not a result
		start := time.Now()
		var tables []experiment.Table
		var err error
		if *reps > 1 {
			// Replication seeds are hash-derived from the base seed so
			// consecutive replications share no low-bit structure.
			seeds := runner.ReplicationSeeds(cfg.Seed, *reps)
			tables, err = experiment.Replicate(driver, cfg, seeds)
		} else {
			tables, err = driver(cfg)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		//lint:allow nowallclock wall-clock runtime is operator progress output, not a result
		fmt.Fprintf(os.Stderr, "# %s finished in %v\n", id, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			switch {
			case *asPlot:
				fmt.Println(t.Plot(true))
			case *csvOnly:
				fmt.Print(t.CSV())
			default:
				fmt.Println(t.Format())
			}
			if *outDir != "" {
				if err := writeOutputs(*outDir, t); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func writeOutputs(dir string, t experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, t.ID+".txt"), []byte(t.Format()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, t.ID+".csv"), []byte(t.CSV()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
