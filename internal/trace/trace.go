package trace

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// Trace is an ordered job log: arrival instants and service requirements.
//
// Immutability contract: a Trace — the Jobs slice included — must be
// treated as read-only once built. Traces are shared freely (the experiment
// trace cache, the job-stream cache in internal/streamcache, and the simd
// workload memo all hand one *Trace to many concurrent consumers), and the
// derivation helpers (Head, Truncate, SplitHalf, FilterSize, Thin, Merge)
// return new traces instead of editing in place. Mutating Jobs directly
// would desynchronize the precomputed size mean and the cache identity
// below; derive a new trace instead.
type Trace struct {
	Name string
	Jobs []workload.Job

	// id is the cache identity assigned at construction (see Identity);
	// zero for traces built as plain literals, which caches then bypass.
	id Identity
	// meanSize is the precomputed mean job size (0 when not precomputed;
	// job sizes are validated positive, so 0 is never a real mean).
	meanSize float64
}

// Identity is a comparable, process-stable identity for a trace's exact
// job content, used as a cache key by internal/streamcache and the
// experiment harness. Two traces share an identity only when they are
// guaranteed to hold the identical job slice: either they come from the
// same generation recipe (Profile + seed — Generate is a pure function of
// both), or one was derived from the other by a pure derivation (Ops
// records the chain), or they are literally the same construction (Anon,
// a process-unique sequence number, for traces with no reproducible
// recipe such as SWF imports). The zero Identity means "no identity":
// caches fall back to regenerating rather than guessing.
type Identity struct {
	// Profile and Seed are the generation recipe for synthesized traces.
	Profile Profile
	Seed    uint64
	// Anon is a process-unique sequence number for traces without a
	// reproducible recipe (SWF imports, ad-hoc constructions via New).
	Anon uint64
	// Ops is the chain of pure derivations applied after construction
	// ("/derive", "[:20000]", "/thin3", ...), empty for the original.
	Ops string
}

// IsZero reports whether the identity is unset.
func (id Identity) IsZero() bool { return id == Identity{} }

// anonSeq numbers identities for traces without a generation recipe.
var anonSeq atomic.Uint64

// New builds a trace from a job slice, precomputing the size mean and
// assigning a fresh anonymous identity. The slice is NOT copied; the
// caller hands over ownership and must not mutate it afterwards (see the
// immutability contract on Trace).
func New(name string, jobs []workload.Job) *Trace {
	t := &Trace{Name: name, Jobs: jobs, id: Identity{Anon: anonSeq.Add(1)}}
	t.meanSize = t.computeSizeMean()
	return t
}

// derive builds a child trace from a pure derivation of t: the child's
// identity extends the parent's Ops chain, so caches can key derived
// traces without content hashing. A parent without identity yields a
// child without identity.
func (t *Trace) derive(name, op string, jobs []workload.Job) *Trace {
	out := &Trace{Name: name, Jobs: jobs}
	if !t.id.IsZero() {
		out.id = t.id
		out.id.Ops += op
	}
	out.meanSize = out.computeSizeMean()
	return out
}

// Identity returns the trace's cache identity (zero, with ok=false, for
// traces built as plain literals).
func (t *Trace) Identity() (id Identity, ok bool) {
	return t.id, !t.id.IsZero()
}

// computeSizeMean streams the mean job size exactly as ComputeStats does,
// so the precomputed value is bit-identical to a fresh pass.
func (t *Trace) computeSizeMean() float64 {
	var mean stats.Stream
	for _, j := range t.Jobs {
		mean.Add(j.Size)
	}
	return mean.Mean()
}

// SizeMean returns the mean job size, precomputed at construction for
// traces built through the package constructors (Generate, New, the
// derivation helpers) and streamed on demand otherwise.
func (t *Trace) SizeMean() float64 {
	if t.meanSize != 0 {
		return t.meanSize
	}
	return t.computeSizeMean()
}

// Generate synthesizes a trace from a profile: Bounded Pareto service times
// and a bursty arrival process. Arrivals come from a two-state
// Markov-modulated Poisson process whose high state produces *sustained*
// bursts — tens of consecutive jobs well above the mean rate — matching the
// correlated submission waves of real supercomputing logs (the paper's
// section 6: "many jobs with similar runtimes arrive simultaneously").
// Sustained bursts, not just heavy-tailed gaps, are what eventually favor
// Least-Work-Left at very high load: during a long burst a size-interval
// policy strands the capacity of the hosts whose size class is quiet.
// The base arrival rate puts a nominal 2-host system at load 0.7;
// experiments rescale arrivals anyway (exactly as the paper rescales its
// trace interarrival times).
func Generate(p Profile, seed uint64) (*Trace, error) {
	size, err := p.SizeDist()
	if err != nil {
		return nil, fmt.Errorf("trace: generate %q: %w", p.Name, err)
	}
	if p.Jobs <= 0 {
		return nil, fmt.Errorf("trace: profile %q has no jobs", p.Name)
	}
	meanGap := p.MeanService / (0.7 * 2)
	lambda := 1 / meanGap
	arrRNG, sizeRNG := sim.NewRNG(seed, 0), sim.NewRNG(seed, 1)
	if p.GapSCV <= 1 {
		src := workload.NewSource(workload.NewPoisson(lambda),
			workload.DistSizes{D: size}, arrRNG, sizeRNG)
		return newGenerated(p, seed, src.Take(p.Jobs)), nil
	}
	// Burst intensity scales with the profile's gap variability; the high
	// state emits bursts of ~150 jobs at burstFactor times the mean rate.
	burstFactor := math.Max(2, p.GapSCV/2)
	rateHi := burstFactor * lambda
	rateLo := 0.25 * lambda
	pHi := (lambda - rateLo) / (rateHi - rateLo)
	const jobsPerBurst = 150.0
	switchHi := rateHi / jobsPerBurst
	switchLo := switchHi * pHi / (1 - pHi)
	arr := workload.NewMMPP2(rateLo, rateHi, switchLo, switchHi)

	// With BurstSizeBand > 0, sizes within a burst come from a narrow
	// quantile band whose center is drawn fresh per burst: "many jobs with
	// similar runtimes arrive simultaneously" (section 6). Because band
	// centers are uniform, the marginal size distribution is approximately
	// unchanged — only the correlation is added.
	jobs := make([]workload.Job, p.Jobs)
	clock := 0.0
	wasHigh := false
	bandCenter := 0.0
	for i := range jobs {
		clock += arr.NextGap(arrRNG)
		var u float64
		if p.BurstSizeBand > 0 && arr.InHigh() {
			if !wasHigh {
				bandCenter = sizeRNG.Float64()
			}
			u = bandCenter + (sizeRNG.Float64()-0.5)*p.BurstSizeBand
			// Reflect at the boundaries so band mass is preserved.
			if u < 0 {
				u = -u
			}
			if u > 1 {
				u = 2 - u
			}
			wasHigh = true
		} else {
			u = sizeRNG.Float64()
			wasHigh = false
		}
		jobs[i] = workload.Job{ID: i, Arrival: clock, Size: size.Quantile(u)}
	}
	return newGenerated(p, seed, jobs), nil
}

// newGenerated packages a synthesized job slice with its generation
// recipe as the cache identity. Generate is a pure function of (profile,
// seed), so two traces with the same recipe identity hold identical jobs.
func newGenerated(p Profile, seed uint64, jobs []workload.Job) *Trace {
	t := &Trace{Name: p.Name, Jobs: jobs, id: Identity{Profile: p, Seed: seed}}
	t.meanSize = t.computeSizeMean()
	return t
}

// Len reports the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Sizes returns the job service requirements in trace order.
func (t *Trace) Sizes() []float64 {
	out := make([]float64, len(t.Jobs))
	for i, j := range t.Jobs {
		out[i] = j.Size
	}
	return out
}

// Gaps returns the interarrival gaps (first gap is the first job's arrival
// offset from time zero).
func (t *Trace) Gaps() []float64 {
	out := make([]float64, len(t.Jobs))
	prev := 0.0
	for i, j := range t.Jobs {
		out[i] = j.Arrival - prev
		prev = j.Arrival
	}
	return out
}

// Stats is one row of the paper's Table 1.
type Stats struct {
	Name      string
	Jobs      int
	Mean      float64
	Min       float64
	Max       float64
	SquaredCV float64
	// TailJobFraction is the fraction of jobs above the half-load cutoff:
	// the paper's "biggest 1.3% of jobs make up half the load" statistic.
	TailJobFraction float64
	// GapSCV is the squared coefficient of variation of interarrival gaps.
	GapSCV float64
}

// ComputeStats derives the Table 1 row from the trace. Size and gap
// moments stream in a single pass; the only allocation is the sorted size
// copy the tail statistic needs.
func (t *Trace) ComputeStats() Stats {
	var sizes, gaps stats.Stream
	sorted := make([]float64, len(t.Jobs))
	prev := 0.0
	for i, j := range t.Jobs {
		sizes.Add(j.Size)
		gaps.Add(j.Arrival - prev)
		prev = j.Arrival
		sorted[i] = j.Size
	}
	sort.Float64s(sorted)
	// Find the smallest job fraction whose biggest jobs hold half the load.
	total := sizes.Sum()
	cum := 0.0
	tailFrac := 1.0
	for i := len(sorted) - 1; i >= 0; i-- {
		cum += sorted[i]
		if cum >= total/2 {
			tailFrac = float64(len(sorted)-i) / float64(len(sorted))
			break
		}
	}
	return Stats{
		Name:            t.Name,
		Jobs:            len(t.Jobs),
		Mean:            sizes.Mean(),
		Min:             sizes.Min(),
		Max:             sizes.Max(),
		SquaredCV:       sizes.SquaredCV(),
		TailJobFraction: tailFrac,
		GapSCV:          gaps.SquaredCV(),
	}
}

// SplitHalf partitions the trace into its first and second halves in
// arrival order — the paper's protocol: derive cutoffs on one half,
// evaluate on the other (section 4.1).
func (t *Trace) SplitHalf() (first, second *Trace) {
	mid := len(t.Jobs) / 2
	return t.derive(t.Name+"/derive", "/derive", t.Jobs[:mid]),
		t.derive(t.Name+"/evaluate", "/evaluate", t.Jobs[mid:])
}

// Truncate returns a trace holding the first n jobs without copying them
// (the child shares the parent's backing array, which the immutability
// contract makes safe). Unlike slicing Jobs in place, the child carries a
// correct derived identity and a freshly computed size mean. Returns t
// itself if n >= Len.
func (t *Trace) Truncate(n int) *Trace {
	if n >= len(t.Jobs) {
		return t
	}
	return t.derive(t.Name, fmt.Sprintf("[:%d]", n), t.Jobs[:n])
}

// SizeDistribution returns the empirical distribution of the trace's job
// sizes, for plugging into the analytic machinery.
func (t *Trace) SizeDistribution() *dist.Empirical {
	return dist.NewEmpirical(t.Sizes())
}

// JobsAtLoad re-times the trace's jobs so that a system of hosts unit-speed
// hosts runs at the target load, preserving size order. Poisson-mode draws
// fresh exponential gaps (sections 2-5); otherwise the trace's own gaps are
// rescaled (section 6). The result is a pure function of (trace content,
// load, hosts, poisson, seed) — the property internal/streamcache keys on;
// consumers that retime the same trace repeatedly should go through that
// cache instead of calling this directly. Panics if load is outside (0, 1).
func (t *Trace) JobsAtLoad(load float64, hosts int, poisson bool, seed uint64) []workload.Job {
	if load <= 0 || load >= 1 {
		panic(fmt.Sprintf("trace: load must be in (0,1), got %v", load))
	}
	mean := t.SizeMean()
	var arr workload.ArrivalProcess
	if poisson {
		arr = workload.NewPoisson(workload.RateForLoad(load, mean, hosts))
	} else {
		arr = workload.NewReplayForLoad(t.Gaps(), load, mean, hosts)
	}
	src := workload.NewSource(arr, workload.NewReplaySizes(t.Sizes()),
		sim.NewRNG(seed, 2), sim.NewRNG(seed, 3))
	return src.Take(len(t.Jobs))
}

// Validate sanity-checks the trace: positive sizes, non-decreasing
// arrivals.
func (t *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, j := range t.Jobs {
		if j.Size <= 0 {
			return fmt.Errorf("trace %q: job %d has size %v", t.Name, i, j.Size)
		}
		if j.Arrival < prev {
			return fmt.Errorf("trace %q: job %d arrives at %v before %v", t.Name, i, j.Arrival, prev)
		}
		prev = j.Arrival
	}
	return nil
}
