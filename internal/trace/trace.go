package trace

import (
	"fmt"
	"math"
	"sort"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// Trace is an ordered job log: arrival instants and service requirements.
type Trace struct {
	Name string
	Jobs []workload.Job
}

// Generate synthesizes a trace from a profile: Bounded Pareto service times
// and a bursty arrival process. Arrivals come from a two-state
// Markov-modulated Poisson process whose high state produces *sustained*
// bursts — tens of consecutive jobs well above the mean rate — matching the
// correlated submission waves of real supercomputing logs (the paper's
// section 6: "many jobs with similar runtimes arrive simultaneously").
// Sustained bursts, not just heavy-tailed gaps, are what eventually favor
// Least-Work-Left at very high load: during a long burst a size-interval
// policy strands the capacity of the hosts whose size class is quiet.
// The base arrival rate puts a nominal 2-host system at load 0.7;
// experiments rescale arrivals anyway (exactly as the paper rescales its
// trace interarrival times).
func Generate(p Profile, seed uint64) (*Trace, error) {
	size, err := p.SizeDist()
	if err != nil {
		return nil, fmt.Errorf("trace: generate %q: %w", p.Name, err)
	}
	if p.Jobs <= 0 {
		return nil, fmt.Errorf("trace: profile %q has no jobs", p.Name)
	}
	meanGap := p.MeanService / (0.7 * 2)
	lambda := 1 / meanGap
	arrRNG, sizeRNG := sim.NewRNG(seed, 0), sim.NewRNG(seed, 1)
	if p.GapSCV <= 1 {
		src := workload.NewSource(workload.NewPoisson(lambda),
			workload.DistSizes{D: size}, arrRNG, sizeRNG)
		return &Trace{Name: p.Name, Jobs: src.Take(p.Jobs)}, nil
	}
	// Burst intensity scales with the profile's gap variability; the high
	// state emits bursts of ~150 jobs at burstFactor times the mean rate.
	burstFactor := math.Max(2, p.GapSCV/2)
	rateHi := burstFactor * lambda
	rateLo := 0.25 * lambda
	pHi := (lambda - rateLo) / (rateHi - rateLo)
	const jobsPerBurst = 150.0
	switchHi := rateHi / jobsPerBurst
	switchLo := switchHi * pHi / (1 - pHi)
	arr := workload.NewMMPP2(rateLo, rateHi, switchLo, switchHi)

	// With BurstSizeBand > 0, sizes within a burst come from a narrow
	// quantile band whose center is drawn fresh per burst: "many jobs with
	// similar runtimes arrive simultaneously" (section 6). Because band
	// centers are uniform, the marginal size distribution is approximately
	// unchanged — only the correlation is added.
	jobs := make([]workload.Job, p.Jobs)
	clock := 0.0
	wasHigh := false
	bandCenter := 0.0
	for i := range jobs {
		clock += arr.NextGap(arrRNG)
		var u float64
		if p.BurstSizeBand > 0 && arr.InHigh() {
			if !wasHigh {
				bandCenter = sizeRNG.Float64()
			}
			u = bandCenter + (sizeRNG.Float64()-0.5)*p.BurstSizeBand
			// Reflect at the boundaries so band mass is preserved.
			if u < 0 {
				u = -u
			}
			if u > 1 {
				u = 2 - u
			}
			wasHigh = true
		} else {
			u = sizeRNG.Float64()
			wasHigh = false
		}
		jobs[i] = workload.Job{ID: i, Arrival: clock, Size: size.Quantile(u)}
	}
	return &Trace{Name: p.Name, Jobs: jobs}, nil
}

// Len reports the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Sizes returns the job service requirements in trace order.
func (t *Trace) Sizes() []float64 {
	out := make([]float64, len(t.Jobs))
	for i, j := range t.Jobs {
		out[i] = j.Size
	}
	return out
}

// Gaps returns the interarrival gaps (first gap is the first job's arrival
// offset from time zero).
func (t *Trace) Gaps() []float64 {
	out := make([]float64, len(t.Jobs))
	prev := 0.0
	for i, j := range t.Jobs {
		out[i] = j.Arrival - prev
		prev = j.Arrival
	}
	return out
}

// Stats is one row of the paper's Table 1.
type Stats struct {
	Name      string
	Jobs      int
	Mean      float64
	Min       float64
	Max       float64
	SquaredCV float64
	// TailJobFraction is the fraction of jobs above the half-load cutoff:
	// the paper's "biggest 1.3% of jobs make up half the load" statistic.
	TailJobFraction float64
	// GapSCV is the squared coefficient of variation of interarrival gaps.
	GapSCV float64
}

// ComputeStats derives the Table 1 row from the trace. Size and gap
// moments stream in a single pass; the only allocation is the sorted size
// copy the tail statistic needs.
func (t *Trace) ComputeStats() Stats {
	var sizes, gaps stats.Stream
	sorted := make([]float64, len(t.Jobs))
	prev := 0.0
	for i, j := range t.Jobs {
		sizes.Add(j.Size)
		gaps.Add(j.Arrival - prev)
		prev = j.Arrival
		sorted[i] = j.Size
	}
	sort.Float64s(sorted)
	// Find the smallest job fraction whose biggest jobs hold half the load.
	total := sizes.Sum()
	cum := 0.0
	tailFrac := 1.0
	for i := len(sorted) - 1; i >= 0; i-- {
		cum += sorted[i]
		if cum >= total/2 {
			tailFrac = float64(len(sorted)-i) / float64(len(sorted))
			break
		}
	}
	return Stats{
		Name:            t.Name,
		Jobs:            len(t.Jobs),
		Mean:            sizes.Mean(),
		Min:             sizes.Min(),
		Max:             sizes.Max(),
		SquaredCV:       sizes.SquaredCV(),
		TailJobFraction: tailFrac,
		GapSCV:          gaps.SquaredCV(),
	}
}

// SplitHalf partitions the trace into its first and second halves in
// arrival order — the paper's protocol: derive cutoffs on one half,
// evaluate on the other (section 4.1).
func (t *Trace) SplitHalf() (first, second *Trace) {
	mid := len(t.Jobs) / 2
	return &Trace{Name: t.Name + "/derive", Jobs: t.Jobs[:mid]},
		&Trace{Name: t.Name + "/evaluate", Jobs: t.Jobs[mid:]}
}

// SizeDistribution returns the empirical distribution of the trace's job
// sizes, for plugging into the analytic machinery.
func (t *Trace) SizeDistribution() *dist.Empirical {
	return dist.NewEmpirical(t.Sizes())
}

// JobsAtLoad re-times the trace's jobs so that a system of hosts unit-speed
// hosts runs at the target load, preserving size order. Poisson-mode draws
// fresh exponential gaps (sections 2-5); otherwise the trace's own gaps are
// rescaled (section 6). Panics if load is outside (0, 1).
func (t *Trace) JobsAtLoad(load float64, hosts int, poisson bool, seed uint64) []workload.Job {
	if load <= 0 || load >= 1 {
		panic(fmt.Sprintf("trace: load must be in (0,1), got %v", load))
	}
	var mean stats.Stream
	for _, j := range t.Jobs {
		mean.Add(j.Size)
	}
	var arr workload.ArrivalProcess
	if poisson {
		arr = workload.NewPoisson(workload.RateForLoad(load, mean.Mean(), hosts))
	} else {
		arr = workload.NewReplayForLoad(t.Gaps(), load, mean.Mean(), hosts)
	}
	src := workload.NewSource(arr, workload.NewReplaySizes(t.Sizes()),
		sim.NewRNG(seed, 2), sim.NewRNG(seed, 3))
	return src.Take(len(t.Jobs))
}

// Validate sanity-checks the trace: positive sizes, non-decreasing
// arrivals.
func (t *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, j := range t.Jobs {
		if j.Size <= 0 {
			return fmt.Errorf("trace %q: job %d has size %v", t.Name, i, j.Size)
		}
		if j.Arrival < prev {
			return fmt.Errorf("trace %q: job %d arrives at %v before %v", t.Name, i, j.Arrival, prev)
		}
		prev = j.Arrival
	}
	return nil
}
