package trace

import (
	"strings"
	"testing"
)

// FuzzReadSWF hammers the SWF parser with arbitrary input: it must never
// panic, and any trace it accepts must validate.
func FuzzReadSWF(f *testing.F) {
	f.Add("; comment\n1 100.0 -1 50.0 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("")
	f.Add("1 2 3 4\n")
	f.Add("1 1e308 -1 1e308 8\n")
	f.Add("1 -5 -1 10 8\n\n2 nan -1 inf 8\n")
	f.Add(strings.Repeat("; only comments\n", 10))
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadSWF("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejections are fine; panics are not
		}
		if tr.Len() == 0 {
			t.Fatal("accepted trace with zero jobs")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
	})
}
