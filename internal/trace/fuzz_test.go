package trace

import (
	"strings"
	"testing"

	"sita/internal/workload"
)

// FuzzReadSWF hammers the SWF parser with arbitrary input: it must never
// panic, and any trace it accepts must validate.
func FuzzReadSWF(f *testing.F) {
	f.Add("; comment\n1 100.0 -1 50.0 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("")
	f.Add("1 2 3 4\n")
	f.Add("1 1e308 -1 1e308 8\n")
	f.Add("1 -5 -1 10 8\n\n2 nan -1 inf 8\n")
	f.Add(strings.Repeat("; only comments\n", 10))
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadSWF("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejections are fine; panics are not
		}
		if tr.Len() == 0 {
			t.Fatal("accepted trace with zero jobs")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
	})
}

// applyOp decodes one fuzz byte into a pure derivation and applies it.
// The decoding only ever produces legal arguments (Thin panics on k < 1,
// for instance); the point is to explore arbitrary derivation chains,
// not argument validation.
func applyOp(t *Trace, b byte) *Trace {
	arg := int(b >> 3)
	switch b % 6 {
	case 0:
		return t.Head(arg * 7 % (t.Len() + 1))
	case 1:
		lo := float64(arg)
		return t.FilterSize(lo, lo+500)
	case 2:
		return t.Thin(1 + arg%4)
	case 3:
		first, _ := t.SplitHalf()
		return first
	case 4:
		_, second := t.SplitHalf()
		return second
	default:
		return t.Truncate(arg * 11 % (t.Len() + 2))
	}
}

// FuzzIdentityDerivation drives arbitrary derivation-op chains against
// the trace cache-identity contract: Generate is a pure function of
// (profile, seed) and every derivation is a pure function of its
// parent, so replaying the same chain from the same recipe must
// reproduce both the identity and the exact job content — the property
// internal/streamcache keys on. Literals without identity must stay
// identity-less through any chain.
func FuzzIdentityDerivation(f *testing.F) {
	f.Add(uint64(1), false, []byte{0})
	f.Add(uint64(7), true, []byte{1, 2, 3, 4, 5})
	f.Add(uint64(42), false, []byte{255, 0, 17, 129, 64, 33})
	f.Add(uint64(0), true, []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, bursty bool, ops []byte) {
		if len(ops) > 12 {
			ops = ops[:12] // bound chain length, not coverage
		}
		p := C90()
		p.Jobs = 200
		if !bursty {
			p.GapSCV = 1 // exercise the plain-Poisson generation path too
		}
		a, err := Generate(p, seed)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		b, err := Generate(p, seed)
		if err != nil {
			t.Fatalf("Generate (replay): %v", err)
		}
		// A literal with the same jobs but no construction recipe rides
		// along: its identity must remain zero through the whole chain.
		lit := &Trace{Name: "literal", Jobs: a.Jobs}
		for _, op := range ops {
			parentID, _ := a.Identity()
			a, b, lit = applyOp(a, op), applyOp(b, op), applyOp(lit, op)

			ida, oka := a.Identity()
			idb, okb := b.Identity()
			if !oka || !okb || ida != idb {
				t.Fatalf("op %d: replayed chain diverged: %+v (ok=%v) vs %+v (ok=%v)", op, ida, oka, idb, okb)
			}
			if ida.Profile != parentID.Profile || ida.Seed != parentID.Seed || ida.Anon != parentID.Anon {
				t.Fatalf("op %d: derivation rewrote the recipe: parent %+v, child %+v", op, parentID, ida)
			}
			if !strings.HasPrefix(ida.Ops, parentID.Ops) {
				t.Fatalf("op %d: child ops %q does not extend parent ops %q", op, ida.Ops, parentID.Ops)
			}
			if litID, ok := lit.Identity(); ok || !litID.IsZero() {
				t.Fatalf("op %d: literal trace acquired identity %+v", op, litID)
			}
			if a.Len() != b.Len() {
				t.Fatalf("op %d: equal identity, different lengths %d vs %d", op, a.Len(), b.Len())
			}
			for i := range a.Jobs {
				if a.Jobs[i] != b.Jobs[i] {
					t.Fatalf("op %d: equal identity %+v but job %d differs: %+v vs %+v", op, ida, i, a.Jobs[i], b.Jobs[i])
				}
			}
			//lint:allow floateq the precomputed mean must be bit-identical to a fresh streaming pass
			if a.SizeMean() != recomputeMean(a.Jobs) {
				t.Fatalf("op %d: precomputed size mean %v != fresh pass %v", op, a.SizeMean(), recomputeMean(a.Jobs))
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("op %d: derived trace invalid: %v", op, err)
			}
		}
	})
}

// recomputeMean streams the mean size exactly as computeSizeMean does.
func recomputeMean(jobs []workload.Job) float64 {
	tmp := Trace{Jobs: jobs}
	return tmp.computeSizeMean()
}
