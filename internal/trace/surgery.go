package trace

import (
	"fmt"
	"sort"

	"sita/internal/workload"
)

// Trace-surgery helpers: the operations needed to massage real job logs
// into experiment inputs — select job classes, take prefixes, and merge
// streams from multiple sources (e.g. two submission queues feeding one
// distributed server).

// Head returns a new trace holding the first n jobs (all jobs if n exceeds
// the length).
func (t *Trace) Head(n int) *Trace {
	if n > len(t.Jobs) {
		n = len(t.Jobs)
	}
	jobs := make([]workload.Job, n)
	copy(jobs, t.Jobs[:n])
	return t.derive(t.Name, fmt.Sprintf("/head%d", n), jobs)
}

// FilterSize returns a new trace with only the jobs whose size lies in
// (lo, hi], preserving arrival order.
func (t *Trace) FilterSize(lo, hi float64) *Trace {
	var jobs []workload.Job
	for _, j := range t.Jobs {
		if j.Size > lo && j.Size <= hi {
			jobs = append(jobs, j)
		}
	}
	return t.derive(fmt.Sprintf("%s[size in (%g, %g]]", t.Name, lo, hi),
		fmt.Sprintf("/size(%g,%g]", lo, hi), jobs)
}

// TimeSpan reports the first and last arrival instants (0, 0 for an empty
// trace).
func (t *Trace) TimeSpan() (first, last float64) {
	if len(t.Jobs) == 0 {
		return 0, 0
	}
	return t.Jobs[0].Arrival, t.Jobs[len(t.Jobs)-1].Arrival
}

// Merge interleaves several traces by arrival time into one stream, as when
// multiple submission front-ends feed one distributed server. Job IDs are
// renumbered in merged order.
func Merge(name string, traces ...*Trace) *Trace {
	total := 0
	for _, t := range traces {
		total += len(t.Jobs)
	}
	jobs := make([]workload.Job, 0, total)
	for _, t := range traces {
		jobs = append(jobs, t.Jobs...)
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	for i := range jobs {
		jobs[i].ID = i
	}
	// A merge of several parents has no single derivation chain; New
	// assigns a fresh anonymous identity.
	return New(name, jobs)
}

// Thin returns a new trace keeping every k-th job (k >= 1), a quick way to
// reduce load while preserving the marginal size distribution and the
// large-scale arrival pattern. Panics if k < 1.
func (t *Trace) Thin(k int) *Trace {
	if k < 1 {
		panic(fmt.Sprintf("trace: thin factor must be >= 1, got %d", k))
	}
	var jobs []workload.Job
	for i := 0; i < len(t.Jobs); i += k {
		jobs = append(jobs, t.Jobs[i])
	}
	return t.derive(fmt.Sprintf("%s/thin%d", t.Name, k), fmt.Sprintf("/thin%d", k), jobs)
}
