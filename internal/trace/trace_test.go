package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sita/internal/dist"
	"sita/internal/stats"
	"sita/internal/workload"
)

func TestProfilesLookup(t *testing.T) {
	for _, name := range []string{"psc-c90", "psc-j90", "ctc-sp2"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("profile name %q, want %q", p.Name, name)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestProfileSizeDistMatchesTargets(t *testing.T) {
	for _, p := range []Profile{C90(), J90(), CTC()} {
		d := p.MustSizeDist()
		if math.Abs(d.Moment(1)-p.MeanService)/p.MeanService > 1e-6 {
			t.Errorf("%s: fitted mean %v, want %v", p.Name, d.Moment(1), p.MeanService)
		}
		lo, hi := d.Support()
		if lo != p.MinService || hi != p.MaxService {
			t.Errorf("%s: support [%v, %v], want [%v, %v]", p.Name, lo, hi, p.MinService, p.MaxService)
		}
	}
}

func TestC90ProfileIsHeavyTailed(t *testing.T) {
	d := C90().MustSizeDist()
	if scv := dist.SquaredCV(d); scv < 20 {
		t.Fatalf("C90 C^2 = %v, want very high (paper: 43 on the raw log)", scv)
	}
	// The biggest ~1% of jobs carry half the load.
	c := d.LoadCutoff(0.5)
	frac := 1 - d.CDF(c)
	if frac > 0.05 {
		t.Fatalf("half-load tail fraction = %v, want < 5%%", frac)
	}
}

func TestCTCProfileLowerVariance(t *testing.T) {
	c90 := dist.SquaredCV(C90().MustSizeDist())
	ctc := dist.SquaredCV(CTC().MustSizeDist())
	if ctc >= c90/4 {
		t.Fatalf("CTC C^2 = %v should be far below C90's %v (12-hour kill limit)", ctc, c90)
	}
}

func TestGenerateTrace(t *testing.T) {
	p := C90()
	p.Jobs = 5000
	tr, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("len = %d, want 5000", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if math.Abs(st.Mean-p.MeanService)/p.MeanService > 0.5 {
		t.Errorf("trace mean %v far from target %v", st.Mean, p.MeanService)
	}
	if st.Min < p.MinService || st.Max > p.MaxService {
		t.Errorf("trace min/max [%v, %v] outside profile [%v, %v]",
			st.Min, st.Max, p.MinService, p.MaxService)
	}
	if st.GapSCV < 2 {
		t.Errorf("trace gap C^2 = %v, want bursty", st.GapSCV)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := J90()
	p.Jobs = 500
	a, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("same seed, different job %d", i)
		}
	}
	c, err := Generate(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Jobs[0] == c.Jobs[0] && a.Jobs[1] == c.Jobs[1] {
		t.Fatal("different seeds produced identical prefix")
	}
}

func TestGenerateErrors(t *testing.T) {
	p := C90()
	p.Jobs = 0
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("expected error for empty profile")
	}
	p = C90()
	p.MeanService = p.MaxService * 2
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("expected error for infeasible profile")
	}
}

func TestComputeStatsTailFraction(t *testing.T) {
	p := C90()
	p.Jobs = 30000
	tr, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	// Paper: ~1.3% of jobs carry half the load; synthetic should be a small
	// single-digit percentage.
	if st.TailJobFraction > 0.05 || st.TailJobFraction <= 0 {
		t.Fatalf("tail job fraction = %v, want (0, 0.05]", st.TailJobFraction)
	}
	if st.SquaredCV < 10 {
		t.Fatalf("size C^2 = %v, want high", st.SquaredCV)
	}
}

func TestSplitHalf(t *testing.T) {
	p := CTC()
	p.Jobs = 1001
	tr, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.SplitHalf()
	if a.Len() != 500 || b.Len() != 501 {
		t.Fatalf("split %d/%d, want 500/501", a.Len(), b.Len())
	}
	if a.Jobs[len(a.Jobs)-1].Arrival > b.Jobs[0].Arrival {
		t.Fatal("halves out of order")
	}
}

func TestJobsAtLoadPoisson(t *testing.T) {
	p := C90()
	p.Jobs = 20000
	tr, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.JobsAtLoad(0.6, 2, true, 9)
	if len(jobs) != tr.Len() {
		t.Fatalf("len = %d, want %d", len(jobs), tr.Len())
	}
	totalWork := 0.0
	for _, j := range jobs {
		totalWork += j.Size
	}
	horizon := jobs[len(jobs)-1].Arrival
	realized := totalWork / (horizon * 2)
	if math.Abs(realized-0.6) > 0.1 {
		t.Fatalf("realized load %v, want ~0.6", realized)
	}
	// Sizes preserved in trace order.
	for i := range jobs {
		if jobs[i].Size != tr.Jobs[i].Size {
			t.Fatalf("size order not preserved at %d", i)
		}
	}
}

func TestJobsAtLoadScaledGapsStayBursty(t *testing.T) {
	p := C90()
	p.Jobs = 20000
	tr, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.JobsAtLoad(0.6, 2, false, 9)
	scaled := &Trace{Name: "scaled", Jobs: jobs}
	if got := scaled.ComputeStats().GapSCV; got < 2 {
		t.Fatalf("scaled gaps C^2 = %v, want bursty", got)
	}
}

func TestJobsAtLoadPanicsOnBadLoad(t *testing.T) {
	tr := &Trace{Name: "x", Jobs: nil}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.JobsAtLoad(1.5, 2, true, 1)
}

func TestSWFRoundTrip(t *testing.T) {
	p := CTC()
	p.Jobs = 300
	tr, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(tr, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("roundtrip len %d, want %d", back.Len(), tr.Len())
	}
	for i := range tr.Jobs {
		if math.Abs(back.Jobs[i].Size-tr.Jobs[i].Size) > 0.01 {
			t.Fatalf("job %d size %v != %v", i, back.Jobs[i].Size, tr.Jobs[i].Size)
		}
		if math.Abs(back.Jobs[i].Arrival-tr.Jobs[i].Arrival) > 0.01 {
			t.Fatalf("job %d arrival %v != %v", i, back.Jobs[i].Arrival, tr.Jobs[i].Arrival)
		}
	}
}

func TestReadSWFSkipsCommentsAndCancelled(t *testing.T) {
	in := `; header comment
; another

1 100.0 -1 50.0 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 150.0 -1 -1 8 -1 -1 8 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
3 200.0 -1 75.0 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	tr, err := ReadSWF("test", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2 (cancelled job dropped)", tr.Len())
	}
	if tr.Jobs[0].Size != 50 || tr.Jobs[1].Size != 75 {
		t.Fatalf("sizes %v, %v", tr.Jobs[0].Size, tr.Jobs[1].Size)
	}
}

func TestReadSWFErrors(t *testing.T) {
	cases := []string{
		"1 2", // too few fields
		"1 x -1 50 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1",  // bad submit
		"1 10 -1 zz 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1", // bad runtime
		"; only comments\n", // no jobs
		"2 50 -1 10 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n1 40 -1 10 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1", // unordered
	}
	for i, c := range cases {
		if _, err := ReadSWF("bad", strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestValidate(t *testing.T) {
	tr := &Trace{Name: "v", Jobs: []workload.Job{
		{ID: 0, Arrival: 1, Size: 10},
		{ID: 1, Arrival: 2, Size: 20},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := &Trace{Name: "b", Jobs: []workload.Job{{ID: 0, Arrival: 5, Size: -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
	unordered := &Trace{Name: "u", Jobs: []workload.Job{
		{ID: 0, Arrival: 5, Size: 1},
		{ID: 1, Arrival: 4, Size: 1},
	}}
	if err := unordered.Validate(); err == nil {
		t.Fatal("unordered arrivals accepted")
	}
}

func TestBurstSizeCorrelationKnob(t *testing.T) {
	p := C90()
	p.Jobs = 20000

	indep, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	p.BurstSizeBand = 0.15
	corr, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Use log sizes: raw heavy-tailed sizes make the ACF estimator useless.
	logs := func(tr *Trace) []float64 {
		out := make([]float64, tr.Len())
		for i, j := range tr.Jobs {
			out[i] = math.Log(j.Size)
		}
		return out
	}
	acfIndep := stats.Autocorrelation(logs(indep), 1)
	acfCorr := stats.Autocorrelation(logs(corr), 1)
	if math.Abs(acfIndep) > 0.05 {
		t.Errorf("independent sizes lag-1 acf = %v, want ~0", acfIndep)
	}
	if acfCorr < 0.3 {
		t.Errorf("burst-correlated sizes lag-1 acf = %v, want substantial", acfCorr)
	}
	// The correlation must not distort the marginal much.
	mi, mc := indep.ComputeStats(), corr.ComputeStats()
	if math.Abs(mi.Mean-mc.Mean)/mi.Mean > 0.25 {
		t.Errorf("correlated mean %v drifted from independent %v", mc.Mean, mi.Mean)
	}
}

func TestHead(t *testing.T) {
	tr := &Trace{Name: "h", Jobs: []workload.Job{
		{ID: 0, Arrival: 1, Size: 1},
		{ID: 1, Arrival: 2, Size: 2},
		{ID: 2, Arrival: 3, Size: 3},
	}}
	h := tr.Head(2)
	if h.Len() != 2 || h.Jobs[1].Size != 2 {
		t.Fatalf("head wrong: %+v", h.Jobs)
	}
	// Copy, not alias.
	h.Jobs[0].Size = 99
	if tr.Jobs[0].Size == 99 {
		t.Fatal("head aliases the original")
	}
	if tr.Head(10).Len() != 3 {
		t.Fatal("over-length head should clamp")
	}
}

func TestFilterSize(t *testing.T) {
	tr := &Trace{Name: "f", Jobs: []workload.Job{
		{Arrival: 1, Size: 5},
		{Arrival: 2, Size: 10},
		{Arrival: 3, Size: 50},
	}}
	f := tr.FilterSize(5, 10) // (5, 10]: only the size-10 job
	if f.Len() != 1 || f.Jobs[0].Size != 10 {
		t.Fatalf("filter wrong: %+v", f.Jobs)
	}
}

func TestMergeTraces(t *testing.T) {
	a := &Trace{Name: "a", Jobs: []workload.Job{
		{Arrival: 1, Size: 1}, {Arrival: 5, Size: 1},
	}}
	b := &Trace{Name: "b", Jobs: []workload.Job{
		{Arrival: 2, Size: 2}, {Arrival: 4, Size: 2},
	}}
	m := Merge("ab", a, b)
	if m.Len() != 4 {
		t.Fatalf("merged len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	wantArr := []float64{1, 2, 4, 5}
	for i, j := range m.Jobs {
		if j.Arrival != wantArr[i] {
			t.Fatalf("merge order wrong at %d: %+v", i, m.Jobs)
		}
		if j.ID != i {
			t.Fatalf("merge did not renumber: %+v", j)
		}
	}
	first, last := m.TimeSpan()
	if first != 1 || last != 5 {
		t.Fatalf("timespan [%v, %v]", first, last)
	}
}

func TestThin(t *testing.T) {
	tr := &Trace{Name: "t"}
	for i := 0; i < 10; i++ {
		tr.Jobs = append(tr.Jobs, workload.Job{ID: i, Arrival: float64(i), Size: 1})
	}
	th := tr.Thin(3)
	if th.Len() != 4 { // indices 0,3,6,9
		t.Fatalf("thin len = %d, want 4", th.Len())
	}
	if th.Jobs[1].Arrival != 3 {
		t.Fatalf("thin picked wrong jobs: %+v", th.Jobs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("thin(0) should panic")
		}
	}()
	tr.Thin(0)
}

func TestEmptyTimeSpan(t *testing.T) {
	tr := &Trace{Name: "e"}
	if a, b := tr.TimeSpan(); a != 0 || b != 0 {
		t.Fatal("empty timespan should be zeros")
	}
}

func TestReadSWFRejectsNonFiniteValues(t *testing.T) {
	for _, line := range []string{
		"1 nan -1 10 8",
		"1 10 -1 inf 8",
		"1 +Inf -1 10 8",
	} {
		if _, err := ReadSWF("bad", strings.NewReader(line)); err == nil {
			t.Errorf("accepted non-finite field: %q", line)
		}
	}
}
