// Package trace provides the workload substrate for the reproduction: the
// calibrated profiles of the paper's three job logs (PSC Cray C90, PSC Cray
// J90, CTC IBM SP2), a synthetic trace generator, Standard Workload Format
// (SWF) reading and writing so real logs can be substituted in, and the
// Table 1 statistics.
//
// Substitution note: the paper's PSC accounting logs are proprietary and
// the numeric Table 1 did not survive in the source text available to this
// reproduction. Profiles below are therefore calibrated from the facts the
// paper states in prose — C90 jobs span seconds to ~2.2e6 s with a very
// high squared coefficient of variation, the biggest ~1.3% of jobs carry
// half the load (section 4.3), J90 behaves "virtually identical" (appendix
// B), and CTC jobs are capped at 12 hours, giving "considerably lower
// variance" (section 2.1). Every experiment depends on these shape facts,
// not on the raw job counts, so the reproduction preserves the paper's
// qualitative results; EXPERIMENTS.md records the realized statistics next
// to the paper's claims.
package trace

import (
	"fmt"

	"sita/internal/dist"
)

// Profile describes one supercomputing workload: the statistics the trace
// generator targets, and the burstiness of the raw arrival process used in
// the non-Poisson experiments (section 6).
type Profile struct {
	Name        string
	Description string
	// MinService, MaxService, MeanService calibrate the Bounded Pareto
	// service-time distribution (seconds).
	MinService  float64
	MaxService  float64
	MeanService float64
	// Jobs is the nominal trace length (the paper's year-long logs hold
	// tens of thousands of jobs).
	Jobs int
	// GapSCV is the squared coefficient of variation of raw interarrival
	// gaps; > 1 makes the replayed arrival process bursty.
	GapSCV float64
	// BurstSizeBand, when positive, correlates job sizes within arrival
	// bursts: all jobs of one burst draw from a quantile band of this
	// width ("many jobs with similar runtimes arrive simultaneously",
	// section 6). Zero keeps sizes i.i.d., which is what the paper's
	// Poisson-arrival sections assume; the Figure 7 driver turns this on.
	BurstSizeBand float64
}

// C90 models the PSC Cray C90 log (the paper's primary workload).
func C90() Profile {
	return Profile{
		Name:        "psc-c90",
		Description: "PSC Cray C90 batch jobs, Jan-Dec 1997 (calibrated reconstruction)",
		MinService:  60,
		MaxService:  2.2e6,
		MeanService: 4500,
		Jobs:        55000,
		GapSCV:      18,
	}
}

// J90 models the PSC Cray J90 log (appendix B); slightly smaller jobs and
// machine, same qualitative shape.
func J90() Profile {
	return Profile{
		Name:        "psc-j90",
		Description: "PSC Cray J90 batch jobs, Jan-Dec 1997 (calibrated reconstruction)",
		MinService:  30,
		MaxService:  1.2e6,
		MeanService: 3000,
		Jobs:        35000,
		GapSCV:      18,
	}
}

// CTC models the Cornell Theory Center IBM SP2 log (appendix C): users are
// told jobs are killed after 12 hours, so the tail is truncated at 43200 s
// and the variance is far lower.
func CTC() Profile {
	return Profile{
		Name:        "ctc-sp2",
		Description: "CTC IBM SP2 8-processor batch jobs, Jul 1996 - May 1997 (calibrated reconstruction)",
		MinService:  30,
		MaxService:  43200,
		MeanService: 4000,
		Jobs:        60000,
		GapSCV:      12,
	}
}

// Profiles returns all built-in profiles keyed by name.
func Profiles() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{C90(), J90(), CTC()} {
		out[p.Name] = p
	}
	return out
}

// ByName looks up a built-in profile.
func ByName(name string) (Profile, error) {
	p, ok := Profiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown profile %q (have c90=%q, j90=%q, ctc=%q)",
			name, C90().Name, J90().Name, CTC().Name)
	}
	return p, nil
}

// SizeDist returns the Bounded Pareto service-time distribution calibrated
// to the profile's min, max and mean.
func (p Profile) SizeDist() (dist.BoundedPareto, error) {
	return dist.FitBoundedParetoMean(p.MeanService, p.MinService, p.MaxService)
}

// MustSizeDist is SizeDist for the built-in profiles, which are known to be
// feasible.
func (p Profile) MustSizeDist() dist.BoundedPareto {
	d, err := p.SizeDist()
	if err != nil {
		panic(fmt.Sprintf("trace: profile %q: %v", p.Name, err))
	}
	return d
}
