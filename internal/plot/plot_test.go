package plot

import (
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	out := Chart([]Series{
		{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "flat", X: []float64{0, 3}, Y: []float64{1.5, 1.5}},
	}, Options{Title: "demo", XLabel: "x", YLabel: "y"})
	for _, want := range []string{"demo", "* linear", "o flat", "x: x, y: y (linear)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Axis bounds rendered.
	if !strings.Contains(out, "3") || !strings.Contains(out, "0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestChartLogY(t *testing.T) {
	out := Chart([]Series{
		{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1, 100, 10000}},
	}, Options{LogY: true, YLabel: "slowdown", XLabel: "load"})
	if !strings.Contains(out, "(log)") {
		t.Errorf("log scale not flagged:\n%s", out)
	}
	if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
		t.Errorf("log axis top label missing:\n%s", out)
	}
}

func TestChartLogDropsNonPositive(t *testing.T) {
	out := Chart([]Series{
		{Name: "s", X: []float64{1, 2, 3}, Y: []float64{-5, 0, 100}},
	}, Options{LogY: true})
	if strings.Contains(out, "no drawable points") {
		t.Errorf("positive point should survive:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart(nil, Options{})
	if !strings.Contains(out, "no drawable points") {
		t.Errorf("empty chart should say so, got:\n%s", out)
	}
	out = Chart([]Series{{Name: "nan", X: []float64{1}, Y: []float64{0}}}, Options{LogY: true})
	if !strings.Contains(out, "no drawable points") {
		t.Errorf("all-dropped chart should say so, got:\n%s", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: both axes degenerate; must not panic or divide by zero.
	out := Chart([]Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, Options{})
	if !strings.Contains(out, "* pt") {
		t.Errorf("single point chart missing legend:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into chart:\n%s", out)
	}
}

func TestChartMarkersCycle(t *testing.T) {
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{
			Name: strings.Repeat("s", i+1),
			X:    []float64{0, 1}, Y: []float64{float64(i), float64(i + 1)},
		})
	}
	out := Chart(series, Options{})
	// 10 series with 8 markers: the first marker repeats; chart must list
	// all 10 legend lines.
	if got := strings.Count(out, "\n"); got < 25 {
		t.Errorf("expected tall chart+legend, got %d lines", got)
	}
}

func TestChartDimensions(t *testing.T) {
	out := Chart([]Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
		Options{Width: 30, Height: 8})
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
			if len(l) > 11+1+30+2 {
				t.Errorf("plot line too wide: %q", l)
			}
		}
	}
	if plotLines != 8 {
		t.Errorf("plot height = %d, want 8", plotLines)
	}
}
