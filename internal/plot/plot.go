// Package plot renders series as ASCII line charts, so the experiment
// drivers can produce figure-shaped output (the paper reports figures, not
// tables) on any terminal without external dependencies.
//
// Rendering is a pure function of its inputs: the same series yield the
// same bytes (series are drawn in slice order, never map order), so chart
// output can be golden-tested like every other table. The package is
// stateless and safe for concurrent use.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Options controls chart geometry and scaling.
type Options struct {
	// Width and Height of the plotting area in characters (defaults 64x20).
	Width, Height int
	// LogY plots log10(y); non-positive values are dropped. Slowdown spans
	// orders of magnitude, so this is the default for the figure drivers.
	LogY bool
	// Title, XLabel and YLabel annotate the chart.
	Title, XLabel, YLabel string
}

// markers assigns one rune per series, cycling if necessary.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series into a multi-line string. Series points are
// connected by linear interpolation in screen space. Returns an error
// message string when there is nothing to draw rather than panicking, so a
// partially-failed experiment still prints.
func Chart(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 20
	}

	// Collect bounds over drawable points.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if opt.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(y) || math.IsInf(y, 0) || math.IsNaN(s.X[i]) {
				continue
			}
			usable++
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	if usable == 0 {
		return "(no drawable points)\n"
	}
	//lint:allow floateq degenerate-axis guard before dividing by the range
	if xMax == xMin {
		xMax = xMin + 1
	}
	//lint:allow floateq degenerate-axis guard before dividing by the range
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - xMin) / (xMax - xMin) * float64(opt.Width-1)))
		return clamp(c, 0, opt.Width-1)
	}
	toRow := func(y float64) int {
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(opt.Height-1)))
		return clamp(r, 0, opt.Height-1)
	}

	for si, s := range series {
		mark := markers[si%len(markers)]
		prevSet := false
		var prevC, prevR int
		for i := range s.X {
			y := s.Y[i]
			if opt.LogY {
				if y <= 0 {
					prevSet = false
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(y) || math.IsInf(y, 0) {
				prevSet = false
				continue
			}
			c, r := toCol(s.X[i]), toRow(y)
			if prevSet {
				drawLine(grid, prevC, prevR, c, r)
			}
			grid[r][c] = mark
			prevC, prevR, prevSet = c, r, true
		}
	}

	var sb strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opt.Title)
	}
	yTop, yBot := yMax, yMin
	if opt.LogY {
		yTop, yBot = math.Pow(10, yMax), math.Pow(10, yMin)
	}
	axisLabel := func(v float64) string { return fmt.Sprintf("%10.4g", v) }
	for r := 0; r < opt.Height; r++ {
		label := strings.Repeat(" ", 10)
		switch r {
		case 0:
			label = axisLabel(yTop)
		case opt.Height - 1:
			label = axisLabel(yBot)
		case (opt.Height - 1) / 2:
			mid := (yMax + yMin) / 2
			if opt.LogY {
				mid = math.Pow(10, mid)
			}
			label = axisLabel(mid)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", opt.Width))
	fmt.Fprintf(&sb, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 10), opt.Width/2, xMin, opt.Width-opt.Width/2, xMax)
	if opt.XLabel != "" || opt.YLabel != "" {
		scale := "linear"
		if opt.LogY {
			scale = "log"
		}
		fmt.Fprintf(&sb, "%s  x: %s, y: %s (%s)\n", strings.Repeat(" ", 10), opt.XLabel, opt.YLabel, scale)
	}
	for si, s := range series {
		fmt.Fprintf(&sb, "%s  %c %s\n", strings.Repeat(" ", 10), markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

// drawLine rasterizes a straight segment with Bresenham's algorithm using a
// dimmer joint character so data points stay visible.
func drawLine(grid [][]byte, c0, r0, c1, r1 int) {
	joint := byte('.')
	dc := abs(c1 - c0)
	dr := -abs(r1 - r0)
	sc, sr := 1, 1
	if c0 > c1 {
		sc = -1
	}
	if r0 > r1 {
		sr = -1
	}
	err := dc + dr
	c, r := c0, r0
	for {
		if grid[r][c] == ' ' {
			grid[r][c] = joint
		}
		if c == c1 && r == r1 {
			return
		}
		e2 := 2 * err
		if e2 >= dr {
			err += dr
			c += sc
		}
		if e2 <= dc {
			err += dc
			r += sr
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
