// Package profiling wires the runtime/pprof CPU and heap profiles into
// command-line tools. Commands expose -cpuprofile/-memprofile flags and
// delegate here, so the flag semantics (empty path = disabled, heap
// profile preceded by a GC) stay consistent across binaries.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a function
// that stops the profile and closes the file. An empty path disables
// profiling: the returned stop is a no-op and no file is touched.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path, forcing a garbage collection
// first so the profile reflects live objects rather than collectable
// garbage. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
