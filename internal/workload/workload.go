// Package workload models the input side of a distributed server: arrival
// processes (Poisson, renewal, Markov-modulated, trace replay), job-size
// sources, and the Source type that pairs them into a stream of jobs at a
// target system load.
//
// Determinism contract: every sampling path draws only from the sim.RNG
// streams handed in at construction, so the same (profile, seed, load,
// hosts) tuple always yields the identical job stream — the property the
// experiment harness, the golden record tests, and the simd response
// cache all build on. Sources are single-goroutine: each simulation cell
// builds its own, and nothing here is safe for concurrent use.
package workload

import (
	"fmt"
	"math/rand/v2"

	"sita/internal/dist"
	"sita/internal/sim"
)

// Job is one batch job: an arrival instant and a CPU service requirement in
// seconds. Hosts are identical and jobs get a host exclusively, so the
// service requirement fully determines execution time. Job aliases the
// event kernel's value type so typed event payloads (sim.Ev) can carry a
// job without boxing or an import cycle.
type Job = sim.Job

// ArrivalProcess produces successive interarrival gaps. Implementations may
// be stateful (MMPP, replay); a fresh process must be built per simulation
// run.
type ArrivalProcess interface {
	// NextGap returns the time until the next arrival.
	NextGap(rng *rand.Rand) float64
}

// SizeSource produces successive job service requirements.
type SizeSource interface {
	// NextSize returns the next job's service requirement.
	NextSize(rng *rand.Rand) float64
}

// RateForLoad returns the arrival rate that drives a system of hosts
// identical unit-speed hosts at the given load when mean job size is
// meanSize: load = lambda * meanSize / hosts.
// Panics unless load, meanSize, and hosts are positive.
func RateForLoad(load, meanSize float64, hosts int) float64 {
	if load <= 0 || meanSize <= 0 || hosts <= 0 {
		panic(fmt.Sprintf("workload: invalid load=%v meanSize=%v hosts=%d", load, meanSize, hosts))
	}
	return load * float64(hosts) / meanSize
}

// Source generates the job stream fed to the dispatcher. Arrival gaps and
// job sizes come from independent RNG streams so that experiments can vary
// one dimension without disturbing the other.
type Source struct {
	arrivals ArrivalProcess
	sizes    SizeSource
	arrRNG   *rand.Rand
	sizeRNG  *rand.Rand
	clock    float64
	nextID   int
}

// NewSource pairs an arrival process with a size source. The two RNGs must
// be distinct generators (typically sim.NewRNG(seed, 0) and
// sim.NewRNG(seed, 1)). Panics if any component is nil.
func NewSource(arrivals ArrivalProcess, sizes SizeSource, arrRNG, sizeRNG *rand.Rand) *Source {
	if arrivals == nil || sizes == nil || arrRNG == nil || sizeRNG == nil {
		panic("workload: NewSource requires non-nil components")
	}
	return &Source{arrivals: arrivals, sizes: sizes, arrRNG: arrRNG, sizeRNG: sizeRNG}
}

// Next returns the next job in arrival order.
func (s *Source) Next() Job {
	s.clock += s.arrivals.NextGap(s.arrRNG)
	j := Job{ID: s.nextID, Arrival: s.clock, Size: s.sizes.NextSize(s.sizeRNG)}
	s.nextID++
	return j
}

// Take returns the next n jobs.
func (s *Source) Take(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = s.Next()
	}
	return jobs
}

// DistSizes adapts a probability distribution into a SizeSource.
type DistSizes struct {
	D dist.Distribution
}

// NextSize samples the distribution.
func (d DistSizes) NextSize(rng *rand.Rand) float64 { return d.D.Sample(rng) }

// ReplaySizes cycles through a fixed list of job sizes in order — the
// trace-driven mode. The order is preserved because size autocorrelation is
// part of what distinguishes a trace from an i.i.d. sample.
type ReplaySizes struct {
	sizes []float64
	pos   int
}

// NewReplaySizes copies the size list. Panics if it is empty.
func NewReplaySizes(sizes []float64) *ReplaySizes {
	if len(sizes) == 0 {
		panic("workload: replay needs at least one size")
	}
	cp := make([]float64, len(sizes))
	copy(cp, sizes)
	return &ReplaySizes{sizes: cp}
}

// NextSize returns the next size in trace order, wrapping at the end.
func (r *ReplaySizes) NextSize(*rand.Rand) float64 {
	s := r.sizes[r.pos]
	r.pos++
	if r.pos == len(r.sizes) {
		r.pos = 0
	}
	return s
}

// ShuffledSizes samples sizes uniformly at random (with replacement) from a
// fixed list: the i.i.d. bootstrap of a trace, isolating the marginal
// distribution from its autocorrelation.
type ShuffledSizes struct {
	sizes []float64
}

// NewShuffledSizes copies the size list. Panics if it is empty.
func NewShuffledSizes(sizes []float64) *ShuffledSizes {
	if len(sizes) == 0 {
		panic("workload: shuffle needs at least one size")
	}
	cp := make([]float64, len(sizes))
	copy(cp, sizes)
	return &ShuffledSizes{sizes: cp}
}

// NextSize draws one size uniformly with replacement.
func (s *ShuffledSizes) NextSize(rng *rand.Rand) float64 {
	return s.sizes[rng.IntN(len(s.sizes))]
}
