package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sita/internal/dist"
)

// Poisson is the Poisson arrival process with the given rate: i.i.d.
// exponential gaps, squared coefficient of variation 1. This is the paper's
// default arrival model (sections 2–5).
type Poisson struct {
	Rate float64
}

// NewPoisson validates the rate. Panics if rate <= 0.
func NewPoisson(rate float64) Poisson {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: poisson rate must be positive, got %v", rate))
	}
	return Poisson{Rate: rate}
}

// NextGap draws an exponential interarrival time.
func (p Poisson) NextGap(rng *rand.Rand) float64 { return rng.ExpFloat64() / p.Rate }

// Renewal draws i.i.d. gaps from an arbitrary distribution. With lognormal
// gaps of high squared coefficient of variation it produces the bursty
// arrival streams of section 6.
type Renewal struct {
	Gap dist.Distribution
}

// NextGap samples the gap distribution.
func (r Renewal) NextGap(rng *rand.Rand) float64 { return r.Gap.Sample(rng) }

// MMPP2 is a two-state Markov-modulated Poisson process: arrivals follow a
// Poisson process whose rate switches between RateLo and RateHi; the process
// stays in each state for an exponential sojourn. It captures the
// "many jobs with similar runtimes arrive simultaneously" burstiness the
// paper calls out, while remaining fully parameterized.
type MMPP2 struct {
	RateLo, RateHi     float64 // arrival rate in each state
	SwitchLo, SwitchHi float64 // rate of leaving the lo / hi state
	inHi               bool
	residual           float64 // time left in the current state
}

// NewMMPP2 validates parameters and starts in the low state.
// Panics unless all four rates are positive.
func NewMMPP2(rateLo, rateHi, switchLo, switchHi float64) *MMPP2 {
	if rateLo < 0 || rateHi <= 0 || switchLo <= 0 || switchHi <= 0 {
		panic(fmt.Sprintf("workload: invalid MMPP2 parameters %v %v %v %v",
			rateLo, rateHi, switchLo, switchHi))
	}
	return &MMPP2{RateLo: rateLo, RateHi: rateHi, SwitchLo: switchLo, SwitchHi: switchHi}
}

// MeanRate reports the long-run arrival rate: the stationary mix of the two
// state rates. State lo has stationary probability switchHi/(switchLo+switchHi).
func (m *MMPP2) MeanRate() float64 {
	pLo := m.SwitchHi / (m.SwitchLo + m.SwitchHi)
	return pLo*m.RateLo + (1-pLo)*m.RateHi
}

// InHigh reports whether the modulating chain is currently in the
// high-rate (burst) state. Callers can use this to correlate other job
// attributes — e.g. sizes — with bursts.
func (m *MMPP2) InHigh() bool { return m.inHi }

// NextGap advances the modulating chain and returns the next gap.
func (m *MMPP2) NextGap(rng *rand.Rand) float64 {
	elapsed := 0.0
	for {
		rate, leave := m.RateLo, m.SwitchLo
		if m.inHi {
			rate, leave = m.RateHi, m.SwitchHi
		}
		if m.residual <= 0 {
			m.residual = rng.ExpFloat64() / leave
		}
		var gap float64
		if rate > 0 {
			gap = rng.ExpFloat64() / rate
		} else {
			gap = m.residual + 1 // force a state switch
		}
		if gap <= m.residual {
			m.residual -= gap
			return elapsed + gap
		}
		// State expires before the next arrival: burn the residual and
		// re-draw in the new state (memorylessness makes this exact).
		elapsed += m.residual
		m.residual = 0
		m.inHi = !m.inHi
	}
}

// Replay cycles through a fixed list of interarrival gaps multiplied by
// Scale. This is the paper's section-6 protocol: use the trace's own
// (bursty) interarrival sequence, rescaled to produce the desired system
// load.
type Replay struct {
	gaps  []float64
	scale float64
	pos   int
}

// NewReplay copies the gap list; scale multiplies every gap.
// Panics if gaps is empty or scale is not positive.
func NewReplay(gaps []float64, scale float64) *Replay {
	if len(gaps) == 0 {
		panic("workload: replay needs at least one gap")
	}
	if scale <= 0 {
		panic(fmt.Sprintf("workload: replay scale must be positive, got %v", scale))
	}
	cp := make([]float64, len(gaps))
	copy(cp, gaps)
	return &Replay{gaps: cp, scale: scale}
}

// NewReplayForLoad builds a Replay whose scale drives hosts unit-speed
// hosts at the target load given the mean job size: the raw gaps' mean is
// rescaled so that meanGap = meanSize / (load * hosts).
// Panics if the gaps have a non-positive mean.
func NewReplayForLoad(gaps []float64, load, meanSize float64, hosts int) *Replay {
	sum := 0.0
	for _, g := range gaps {
		sum += g
	}
	meanGap := sum / float64(len(gaps))
	if meanGap <= 0 {
		panic("workload: replay gaps must have positive mean")
	}
	targetGap := meanSize / (load * float64(hosts))
	return NewReplay(gaps, targetGap/meanGap)
}

// NextGap returns the next scaled gap, wrapping at the end of the list.
func (r *Replay) NextGap(*rand.Rand) float64 {
	g := r.gaps[r.pos] * r.scale
	r.pos++
	if r.pos == len(r.gaps) {
		r.pos = 0
	}
	return g
}

// Scale reports the gap multiplier in use.
func (r *Replay) Scale() float64 { return r.scale }

// Diurnal is a non-homogeneous Poisson process with sinusoidal intensity
// lambda(t) = MeanRate * (1 + Amplitude*sin(2*pi*t/Period)), generated by
// thinning. Supercomputing submission rates follow strong day/night and
// weekday cycles; this process reproduces that regular burstiness (as
// opposed to MMPP2's random bursts).
type Diurnal struct {
	MeanRate  float64
	Amplitude float64 // in [0, 1)
	Period    float64
	clock     float64
}

// NewDiurnal validates parameters. Panics unless meanRate and period are
// positive and 0 <= amplitude <= 1.
func NewDiurnal(meanRate, amplitude, period float64) *Diurnal {
	if meanRate <= 0 || amplitude < 0 || amplitude >= 1 || period <= 0 {
		panic(fmt.Sprintf("workload: invalid diurnal rate=%v amp=%v period=%v",
			meanRate, amplitude, period))
	}
	return &Diurnal{MeanRate: meanRate, Amplitude: amplitude, Period: period}
}

// NextGap thins a homogeneous Poisson process at the peak rate.
func (d *Diurnal) NextGap(rng *rand.Rand) float64 {
	peak := d.MeanRate * (1 + d.Amplitude)
	start := d.clock
	for {
		d.clock += rng.ExpFloat64() / peak
		rate := d.MeanRate * (1 + d.Amplitude*math.Sin(2*math.Pi*d.clock/d.Period))
		if rng.Float64() <= rate/peak {
			return d.clock - start
		}
	}
}
