package workload

import (
	"math"
	"testing"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/stats"
)

func TestRateForLoad(t *testing.T) {
	// load 0.5, mean size 10, 2 hosts -> lambda = 0.5*2/10 = 0.1
	if got := RateForLoad(0.5, 10, 2); got != 0.1 {
		t.Fatalf("rate = %v, want 0.1", got)
	}
}

func TestRateForLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RateForLoad(0, 1, 1)
}

func TestPoissonGapMean(t *testing.T) {
	p := NewPoisson(2)
	rng := sim.NewRNG(1, 0)
	var s stats.Stream
	for i := 0; i < 100000; i++ {
		s.Add(p.NextGap(rng))
	}
	if math.Abs(s.Mean()-0.5)/0.5 > 0.02 {
		t.Fatalf("poisson mean gap = %v, want 0.5", s.Mean())
	}
	if math.Abs(s.SquaredCV()-1) > 0.05 {
		t.Fatalf("poisson gap C^2 = %v, want 1", s.SquaredCV())
	}
}

func TestSourceArrivalsIncrease(t *testing.T) {
	src := NewSource(NewPoisson(1), DistSizes{D: dist.NewExponential(5)},
		sim.NewRNG(7, 0), sim.NewRNG(7, 1))
	jobs := src.Take(1000)
	prev := 0.0
	for i, j := range jobs {
		if j.ID != i {
			t.Fatalf("job ID %d at position %d", j.ID, i)
		}
		if j.Arrival < prev {
			t.Fatalf("arrival times not monotone at %d", i)
		}
		if j.Size <= 0 {
			t.Fatalf("nonpositive size %v", j.Size)
		}
		prev = j.Arrival
	}
}

func TestSourceDeterminism(t *testing.T) {
	mk := func() *Source {
		return NewSource(NewPoisson(1), DistSizes{D: dist.NewExponential(5)},
			sim.NewRNG(3, 0), sim.NewRNG(3, 1))
	}
	a, b := mk().Take(100), mk().Take(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different jobs at %d", i)
		}
	}
}

func TestSourceLoadTargeting(t *testing.T) {
	// Drive 2 hosts at load 0.7 with mean-10 sizes; realized load should be
	// close to target.
	const hosts = 2
	d := dist.NewBoundedPareto(1.5, 1, 1e4)
	rate := RateForLoad(0.7, d.Moment(1), hosts)
	src := NewSource(NewPoisson(rate), DistSizes{D: d},
		sim.NewRNG(11, 0), sim.NewRNG(11, 1))
	jobs := src.Take(200000)
	totalWork := 0.0
	for _, j := range jobs {
		totalWork += j.Size
	}
	horizon := jobs[len(jobs)-1].Arrival
	realized := totalWork / (horizon * hosts)
	if math.Abs(realized-0.7) > 0.05 {
		t.Fatalf("realized load = %v, want ~0.7", realized)
	}
}

func TestReplaySizesCycle(t *testing.T) {
	r := NewReplaySizes([]float64{1, 2, 3})
	var got []float64
	for i := 0; i < 7; i++ {
		got = append(got, r.NextSize(nil))
	}
	want := []float64{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order %v, want %v", got, want)
		}
	}
}

func TestShuffledSizesMarginal(t *testing.T) {
	s := NewShuffledSizes([]float64{2, 4})
	rng := sim.NewRNG(5, 0)
	counts := map[float64]int{}
	for i := 0; i < 10000; i++ {
		counts[s.NextSize(rng)]++
	}
	if counts[2] < 4500 || counts[4] < 4500 {
		t.Fatalf("shuffled sampling biased: %v", counts)
	}
}

func TestRenewalLognormalBurstiness(t *testing.T) {
	g := dist.NewLognormalFromMeanSCV(1, 25)
	r := Renewal{Gap: g}
	rng := sim.NewRNG(13, 0)
	var s stats.Stream
	for i := 0; i < 300000; i++ {
		s.Add(r.NextGap(rng))
	}
	if math.Abs(s.Mean()-1) > 0.1 {
		t.Fatalf("renewal mean gap = %v, want 1", s.Mean())
	}
	if s.SquaredCV() < 5 {
		t.Fatalf("renewal gap C^2 = %v, want bursty (>5)", s.SquaredCV())
	}
}

func TestMMPP2MeanRate(t *testing.T) {
	m := NewMMPP2(0.1, 10, 0.01, 0.1)
	// Stationary P(lo) = 0.1/(0.11) ~ 0.909
	want := (0.1/0.11)*0.1 + (0.01/0.11)*10
	if math.Abs(m.MeanRate()-want) > 1e-12 {
		t.Fatalf("mean rate = %v, want %v", m.MeanRate(), want)
	}
	rng := sim.NewRNG(17, 0)
	n := 200000
	total := 0.0
	for i := 0; i < n; i++ {
		g := m.NextGap(rng)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		total += g
	}
	realized := float64(n) / total
	if math.Abs(realized-want)/want > 0.1 {
		t.Fatalf("realized rate = %v, want %v", realized, want)
	}
}

func TestMMPP2IsBursty(t *testing.T) {
	m := NewMMPP2(0.05, 20, 0.02, 0.2)
	rng := sim.NewRNG(19, 0)
	var s stats.Stream
	for i := 0; i < 100000; i++ {
		s.Add(m.NextGap(rng))
	}
	if s.SquaredCV() < 2 {
		t.Fatalf("MMPP2 gap C^2 = %v, want > 2 (bursty)", s.SquaredCV())
	}
}

func TestReplayScaling(t *testing.T) {
	r := NewReplay([]float64{1, 3}, 2)
	if g := r.NextGap(nil); g != 2 {
		t.Fatalf("gap = %v, want 2", g)
	}
	if g := r.NextGap(nil); g != 6 {
		t.Fatalf("gap = %v, want 6", g)
	}
	if g := r.NextGap(nil); g != 2 {
		t.Fatalf("wrap gap = %v, want 2", g)
	}
}

func TestReplayForLoad(t *testing.T) {
	gaps := []float64{1, 2, 3, 4} // mean 2.5
	// Want load 0.5 on 2 hosts with mean size 10: target gap = 10/(0.5*2) = 10.
	r := NewReplayForLoad(gaps, 0.5, 10, 2)
	if math.Abs(r.Scale()-4) > 1e-12 {
		t.Fatalf("scale = %v, want 4", r.Scale())
	}
}

func TestReplayValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewReplay(nil, 1) },
		func() { NewReplay([]float64{1}, 0) },
		func() { NewReplaySizes(nil) },
		func() { NewShuffledSizes(nil) },
		func() { NewPoisson(-1) },
		func() { NewMMPP2(-1, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSourceNilComponentsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSource(nil, nil, nil, nil)
}

func TestDiurnalMeanRateAndCycle(t *testing.T) {
	d := NewDiurnal(2, 0.8, 100)
	rng := sim.NewRNG(31, 0)
	n := 200000
	total := 0.0
	for i := 0; i < n; i++ {
		g := d.NextGap(rng)
		if g <= 0 {
			t.Fatalf("non-positive gap %v", g)
		}
		total += g
	}
	realized := float64(n) / total
	if math.Abs(realized-2)/2 > 0.05 {
		t.Fatalf("realized rate %v, want ~2", realized)
	}
}

func TestDiurnalBurstierThanPoisson(t *testing.T) {
	d := NewDiurnal(1, 0.9, 1000)
	rng := sim.NewRNG(33, 0)
	var s stats.Stream
	for i := 0; i < 100000; i++ {
		s.Add(d.NextGap(rng))
	}
	if s.SquaredCV() <= 1.05 {
		t.Fatalf("diurnal gap C^2 = %v, want > 1 (cyclic burstiness)", s.SquaredCV())
	}
}

func TestDiurnalValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewDiurnal(0, 0.5, 10) },
		func() { NewDiurnal(1, 1.0, 10) },
		func() { NewDiurnal(1, 0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
