package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestMixtureMoments(t *testing.T) {
	// 50/50 mixture of Det(2) and Det(6): mean 4, E[X^2] = (4+36)/2 = 20.
	m := NewMixture(
		[]Distribution{Deterministic{Value: 2}, Deterministic{Value: 6}},
		[]float64{1, 1},
	)
	if got := m.Moment(1); got != 4 {
		t.Fatalf("mean = %v, want 4", got)
	}
	if got := m.Moment(2); got != 20 {
		t.Fatalf("E[X^2] = %v, want 20", got)
	}
	if got := m.Moment(-1); got != (0.5/2 + 0.5/6) {
		t.Fatalf("E[1/X] = %v", got)
	}
}

func TestMixtureCDFAndQuantile(t *testing.T) {
	m := NewMixture(
		[]Distribution{NewUniform(0, 1), NewUniform(10, 11)},
		[]float64{0.25, 0.75},
	)
	if got := m.CDF(1); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("CDF(1) = %v, want 0.25", got)
	}
	if got := m.CDF(10.5); !almostEqual(got, 0.25+0.75*0.5, 1e-12) {
		t.Fatalf("CDF(10.5) = %v", got)
	}
	if q := m.Quantile(0.25 + 0.75*0.5); math.Abs(q-10.5) > 1e-6 {
		t.Fatalf("quantile = %v, want 10.5", q)
	}
	lo, hi := m.Support()
	if lo != 0 || hi != 11 {
		t.Fatalf("support [%v, %v]", lo, hi)
	}
}

func TestMixtureSampling(t *testing.T) {
	m := NewMixture(
		[]Distribution{NewExponential(1), NewExponential(100)},
		[]float64{0.8, 0.2},
	)
	rng := rand.New(rand.NewPCG(5, 6))
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += m.Sample(rng)
	}
	want := 0.8*1 + 0.2*100
	if math.Abs(sum/n-want)/want > 0.03 {
		t.Fatalf("sample mean %v, want %v", sum/n, want)
	}
}

func TestMixturePartialMoments(t *testing.T) {
	m := NewMixture(
		[]Distribution{NewBoundedPareto(1.5, 1, 100), NewBoundedPareto(1.5, 100, 10000)},
		[]float64{0.9, 0.1},
	)
	whole := m.Moment(1)
	split := m.PartialMoment(1, 0, 100) + m.PartialMoment(1, 100, 10000)
	if !almostEqual(whole, split, 1e-9) {
		t.Fatalf("partial moments %v don't reassemble %v", split, whole)
	}
}

func TestMixtureDivergentMoment(t *testing.T) {
	m := NewMixture(
		[]Distribution{Deterministic{Value: 1}, NewExponential(1)},
		[]float64{0.5, 0.5},
	)
	if !math.IsInf(m.Moment(-1), 1) {
		t.Fatal("E[1/X] should diverge through the exponential component")
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	m := NewMixture(
		[]Distribution{Deterministic{Value: 1}, Deterministic{Value: 2}},
		[]float64{2, 6},
	)
	if !almostEqual(m.Weights[0], 0.25, 1e-12) {
		t.Fatalf("weights not normalized: %v", m.Weights)
	}
}

func TestMixtureValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Distribution{Deterministic{Value: 1}}, []float64{-1}) },
		func() { NewMixture([]Distribution{nil}, []float64{1}) },
		func() { NewMixture([]Distribution{Deterministic{Value: 1}}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
