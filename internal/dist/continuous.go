package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Exponential is the exponential distribution with the given rate
// (mean 1/Rate). Its squared coefficient of variation is exactly 1, making
// it the light-tailed reference point in the paper's analysis.
type Exponential struct {
	Rate float64
}

// NewExponential builds an exponential distribution with the given mean.
// Panics if mean is not positive.
func NewExponential(mean float64) Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: exponential mean must be positive, got %v", mean))
	}
	return Exponential{Rate: 1 / mean}
}

// Sample draws an exponential variate.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() / e.Rate }

// CDF reports P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Moment reports E[X^j] = Gamma(j+1)/Rate^j, divergent for j <= -1.
func (e Exponential) Moment(j float64) float64 {
	if j <= -1 {
		return math.Inf(1)
	}
	return math.Gamma(j+1) / math.Pow(e.Rate, j)
}

// Support reports (0, +Inf).
func (e Exponential) Support() (float64, float64) { return 0, math.Inf(1) }

// Quantile inverts the CDF.
func (e Exponential) Quantile(p float64) float64 {
	return -math.Log1p(-p) / e.Rate
}

// Deterministic is the degenerate distribution concentrated at Value.
type Deterministic struct {
	Value float64
}

// Sample returns Value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// CDF is the unit step at Value.
func (d Deterministic) CDF(x float64) float64 {
	if x >= d.Value {
		return 1
	}
	return 0
}

// Moment reports Value^j.
func (d Deterministic) Moment(j float64) float64 { return math.Pow(d.Value, j) }

// Support reports the single point.
func (d Deterministic) Support() (float64, float64) { return d.Value, d.Value }

// Quantile returns Value for every p.
func (d Deterministic) Quantile(float64) float64 { return d.Value }

// PartialMoment reports Value^j when Value lies in (a, b], else 0.
func (d Deterministic) PartialMoment(j, a, b float64) float64 {
	if d.Value > a && d.Value <= b {
		return math.Pow(d.Value, j)
	}
	return 0
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform validates the bounds and returns the distribution.
// Panics unless lo < hi.
func NewUniform(lo, hi float64) Uniform {
	if hi <= lo {
		panic(fmt.Sprintf("dist: uniform needs lo < hi, got [%v, %v]", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws uniformly on [Lo, Hi].
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// CDF reports P(X <= x).
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Moment reports E[X^j] = (Hi^{j+1} - Lo^{j+1}) / ((j+1)(Hi-Lo)) with the
// logarithmic special case at j = -1. Moments with j <= -1 diverge when the
// support touches zero.
func (u Uniform) Moment(j float64) float64 {
	if u.Lo <= 0 && j < 0 {
		return math.Inf(1)
	}
	//lint:allow floateq exact dispatch at the removable singularity j = -1
	if j == -1 {
		return math.Log(u.Hi/u.Lo) / (u.Hi - u.Lo)
	}
	return (math.Pow(u.Hi, j+1) - math.Pow(u.Lo, j+1)) / ((j + 1) * (u.Hi - u.Lo))
}

// Support reports [Lo, Hi].
func (u Uniform) Support() (float64, float64) { return u.Lo, u.Hi }

// Quantile inverts the CDF.
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

// Lognormal is the distribution of exp(N(Mu, Sigma^2)). It is a convenient
// bursty interarrival-time model: its squared coefficient of variation
// exp(Sigma^2) - 1 can be dialed arbitrarily high.
type Lognormal struct {
	Mu, Sigma float64
}

// NewLognormalFromMeanSCV builds the lognormal with the given mean and
// squared coefficient of variation. Panics unless both are positive.
func NewLognormalFromMeanSCV(mean, scv float64) Lognormal {
	if mean <= 0 || scv <= 0 {
		panic(fmt.Sprintf("dist: lognormal needs positive mean and scv, got %v, %v", mean, scv))
	}
	sigma2 := math.Log(1 + scv)
	mu := math.Log(mean) - sigma2/2
	return Lognormal{Mu: mu, Sigma: math.Sqrt(sigma2)}
}

// Sample draws a lognormal variate.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// CDF reports P(X <= x) via the error function.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Moment reports E[X^j] = exp(j*Mu + j^2*Sigma^2/2); finite for every j.
func (l Lognormal) Moment(j float64) float64 {
	return math.Exp(j*l.Mu + j*j*l.Sigma*l.Sigma/2)
}

// Support reports (0, +Inf).
func (l Lognormal) Support() (float64, float64) { return 0, math.Inf(1) }

// Quantile inverts the CDF via the normal quantile.
func (l Lognormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*normQuantile(p))
}

// Weibull is the Weibull distribution with the given Shape and Scale.
// Shape < 1 gives a heavy-ish tail, shape = 1 the exponential.
type Weibull struct {
	Shape, Scale float64
}

// Sample draws by inverse CDF.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	return w.Quantile(rng.Float64())
}

// CDF reports P(X <= x).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// Moment reports E[X^j] = Scale^j * Gamma(1 + j/Shape), divergent for
// j <= -Shape.
func (w Weibull) Moment(j float64) float64 {
	if j <= -w.Shape {
		return math.Inf(1)
	}
	return math.Pow(w.Scale, j) * math.Gamma(1+j/w.Shape)
}

// Support reports (0, +Inf).
func (w Weibull) Support() (float64, float64) { return 0, math.Inf(1) }

// Quantile inverts the CDF.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
}

// normQuantile is the Beasley-Springer-Moro inverse standard normal CDF.
// Duplicated from internal/stats to keep dist dependency-free; both are
// tested against each other.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
