// Package dist implements the probability distributions the paper's
// workloads and analysis depend on: exponential, uniform, deterministic,
// Pareto, Bounded Pareto, hyperexponential, lognormal, Weibull, and
// empirical distributions.
//
// Beyond sampling, the queueing analysis in internal/queueing needs raw
// moments E[X^j] for j in {-2, -1, 1, 2, 3} and *partial* moments
// E[X^j ; a < X <= b] (the moments of a size distribution restricted to a
// SITA size interval). Every distribution here provides closed-form moments
// where they exist, with a numeric fallback for the rest.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Distribution is a continuous positive distribution with enough structure
// for both simulation (Sample) and M/G/1 analysis (moments, CDF).
type Distribution interface {
	// Sample draws one variate using the provided generator.
	Sample(rng *rand.Rand) float64
	// CDF reports P(X <= x).
	CDF(x float64) float64
	// Moment reports the raw moment E[X^j]. j may be fractional or
	// negative. Distributions return math.Inf(1) for divergent moments.
	Moment(j float64) float64
	// Support reports the smallest and largest attainable values
	// (possibly +Inf).
	Support() (lo, hi float64)
}

// Quantiler is implemented by distributions with an (exact or numeric)
// inverse CDF.
type Quantiler interface {
	// Quantile returns inf{x : CDF(x) >= p} for p in [0, 1].
	Quantile(p float64) float64
}

// PartialMomenter is implemented by distributions with closed-form partial
// moments; PartialMoment is used by the SITA per-host analysis.
type PartialMomenter interface {
	// PartialMoment reports E[X^j ; a < X <= b], the unnormalized
	// contribution of the interval (a, b] to the j-th raw moment.
	PartialMoment(j, a, b float64) float64
}

// Mean is shorthand for d.Moment(1).
func Mean(d Distribution) float64 { return d.Moment(1) }

// SquaredCV reports the squared coefficient of variation
// Var(X)/E[X]^2 = E[X^2]/E[X]^2 - 1.
func SquaredCV(d Distribution) float64 {
	m1 := d.Moment(1)
	if m1 == 0 {
		return 0
	}
	m2 := d.Moment(2)
	if math.IsInf(m2, 1) {
		return math.Inf(1)
	}
	return m2/(m1*m1) - 1
}

// Prob reports P(a < X <= b).
func Prob(d Distribution, a, b float64) float64 {
	if b < a {
		return 0
	}
	p := d.CDF(b) - d.CDF(a)
	if p < 0 { // guard tiny negative values from floating-point noise
		return 0
	}
	return p
}

// PartialMoment reports E[X^j ; a < X <= b] for any distribution, preferring
// a closed form and falling back to numeric integration over the quantile
// function: E[X^j ; a<X<=b] = integral_{F(a)}^{F(b)} Q(u)^j du.
// Panics if d supports neither PartialMomenter nor Quantiler.
func PartialMoment(d Distribution, j, a, b float64) float64 {
	if b <= a {
		return 0
	}
	if pm, ok := d.(PartialMomenter); ok {
		return pm.PartialMoment(j, a, b)
	}
	q, ok := d.(Quantiler)
	if !ok {
		panic(fmt.Sprintf("dist: %T supports neither PartialMoment nor Quantile", d))
	}
	ua, ub := d.CDF(a), d.CDF(b)
	if ub <= ua {
		return 0
	}
	return integrate(func(u float64) float64 {
		return math.Pow(q.Quantile(u), j)
	}, ua, ub, 1e-10)
}

// Truncated is the conditional distribution of an inner distribution
// restricted to the interval (Lo, Hi]. SITA host i sees exactly such a
// distribution. The zero value is not useful; build with NewTruncated.
type Truncated struct {
	inner  Distribution
	lo, hi float64
	mass   float64 // P(lo < X <= hi)
}

// NewTruncated builds the conditional distribution X | lo < X <= hi.
// It panics if the interval has (numerically) zero probability mass, which
// would indicate an infeasible SITA cutoff.
func NewTruncated(d Distribution, lo, hi float64) *Truncated {
	mass := Prob(d, lo, hi)
	if mass <= 0 {
		panic(fmt.Sprintf("dist: truncation (%g, %g] has zero mass", lo, hi))
	}
	return &Truncated{inner: d, lo: lo, hi: hi, mass: mass}
}

// Mass reports P(lo < X <= hi) under the inner distribution: the fraction of
// jobs routed to this size interval.
func (t *Truncated) Mass() float64 { return t.mass }

// Bounds reports the truncation interval.
func (t *Truncated) Bounds() (lo, hi float64) { return t.lo, t.hi }

// Sample draws by inverse-CDF within the interval when the inner
// distribution exposes a quantile function, else by rejection.
func (t *Truncated) Sample(rng *rand.Rand) float64 {
	if q, ok := t.inner.(Quantiler); ok {
		ua := t.inner.CDF(t.lo)
		u := ua + rng.Float64()*t.mass
		return q.Quantile(u)
	}
	for i := 0; ; i++ {
		x := t.inner.Sample(rng)
		if x > t.lo && x <= t.hi {
			return x
		}
		if i > 1_000_000 {
			//lint:allow panicpolicy invariant: NewTruncated guarantees the interval has mass, so an exhausted rejection loop means the distribution is inconsistent
			panic("dist: truncated rejection sampling failed to hit interval")
		}
	}
}

// CDF reports the conditional CDF.
func (t *Truncated) CDF(x float64) float64 {
	switch {
	case x <= t.lo:
		return 0
	case x >= t.hi:
		return 1
	default:
		return Prob(t.inner, t.lo, x) / t.mass
	}
}

// Moment reports the conditional raw moment E[X^j | lo < X <= hi].
func (t *Truncated) Moment(j float64) float64 {
	return PartialMoment(t.inner, j, t.lo, t.hi) / t.mass
}

// Support reports the truncation interval.
func (t *Truncated) Support() (lo, hi float64) { return t.lo, t.hi }

// Quantile inverts the conditional CDF when the inner distribution allows.
// Panics if the inner distribution has no quantile function.
func (t *Truncated) Quantile(p float64) float64 {
	q, ok := t.inner.(Quantiler)
	if !ok {
		panic(fmt.Sprintf("dist: truncated inner %T has no quantile", t.inner))
	}
	ua := t.inner.CDF(t.lo)
	return q.Quantile(ua + p*t.mass)
}

// integrate is an adaptive Simpson integrator with a recursion-depth guard.
// It is accurate enough for the smooth quantile-power integrands used here.
func integrate(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpson(f, a, b, fa, fb, fm, whole, tol, 50)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol*(1+math.Abs(whole)) {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}
