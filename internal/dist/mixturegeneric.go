package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Mixture is a finite probabilistic mixture of arbitrary component
// distributions: with probability Weights[i] a variate comes from
// Components[i]. Real supercomputing workloads are often multimodal (a
// spike of debug runs plus a production body plus an elephant tail); a
// mixture models that directly while keeping moments and CDF exact.
type Mixture struct {
	Components []Distribution
	Weights    []float64
	cum        []float64
}

// NewMixture validates and normalizes the weights.
// Panics if the slices mismatch or are empty, a component is nil, a
// weight is negative, or the weights sum to zero.
func NewMixture(components []Distribution, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic(fmt.Sprintf("dist: mixture needs matching non-empty components, got %d, %d",
			len(components), len(weights)))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("dist: mixture weight %d negative: %v", i, w))
		}
		if components[i] == nil {
			panic(fmt.Sprintf("dist: mixture component %d nil", i))
		}
		total += w
	}
	if total <= 0 {
		panic("dist: mixture weights sum to zero")
	}
	m := &Mixture{
		Components: make([]Distribution, len(components)),
		Weights:    make([]float64, len(weights)),
		cum:        make([]float64, len(weights)),
	}
	copy(m.Components, components)
	cum := 0.0
	for i, w := range weights {
		m.Weights[i] = w / total
		cum += m.Weights[i]
		m.cum[i] = cum
	}
	return m
}

// Sample picks a component, then samples it.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	idx := sort.SearchFloat64s(m.cum, u)
	if idx >= len(m.Components) {
		idx = len(m.Components) - 1
	}
	return m.Components[idx].Sample(rng)
}

// CDF is the weighted component CDF.
func (m *Mixture) CDF(x float64) float64 {
	sum := 0.0
	for i, c := range m.Components {
		sum += m.Weights[i] * c.CDF(x)
	}
	return sum
}

// Moment is the weighted component moment; divergent if any weighted
// component moment diverges.
func (m *Mixture) Moment(j float64) float64 {
	sum := 0.0
	for i, c := range m.Components {
		v := c.Moment(j)
		if math.IsInf(v, 1) && m.Weights[i] > 0 {
			return math.Inf(1)
		}
		sum += m.Weights[i] * v
	}
	return sum
}

// PartialMoment is the weighted component partial moment.
func (m *Mixture) PartialMoment(j, a, b float64) float64 {
	sum := 0.0
	for i, c := range m.Components {
		sum += m.Weights[i] * PartialMoment(c, j, a, b)
	}
	return sum
}

// Support is the union hull of the component supports.
func (m *Mixture) Support() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, c := range m.Components {
		cLo, cHi := c.Support()
		lo = math.Min(lo, cLo)
		hi = math.Max(hi, cHi)
	}
	return lo, hi
}

// Quantile inverts the mixture CDF by bisection (the CDF is nondecreasing
// and cheap).
func (m *Mixture) Quantile(p float64) float64 {
	lo, hi := m.Support()
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return hi
	}
	if math.IsInf(hi, 1) {
		hi = math.Max(1, lo)
		for m.CDF(hi) < p {
			hi *= 2
		}
	}
	if lo <= 0 {
		lo = 0
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
