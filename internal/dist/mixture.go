package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Hyperexponential is a probabilistic mixture of exponentials: with
// probability Probs[i] a variate is drawn from Exponential(Rates[i]).
// Mixtures of exponentials reach any squared coefficient of variation >= 1
// while staying analytically tractable, so they are the classic stand-in for
// moderately variable service times.
type Hyperexponential struct {
	Probs []float64
	Rates []float64
	cum   []float64
}

// NewHyperexponential validates and normalizes the phase parameters.
// Panics if the slices mismatch or are empty, a phase is invalid, or the
// probabilities sum to zero.
func NewHyperexponential(probs, rates []float64) *Hyperexponential {
	if len(probs) == 0 || len(probs) != len(rates) {
		panic(fmt.Sprintf("dist: hyperexponential needs matching non-empty phases, got %d, %d", len(probs), len(rates)))
	}
	total := 0.0
	for i, p := range probs {
		if p < 0 || rates[i] <= 0 {
			panic(fmt.Sprintf("dist: hyperexponential phase %d invalid (p=%v, rate=%v)", i, p, rates[i]))
		}
		total += p
	}
	if total <= 0 {
		panic("dist: hyperexponential probabilities sum to zero")
	}
	h := &Hyperexponential{
		Probs: make([]float64, len(probs)),
		Rates: make([]float64, len(rates)),
		cum:   make([]float64, len(probs)),
	}
	cum := 0.0
	for i := range probs {
		h.Probs[i] = probs[i] / total
		h.Rates[i] = rates[i]
		cum += h.Probs[i]
		h.cum[i] = cum
	}
	return h
}

// NewH2Balanced builds the two-phase hyperexponential with the given mean
// and squared coefficient of variation (>= 1) using balanced means
// (p1/mu1 = p2/mu2), the standard two-moment fit. Panics if scv < 1,
// which a hyperexponential cannot represent.
func NewH2Balanced(mean, scv float64) *Hyperexponential {
	if scv < 1 {
		panic(fmt.Sprintf("dist: H2 requires scv >= 1, got %v", scv))
	}
	if scv <= 1 { // exactly 1 after the guard above: a single exponential
		return NewHyperexponential([]float64{1}, []float64{1 / mean})
	}
	p1 := 0.5 * (1 + math.Sqrt((scv-1)/(scv+1)))
	p2 := 1 - p1
	mu1 := 2 * p1 / mean
	mu2 := 2 * p2 / mean
	return NewHyperexponential([]float64{p1, p2}, []float64{mu1, mu2})
}

// Sample draws a phase, then an exponential variate from it.
func (h *Hyperexponential) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	idx := sort.SearchFloat64s(h.cum, u)
	if idx >= len(h.Rates) {
		idx = len(h.Rates) - 1
	}
	return rng.ExpFloat64() / h.Rates[idx]
}

// CDF reports the mixture CDF.
func (h *Hyperexponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	sum := 0.0
	for i, p := range h.Probs {
		sum += p * (1 - math.Exp(-h.Rates[i]*x))
	}
	return sum
}

// Moment reports the mixture moment, divergent for j <= -1.
func (h *Hyperexponential) Moment(j float64) float64 {
	if j <= -1 {
		return math.Inf(1)
	}
	sum := 0.0
	for i, p := range h.Probs {
		sum += p * math.Gamma(j+1) / math.Pow(h.Rates[i], j)
	}
	return sum
}

// Support reports (0, +Inf).
func (h *Hyperexponential) Support() (float64, float64) { return 0, math.Inf(1) }

// Quantile inverts the CDF numerically by bisection (the CDF is strictly
// increasing and cheap to evaluate).
func (h *Hyperexponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Bracket: the slowest phase bounds the tail.
	slowest := h.Rates[0]
	for _, r := range h.Rates {
		if r < slowest {
			slowest = r
		}
	}
	hi := -math.Log1p(-p) / slowest * 2
	for h.CDF(hi) < p {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if h.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Empirical is the empirical distribution of a fixed sample: Sample draws
// with replacement, CDF is the EDF, moments are sample moments. It backs
// trace-driven simulation and the paper's protocol of deriving cutoffs on
// one half of a trace and evaluating on the other half.
type Empirical struct {
	xs []float64 // sorted ascending
}

// NewEmpirical copies and sorts the observations.
// Panics if xs is empty.
func NewEmpirical(xs []float64) *Empirical {
	if len(xs) == 0 {
		panic("dist: empirical distribution needs at least one observation")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return &Empirical{xs: cp}
}

// Len reports the number of underlying observations.
func (e *Empirical) Len() int { return len(e.xs) }

// Sample draws uniformly with replacement.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.xs[rng.IntN(len(e.xs))]
}

// CDF reports the empirical distribution function P(X <= x).
func (e *Empirical) CDF(x float64) float64 {
	// Number of observations <= x.
	n := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > x })
	return float64(n) / float64(len(e.xs))
}

// Moment reports the raw sample moment.
func (e *Empirical) Moment(j float64) float64 {
	sum := 0.0
	for _, x := range e.xs {
		sum += math.Pow(x, j)
	}
	return sum / float64(len(e.xs))
}

// PartialMoment reports the sample partial moment over (a, b].
func (e *Empirical) PartialMoment(j, a, b float64) float64 {
	lo := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > a })
	hi := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > b })
	sum := 0.0
	for _, x := range e.xs[lo:hi] {
		sum += math.Pow(x, j)
	}
	return sum / float64(len(e.xs))
}

// Support reports the sample min and max.
func (e *Empirical) Support() (float64, float64) {
	return e.xs[0], e.xs[len(e.xs)-1]
}

// Quantile returns the order statistic at rank ceil(p*n).
func (e *Empirical) Quantile(p float64) float64 {
	if p <= 0 {
		return e.xs[0]
	}
	if p >= 1 {
		return e.xs[len(e.xs)-1]
	}
	idx := int(math.Ceil(p*float64(len(e.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.xs[idx]
}

// Values returns the sorted observations; callers must not modify the
// returned slice.
func (e *Empirical) Values() []float64 { return e.xs }
