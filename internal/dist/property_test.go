package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// allDistributions builds one instance of every distribution family for
// table-driven property tests.
func allDistributions() map[string]Distribution {
	return map[string]Distribution{
		"exponential":   NewExponential(3),
		"deterministic": Deterministic{Value: 5},
		"uniform":       NewUniform(2, 9),
		"lognormal":     NewLognormalFromMeanSCV(4, 3),
		"weibull":       Weibull{Shape: 1.5, Scale: 2},
		"pareto":        NewPareto(2.2, 1),
		"boundedpareto": NewBoundedPareto(1.1, 1, 1e5),
		"hyperexp":      NewH2Balanced(6, 4),
		"empirical":     NewEmpirical([]float64{1, 2, 2, 3, 8, 13}),
		"mixture": NewMixture(
			[]Distribution{NewExponential(1), NewUniform(5, 6)},
			[]float64{0.5, 0.5}),
		"truncated": NewTruncated(NewBoundedPareto(1.1, 1, 1e5), 10, 1000),
	}
}

func TestCDFMonotoneEverywhere(t *testing.T) {
	for name, d := range allDistributions() {
		lo, hi := d.Support()
		if math.IsInf(hi, 1) {
			hi = 1e6
		}
		if lo <= 0 {
			lo = 1e-9
		}
		prev := -1.0
		for i := 0; i <= 200; i++ {
			x := lo * math.Pow(hi/lo, float64(i)/200)
			c := d.CDF(x)
			if c < prev-1e-12 {
				t.Errorf("%s: CDF not monotone at %v (%v after %v)", name, x, c, prev)
				break
			}
			if c < 0 || c > 1+1e-12 {
				t.Errorf("%s: CDF(%v) = %v outside [0,1]", name, x, c)
				break
			}
			prev = c
		}
		if got := d.CDF(lo / 2); name != "deterministic" && got > 0.51 {
			t.Errorf("%s: CDF below support = %v", name, got)
		}
	}
}

func TestSamplesRespectSupport(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for name, d := range allDistributions() {
		lo, hi := d.Support()
		for i := 0; i < 5000; i++ {
			x := d.Sample(rng)
			if x < lo-1e-9 || x > hi+1e-9 {
				t.Errorf("%s: sample %v outside [%v, %v]", name, x, lo, hi)
				break
			}
		}
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	for name, d := range allDistributions() {
		q, ok := d.(Quantiler)
		if !ok {
			t.Errorf("%s: no quantile function", name)
			continue
		}
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			x := q.Quantile(p)
			got := d.CDF(x)
			// Discrete distributions (deterministic, empirical) only
			// guarantee CDF(Quantile(p)) >= p.
			if got < p-1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v < p", name, p, got)
			}
		}
	}
}

func TestMeanConsistentWithPartialMoments(t *testing.T) {
	// For every distribution, splitting E[X] at the median must recompose.
	for name, d := range allDistributions() {
		q := d.(Quantiler)
		med := q.Quantile(0.5)
		lo, hi := d.Support()
		if math.IsInf(hi, 1) {
			hi = math.Inf(1)
		}
		if med <= lo || (med >= hi && name != "deterministic") {
			continue
		}
		whole := d.Moment(1)
		split := PartialMoment(d, 1, lo-1, med) + PartialMoment(d, 1, med, hi)
		if math.Abs(whole-split)/whole > 1e-3 {
			t.Errorf("%s: E[X] = %v but partial split gives %v", name, whole, split)
		}
	}
}

func TestSquaredCVMatchesSamples(t *testing.T) {
	// For light-tailed families the sample SCV must approach the analytic
	// one (heavy tails excluded: their SCV estimator doesn't converge).
	rng := rand.New(rand.NewPCG(7, 8))
	for _, name := range []string{"exponential", "uniform", "weibull", "empirical"} {
		d := allDistributions()[name]
		var sum, sum2 float64
		const n = 400000
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			sum += x
			sum2 += x * x
		}
		m := sum / n
		scv := (sum2/n - m*m) / (m * m)
		want := SquaredCV(d)
		if math.Abs(scv-want) > 0.05*(1+want) {
			t.Errorf("%s: sample SCV %v vs analytic %v", name, scv, want)
		}
	}
}

func TestLoadCutoffProperty(t *testing.T) {
	// For random Bounded Paretos, LoadCutoff(f) must split the mean into
	// f : 1-f, and be monotone in f.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		b := NewBoundedPareto(0.4+rng.Float64()*1.8, 1+rng.Float64()*10, 1e5)
		prev := 0.0
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			c := b.LoadCutoff(frac)
			if c < prev {
				return false
			}
			prev = c
			below := b.PartialMoment(1, b.K, c)
			if math.Abs(below-frac*b.Moment(1)) > 1e-4*b.Moment(1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
