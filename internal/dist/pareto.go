package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Pareto is the (unbounded) Pareto distribution with tail index Alpha and
// minimum K: P(X > x) = (K/x)^Alpha for x >= K. Process lifetimes and
// supercomputing job sizes are empirically close to Pareto with Alpha near 1.
type Pareto struct {
	Alpha, K float64
}

// NewPareto validates the parameters and returns the distribution.
// Panics unless alpha and k are positive.
func NewPareto(alpha, k float64) Pareto {
	if alpha <= 0 || k <= 0 {
		panic(fmt.Sprintf("dist: pareto needs positive alpha and k, got %v, %v", alpha, k))
	}
	return Pareto{Alpha: alpha, K: k}
}

// Sample draws by inverse CDF.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	return p.Quantile(rng.Float64())
}

// CDF reports P(X <= x).
func (p Pareto) CDF(x float64) float64 {
	if x <= p.K {
		return 0
	}
	return 1 - math.Pow(p.K/x, p.Alpha)
}

// Moment reports E[X^j] = Alpha*K^j/(Alpha-j), divergent for j >= Alpha.
func (p Pareto) Moment(j float64) float64 {
	if j >= p.Alpha {
		return math.Inf(1)
	}
	return p.Alpha * math.Pow(p.K, j) / (p.Alpha - j)
}

// Support reports [K, +Inf).
func (p Pareto) Support() (float64, float64) { return p.K, math.Inf(1) }

// Quantile inverts the CDF.
func (p Pareto) Quantile(u float64) float64 {
	if u >= 1 {
		return math.Inf(1)
	}
	return p.K * math.Pow(1-u, -1/p.Alpha)
}

// PartialMoment reports E[X^j ; a < X <= b] in closed form.
func (p Pareto) PartialMoment(j, a, b float64) float64 {
	a = math.Max(a, p.K)
	if b <= a {
		return 0
	}
	// Density alpha*K^alpha*x^{-alpha-1} integrated against x^j.
	c := p.Alpha * math.Pow(p.K, p.Alpha)
	//lint:allow floateq exact dispatch at the removable singularity j = alpha
	if j == p.Alpha {
		return c * math.Log(b/a)
	}
	e := j - p.Alpha
	return c * (math.Pow(b, e) - math.Pow(a, e)) / e
}

// BoundedPareto is the Bounded Pareto distribution B(K, P, Alpha): the
// Pareto density restricted to [K, P] and renormalized. It is the paper's
// canonical heavy-tailed job-size model: all moments exist (so analysis is
// well-posed) yet for small Alpha a tiny fraction of jobs carries half the
// load.
type BoundedPareto struct {
	Alpha float64 // tail index
	K     float64 // smallest job
	P     float64 // largest job
	norm  float64 // 1 - (K/P)^Alpha, cached normalizer
}

// NewBoundedPareto validates parameters and precomputes the normalizer.
// Panics unless alpha > 0 and 0 < k < p.
func NewBoundedPareto(alpha, k, p float64) BoundedPareto {
	if alpha <= 0 || k <= 0 || p <= k {
		panic(fmt.Sprintf("dist: bounded pareto needs alpha>0, 0<k<p, got alpha=%v k=%v p=%v", alpha, k, p))
	}
	return BoundedPareto{Alpha: alpha, K: k, P: p, norm: 1 - math.Pow(k/p, alpha)}
}

// Sample draws by inverse CDF.
func (b BoundedPareto) Sample(rng *rand.Rand) float64 {
	return b.Quantile(rng.Float64())
}

// CDF reports P(X <= x).
func (b BoundedPareto) CDF(x float64) float64 {
	switch {
	case x <= b.K:
		return 0
	case x >= b.P:
		return 1
	default:
		return (1 - math.Pow(b.K/x, b.Alpha)) / b.norm
	}
}

// Quantile inverts the CDF.
func (b BoundedPareto) Quantile(u float64) float64 {
	switch {
	case u <= 0:
		return b.K
	case u >= 1:
		return b.P
	default:
		return b.K * math.Pow(1-u*b.norm, -1/b.Alpha)
	}
}

// Moment reports E[X^j] in closed form; every moment is finite.
func (b BoundedPareto) Moment(j float64) float64 {
	return b.PartialMoment(j, b.K, b.P)
}

// PartialMoment reports E[X^j ; a < X <= b] in closed form. The interval is
// clipped to the support.
func (b BoundedPareto) PartialMoment(j, lo, hi float64) float64 {
	lo = math.Max(lo, b.K)
	hi = math.Min(hi, b.P)
	if hi <= lo {
		return 0
	}
	c := b.Alpha * math.Pow(b.K, b.Alpha) / b.norm
	//lint:allow floateq exact dispatch at the removable singularity j = alpha
	if j == b.Alpha {
		return c * math.Log(hi/lo)
	}
	e := j - b.Alpha
	return c * (math.Pow(hi, e) - math.Pow(lo, e)) / e
}

// Support reports [K, P].
func (b BoundedPareto) Support() (float64, float64) { return b.K, b.P }

// LoadCutoff returns the size c such that jobs of size <= c carry the given
// fraction of the total expected work: solve
// E[X ; K < X <= c] = frac * E[X] by bisection. This is exactly the SITA-E
// cutoff computation for a 2-host system when frac = 1/2.
func (b BoundedPareto) LoadCutoff(frac float64) float64 {
	if frac <= 0 {
		return b.K
	}
	if frac >= 1 {
		return b.P
	}
	target := frac * b.Moment(1)
	lo, hi := b.K, b.P
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection suits the long support
		if b.PartialMoment(1, b.K, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// FitBoundedParetoMean finds the BoundedPareto with the given smallest job
// k, largest job p, and mean by solving for the tail index alpha (the mean
// is strictly decreasing in alpha for fixed k and p). This is the primary
// trace calibration: a job log's minimum, maximum and mean are exactly the
// statistics Table 1 of the paper publishes.
func FitBoundedParetoMean(mean, k, p float64) (BoundedPareto, error) {
	if k <= 0 || p <= k || mean <= k || mean >= p {
		return BoundedPareto{}, fmt.Errorf("dist: infeasible mean-fit targets mean=%v k=%v p=%v", mean, k, p)
	}
	lo, hi := 0.005, 50.0
	if NewBoundedPareto(lo, k, p).Moment(1) < mean || NewBoundedPareto(hi, k, p).Moment(1) > mean {
		return BoundedPareto{}, fmt.Errorf("dist: mean %v unreachable for k=%v p=%v", mean, k, p)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if NewBoundedPareto(mid, k, p).Moment(1) > mean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return NewBoundedPareto((lo+hi)/2, k, p), nil
}

// FitBoundedParetoTail finds the BoundedPareto with the given mean and
// upper bound p whose largest tailFrac-fraction of jobs carries
// tailLoad-fraction of the total work. This is the calibration that
// preserves the paper's central workload fact ("the biggest 1.3% of all
// jobs make up half the total load", section 4.3) — the statistic that
// actually drives the SITA results. For each candidate alpha, k is solved
// from the mean; the tail-heaviness is monotone decreasing in alpha, so
// alpha is then found by bisection.
func FitBoundedParetoTail(mean, p, tailFrac, tailLoad float64) (BoundedPareto, error) {
	if mean <= 0 || p <= mean || tailFrac <= 0 || tailFrac >= 1 || tailLoad <= 0 || tailLoad >= 1 {
		return BoundedPareto{}, fmt.Errorf("dist: infeasible tail-fit targets mean=%v p=%v tailFrac=%v tailLoad=%v",
			mean, p, tailFrac, tailLoad)
	}
	kForAlpha := func(alpha float64) (float64, bool) {
		lo := p * 1e-18
		hi := mean
		if NewBoundedPareto(alpha, lo, p).Moment(1) > mean {
			return 0, false
		}
		for i := 0; i < 200; i++ {
			mid := math.Sqrt(lo * hi)
			if NewBoundedPareto(alpha, mid, p).Moment(1) < mean {
				lo = mid
			} else {
				hi = mid
			}
		}
		return math.Sqrt(lo * hi), true
	}
	// tailFracAt reports the fraction of jobs above the cutoff that leaves
	// (1 - tailLoad) of the work below it.
	tailFracAt := func(alpha float64) (float64, bool) {
		k, ok := kForAlpha(alpha)
		if !ok {
			return 0, false
		}
		b := NewBoundedPareto(alpha, k, p)
		c := b.LoadCutoff(1 - tailLoad)
		return 1 - b.CDF(c), true
	}
	const aMin, aMax = 0.05, 20.0
	var prevA, prevF float64
	havePrev := false
	for a := aMin; a <= aMax; a *= 1.2 {
		f, ok := tailFracAt(a)
		if !ok {
			continue
		}
		if havePrev && (prevF-tailFrac)*(f-tailFrac) <= 0 {
			loA, hiA := prevA, a
			for i := 0; i < 200; i++ {
				mid := (loA + hiA) / 2
				fm, ok := tailFracAt(mid)
				if !ok {
					return BoundedPareto{}, fmt.Errorf("dist: tail fit lost feasibility at alpha=%v", mid)
				}
				if (prevF-tailFrac)*(fm-tailFrac) > 0 {
					loA = mid
				} else {
					hiA = mid
				}
			}
			alpha := (loA + hiA) / 2
			k, _ := kForAlpha(alpha)
			return NewBoundedPareto(alpha, k, p), nil
		}
		prevA, prevF, havePrev = a, f, true
	}
	return BoundedPareto{}, fmt.Errorf("dist: no bounded pareto matches mean=%v p=%v tail %v@%v",
		mean, p, tailFrac, tailLoad)
}

// FitBoundedPareto finds the BoundedPareto with the given mean, squared
// coefficient of variation, and upper bound p. The lower bound k and tail
// index alpha are solved jointly: for each candidate alpha, k is chosen by
// bisection to match the mean (the mean is increasing in k), then alpha is
// chosen by bisection to match the SCV (the SCV is decreasing in alpha).
// This is the calibration entry point used to rebuild the paper's C90, J90
// and CTC workloads from their published statistics.
func FitBoundedPareto(mean, scv, p float64) (BoundedPareto, error) {
	if mean <= 0 || scv <= 0 || p <= mean {
		return BoundedPareto{}, fmt.Errorf("dist: infeasible fit targets mean=%v scv=%v p=%v", mean, scv, p)
	}
	kForAlpha := func(alpha float64) (float64, bool) {
		lo := p * 1e-15
		hi := mean // k can never exceed the mean
		bLo := NewBoundedPareto(alpha, lo, p)
		if bLo.Moment(1) > mean {
			return 0, false // even the tiniest k overshoots the mean
		}
		for i := 0; i < 200; i++ {
			mid := math.Sqrt(lo * hi)
			if NewBoundedPareto(alpha, mid, p).Moment(1) < mean {
				lo = mid
			} else {
				hi = mid
			}
		}
		return math.Sqrt(lo * hi), true
	}
	scvAt := func(alpha float64) (float64, bool) {
		k, ok := kForAlpha(alpha)
		if !ok {
			return 0, false
		}
		return SquaredCV(NewBoundedPareto(alpha, k, p)), true
	}
	// Bracket the target SCV. SCV decreases as alpha grows, so scan a grid
	// for a sign change of scvAt(alpha) - scv.
	const aMin, aMax = 0.05, 20.0
	var prevA float64
	var prevSCV float64
	havePrev := false
	for a := aMin; a <= aMax; a *= 1.25 {
		s, ok := scvAt(a)
		if !ok {
			continue
		}
		if havePrev && (prevSCV-scv)*(s-scv) <= 0 {
			loA, hiA := prevA, a
			for i := 0; i < 200; i++ {
				mid := (loA + hiA) / 2
				sm, ok := scvAt(mid)
				if !ok {
					return BoundedPareto{}, fmt.Errorf("dist: fit lost feasibility at alpha=%v", mid)
				}
				if (prevSCV-scv)*(sm-scv) > 0 {
					loA = mid
				} else {
					hiA = mid
				}
			}
			alpha := (loA + hiA) / 2
			k, _ := kForAlpha(alpha)
			return NewBoundedPareto(alpha, k, p), nil
		}
		prevA, prevSCV, havePrev = a, s, true
	}
	return BoundedPareto{}, fmt.Errorf("dist: no bounded pareto matches mean=%v scv=%v p=%v", mean, scv, p)
}
