package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff < tol
	}
	return diff/scale < tol
}

// checkSampleMoments verifies that sample statistics agree with the
// distribution's claimed first two moments. For heavy-tailed distributions
// the sample estimator of E[X^2] itself has enormous (or infinite) variance,
// so use checkSampleMean there instead.
func checkSampleMoments(t *testing.T, d Distribution, n int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 43))
	var sum, sum2 float64
	lo, hi := d.Support()
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		if x < lo-1e-9 || x > hi+1e-9 {
			t.Fatalf("sample %v outside support [%v, %v]", x, lo, hi)
		}
		sum += x
		sum2 += x * x
	}
	m1, m2 := sum/float64(n), sum2/float64(n)
	if want := d.Moment(1); !almostEqual(m1, want, tol) {
		t.Errorf("sample mean %v vs analytic %v", m1, want)
	}
	if want := d.Moment(2); !math.IsInf(want, 1) && !almostEqual(m2, want, tol*3) {
		t.Errorf("sample E[X^2] %v vs analytic %v", m2, want)
	}
}

// checkSampleMean is the heavy-tail variant: mean plus empirical-vs-analytic
// CDF agreement at several quantiles (a distribution-shape check that does
// not suffer from tail-estimator variance).
func checkSampleMean(t *testing.T, d Distribution, n int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 43))
	sum := 0.0
	xs := make([]float64, n)
	lo, hi := d.Support()
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		if x < lo-1e-9 || x > hi+1e-9 {
			t.Fatalf("sample %v outside support [%v, %v]", x, lo, hi)
		}
		sum += x
		xs[i] = x
	}
	if m1, want := sum/float64(n), d.Moment(1); !almostEqual(m1, want, tol) {
		t.Errorf("sample mean %v vs analytic %v", m1, want)
	}
	emp := NewEmpirical(xs)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := emp.Quantile(p)
		if got := d.CDF(x); math.Abs(got-p) > 0.01 {
			t.Errorf("CDF at empirical q%v: %v, want ~%v", p, got, p)
		}
	}
}

// checkCDFQuantileInverse verifies Quantile(CDF(x)) == x on the support.
func checkCDFQuantileInverse(t *testing.T, d Distribution, pts []float64) {
	t.Helper()
	q, ok := d.(Quantiler)
	if !ok {
		t.Fatalf("%T is not a Quantiler", d)
	}
	for _, p := range pts {
		x := q.Quantile(p)
		if got := d.CDF(x); !almostEqual(got, p, 1e-6) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	e := NewExponential(5)
	if !almostEqual(e.Moment(1), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", e.Moment(1))
	}
	if !almostEqual(e.Moment(2), 50, 1e-12) {
		t.Errorf("E[X^2] = %v, want 50", e.Moment(2))
	}
	if !almostEqual(e.Moment(3), 750, 1e-12) {
		t.Errorf("E[X^3] = %v, want 750", e.Moment(3))
	}
	if !math.IsInf(e.Moment(-1), 1) {
		t.Errorf("E[1/X] should diverge, got %v", e.Moment(-1))
	}
	if !almostEqual(SquaredCV(e), 1, 1e-12) {
		t.Errorf("exponential C^2 = %v, want 1", SquaredCV(e))
	}
}

func TestExponentialSampling(t *testing.T) {
	checkSampleMoments(t, NewExponential(3), 200000, 0.02)
	checkCDFQuantileInverse(t, NewExponential(3), []float64{0.01, 0.5, 0.99})
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 7}
	if d.Sample(nil) != 7 {
		t.Error("deterministic sample != value")
	}
	if d.Moment(2) != 49 || d.Moment(-1) != 1.0/7 {
		t.Error("deterministic moments wrong")
	}
	if d.CDF(6.9) != 0 || d.CDF(7) != 1 {
		t.Error("deterministic CDF wrong")
	}
	if got := d.PartialMoment(1, 0, 10); got != 7 {
		t.Errorf("partial moment covering point = %v, want 7", got)
	}
	if got := d.PartialMoment(1, 8, 10); got != 0 {
		t.Errorf("partial moment missing point = %v, want 0", got)
	}
	if SquaredCV(d) != 0 {
		t.Error("deterministic C^2 should be 0")
	}
}

func TestUniformMoments(t *testing.T) {
	u := NewUniform(2, 6)
	if !almostEqual(u.Moment(1), 4, 1e-12) {
		t.Errorf("mean = %v, want 4", u.Moment(1))
	}
	// E[X^2] = (6^3-2^3)/(3*4) = 208/12
	if !almostEqual(u.Moment(2), 208.0/12, 1e-12) {
		t.Errorf("E[X^2] = %v", u.Moment(2))
	}
	// E[1/X] = ln(3)/4
	if !almostEqual(u.Moment(-1), math.Log(3)/4, 1e-12) {
		t.Errorf("E[1/X] = %v, want %v", u.Moment(-1), math.Log(3)/4)
	}
	checkSampleMoments(t, u, 100000, 0.02)
	checkCDFQuantileInverse(t, u, []float64{0.1, 0.5, 0.9})
}

func TestLognormalMoments(t *testing.T) {
	l := NewLognormalFromMeanSCV(10, 4)
	if !almostEqual(l.Moment(1), 10, 1e-9) {
		t.Errorf("mean = %v, want 10", l.Moment(1))
	}
	if !almostEqual(SquaredCV(l), 4, 1e-9) {
		t.Errorf("C^2 = %v, want 4", SquaredCV(l))
	}
	checkSampleMean(t, l, 500000, 0.05)
	checkCDFQuantileInverse(t, l, []float64{0.05, 0.5, 0.95})
}

func TestWeibull(t *testing.T) {
	w := Weibull{Shape: 2, Scale: 3}
	// Mean = 3*Gamma(1.5) = 3*sqrt(pi)/2
	if want := 3 * math.Sqrt(math.Pi) / 2; !almostEqual(w.Moment(1), want, 1e-12) {
		t.Errorf("mean = %v, want %v", w.Moment(1), want)
	}
	if !math.IsInf(w.Moment(-2), 1) {
		t.Error("E[X^-2] should diverge for shape 2")
	}
	checkSampleMoments(t, w, 100000, 0.02)
	checkCDFQuantileInverse(t, w, []float64{0.1, 0.5, 0.9})
}

func TestParetoMoments(t *testing.T) {
	p := NewPareto(2.5, 1)
	if want := 2.5 / 1.5; !almostEqual(p.Moment(1), want, 1e-12) {
		t.Errorf("mean = %v, want %v", p.Moment(1), want)
	}
	if !math.IsInf(p.Moment(3), 1) {
		t.Error("E[X^3] should diverge for alpha=2.5")
	}
	checkSampleMean(t, p, 500000, 0.05)
	checkCDFQuantileInverse(t, p, []float64{0.1, 0.5, 0.99})
}

func TestBoundedParetoMomentsAgainstNumeric(t *testing.T) {
	b := NewBoundedPareto(1.1, 1, 1e6)
	for _, j := range []float64{-2, -1, 1, 2, 3} {
		closed := b.Moment(j)
		numeric := integrate(func(x float64) float64 {
			// density: alpha k^alpha x^{-alpha-1} / norm
			return math.Pow(x, j) * b.Alpha * math.Pow(b.K, b.Alpha) *
				math.Pow(x, -b.Alpha-1) / b.norm
		}, b.K, b.P, 1e-12)
		if !almostEqual(closed, numeric, 1e-4) {
			t.Errorf("j=%v closed %v vs numeric %v", j, closed, numeric)
		}
	}
}

func TestBoundedParetoLogCase(t *testing.T) {
	// j == alpha exercises the logarithmic branch.
	b := NewBoundedPareto(2, 1, 100)
	got := b.Moment(2)
	want := b.PartialMoment(2, 1, 100)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("log-case moment inconsistent: %v vs %v", got, want)
	}
	// Compare against numeric integration.
	numeric := integrate(func(x float64) float64 {
		return x * x * 2 * math.Pow(x, -3) / b.norm
	}, 1, 100, 1e-12)
	if !almostEqual(got, numeric, 1e-6) {
		t.Errorf("j=alpha moment %v vs numeric %v", got, numeric)
	}
}

func TestBoundedParetoSampling(t *testing.T) {
	b := NewBoundedPareto(1.5, 10, 1e5)
	checkSampleMean(t, b, 500000, 0.05)
	checkCDFQuantileInverse(t, b, []float64{0.01, 0.5, 0.987, 0.999})
}

func TestBoundedParetoPartialMomentsAddUp(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		b := NewBoundedPareto(0.5+rng.Float64()*2, 1, 1e4)
		cut := b.Quantile(0.1 + 0.8*rng.Float64())
		for _, j := range []float64{-1, 1, 2} {
			whole := b.Moment(j)
			split := b.PartialMoment(j, b.K, cut) + b.PartialMoment(j, cut, b.P)
			if !almostEqual(whole, split, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoundedParetoLoadCutoff(t *testing.T) {
	b := NewBoundedPareto(1.1, 1, 1e7)
	c := b.LoadCutoff(0.5)
	left := b.PartialMoment(1, b.K, c)
	if !almostEqual(left, 0.5*b.Moment(1), 1e-6) {
		t.Errorf("load cutoff %v leaves %v of mean %v below", c, left, b.Moment(1))
	}
	if got := b.LoadCutoff(0); got != b.K {
		t.Errorf("zero-load cutoff = %v, want K", got)
	}
	if got := b.LoadCutoff(1); got != b.P {
		t.Errorf("full-load cutoff = %v, want P", got)
	}
}

func TestBoundedParetoHeavyTailProperty(t *testing.T) {
	// With alpha near 1 and a huge range, a small fraction of jobs must
	// carry half the load (the paper's 1.3% observation).
	b := NewBoundedPareto(1.1, 1, 3e6)
	c := b.LoadCutoff(0.5)
	fracAbove := 1 - b.CDF(c)
	if fracAbove > 0.10 {
		t.Errorf("fraction of jobs above half-load cutoff = %v, want small (heavy tail)", fracAbove)
	}
}

func TestFitBoundedPareto(t *testing.T) {
	cases := []struct{ mean, scv, p float64 }{
		{4500, 43, 2.2e6},
		{1000, 10, 1e5},
		{7000, 5, 43200 * 3},
		{100, 1.5, 1e4},
	}
	for _, c := range cases {
		b, err := FitBoundedPareto(c.mean, c.scv, c.p)
		if err != nil {
			t.Errorf("fit(%v, %v, %v): %v", c.mean, c.scv, c.p, err)
			continue
		}
		if !almostEqual(b.Moment(1), c.mean, 1e-4) {
			t.Errorf("fit mean %v, want %v", b.Moment(1), c.mean)
		}
		if !almostEqual(SquaredCV(b), c.scv, 1e-3) {
			t.Errorf("fit scv %v, want %v", SquaredCV(b), c.scv)
		}
	}
}

func TestFitBoundedParetoInfeasible(t *testing.T) {
	if _, err := FitBoundedPareto(100, 43, 50); err == nil {
		t.Error("expected error when max < mean")
	}
	if _, err := FitBoundedPareto(-1, 2, 10); err == nil {
		t.Error("expected error for negative mean")
	}
}

func TestHyperexponential(t *testing.T) {
	h := NewH2Balanced(10, 5)
	if !almostEqual(h.Moment(1), 10, 1e-9) {
		t.Errorf("H2 mean = %v, want 10", h.Moment(1))
	}
	if !almostEqual(SquaredCV(h), 5, 1e-9) {
		t.Errorf("H2 C^2 = %v, want 5", SquaredCV(h))
	}
	checkSampleMean(t, h, 500000, 0.05)
	checkCDFQuantileInverse(t, h, []float64{0.1, 0.5, 0.95})
}

func TestHyperexponentialDegenerate(t *testing.T) {
	h := NewH2Balanced(4, 1) // scv == 1 collapses to exponential
	if len(h.Rates) != 1 {
		t.Fatalf("scv=1 should give a single phase, got %d", len(h.Rates))
	}
	if !almostEqual(h.Moment(1), 4, 1e-12) {
		t.Errorf("mean = %v, want 4", h.Moment(1))
	}
}

func TestHyperexponentialNormalizes(t *testing.T) {
	h := NewHyperexponential([]float64{2, 2}, []float64{1, 3})
	if !almostEqual(h.Probs[0], 0.5, 1e-12) {
		t.Errorf("probs not normalized: %v", h.Probs)
	}
}

func TestEmpirical(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 2})
	if e.Len() != 4 {
		t.Fatalf("len = %d", e.Len())
	}
	if got := e.Moment(1); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
	if got := e.CDF(2); got != 0.75 {
		t.Errorf("CDF(2) = %v, want 0.75", got)
	}
	if got := e.CDF(0.5); got != 0 {
		t.Errorf("CDF(0.5) = %v, want 0", got)
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := e.PartialMoment(1, 1, 2); got != 1.0 { // values 2,2 -> (2+2)/4
		t.Errorf("partial moment = %v, want 1", got)
	}
	lo, hi := e.Support()
	if lo != 1 || hi != 3 {
		t.Errorf("support = [%v, %v], want [1, 3]", lo, hi)
	}
}

func TestTruncated(t *testing.T) {
	b := NewBoundedPareto(1.2, 1, 1e6)
	cut := b.LoadCutoff(0.5)
	short := NewTruncated(b, 0, cut)
	long := NewTruncated(b, cut, math.Inf(1))
	if !almostEqual(short.Mass()+long.Mass(), 1, 1e-9) {
		t.Errorf("masses %v + %v != 1", short.Mass(), long.Mass())
	}
	// Law of total expectation.
	total := short.Mass()*short.Moment(1) + long.Mass()*long.Moment(1)
	if !almostEqual(total, b.Moment(1), 1e-9) {
		t.Errorf("conditional means don't reassemble: %v vs %v", total, b.Moment(1))
	}
	// Samples stay inside the interval.
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 10000; i++ {
		x := short.Sample(rng)
		if x <= 0 || x > cut+1e-9 {
			t.Fatalf("short sample %v outside (0, %v]", x, cut)
		}
	}
	if got := short.CDF(cut); got != 1 {
		t.Errorf("CDF at upper bound = %v, want 1", got)
	}
	if got := long.CDF(cut); got != 0 {
		t.Errorf("long CDF at lower bound = %v, want 0", got)
	}
	checkCDFQuantileInverse(t, short, []float64{0.1, 0.5, 0.9})
}

func TestTruncatedZeroMassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-mass truncation")
		}
	}()
	NewTruncated(NewBoundedPareto(1.5, 1, 100), 200, 300)
}

func TestGenericPartialMomentFallback(t *testing.T) {
	// Lognormal has no closed-form partial moment; exercise the numeric
	// quantile-integration fallback against a Monte Carlo estimate.
	l := NewLognormalFromMeanSCV(5, 2)
	a, b := 2.0, 20.0
	got := PartialMoment(l, 1, a, b)
	rng := rand.New(rand.NewPCG(31, 32))
	const n = 2_000_000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := l.Sample(rng)
		if x > a && x <= b {
			sum += x
		}
	}
	mc := sum / n
	if !almostEqual(got, mc, 0.02) {
		t.Errorf("numeric partial moment %v vs MC %v", got, mc)
	}
}

func TestProb(t *testing.T) {
	e := NewExponential(1)
	if got := Prob(e, 5, 2); got != 0 {
		t.Errorf("reversed interval prob = %v, want 0", got)
	}
	want := math.Exp(-1) - math.Exp(-2)
	if got := Prob(e, 1, 2); !almostEqual(got, want, 1e-12) {
		t.Errorf("Prob(1,2) = %v, want %v", got, want)
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { NewExponential(0) },
		func() { NewUniform(5, 5) },
		func() { NewPareto(0, 1) },
		func() { NewBoundedPareto(1, 5, 5) },
		func() { NewHyperexponential(nil, nil) },
		func() { NewHyperexponential([]float64{1}, []float64{0}) },
		func() { NewEmpirical(nil) },
		func() { NewLognormalFromMeanSCV(0, 1) },
		func() { NewH2Balanced(1, 0.5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNormQuantileMatchesErfBasedCDF(t *testing.T) {
	// Round-trip through the lognormal CDF validates normQuantile.
	l := Lognormal{Mu: 0, Sigma: 1}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		x := l.Quantile(p)
		if got := l.CDF(x); !almostEqual(got, p, 1e-6) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}
