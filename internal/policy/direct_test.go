package policy

import (
	"testing"

	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/trace"
	"sita/internal/workload"
)

// Differential proof of the oblivious fast path over the real policy
// implementations: every policy that claims the capability must produce a
// bit-identical Result through server.RunDirect and the event-heap engine
// — same record bytes, same Welford stream states, same per-host
// accounting — on streams retimed from all three of the paper's workload
// profiles. Fresh policy instances (and fresh generators from the same
// seed) per run keep the RNG draw sequences comparable.

// obliviousCases builds one instance of every capability-claiming policy.
// Constructors are called per run so sequential state (Round-Robin's
// counter, generators, believed backlogs) starts identically on each path.
func obliviousCases() []struct {
	name  string
	build func() server.Policy
} {
	cutoffs := []float64{100, 10000}
	return []struct {
		name  string
		build func() server.Policy
	}{
		{"random", func() server.Policy { return NewRandom(sim.NewRNG(7, 0)) }},
		{"round-robin", func() server.Policy { return NewRoundRobin() }},
		{"sita", func() server.Policy { return NewSITA("SITA-E", cutoffs) }},
		{"misclassify-sita", func() server.Policy {
			return NewMisclassify(NewSITA("SITA-E", cutoffs), 100, 0.3, sim.NewRNG(7, 1))
		}},
		{"estimated-sita", func() server.Policy {
			return NewEstimatedSITA(NewSITA("SITA-E", cutoffs), 0.5, sim.NewRNG(7, 2))
		}},
		{"estimated-lwl", func() server.Policy { return NewEstimatedLWL(0.5, sim.NewRNG(7, 3)) }},
	}
}

func profileStream(t *testing.T, p trace.Profile, n int) []workload.Job {
	t.Helper()
	tr, err := trace.Generate(p, 11)
	if err != nil {
		t.Fatalf("generating %s: %v", p.Name, err)
	}
	return tr.Head(n).JobsAtLoad(0.8, 3, true, 13)
}

func TestDirectPathMatchesEngineAllObliviousPolicies(t *testing.T) {
	defer server.SetDirectEnabled(true)
	for _, prof := range []trace.Profile{trace.C90(), trace.J90(), trace.CTC()} {
		jobs := profileStream(t, prof, 4000)
		for _, pc := range obliviousCases() {
			t.Run(prof.Name+"/"+pc.name, func(t *testing.T) {
				if !server.IsOblivious(pc.build()) {
					t.Fatalf("%s does not claim the Oblivious capability", pc.name)
				}
				cfg := func(p server.Policy) server.Config {
					return server.Config{
						Hosts:          3,
						Policy:         p,
						WarmupFraction: 0.2,
						KeepRecords:    true,
						SizeClass: func(size float64) int {
							if size > 100 {
								return 1
							}
							return 0
						},
					}
				}
				server.SetDirectEnabled(true)
				direct := server.Run(jobs, cfg(pc.build()))
				server.SetDirectEnabled(false)
				engine := server.Run(jobs, cfg(pc.build()))
				if ka, kb := recordKey(direct.Records), recordKey(engine.Records); ka != kb {
					i := 0
					for i < len(ka) && i < len(kb) && ka[i] == kb[i] {
						i++
					}
					t.Fatalf("record streams diverge near byte %d:\ndirect: %.120s\nengine: %.120s",
						i, ka[max(0, i-40):], kb[max(0, i-40):])
				}
				if direct.Slowdown != engine.Slowdown || direct.Response != engine.Response || direct.Wait != engine.Wait {
					t.Fatalf("delay streams differ:\ndirect: %+v\nengine: %+v", direct, engine)
				}
				for h := 0; h < 3; h++ {
					if direct.PerHostJobs[h] != engine.PerHostJobs[h] || direct.PerHostWork[h] != engine.PerHostWork[h] {
						t.Fatalf("per-host accounting differs at host %d", h)
					}
				}
				if direct.Horizon != engine.Horizon {
					t.Fatalf("horizons differ: %v vs %v", direct.Horizon, engine.Horizon)
				}
				if (direct.Classes == nil) != (engine.Classes == nil) {
					t.Fatal("class tallies differ in presence")
				}
			})
		}
	}
}

// TestObliviousCapabilityClaims pins which policies claim the capability
// and that wrappers forward rather than assert it: wrapping a state-reading
// policy must not claim obliviousness, however the wrapper itself behaves.
func TestObliviousCapabilityClaims(t *testing.T) {
	claims := []struct {
		name string
		p    server.Policy
		want bool
	}{
		{"Random", NewRandom(sim.NewRNG(1, 0)), true},
		{"RoundRobin", NewRoundRobin(), true},
		{"SITA", NewSITA("SITA-E", []float64{10}), true},
		{"EstimatedLWL", NewEstimatedLWL(0.3, sim.NewRNG(1, 1)), true},
		{"ShortestQueue", NewShortestQueue(), false},
		{"LeastWorkLeft", NewLeastWorkLeft(), false},
		{"CentralQueue", NewCentralQueue(), false},
		{"GroupedSITA", NewGroupedSITA("grouped", 10, 1), false},
		{"Misclassify(SITA)", NewMisclassify(NewSITA("s", []float64{10}), 10, 0.1, sim.NewRNG(1, 2)), true},
		{"Misclassify(ShortestQueue)", NewMisclassify(NewShortestQueue(), 10, 0.1, sim.NewRNG(1, 3)), false},
		{"Misclassify(LWL)", NewMisclassify(NewLeastWorkLeft(), 10, 0.1, sim.NewRNG(1, 4)), false},
		{"EstimatedSITA(SITA)", NewEstimatedSITA(NewSITA("s", []float64{10}), 0.3, sim.NewRNG(1, 5)), true},
	}
	for _, c := range claims {
		if got := server.IsOblivious(c.p); got != c.want {
			t.Errorf("IsOblivious(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}
