package policy

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sita/internal/server"
	"sita/internal/workload"
)

// In practice (paper §1.2), Least-Work-Left is implemented by the *users*:
// each submitted job carries a runtime estimate, and the work left at a
// host is the sum of the estimates of its queued jobs. The policies below
// model that reality: dispatchers that never see true sizes or true
// backlogs, only noisy estimates, bookkeeping their own view of each
// host's queue.

// EstimatedLWL is Least-Work-Left driven entirely by noisy runtime
// estimates: the dispatcher tracks each host's estimated backlog itself
// (crediting the estimate on assignment, draining it with wall-clock time)
// and never consults the true system state. Estimation error is
// multiplicative lognormal: estimate = size * exp(sigma*N(0,1)), the
// standard model for human runtime estimates.
type EstimatedLWL struct {
	sigma float64
	rng   *rand.Rand
	// estReadyAt[h] is the dispatcher's belief of when host h drains.
	estReadyAt []float64
}

// NewEstimatedLWL builds the policy; sigma = 0 reproduces exact LWL
// behaviour (up to the backlog bookkeeping being belief-based).
// Panics if sigma < 0 or rng is nil.
func NewEstimatedLWL(sigma float64, rng *rand.Rand) *EstimatedLWL {
	if sigma < 0 || rng == nil {
		panic(fmt.Sprintf("policy: estimated LWL needs sigma >= 0 and a generator, got %v", sigma))
	}
	return &EstimatedLWL{sigma: sigma, rng: rng}
}

// Name identifies the policy in reports.
func (p *EstimatedLWL) Name() string {
	return fmt.Sprintf("LWL(est sigma=%.2g)", p.sigma)
}

// Estimate returns a noisy runtime estimate for a job size.
func (p *EstimatedLWL) Estimate(size float64) float64 {
	if p.sigma == 0 {
		return size
	}
	return size * math.Exp(p.sigma*p.rng.NormFloat64())
}

// Assign sends the job to the host with the smallest *believed* backlog
// and credits the job's estimate to that belief.
func (p *EstimatedLWL) Assign(j workload.Job, v server.View) int {
	if p.estReadyAt == nil {
		p.estReadyAt = make([]float64, v.Hosts())
	}
	now := j.Arrival
	best, bestLeft := 0, math.Inf(1)
	for i := range p.estReadyAt {
		left := p.estReadyAt[i] - now
		if left < 0 {
			left = 0
		}
		if left < bestLeft {
			best, bestLeft = i, left
		}
	}
	if p.estReadyAt[best] < now {
		p.estReadyAt[best] = now
	}
	p.estReadyAt[best] += p.Estimate(j.Size)
	return best
}

// EstimatedSITA routes by a noisy runtime estimate instead of the true
// size: the continuous version of the short/long misclassification model,
// appropriate when estimates come from a predictor rather than a binary
// user choice.
type EstimatedSITA struct {
	inner *SITA
	sigma float64
	rng   *rand.Rand
}

// NewEstimatedSITA wraps a SITA policy with lognormal estimate noise.
// Panics if inner is nil, sigma < 0, or rng is nil.
func NewEstimatedSITA(inner *SITA, sigma float64, rng *rand.Rand) *EstimatedSITA {
	if inner == nil || rng == nil || sigma < 0 {
		panic("policy: estimated SITA needs an inner policy, sigma >= 0 and a generator")
	}
	return &EstimatedSITA{inner: inner, sigma: sigma, rng: rng}
}

// Name identifies the policy in reports.
func (p *EstimatedSITA) Name() string {
	return fmt.Sprintf("%s(est sigma=%.2g)", p.inner.Name(), p.sigma)
}

// Assign perturbs the size seen by the inner SITA policy.
func (p *EstimatedSITA) Assign(j workload.Job, v server.View) int {
	if p.sigma > 0 {
		j.Size *= math.Exp(p.sigma * p.rng.NormFloat64())
	}
	return p.inner.Assign(j, v)
}
