package policy

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sita/internal/hostindex"
	"sita/internal/server"
	"sita/internal/workload"
)

// In practice (paper §1.2), Least-Work-Left is implemented by the *users*:
// each submitted job carries a runtime estimate, and the work left at a
// host is the sum of the estimates of its queued jobs. The policies below
// model that reality: dispatchers that never see true sizes or true
// backlogs, only noisy estimates, bookkeeping their own view of each
// host's queue.

// EstimatedLWL is Least-Work-Left driven entirely by noisy runtime
// estimates: the dispatcher tracks each host's estimated backlog itself
// (crediting the estimate on assignment, draining it with wall-clock time)
// and never consults the true system state. Estimation error is
// multiplicative lognormal: estimate = size * exp(sigma*N(0,1)), the
// standard model for human runtime estimates.
type EstimatedLWL struct {
	sigma float64
	rng   *rand.Rand
	// believed indexes the dispatcher's belief of when each host drains:
	// an incremental argmin over max(believedReadyAt - now, 0), replacing
	// the former O(h) scan over an estReadyAt slice with the same
	// lowest-index-wins pick (ScanEstimatedLWL keeps that scan as the
	// differential oracle).
	believed hostindex.TimedMin
	inited   bool
}

// NewEstimatedLWL builds the policy; sigma = 0 reproduces exact LWL
// behaviour (up to the backlog bookkeeping being belief-based).
// Panics if sigma < 0 or rng is nil.
func NewEstimatedLWL(sigma float64, rng *rand.Rand) *EstimatedLWL {
	if sigma < 0 || rng == nil {
		panic(fmt.Sprintf("policy: estimated LWL needs sigma >= 0 and a generator, got %v", sigma))
	}
	return &EstimatedLWL{sigma: sigma, rng: rng}
}

// Name identifies the policy in reports.
func (p *EstimatedLWL) Name() string {
	return fmt.Sprintf("LWL(est sigma=%.2g)", p.sigma)
}

// Estimate returns a noisy runtime estimate for a job size.
func (p *EstimatedLWL) Estimate(size float64) float64 {
	if p.sigma == 0 {
		return size
	}
	return size * math.Exp(p.sigma*p.rng.NormFloat64())
}

// Assign sends the job to the host with the smallest *believed* backlog
// and credits the job's estimate to that belief. The believed-backlog
// argmin is the same incremental index the server's true-backlog queries
// use, so selection is O(log h); the credited value is computed exactly as
// the old scan did — the belief floors at now before the estimate is added
// — so the belief trajectory, and with it the assignment stream and the
// rng draw order, stay bit-identical.
func (p *EstimatedLWL) Assign(j workload.Job, v server.View) int {
	if !p.inited {
		p.believed.Reset(v.Hosts())
		p.inited = true
	}
	now := j.Arrival
	best := p.believed.ArgMin(now)
	base := now
	if !p.believed.IsZero(best) {
		// Believed drain instant is still ahead of now; credit on top of it.
		base = p.believed.Key(best)
	}
	p.believed.SetKey(best, base+p.Estimate(j.Size))
	return best
}

// Oblivious reports that Assign never reads system state: the believed
// backlogs live inside the policy, advanced only by job arrivals and its
// own rng draws — the dispatcher of §1.2 genuinely never sees the true
// queues — so server.Run may take the direct-recurrence path.
func (*EstimatedLWL) Oblivious() bool { return true }

// EstimatedSITA routes by a noisy runtime estimate instead of the true
// size: the continuous version of the short/long misclassification model,
// appropriate when estimates come from a predictor rather than a binary
// user choice.
type EstimatedSITA struct {
	inner *SITA
	sigma float64
	rng   *rand.Rand
}

// NewEstimatedSITA wraps a SITA policy with lognormal estimate noise.
// Panics if inner is nil, sigma < 0, or rng is nil.
func NewEstimatedSITA(inner *SITA, sigma float64, rng *rand.Rand) *EstimatedSITA {
	if inner == nil || rng == nil || sigma < 0 {
		panic("policy: estimated SITA needs an inner policy, sigma >= 0 and a generator")
	}
	return &EstimatedSITA{inner: inner, sigma: sigma, rng: rng}
}

// Name identifies the policy in reports.
func (p *EstimatedSITA) Name() string {
	return fmt.Sprintf("%s(est sigma=%.2g)", p.inner.Name(), p.sigma)
}

// Assign perturbs the size seen by the inner SITA policy.
func (p *EstimatedSITA) Assign(j workload.Job, v server.View) int {
	if p.sigma > 0 {
		j.Size *= math.Exp(p.sigma * p.rng.NormFloat64())
	}
	return p.inner.Assign(j, v)
}

// Oblivious forwards the inner policy's capability (always true today —
// the inner policy is a *SITA — but written as a delegation so the claim
// tracks the wrapped instance, as Misclassify's does).
func (p *EstimatedSITA) Oblivious() bool { return server.IsOblivious(p.inner) }
