package policy

import (
	"fmt"
	"math"

	"sita/internal/server"
	"sita/internal/workload"
)

// Linear-scan reference implementations of the indexed policies. Each one
// is the pre-index O(h) code, verbatim, kept for two jobs: the
// differential tests prove the indexed policies reproduce these scans'
// assignment streams bit-for-bit (including lowest-index tie-breaking),
// and the many-hosts benchmarks measure the indexed fast path against
// them. They are not registered with any experiment driver.

// ScanShortestQueue is Shortest-Queue by an O(h) NumJobs scan.
type ScanShortestQueue struct{}

// NewScanShortestQueue builds the reference policy.
func NewScanShortestQueue() ScanShortestQueue { return ScanShortestQueue{} }

// Name identifies the policy in reports.
func (ScanShortestQueue) Name() string { return "Shortest-Queue/scan" }

// Assign picks the host with the fewest jobs, ties to the lowest index.
func (ScanShortestQueue) Assign(_ workload.Job, v server.View) int {
	best, bestN := 0, v.NumJobs(0)
	for i := 1; i < v.Hosts(); i++ {
		if n := v.NumJobs(i); n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// ScanLeastWorkLeft is Least-Work-Left by an O(h) WorkLeft scan.
type ScanLeastWorkLeft struct{}

// NewScanLeastWorkLeft builds the reference policy.
func NewScanLeastWorkLeft() ScanLeastWorkLeft { return ScanLeastWorkLeft{} }

// Name identifies the policy in reports.
func (ScanLeastWorkLeft) Name() string { return "Least-Work-Left/scan" }

// Assign picks the host with minimal backlog, ties to the lowest index.
func (ScanLeastWorkLeft) Assign(_ workload.Job, v server.View) int {
	best, bestW := 0, v.WorkLeft(0)
	for i := 1; i < v.Hosts(); i++ {
		if w := v.WorkLeft(i); w < bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ScanCentralQueue is Central-Queue by an O(h) Idle scan.
type ScanCentralQueue struct{}

// NewScanCentralQueue builds the reference policy.
func NewScanCentralQueue() ScanCentralQueue { return ScanCentralQueue{} }

// Name identifies the policy in reports.
func (ScanCentralQueue) Name() string { return "Central-Queue/scan" }

// Assign sends the job to the lowest-indexed idle host, else holds it.
func (ScanCentralQueue) Assign(_ workload.Job, v server.View) int {
	for i := 0; i < v.Hosts(); i++ {
		if v.Idle(i) {
			return i
		}
	}
	return server.Central
}

// ScanGroupedSITA is GroupedSITA with the within-group LWL done by an
// O(group) WorkLeft scan.
type ScanGroupedSITA struct {
	cutoff     float64
	shortHosts int
}

// NewScanGroupedSITA builds the reference policy.
// Panics if shortHosts < 1.
func NewScanGroupedSITA(cutoff float64, shortHosts int) *ScanGroupedSITA {
	if shortHosts <= 0 {
		panic(fmt.Sprintf("policy: grouped SITA needs at least one short host, got %d", shortHosts))
	}
	return &ScanGroupedSITA{cutoff: cutoff, shortHosts: shortHosts}
}

// Name identifies the policy in reports.
func (p *ScanGroupedSITA) Name() string { return "SITA+LWL/scan" }

// Assign classifies by the cutoff, then scans the group for minimal backlog.
func (p *ScanGroupedSITA) Assign(j workload.Job, v server.View) int {
	lo, hi := 0, p.shortHosts
	if j.Size > p.cutoff {
		lo, hi = p.shortHosts, v.Hosts()
	}
	if lo >= hi {
		//lint:allow panicpolicy invariant: NewScanGroupedSITA validates shortHosts, so an empty group means the view shrank mid-run
		panic(fmt.Sprintf("policy: grouped SITA group [%d, %d) empty with %d hosts", lo, hi, v.Hosts()))
	}
	best, bestW := lo, v.WorkLeft(lo)
	for i := lo + 1; i < hi; i++ {
		if w := v.WorkLeft(i); w < bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ScanEstimatedLWL is EstimatedLWL with the believed-backlog argmin done
// by an O(h) scan over the dispatcher's own bookkeeping — the pre-index
// implementation, kept as the differential oracle for EstimatedLWL.
type ScanEstimatedLWL struct {
	inner *EstimatedLWL
	// estReadyAt[h] is the dispatcher's belief of when host h drains.
	estReadyAt []float64
}

// NewScanEstimatedLWL builds the reference policy around a fresh
// EstimatedLWL used only for its Estimate stream (same sigma, same rng).
// Panics if inner is nil.
func NewScanEstimatedLWL(inner *EstimatedLWL) *ScanEstimatedLWL {
	if inner == nil {
		panic("policy: scan estimated LWL needs an inner policy")
	}
	return &ScanEstimatedLWL{inner: inner}
}

// Name identifies the policy in reports.
func (p *ScanEstimatedLWL) Name() string { return p.inner.Name() + "/scan" }

// Assign sends the job to the host with the smallest believed backlog and
// credits the job's estimate to that belief.
func (p *ScanEstimatedLWL) Assign(j workload.Job, v server.View) int {
	if p.estReadyAt == nil {
		p.estReadyAt = make([]float64, v.Hosts())
	}
	now := j.Arrival
	best, bestLeft := 0, math.Inf(1)
	for i := range p.estReadyAt {
		left := p.estReadyAt[i] - now
		if left < 0 {
			left = 0
		}
		if left < bestLeft {
			best, bestLeft = i, left
		}
	}
	if p.estReadyAt[best] < now {
		p.estReadyAt[best] = now
	}
	p.estReadyAt[best] += p.inner.Estimate(j.Size)
	return best
}
