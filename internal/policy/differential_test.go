package policy

import (
	"math/rand/v2"
	"strconv"
	"strings"
	"testing"

	"sita/internal/dist"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/workload"
)

// Differential suite: every indexed policy must produce the bit-identical
// record stream of its retained linear-scan reference (scan.go) on the
// same trace — same hosts, same start and departure floats — including
// the lowest-index tie-breaks that only show up when several hosts hold
// exactly equal work or job counts. Two trace families cover that: random
// heavy-tailed Poisson streams (generic behaviour) and integer-valued
// tie traps (simultaneous arrivals, equal sizes, arrivals landing exactly
// on departures, so clamped work-left values collide exactly).

// recordKey renders a record stream bit-exactly (hex floats, no rounding).
func recordKey(recs []server.JobRecord) string {
	var b strings.Builder
	hx := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	for _, r := range recs {
		b.WriteString(strconv.Itoa(r.ID))
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(r.Host))
		b.WriteByte(' ')
		b.WriteString(hx(r.Start))
		b.WriteByte(' ')
		b.WriteString(hx(r.Departure))
		b.WriteByte('\n')
	}
	return b.String()
}

// tieTrapJobs builds an integer-timed stream engineered for exact float
// collisions: arrivals at whole instants, sizes from a tiny integer set,
// so many hosts repeatedly tie at identical work-left and job counts and
// only the lowest-index rule decides.
func tieTrapJobs(rng *rand.Rand, n int) []workload.Job {
	jobs := make([]workload.Job, n)
	now := 0.0
	for i := range jobs {
		now += float64(rng.IntN(2)) // 0 or 1: bursts of simultaneous arrivals
		jobs[i] = workload.Job{ID: i, Arrival: now, Size: float64(1 + rng.IntN(4))}
	}
	return jobs
}

func diffPolicies(t *testing.T, name string, hosts int, jobs []workload.Job,
	indexed, scan server.Policy, order server.CentralOrder) {
	t.Helper()
	a := server.Run(jobs, server.Config{Hosts: hosts, Policy: indexed, CentralOrder: order, KeepRecords: true})
	b := server.Run(jobs, server.Config{Hosts: hosts, Policy: scan, CentralOrder: order, KeepRecords: true})
	if ka, kb := recordKey(a.Records), recordKey(b.Records); ka != kb {
		i := 0
		for i < len(ka) && i < len(kb) && ka[i] == kb[i] {
			i++
		}
		t.Fatalf("%s h=%d: indexed and scan record streams diverge near byte %d:\nindexed: %.120s\nscan:    %.120s",
			name, hosts, i, ka[max(0, i-40):], kb[max(0, i-40):])
	}
}

func TestIndexedPoliciesMatchScanReference(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e4)
	for _, hosts := range []int{1, 2, 3, 7, 16, 33, 64} {
		for seed := uint64(0); seed < 3; seed++ {
			random := poissonJobs(4000, 0.85, hosts, size, 100+seed)
			traps := tieTrapJobs(sim.NewRNG(200+seed, uint64(hosts)), 4000)
			for _, trace := range []struct {
				name string
				jobs []workload.Job
			}{{"random", random}, {"tietrap", traps}} {
				cut := size.LoadCutoff(0.5)
				shortHosts := (hosts + 1) / 2
				cases := []struct {
					name          string
					indexed, scan server.Policy
					order         server.CentralOrder
				}{
					{"lwl", NewLeastWorkLeft(), NewScanLeastWorkLeft(), server.CentralFCFS},
					{"shortest-queue", NewShortestQueue(), NewScanShortestQueue(), server.CentralFCFS},
					{"central-fcfs", NewCentralQueue(), NewScanCentralQueue(), server.CentralFCFS},
					{"central-sjf", NewCentralQueue(), NewScanCentralQueue(), server.CentralSJF},
					{"estimated-lwl", NewEstimatedLWL(0.5, sim.NewRNG(300+seed, 0)),
						NewScanEstimatedLWL(NewEstimatedLWL(0.5, sim.NewRNG(300+seed, 0))), server.CentralFCFS},
					{"estimated-lwl-exact", NewEstimatedLWL(0, sim.NewRNG(301, 0)),
						NewScanEstimatedLWL(NewEstimatedLWL(0, sim.NewRNG(301, 0))), server.CentralFCFS},
				}
				if hosts >= 2 { // grouped SITA needs a non-empty long group
					cases = append(cases, struct {
						name          string
						indexed, scan server.Policy
						order         server.CentralOrder
					}{"grouped-sita", NewGroupedSITA("g", cut, shortHosts), NewScanGroupedSITA(cut, shortHosts), server.CentralFCFS})
				}
				for _, c := range cases {
					diffPolicies(t, c.name+"/"+trace.name, hosts, trace.jobs, c.indexed, c.scan, c.order)
				}
			}
		}
	}
}

// TestIndexedPoliciesMatchScanOnPS runs the same differential on PS hosts,
// whose View answers MinWorkHost by an exact scan and MinJobsHost by the
// incremental index.
func TestIndexedPoliciesMatchScanOnPS(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e3)
	for _, hosts := range []int{2, 5, 16} {
		jobs := poissonJobs(2000, 0.8, hosts, size, 77)
		traps := tieTrapJobs(sim.NewRNG(78, uint64(hosts)), 2000)
		for _, trace := range [][]workload.Job{jobs, traps} {
			for _, c := range []struct {
				name          string
				indexed, scan server.Policy
			}{
				{"lwl", NewLeastWorkLeft(), NewScanLeastWorkLeft()},
				{"shortest-queue", NewShortestQueue(), NewScanShortestQueue()},
			} {
				a := server.RunPS(trace, server.Config{Hosts: hosts, Policy: c.indexed, KeepRecords: true})
				b := server.RunPS(trace, server.Config{Hosts: hosts, Policy: c.scan, KeepRecords: true})
				if recordKey(a.Records) != recordKey(b.Records) {
					t.Fatalf("%s h=%d: PS indexed and scan record streams diverge", c.name, hosts)
				}
			}
		}
	}
}
