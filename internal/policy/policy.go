// Package policy implements every task assignment policy the paper
// evaluates: the load-balancing family (Random, Round-Robin,
// Shortest-Queue, Least-Work-Left, Central-Queue, SITA-E) and the
// load-unbalancing family (SITA-U-opt, SITA-U-fair), plus the grouped
// SITA+LWL hybrid the paper uses for systems with many hosts (section 5)
// and a misclassification wrapper for the user-estimate sensitivity
// analysis (section 7).
//
// Policies are stateful per run where needed (Round-Robin's counter,
// Random's generator); build a fresh policy per simulation — policies are
// not safe for concurrent use and must not be shared across cells.
// Dispatch decisions are deterministic: they depend only on the policy's
// own state and the host snapshot it is shown, with randomness confined
// to the sim.RNG stream injected at construction. The indexed variants
// keep their hostindex structures in reusable storage, so host selection
// stays allocation-free on the simulation hot path.
package policy

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"sita/internal/server"
	"sita/internal/workload"
)

// Random assigns each job to a host chosen uniformly at random: Bernoulli
// splitting, which equalizes the expected (not actual) number of jobs per
// host.
type Random struct {
	rng *rand.Rand
}

// NewRandom builds a Random policy with its own generator.
// Panics if rng is nil.
func NewRandom(rng *rand.Rand) *Random {
	if rng == nil {
		panic("policy: random needs a generator")
	}
	return &Random{rng: rng}
}

// Name identifies the policy in reports.
func (*Random) Name() string { return "Random" }

// Assign picks a uniform host.
func (p *Random) Assign(_ workload.Job, v server.View) int {
	return p.rng.IntN(v.Hosts())
}

// Oblivious reports that Assign never reads system state (only the host
// count and the policy's own generator), so server.Run may take the
// direct-recurrence path.
func (*Random) Oblivious() bool { return true }

// RoundRobin assigns the i-th arriving job to host i mod h, equalizing the
// expected number of jobs per host with less interarrival variability than
// Random.
type RoundRobin struct {
	next int
}

// NewRoundRobin builds a RoundRobin policy starting at host 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name identifies the policy in reports.
func (*RoundRobin) Name() string { return "Round-Robin" }

// Assign cycles through the hosts.
func (p *RoundRobin) Assign(_ workload.Job, v server.View) int {
	idx := p.next
	p.next = (p.next + 1) % v.Hosts()
	return idx
}

// Oblivious reports that Assign never reads system state (only the host
// count and the policy's own counter), so server.Run may take the
// direct-recurrence path.
func (*RoundRobin) Oblivious() bool { return true }

// ShortestQueue sends each job to the host currently holding the fewest
// jobs, equalizing the instantaneous number of jobs. Ties break to the
// lowest index.
type ShortestQueue struct{}

// NewShortestQueue builds the policy.
func NewShortestQueue() ShortestQueue { return ShortestQueue{} }

// Name identifies the policy in reports.
func (ShortestQueue) Name() string { return "Shortest-Queue" }

// Assign picks the host with the fewest jobs via the view's incremental
// jobs index — O(log h) instead of an O(h) scan, same pick (the index
// breaks exact ties to the lowest host, as the scan did).
func (ShortestQueue) Assign(_ workload.Job, v server.View) int {
	return v.MinJobsHost()
}

// LeastWorkLeft sends each job to the host with the least unfinished work —
// the closest a push policy comes to instantaneous load balance. Requires
// (an estimate of) job sizes to account the backlog. Ties break to the
// lowest index.
type LeastWorkLeft struct{}

// NewLeastWorkLeft builds the policy.
func NewLeastWorkLeft() LeastWorkLeft { return LeastWorkLeft{} }

// Name identifies the policy in reports.
func (LeastWorkLeft) Name() string { return "Least-Work-Left" }

// Assign picks the host with minimal backlog via the view's incremental
// work index — O(log h) instead of an O(h) scan, same pick including the
// lowest-index tie-break among drained hosts.
func (LeastWorkLeft) Assign(_ workload.Job, v server.View) int {
	return v.MinWorkHost()
}

// CentralQueue holds every job in a FCFS queue at the dispatcher; a host
// pulls the next job the moment it goes idle. Provably equivalent to
// Least-Work-Left for any job sequence (Harchol-Balter, Crovella, Murta
// 1999); the property test in this package checks exactly that.
type CentralQueue struct{}

// NewCentralQueue builds the policy.
func NewCentralQueue() CentralQueue { return CentralQueue{} }

// Name identifies the policy in reports.
func (CentralQueue) Name() string { return "Central-Queue" }

// Assign sends the job to an idle host when one exists, otherwise holds it
// centrally. The view's idle freelist answers in O(1) amortized; the old
// O(h) scan picked the same lowest-indexed idle host.
func (CentralQueue) Assign(_ workload.Job, v server.View) int {
	if i := v.NextIdleHost(); i >= 0 {
		return i
	}
	return server.Central
}

// SITA is Size Interval Task Assignment: host i serves jobs whose size
// falls in (cutoffs[i-1], cutoffs[i]]. The cutoff vector determines the
// variant: equal-load cutoffs give SITA-E, slowdown-minimizing cutoffs give
// SITA-U-opt, fairness cutoffs give SITA-U-fair (see internal/queueing and
// internal/core for the searches).
type SITA struct {
	label   string
	cutoffs []float64
}

// NewSITA builds a size-interval policy with the given display label and
// ascending cutoffs (len = hosts-1). Panics if the cutoffs do not ascend.
func NewSITA(label string, cutoffs []float64) *SITA {
	if !sort.Float64sAreSorted(cutoffs) {
		panic(fmt.Sprintf("policy: SITA cutoffs must ascend, got %v", cutoffs))
	}
	cp := make([]float64, len(cutoffs))
	copy(cp, cutoffs)
	return &SITA{label: label, cutoffs: cp}
}

// Name identifies the policy in reports.
func (p *SITA) Name() string { return p.label }

// Cutoffs returns a copy of the policy's cutoffs.
func (p *SITA) Cutoffs() []float64 {
	cp := make([]float64, len(p.cutoffs))
	copy(cp, p.cutoffs)
	return cp
}

// Assign routes by size interval. SearchFloat64s returns the first cutoff
// >= size, so a size exactly on a cutoff lands in the lower interval,
// matching the (lo, hi] convention of the analysis.
func (p *SITA) Assign(j workload.Job, v server.View) int {
	idx := sort.SearchFloat64s(p.cutoffs, j.Size)
	if idx >= v.Hosts() {
		return v.Hosts() - 1
	}
	return idx
}

// Oblivious reports that Assign never reads system state (only the job
// size, the fixed cutoffs and the host count), so server.Run may take the
// direct-recurrence path.
func (*SITA) Oblivious() bool { return true }

// GroupedSITA is the paper's section-5 construction for systems with many
// hosts: hosts are divided into a short group and a long group, the 2-host
// cutoff classifies each job as short or long, and Least-Work-Left runs
// within the chosen group.
type GroupedSITA struct {
	label      string
	cutoff     float64
	shortHosts int // hosts [0, shortHosts) serve short jobs
}

// NewGroupedSITA builds the hybrid policy; shortHosts of the system's hosts
// form the short group. Panics if shortHosts < 1.
func NewGroupedSITA(label string, cutoff float64, shortHosts int) *GroupedSITA {
	if shortHosts <= 0 {
		panic(fmt.Sprintf("policy: grouped SITA needs at least one short host, got %d", shortHosts))
	}
	return &GroupedSITA{label: label, cutoff: cutoff, shortHosts: shortHosts}
}

// Name identifies the policy in reports.
func (p *GroupedSITA) Name() string { return p.label }

// Assign classifies by the 2-host cutoff, then runs LWL within the group.
func (p *GroupedSITA) Assign(j workload.Job, v server.View) int {
	lo, hi := 0, p.shortHosts
	if j.Size > p.cutoff {
		lo, hi = p.shortHosts, v.Hosts()
	}
	if lo >= hi {
		//lint:allow panicpolicy invariant: NewGroupedSITA validates shortHosts, so an empty group means the view shrank mid-run
		panic(fmt.Sprintf("policy: grouped SITA group [%d, %d) empty with %d hosts", lo, hi, v.Hosts()))
	}
	return v.MinWorkHostIn(lo, hi)
}

// Misclassify wraps a size-based policy to model imperfect user runtime
// estimates (section 7): with probability P the job is presented to the
// inner policy with a size drawn from the opposite side of the cutoff, so
// it is routed as if the user misjudged short vs long.
type Misclassify struct {
	inner  server.Policy
	cutoff float64
	p      float64
	mode   MisclassifyMode
	rng    *rand.Rand
}

// MisclassifyMode selects which direction of estimation error the wrapper
// injects. The two directions are not symmetric: a short job claiming to be
// long only hurts itself (it waits on the long host but adds negligible
// work), while a long job claiming to be short drags an elephant onto the
// short host and delays thousands of small jobs behind it (section 7).
type MisclassifyMode int

// Misclassification directions.
const (
	// FlipBoth flips every job's class with probability p.
	FlipBoth MisclassifyMode = iota
	// FlipShortOnly makes only short jobs claim to be long.
	FlipShortOnly
	// FlipLongOnly makes only long jobs claim to be short.
	FlipLongOnly
)

// NewMisclassify wraps inner; cutoff separates short from long, p is the
// per-job misclassification probability, applied in both directions.
func NewMisclassify(inner server.Policy, cutoff, p float64, rng *rand.Rand) *Misclassify {
	return NewMisclassifyMode(inner, cutoff, p, FlipBoth, rng)
}

// NewMisclassifyMode wraps inner with a directional error model.
// Panics if inner or rng is nil, or p is outside [0, 1].
func NewMisclassifyMode(inner server.Policy, cutoff, p float64, mode MisclassifyMode, rng *rand.Rand) *Misclassify {
	if inner == nil || rng == nil {
		panic("policy: misclassify needs an inner policy and a generator")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("policy: misclassification probability %v outside [0,1]", p))
	}
	return &Misclassify{inner: inner, cutoff: cutoff, p: p, mode: mode, rng: rng}
}

// Name identifies the policy in reports.
func (m *Misclassify) Name() string {
	return fmt.Sprintf("%s+err%.0f%%", m.inner.Name(), m.p*100)
}

// Assign flips the job's apparent class with probability P (subject to the
// direction mode) before delegating.
func (m *Misclassify) Assign(j workload.Job, v server.View) int {
	short := j.Size <= m.cutoff
	eligible := m.mode == FlipBoth ||
		(m.mode == FlipShortOnly && short) ||
		(m.mode == FlipLongOnly && !short)
	if eligible && m.rng.Float64() < m.p {
		lied := j
		if short {
			lied.Size = m.cutoff * 2 // claim "long"
		} else {
			lied.Size = m.cutoff / 2 // claim "short"
		}
		return m.inner.Assign(lied, v)
	}
	return m.inner.Assign(j, v)
}

// Oblivious forwards the inner policy's capability: the wrapper itself
// adds only a size perturbation and an rng draw, both state-blind, so the
// wrapped pair is oblivious exactly when the inner policy is. Wrapping
// Shortest-Queue yields false; wrapping SITA yields true.
func (m *Misclassify) Oblivious() bool { return server.IsOblivious(m.inner) }
