package policy

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"sita/internal/dist"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/workload"
)

func poissonJobs(n int, load float64, hosts int, size dist.Distribution, seed uint64) []workload.Job {
	lambda := workload.RateForLoad(load, size.Moment(1), hosts)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(seed, 0), sim.NewRNG(seed, 1))
	return src.Take(n)
}

func TestRandomSpreadsJobs(t *testing.T) {
	size := dist.NewExponential(1)
	jobs := poissonJobs(20000, 0.5, 4, size, 1)
	res := server.Run(jobs, server.Config{Hosts: 4, Policy: NewRandom(sim.NewRNG(1, 5))})
	for i, n := range res.PerHostJobs {
		if math.Abs(float64(n)-5000) > 500 {
			t.Errorf("host %d got %d jobs, want ~5000", i, n)
		}
	}
}

func TestRoundRobinExactCycle(t *testing.T) {
	size := dist.Deterministic{Value: 1}
	jobs := poissonJobs(4000, 0.5, 4, size, 2)
	res := server.Run(jobs, server.Config{Hosts: 4, Policy: NewRoundRobin()})
	for i, n := range res.PerHostJobs {
		if n != 1000 {
			t.Errorf("host %d got %d jobs, want exactly 1000", i, n)
		}
	}
}

func TestShortestQueuePrefersEmptyHost(t *testing.T) {
	// Two simultaneous arrivals: first to host 0, second must go to host 1.
	jobs := []workload.Job{
		{ID: 0, Arrival: 0, Size: 10},
		{ID: 1, Arrival: 0.1, Size: 10},
	}
	res := server.Run(jobs, server.Config{Hosts: 2, Policy: NewShortestQueue(), KeepRecords: true})
	if res.Records[0].Host == res.Records[1].Host {
		t.Fatal("shortest-queue stacked both jobs on one host")
	}
}

func TestLeastWorkLeftPicksSmallestBacklog(t *testing.T) {
	// Host 0 gets a 100s job, host 1 a 1s job; the third job (arriving at
	// t=0.5) must go to host 1.
	jobs := []workload.Job{
		{ID: 0, Arrival: 0, Size: 100},
		{ID: 1, Arrival: 0.1, Size: 1},
		{ID: 2, Arrival: 0.5, Size: 5},
	}
	res := server.Run(jobs, server.Config{Hosts: 2, Policy: NewLeastWorkLeft(), KeepRecords: true})
	byID := map[int]server.JobRecord{}
	for _, r := range res.Records {
		byID[r.ID] = r
	}
	if byID[2].Host != 1 {
		t.Fatalf("job 2 went to host %d, want 1 (least work left)", byID[2].Host)
	}
}

func TestCentralQueueEquivalentToLWL(t *testing.T) {
	// The paper (citing [11]) uses the equivalence of Central-Queue and
	// Least-Work-Left to simulate only the latter. Verify the per-job
	// response times coincide on random Poisson/Bounded-Pareto inputs.
	size := dist.NewBoundedPareto(1.1, 1, 1e4)
	f := func(seed uint64, hostsRaw uint8) bool {
		hosts := 2 + int(hostsRaw)%6
		jobs := poissonJobs(3000, 0.8, hosts, size, seed)
		lwl := server.Run(jobs, server.Config{Hosts: hosts, Policy: NewLeastWorkLeft(), KeepRecords: true})
		cq := server.Run(jobs, server.Config{Hosts: hosts, Policy: NewCentralQueue(), KeepRecords: true})
		for i := range lwl.Records {
			a, b := lwl.Records[i], cq.Records[i]
			if math.Abs(a.Start-b.Start) > 1e-6*(1+math.Abs(a.Start)) {
				t.Logf("seed %d hosts %d: job %d starts %v (LWL) vs %v (CQ)",
					seed, hosts, a.ID, a.Start, b.Start)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestSITARoutesBySize(t *testing.T) {
	p := NewSITA("SITA", []float64{10, 100})
	jobs := []workload.Job{
		{ID: 0, Arrival: 0, Size: 5},    // host 0
		{ID: 1, Arrival: 1, Size: 10},   // host 0 (boundary belongs below)
		{ID: 2, Arrival: 2, Size: 10.1}, // host 1
		{ID: 3, Arrival: 3, Size: 100},  // host 1
		{ID: 4, Arrival: 4, Size: 5000}, // host 2
	}
	res := server.Run(jobs, server.Config{Hosts: 3, Policy: p, KeepRecords: true})
	want := []int{0, 0, 1, 1, 2}
	byID := map[int]server.JobRecord{}
	for _, r := range res.Records {
		byID[r.ID] = r
	}
	for id, w := range want {
		if byID[id].Host != w {
			t.Errorf("job %d on host %d, want %d", id, byID[id].Host, w)
		}
	}
}

func TestSITACutoffsCopied(t *testing.T) {
	cuts := []float64{1, 2}
	p := NewSITA("s", cuts)
	cuts[0] = 99
	if p.Cutoffs()[0] != 1 {
		t.Fatal("constructor did not copy cutoffs")
	}
	got := p.Cutoffs()
	got[1] = 77
	if p.Cutoffs()[1] != 2 {
		t.Fatal("accessor did not copy cutoffs")
	}
}

func TestSITAUnsortedCutoffsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSITA("bad", []float64{5, 1})
}

func TestSITAEBalancesLoadInSimulation(t *testing.T) {
	size := dist.NewBoundedPareto(0.9, 10, 1e6)
	cut := size.LoadCutoff(0.5)
	jobs := poissonJobs(150000, 0.6, 2, size, 7)
	res := server.Run(jobs, server.Config{Hosts: 2, Policy: NewSITA("SITA-E", []float64{cut})})
	fr := res.LoadFractions()
	if math.Abs(fr[0]-0.5) > 0.08 {
		t.Fatalf("SITA-E load fractions %v, want ~[0.5, 0.5]", fr)
	}
	// Nearly all jobs should be on host 0.
	if float64(res.PerHostJobs[0])/float64(res.PerHostJobs[0]+res.PerHostJobs[1]) < 0.95 {
		t.Fatalf("job split %v, want heavy majority on host 0", res.PerHostJobs)
	}
}

func TestGroupedSITASplitsGroups(t *testing.T) {
	p := NewGroupedSITA("grouped", 10, 2)
	jobs := []workload.Job{
		{ID: 0, Arrival: 0, Size: 1},
		{ID: 1, Arrival: 0.1, Size: 2},
		{ID: 2, Arrival: 0.2, Size: 3},
		{ID: 3, Arrival: 0.3, Size: 50},
		{ID: 4, Arrival: 0.4, Size: 60},
	}
	res := server.Run(jobs, server.Config{Hosts: 4, Policy: p, KeepRecords: true})
	for _, r := range res.Records {
		if r.Size <= 10 && r.Host >= 2 {
			t.Errorf("short job %d on long host %d", r.ID, r.Host)
		}
		if r.Size > 10 && r.Host < 2 {
			t.Errorf("long job %d on short host %d", r.ID, r.Host)
		}
	}
	// LWL within group: jobs 0 and 1 land on different short hosts.
	byID := map[int]server.JobRecord{}
	for _, r := range res.Records {
		byID[r.ID] = r
	}
	if byID[0].Host == byID[1].Host {
		t.Error("grouped SITA should spread simultaneous shorts via LWL")
	}
	if byID[3].Host == byID[4].Host {
		t.Error("grouped SITA should spread longs via LWL")
	}
}

func TestGroupedSITAValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroupedSITA("bad", 10, 0)
}

func TestMisclassifyZeroProbabilityIdentical(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e4)
	cut := size.LoadCutoff(0.5)
	jobs := poissonJobs(5000, 0.6, 2, size, 3)
	pure := server.Run(jobs, server.Config{Hosts: 2, Policy: NewSITA("s", []float64{cut}), KeepRecords: true})
	wrapped := server.Run(jobs, server.Config{
		Hosts:       2,
		Policy:      NewMisclassify(NewSITA("s", []float64{cut}), cut, 0, sim.NewRNG(9, 0)),
		KeepRecords: true,
	})
	for i := range pure.Records {
		if pure.Records[i].Host != wrapped.Records[i].Host {
			t.Fatalf("p=0 wrapper changed routing at job %d", i)
		}
	}
}

func TestMisclassifyFlipsExpectedFraction(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e4)
	cut := size.LoadCutoff(0.5)
	jobs := poissonJobs(30000, 0.5, 2, size, 4)
	p := 0.2
	res := server.Run(jobs, server.Config{
		Hosts:       2,
		Policy:      NewMisclassify(NewSITA("s", []float64{cut}), cut, p, sim.NewRNG(10, 0)),
		KeepRecords: true,
	})
	flipped := 0
	for _, r := range res.Records {
		correct := 0
		if r.Size > cut {
			correct = 1
		}
		if r.Host != correct {
			flipped++
		}
	}
	frac := float64(flipped) / float64(len(res.Records))
	if math.Abs(frac-p) > 0.02 {
		t.Fatalf("flipped fraction %v, want ~%v", frac, p)
	}
}

func TestMisclassifyValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewMisclassify(nil, 1, 0.5, sim.NewRNG(1, 0)) },
		func() { NewMisclassify(NewRoundRobin(), 1, 1.5, sim.NewRNG(1, 0)) },
		func() { NewRandom(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]server.Policy{
		"Random":          NewRandom(sim.NewRNG(0, 0)),
		"Round-Robin":     NewRoundRobin(),
		"Shortest-Queue":  NewShortestQueue(),
		"Least-Work-Left": NewLeastWorkLeft(),
		"Central-Queue":   NewCentralQueue(),
		"SITA-E":          NewSITA("SITA-E", nil),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("name %q, want %q", p.Name(), want)
		}
	}
	m := NewMisclassify(NewSITA("SITA-E", nil), 1, 0.25, sim.NewRNG(0, 0))
	if m.Name() != "SITA-E+err25%" {
		t.Errorf("misclassify name %q", m.Name())
	}
}

func TestPoliciesKeepAllJobsSortedOutput(t *testing.T) {
	// Smoke test every policy end to end on the same workload; every run
	// must complete all jobs and produce sane slowdowns.
	size := dist.NewBoundedPareto(1.1, 1, 1e5)
	cut := size.LoadCutoff(0.5)
	jobs := poissonJobs(20000, 0.7, 2, size, 11)
	policies := []server.Policy{
		NewRandom(sim.NewRNG(11, 5)),
		NewRoundRobin(),
		NewShortestQueue(),
		NewLeastWorkLeft(),
		NewCentralQueue(),
		NewSITA("SITA-E", []float64{cut}),
		NewGroupedSITA("grouped", cut, 1),
		NewMisclassify(NewSITA("SITA-E", []float64{cut}), cut, 0.1, sim.NewRNG(11, 6)),
	}
	for _, p := range policies {
		res := server.Run(jobs, server.Config{Hosts: 2, Policy: p})
		if res.Slowdown.Count() != int64(len(jobs)) {
			t.Errorf("%s: completed %d of %d", p.Name(), res.Slowdown.Count(), len(jobs))
		}
		if res.Slowdown.Min() < 1 {
			t.Errorf("%s: slowdown %v < 1", p.Name(), res.Slowdown.Min())
		}
	}
}

func TestShortestQueueTieBreaksDeterministic(t *testing.T) {
	// With all hosts empty the lowest index wins; the run is fully
	// deterministic.
	jobs := poissonJobs(1000, 0.5, 3, dist.NewExponential(1), 21)
	a := server.Run(jobs, server.Config{Hosts: 3, Policy: NewShortestQueue(), KeepRecords: true})
	b := server.Run(jobs, server.Config{Hosts: 3, Policy: NewShortestQueue(), KeepRecords: true})
	for i := range a.Records {
		if a.Records[i].Host != b.Records[i].Host {
			t.Fatal("shortest-queue not deterministic")
		}
	}
	if !sort.SliceIsSorted(a.Records, func(i, j int) bool {
		return a.Records[i].Departure <= a.Records[j].Departure
	}) {
		t.Fatal("records not in completion order")
	}
}
