package policy

import (
	"math"
	"testing"

	"sita/internal/dist"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/workload"
)

type workloadJob = workload.Job

func TestEstimatedLWLZeroNoiseMatchesTrueLWL(t *testing.T) {
	// With sigma = 0 and hosts drained only by time, the belief-based
	// backlog equals the true backlog, so routing matches exact LWL.
	size := dist.NewBoundedPareto(1.3, 1, 1e4)
	jobs := poissonJobs(20000, 0.7, 2, size, 31)
	exact := server.Run(jobs, server.Config{Hosts: 2, Policy: NewLeastWorkLeft(), KeepRecords: true})
	est := server.Run(jobs, server.Config{Hosts: 2, Policy: NewEstimatedLWL(0, sim.NewRNG(31, 9)), KeepRecords: true})
	for i := range exact.Records {
		if exact.Records[i].Host != est.Records[i].Host {
			t.Fatalf("sigma=0 estimated LWL diverged from exact LWL at job %d", i)
		}
	}
}

func TestEstimatedLWLDegradesWithNoise(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e5)
	jobs := poissonJobs(25000, 0.7, 2, size, 33)
	clean := server.Run(jobs, server.Config{Hosts: 2, Policy: NewEstimatedLWL(0, sim.NewRNG(33, 9))})
	noisy := server.Run(jobs, server.Config{Hosts: 2, Policy: NewEstimatedLWL(1.6, sim.NewRNG(33, 10))})
	if noisy.Slowdown.Mean() <= clean.Slowdown.Mean() {
		t.Fatalf("severe estimate noise (%v) should hurt vs clean (%v)",
			noisy.Slowdown.Mean(), clean.Slowdown.Mean())
	}
}

func TestEstimatedSITAZeroNoiseIdentical(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e4)
	cut := size.LoadCutoff(0.5)
	jobs := poissonJobs(5000, 0.6, 2, size, 35)
	pure := server.Run(jobs, server.Config{Hosts: 2, Policy: NewSITA("s", []float64{cut}), KeepRecords: true})
	wrapped := server.Run(jobs, server.Config{Hosts: 2,
		Policy:      NewEstimatedSITA(NewSITA("s", []float64{cut}), 0, sim.NewRNG(35, 9)),
		KeepRecords: true})
	for i := range pure.Records {
		if pure.Records[i].Host != wrapped.Records[i].Host {
			t.Fatalf("sigma=0 wrapper changed routing at job %d", i)
		}
	}
}

func TestEstimatedSITAMisroutesBoundedFraction(t *testing.T) {
	// With moderate noise, only jobs whose size is within the noise band of
	// the cutoff can flip sides, so the misrouted fraction stays small.
	size := dist.NewBoundedPareto(1.1, 1, 1e5)
	cut := size.LoadCutoff(0.5)
	jobs := poissonJobs(30000, 0.6, 2, size, 37)
	res := server.Run(jobs, server.Config{Hosts: 2,
		Policy:      NewEstimatedSITA(NewSITA("s", []float64{cut}), 0.69, sim.NewRNG(37, 9)),
		KeepRecords: true})
	misrouted := 0
	for _, r := range res.Records {
		correct := 0
		if r.Size > cut {
			correct = 1
		}
		if r.Host != correct {
			misrouted++
		}
	}
	frac := float64(misrouted) / float64(len(res.Records))
	if frac > 0.05 {
		t.Fatalf("misrouted fraction %v with factor-2 noise, want small", frac)
	}
	if misrouted == 0 {
		t.Fatal("expected some misrouting with noise")
	}
}

func TestEstimateDistribution(t *testing.T) {
	p := NewEstimatedLWL(0.5, sim.NewRNG(41, 0))
	var sumLog float64
	const n = 50000
	for i := 0; i < n; i++ {
		sumLog += math.Log(p.Estimate(100) / 100)
	}
	// Lognormal noise has zero log-mean: the estimator is median-unbiased.
	if math.Abs(sumLog/n) > 0.01 {
		t.Fatalf("mean log error %v, want ~0", sumLog/n)
	}
}

func TestEstimatesValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewEstimatedLWL(-1, sim.NewRNG(1, 0)) },
		func() { NewEstimatedLWL(0, nil) },
		func() { NewEstimatedSITA(nil, 0, sim.NewRNG(1, 0)) },
		func() { NewEstimatedSITA(NewSITA("s", nil), -1, sim.NewRNG(1, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCentralSJFOrdersByceSize(t *testing.T) {
	// Host busy; three jobs held centrally; SJF releases smallest first.
	jobs := []struct{ arr, size float64 }{
		{0, 100}, // occupies the single host until t=100
		{1, 30},  // held
		{2, 5},   // held
		{3, 60},  // held
	}
	var list []server.JobRecord
	var input []workloadJob
	for i, j := range jobs {
		input = append(input, workloadJob{ID: i, Arrival: j.arr, Size: j.size})
	}
	res := server.Run(input, server.Config{
		Hosts:        1,
		Policy:       NewCentralQueue(),
		CentralOrder: server.CentralSJF,
		KeepRecords:  true,
	})
	list = res.Records
	byID := map[int]server.JobRecord{}
	for _, r := range list {
		byID[r.ID] = r
	}
	// SJF order after the long job: 2 (5s) at 100, 1 (30s) at 105, 3 at 135.
	if byID[2].Start != 100 || byID[1].Start != 105 || byID[3].Start != 135 {
		t.Fatalf("SJF starts: job2=%v job1=%v job3=%v, want 100/105/135",
			byID[2].Start, byID[1].Start, byID[3].Start)
	}
}
