package simtest

import (
	"math"
	"os"
	"testing"

	"sita/internal/policy"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/workload"
)

// longMode reports whether the extended property suite was requested
// (SIMTEST_LONG=1); see EXPERIMENTS.md. The short suite keeps CI fast;
// the long one multiplies trace counts and replication depth.
func longMode() bool { return os.Getenv("SIMTEST_LONG") != "" }

// scaled returns short in the default suite and long under SIMTEST_LONG.
func scaled(short, long int) int {
	if longMode() {
		return long
	}
	return short
}

// policyCase describes one policy under test. build returns a fresh,
// unshared instance (policies are stateful); perHostFCFS is false only
// for the SJF central queue, which legally serves a host's jobs out of
// arrival order.
type policyCase struct {
	name         string
	build        func() server.Policy
	centralOrder server.CentralOrder
	oblivious    bool
	perHostFCFS  bool
}

// sitaCutoffs are mid-range cutoffs for a 3-host SITA over the test
// traces (exponential mean 2, adversarial sizes up to ~60): all three
// hosts see traffic.
var sitaCutoffs = []float64{1.25, 4}

func policyCases() []policyCase {
	return []policyCase{
		{name: "random", build: func() server.Policy { return policy.NewRandom(sim.NewRNG(97, 5)) }, oblivious: true, perHostFCFS: true},
		{name: "round-robin", build: func() server.Policy { return policy.NewRoundRobin() }, oblivious: true, perHostFCFS: true},
		{name: "sita", build: func() server.Policy { return policy.NewSITA("sita", sitaCutoffs) }, oblivious: true, perHostFCFS: true},
		{name: "shortest-queue", build: func() server.Policy { return policy.NewShortestQueue() }, perHostFCFS: true},
		{name: "least-work-left", build: func() server.Policy { return policy.NewLeastWorkLeft() }, perHostFCFS: true},
		{name: "central-fcfs", build: func() server.Policy { return policy.NewCentralQueue() }, perHostFCFS: true},
		{name: "central-sjf", build: func() server.Policy { return policy.NewCentralQueue() }, centralOrder: server.CentralSJF},
	}
}

// invariantTraces are the fixed trace set the record-stream invariants
// run over: clean stochastic streams at moderate and near-saturation
// load, plus adversarial streams full of ties, bursts, and drains.
func invariantTraces(hosts int) map[string][]workload.Job {
	n := scaled(4000, 40000)
	return map[string][]workload.Job{
		"exp-mid":       GenExpJobs(11, n, 0.5, 2.0, hosts),
		"exp-high":      GenExpJobs(12, n, 0.95, 2.0, hosts),
		"adversarial-a": GenAdversarialJobs(13, n*3/4),
		"adversarial-b": GenAdversarialJobs(14, n*3/4),
	}
}

// TestRecordInvariantsAllPolicies drives every policy over every trace
// on the engine path with the kernel's dispatch-order assertion armed,
// and checks the full record-stream invariant set: completeness,
// Departure = Start + Size, per-host non-overlap, work conservation,
// FCFS order, result accounting, and Little's law against the
// event-accrued queue-length integral.
func TestRecordInvariantsAllPolicies(t *testing.T) {
	const hosts = 3
	traces := invariantTraces(hosts)
	for _, pc := range policyCases() {
		for tname, jobs := range traces {
			t.Run(pc.name+"/"+tname, func(t *testing.T) {
				cfg := server.Config{
					Hosts:        hosts,
					Policy:       pc.build(),
					CentralOrder: pc.centralOrder,
					OrderCheck:   true, // also pins the run to the engine path
				}
				res, _, err := RunChecked(jobs, cfg, pc.perHostFCFS)
				if err != nil {
					t.Fatal(err)
				}
				if res.MeanQueueLen == 0 {
					t.Fatalf("engine path reported MeanQueueLen = 0 on a contended trace — Little's law check was vacuous")
				}
			})
		}
	}
}

// TestRecordInvariantsDirectPath re-runs the oblivious policies through
// the direct-recurrence path (the default dispatch for them) and holds
// the record stream to the same invariants.
func TestRecordInvariantsDirectPath(t *testing.T) {
	const hosts = 3
	traces := invariantTraces(hosts)
	for _, pc := range policyCases() {
		if !pc.oblivious {
			continue
		}
		for tname, jobs := range traces {
			t.Run(pc.name+"/"+tname, func(t *testing.T) {
				cfg := server.Config{Hosts: hosts, Policy: pc.build()}
				if !server.DirectEligible(cfg) {
					t.Fatalf("expected %s to be direct-eligible", pc.name)
				}
				if _, _, err := RunChecked(jobs, cfg, pc.perHostFCFS); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestProcessorSharingRecordStream holds the PS path's OnRecord hook to
// the invariants that survive processor sharing: every job completes
// exactly once, responses are at least the size (unit-speed hosts), and
// Wait is the sharing-induced stretch, never negative.
func TestProcessorSharingRecordStream(t *testing.T) {
	const hosts = 3
	jobs := GenExpJobs(15, scaled(4000, 40000), 0.7, 2.0, hosts)
	seen := make(map[int]bool, len(jobs))
	cfg := server.Config{
		Hosts:  hosts,
		Policy: policy.NewRoundRobin(),
		OnRecord: func(rec server.JobRecord) {
			if seen[rec.ID] {
				t.Fatalf("PS: job %d completed twice", rec.ID)
			}
			seen[rec.ID] = true
			// PS response times come out of virtual-time arithmetic, so a
			// zero-contention stretch can round to a few ulps below zero —
			// unlike the FCFS paths, exact non-negativity is not promised.
			if rec.Wait() < -1e-9*(math.Abs(rec.Departure)+rec.Size) {
				t.Fatalf("PS: job %d has negative stretch %v", rec.ID, rec.Wait())
			}
			if rec.Slowdown() < 1-1e-9 {
				t.Fatalf("PS: job %d has slowdown %v < 1", rec.ID, rec.Slowdown())
			}
		},
	}
	server.RunPS(jobs, cfg)
	if len(seen) != len(jobs) {
		t.Fatalf("PS: %d of %d jobs reached OnRecord", len(seen), len(jobs))
	}
}
