package simtest

import (
	"fmt"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/workload"
)

// GenExpJobs generates n jobs with Poisson arrivals at the rate that
// loads hosts unit-speed hosts to load, and exponential sizes with mean
// meanSize — the synthetic traces the M/M/. oracles assume. Fully
// determined by (seed, n, load, meanSize, hosts).
func GenExpJobs(seed uint64, n int, load, meanSize float64, hosts int) []workload.Job {
	return GenPoissonJobs(seed, n, load, hosts, dist.NewExponential(meanSize))
}

// GenPoissonJobs generates n jobs with Poisson arrivals driving hosts
// unit-speed hosts at the given load and sizes drawn i.i.d. from d (rate
// is derived from d's mean). Distinct RNG streams for gaps and sizes
// match the convention used everywhere else in the repo, and the stream
// is fully determined by the arguments.
func GenPoissonJobs(seed uint64, n int, load float64, hosts int, d dist.Distribution) []workload.Job {
	src := workload.NewSource(
		workload.NewPoisson(workload.RateForLoad(load, d.Moment(1), hosts)),
		workload.DistSizes{D: d},
		sim.NewRNG(seed, 0), sim.NewRNG(seed, 1),
	)
	return src.Take(n)
}

// GenAdversarialJobs generates n jobs designed to stress tie-breaking
// and boundary behavior rather than match any clean stochastic model:
// bursts of simultaneous arrivals (zero gaps), exact-integer sizes that
// collide on the event heap, occasional huge jobs next to tiny ones,
// and stretches of idle time that fully drain the system. Deterministic
// in seed (stream 4: streams 0-3 are the generation/retiming
// conventions of workload and trace).
func GenAdversarialJobs(seed uint64, n int) []workload.Job {
	rng := sim.NewRNG(seed, 4)
	jobs := make([]workload.Job, n)
	clock := 0.0
	for i := range jobs {
		switch rng.IntN(10) {
		case 0, 1: // burst: same arrival instant as the previous job
		case 2: // drain: long idle gap
			clock += 50 + 10*float64(rng.IntN(5))
		default:
			clock += rng.Float64() * 2
		}
		var size float64
		switch rng.IntN(5) {
		case 0: // integer sizes collide exactly on the heap
			size = float64(1 + rng.IntN(4))
		case 1: // elephant
			size = 40 + rng.Float64()*20
		case 2: // mouse
			size = 1e-3 + rng.Float64()*1e-3
		default:
			size = 0.1 + rng.Float64()*3
		}
		jobs[i] = workload.Job{ID: i, Arrival: clock, Size: size}
	}
	return jobs
}

// ScaleJobs returns a copy of jobs with every arrival instant and size
// multiplied by c. With c an exact power of two the scaling is bit-exact
// in IEEE 754 (only the exponent changes), which is what makes the
// time-scaling metamorphic relation an equality rather than a tolerance
// check.
func ScaleJobs(jobs []workload.Job, c float64) []workload.Job {
	out := make([]workload.Job, len(jobs))
	for i, j := range jobs {
		out[i] = workload.Job{ID: j.ID, Arrival: j.Arrival * c, Size: j.Size * c}
	}
	return out
}

// FormatJobs renders a job slice compactly for failure reports, with
// full float precision so a shrunk counterexample can be pasted back
// into a regression test verbatim.
func FormatJobs(jobs []workload.Job) string {
	s := "[]workload.Job{\n"
	for _, j := range jobs {
		s += fmt.Sprintf("\t{ID: %d, Arrival: %v, Size: %v},\n", j.ID, j.Arrival, j.Size)
	}
	return s + "}"
}
