package simtest

import (
	"testing"

	"sita/internal/dist"
	"sita/internal/policy"
	"sita/internal/queueing"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// replicate runs reps independent simulations (fresh trace and fresh
// policy each) and returns the stream of per-replication values of f.
func replicate(reps int, gen func(rep uint64) []workload.Job, build func() server.Policy,
	order server.CentralOrder, hosts int, f func(*server.Result) float64) stats.Stream {
	var s stats.Stream
	for rep := 0; rep < reps; rep++ {
		jobs := gen(uint64(rep))
		res := server.Run(jobs, server.Config{
			Hosts:          hosts,
			Policy:         build(),
			CentralOrder:   order,
			WarmupFraction: 0.2,
		})
		s.Add(f(res))
	}
	return s
}

// checkOracle asserts that the replicated estimate agrees with the
// analytic value within max(5 standard errors, relTol relative): the
// stderr term absorbs replication noise, the relative floor absorbs the
// small finite-horizon bias a transient-start simulation always carries.
func checkOracle(t *testing.T, name string, got stats.Stream, want, relTol float64) {
	t.Helper()
	diff := got.Mean() - want
	if diff < 0 {
		diff = -diff
	}
	tol := 5 * got.StdErr()
	if relTol*want > tol {
		tol = relTol * want
	}
	if diff > tol {
		t.Errorf("%s: simulated %v +/- %v over %d reps, analytic %v (|diff| %v > tol %v)",
			name, got.Mean(), got.StdErr(), got.Count(), want, diff, tol)
	} else {
		t.Logf("%s: simulated %v +/- %v, analytic %v (diff %.3g, tol %.3g)",
			name, got.Mean(), got.StdErr(), want, diff, tol)
	}
}

// TestRandomPolicyMatchesMM1 pins the simulated Random system on an
// exponential synthetic trace to its exact analysis: Bernoulli splitting
// of a Poisson stream leaves each host an independent M/M/1 at rate
// lambda/h, so mean wait and mean response must match the closed forms.
func TestRandomPolicyMatchesMM1(t *testing.T) {
	const (
		hosts    = 2
		meanSize = 2.0
	)
	reps, n := scaled(12, 48), scaled(30000, 200000)
	for _, load := range []float64{0.5, 0.7} {
		lambda := workload.RateForLoad(load, meanSize, hosts)
		oracle := queueing.NewMM1(lambda/hosts, meanSize)
		gen := func(rep uint64) []workload.Job {
			return GenExpJobs(1000+rep, n, load, meanSize, hosts)
		}
		build := func() server.Policy { return policy.NewRandom(sim.NewRNG(31, 7)) }
		wait := replicate(reps, gen, build, server.CentralFCFS, hosts,
			func(r *server.Result) float64 { return r.Wait.Mean() })
		checkOracle(t, "random/wait", wait, oracle.MeanWait(), 0.02)
		resp := replicate(reps, gen, build, server.CentralFCFS, hosts,
			func(r *server.Result) float64 { return r.Response.Mean() })
		checkOracle(t, "random/response", resp, oracle.MeanResponse(), 0.02)
	}
}

// TestCentralQueueMatchesMMh pins the simulated Central-Queue system on
// an exponential synthetic trace to the M/M/h (Erlang-C) closed forms:
// one shared FCFS queue feeding h exponential servers is exactly that
// model.
func TestCentralQueueMatchesMMh(t *testing.T) {
	const (
		hosts    = 4
		meanSize = 2.0
	)
	reps, n := scaled(12, 48), scaled(30000, 200000)
	for _, load := range []float64{0.7, 0.9} {
		lambda := workload.RateForLoad(load, meanSize, hosts)
		oracle := queueing.NewMMh(lambda, meanSize, hosts)
		gen := func(rep uint64) []workload.Job {
			return GenExpJobs(2000+rep, n, load, meanSize, hosts)
		}
		build := func() server.Policy { return policy.NewCentralQueue() }
		wait := replicate(reps, gen, build, server.CentralFCFS, hosts,
			func(r *server.Result) float64 { return r.Wait.Mean() })
		checkOracle(t, "central/wait", wait, oracle.MeanWait(), 0.03)
		resp := replicate(reps, gen, build, server.CentralFCFS, hosts,
			func(r *server.Result) float64 { return r.Response.Mean() })
		checkOracle(t, "central/response", resp, oracle.MeanWait()+meanSize, 0.02)
	}
}

// TestRandomPolicySlowdownMatchesMG1 pins mean slowdown — the paper's
// headline metric — to the Pollaczek-Khinchine form E[S] = 1 +
// E[W]*E[1/X]. Exponential sizes have divergent E[1/X], so this oracle
// uses Uniform(0.5, 1.5) sizes, bounded away from zero, under Random
// splitting: each host is an independent M/G/1 at rate lambda/h.
func TestRandomPolicySlowdownMatchesMG1(t *testing.T) {
	const hosts = 2
	sizes := dist.NewUniform(0.5, 1.5)
	reps, n := scaled(12, 48), scaled(30000, 200000)
	load := 0.7
	lambda := workload.RateForLoad(load, sizes.Moment(1), hosts)
	oracle := queueing.NewMG1(lambda/hosts, sizes)
	gen := func(rep uint64) []workload.Job {
		return GenPoissonJobs(3000+rep, n, load, hosts, sizes)
	}
	build := func() server.Policy { return policy.NewRandom(sim.NewRNG(67, 13)) }
	slow := replicate(reps, gen, build, server.CentralFCFS, hosts,
		func(r *server.Result) float64 { return r.Slowdown.Mean() })
	checkOracle(t, "random/slowdown", slow, oracle.MeanSlowdown(), 0.02)
	wait := replicate(reps, gen, build, server.CentralFCFS, hosts,
		func(r *server.Result) float64 { return r.Wait.Mean() })
	checkOracle(t, "random/mg1-wait", wait, oracle.MeanWait(), 0.02)
}
