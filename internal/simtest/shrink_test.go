package simtest

import (
	"errors"
	"fmt"
	"testing"

	"sita/internal/policy"
	"sita/internal/server"
	"sita/internal/workload"
)

// bigPairProp fails whenever a trace contains at least two jobs larger
// than 10 — a synthetic seeded failure whose unique minimal form is
// exactly two big jobs.
func bigPairProp(jobs []workload.Job) error {
	big := 0
	for _, j := range jobs {
		if j.Size > 10 {
			big++
		}
	}
	if big >= 2 {
		return fmt.Errorf("%d jobs larger than 10", big)
	}
	return nil
}

// TestShrinkMinimizesSeededFailure seeds a 500-job trace with scattered
// oversized jobs and checks the shrinker reduces it to the 2-job
// minimal counterexample, that the result is 1-minimal (deleting any
// remaining job makes the property pass), and that the whole process is
// deterministic.
func TestShrinkMinimizesSeededFailure(t *testing.T) {
	jobs := GenAdversarialJobs(42, 500)
	// GenAdversarialJobs produces elephants (>10) with probability 1/5,
	// so the trace fails bigPairProp by a wide margin.
	if err := bigPairProp(jobs); err == nil {
		t.Fatal("seeded trace unexpectedly passes the property")
	}
	min, minErr := Shrink(jobs, bigPairProp, 10000)
	if minErr == nil {
		t.Fatal("shrunk trace no longer fails the property")
	}
	if len(min) != 2 {
		t.Fatalf("shrunk to %d jobs, want the 2-job minimal counterexample:\n%s", len(min), FormatJobs(min))
	}
	for i := range min {
		without := append(append([]workload.Job(nil), min[:i]...), min[i+1:]...)
		if err := bigPairProp(without); err != nil {
			t.Fatalf("not 1-minimal: still fails without job %d: %v", i, err)
		}
	}
	again, _ := Shrink(jobs, bigPairProp, 10000)
	if len(again) != len(min) {
		t.Fatalf("nondeterministic shrink: %d vs %d jobs", len(again), len(min))
	}
	for i := range min {
		if again[i] != min[i] {
			t.Fatalf("nondeterministic shrink at job %d: %+v vs %+v", i, again[i], min[i])
		}
	}
}

// TestShrinkMinimizesSimulationFailure exercises the shrinker against a
// property that runs the real simulator: "no job ever waits" under
// round-robin on 2 hosts. A loaded trace falsifies it massively; the
// minimal counterexample is a contention pair — 3 jobs, since
// round-robin on 2 hosts needs jobs 1 and 3 on one host with job 3
// arriving before job 1 finishes (2 jobs alone land on distinct hosts).
func TestShrinkMinimizesSimulationFailure(t *testing.T) {
	const hosts = 2
	prop := func(jobs []workload.Job) error {
		var bad error
		cfg := server.Config{
			Hosts:  hosts,
			Policy: policy.NewRoundRobin(),
			OnRecord: func(rec server.JobRecord) {
				if bad == nil && rec.Wait() > 0 {
					bad = fmt.Errorf("job %d waited %v", rec.ID, rec.Wait())
				}
			},
		}
		server.Run(jobs, cfg)
		return bad
	}
	jobs := GenExpJobs(7, 2000, 0.9, 2.0, hosts)
	if err := prop(jobs); err == nil {
		t.Fatal("loaded trace has no waiting job")
	}
	min, minErr := Shrink(jobs, prop, 20000)
	if minErr == nil {
		t.Fatal("shrunk trace no longer fails")
	}
	if len(min) != 3 {
		t.Fatalf("shrunk to %d jobs, want 3:\n%s", len(min), FormatJobs(min))
	}
	for i := range min {
		without := append(append([]workload.Job(nil), min[:i]...), min[i+1:]...)
		if err := prop(without); err != nil {
			t.Fatalf("not 1-minimal: still fails without job %d: %v", i, err)
		}
	}
}

// TestShrinkPassingTrace checks the degenerate contracts: a passing
// trace returns (nil, nil), and an exhausted budget still returns a
// failing trace.
func TestShrinkPassingTrace(t *testing.T) {
	jobs := GenExpJobs(9, 50, 0.3, 2.0, 2)
	min, err := Shrink(jobs, func([]workload.Job) error { return nil }, 100)
	if min != nil || err != nil {
		t.Fatalf("passing trace shrunk to %d jobs, err %v", len(min), err)
	}
	fail := errors.New("always")
	min, err = Shrink(jobs, func(j []workload.Job) error {
		if len(j) == 0 {
			return nil // empty passes, so minimum is 1 job
		}
		return fail
	}, 3) // budget too small to reach the minimum
	if err == nil || len(min) == 0 {
		t.Fatalf("budget-limited shrink returned %d jobs, err %v", len(min), err)
	}
}
