package simtest

import (
	"fmt"
	"math"
	"testing"

	"sita/internal/policy"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// collectRecords runs jobs under cfg and returns the full record stream
// (warmup included) alongside the Result.
func collectRecords(jobs []workload.Job, cfg server.Config) (*server.Result, []server.JobRecord) {
	records := make([]server.JobRecord, 0, len(jobs))
	cfg.OnRecord = func(rec server.JobRecord) { records = append(records, rec) }
	res := server.Run(jobs, cfg)
	return res, records
}

// sameStream reports whether two delay streams carry the bit-identical
// accumulated state (count, sum, mean, variance accumulator).
func sameStream(a, b *stats.Stream) error {
	if a.Count() != b.Count() {
		return fmt.Errorf("count %d vs %d", a.Count(), b.Count())
	}
	//lint:allow floateq bit-exact equivalence is the property under test
	if a.Sum() != b.Sum() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		return fmt.Errorf("sum/mean/var %v/%v/%v vs %v/%v/%v",
			a.Sum(), a.Mean(), a.Variance(), b.Sum(), b.Mean(), b.Variance())
	}
	return nil
}

// TestTimeScalingBitExact checks the time-scaling metamorphic relation
// for every policy, state-reading ones included: multiplying all
// arrivals, sizes, and SITA cutoffs by a power of two multiplies every
// start, departure, wait, and response by exactly that constant — bit
// for bit, because scaling by a power of two only shifts IEEE 754
// exponents and therefore preserves every comparison, tie, and heap
// order the simulation makes.
func TestTimeScalingBitExact(t *testing.T) {
	const hosts = 3
	cases := []struct {
		name  string
		build func(c float64) server.Policy // c scales size-denominated parameters
		order server.CentralOrder
	}{
		{name: "random", build: func(float64) server.Policy { return policy.NewRandom(sim.NewRNG(41, 3)) }},
		{name: "round-robin", build: func(float64) server.Policy { return policy.NewRoundRobin() }},
		{name: "sita", build: func(c float64) server.Policy {
			return policy.NewSITA("sita", []float64{sitaCutoffs[0] * c, sitaCutoffs[1] * c})
		}},
		{name: "shortest-queue", build: func(float64) server.Policy { return policy.NewShortestQueue() }},
		{name: "least-work-left", build: func(float64) server.Policy { return policy.NewLeastWorkLeft() }},
		{name: "central-fcfs", build: func(float64) server.Policy { return policy.NewCentralQueue() }},
		{name: "central-sjf", build: func(float64) server.Policy { return policy.NewCentralQueue() }, order: server.CentralSJF},
	}
	seeds := scaled(10, 60)
	for _, tc := range cases {
		for s := 0; s < seeds; s++ {
			seed := uint64(600 + s)
			var jobs []workload.Job
			if s%2 == 0 {
				jobs = GenAdversarialJobs(seed, 500)
			} else {
				jobs = GenExpJobs(seed, 500, 0.9, 2.0, hosts)
			}
			for _, c := range []float64{4, 0.125} {
				name := fmt.Sprintf("%s/seed%d/x%v", tc.name, seed, c)
				base, baseRec := collectRecords(jobs, server.Config{
					Hosts: hosts, Policy: tc.build(1), CentralOrder: tc.order, OrderCheck: true,
				})
				scl, sclRec := collectRecords(ScaleJobs(jobs, c), server.Config{
					Hosts: hosts, Policy: tc.build(c), CentralOrder: tc.order, OrderCheck: true,
				})
				if len(baseRec) != len(sclRec) {
					t.Fatalf("%s: %d records vs %d", name, len(baseRec), len(sclRec))
				}
				for i := range baseRec {
					a, b := baseRec[i], sclRec[i]
					//lint:allow floateq power-of-two scaling must be bit-exact
					if a.ID != b.ID || a.Host != b.Host ||
						b.Arrival != a.Arrival*c || b.Size != a.Size*c ||
						b.Start != a.Start*c || b.Departure != a.Departure*c {
						t.Fatalf("%s: record %d: base %+v, scaled %+v", name, i, a, b)
					}
				}
				// Slowdown is scale-free: (c*T)/(c*X) divides to the
				// identical float, so the whole stream state matches.
				if err := sameStream(&base.Slowdown, &scl.Slowdown); err != nil {
					t.Fatalf("%s: slowdown stream: %v", name, err)
				}
				//lint:allow floateq power-of-two scaling must be bit-exact
				if scl.Horizon != base.Horizon*c {
					t.Fatalf("%s: horizon %v, want %v", name, scl.Horizon, base.Horizon*c)
				}
			}
		}
	}
}

// permuted relabels the hosts an oblivious inner policy picks. It does
// not claim the Oblivious capability, so runs land on the engine path.
type permuted struct {
	inner server.Policy
	perm  []int
}

func (p permuted) Name() string { return "perm-" + p.inner.Name() }

func (p permuted) Assign(j workload.Job, v server.View) int {
	return p.perm[p.inner.Assign(j, v)]
}

// TestHostPermutationInvariance checks that relabeling hosts under an
// oblivious policy is pure bookkeeping: every job's start, departure,
// and delay is bit-identical; only the host labels (and the per-host
// accounting) move through the permutation. State-reading policies are
// excluded — their assignments depend on host state, so relabeling
// genuinely changes the schedule.
func TestHostPermutationInvariance(t *testing.T) {
	const hosts = 4
	perm := []int{2, 0, 3, 1}
	builds := map[string]func() server.Policy{
		"random":      func() server.Policy { return policy.NewRandom(sim.NewRNG(77, 9)) },
		"round-robin": func() server.Policy { return policy.NewRoundRobin() },
		"sita": func() server.Policy {
			return policy.NewSITA("sita", []float64{1.0, 2.5, 6.0})
		},
	}
	seeds := scaled(6, 40)
	for name, build := range builds {
		for s := 0; s < seeds; s++ {
			seed := uint64(700 + s)
			jobs := GenAdversarialJobs(seed, 600)
			base, baseRec := collectRecords(jobs, server.Config{
				Hosts: hosts, Policy: build(), OrderCheck: true,
			})
			perma, permRec := collectRecords(jobs, server.Config{
				Hosts: hosts, Policy: permuted{inner: build(), perm: perm}, OrderCheck: true,
			})
			if len(baseRec) != len(permRec) {
				t.Fatalf("%s/seed%d: %d records vs %d", name, seed, len(baseRec), len(permRec))
			}
			for i := range baseRec {
				a, b := baseRec[i], permRec[i]
				//lint:allow floateq relabeling hosts must not change any time by any amount
				if a.ID != b.ID || b.Host != perm[a.Host] ||
					a.Arrival != b.Arrival || a.Size != b.Size ||
					a.Start != b.Start || a.Departure != b.Departure {
					t.Fatalf("%s/seed%d: record %d: base %+v, permuted %+v (perm %v)", name, seed, i, a, b, perm)
				}
			}
			for h := 0; h < hosts; h++ {
				//lint:allow floateq per-host sums fold the identical values in the identical order
				if perma.PerHostWork[perm[h]] != base.PerHostWork[h] || perma.PerHostJobs[perm[h]] != base.PerHostJobs[h] {
					t.Fatalf("%s/seed%d: host %d accounting did not move to %d", name, seed, h, perm[h])
				}
			}
			if err := sameStream(&base.Response, &perma.Response); err != nil {
				t.Fatalf("%s/seed%d: response stream: %v", name, seed, err)
			}
		}
	}
}

// TestSITAInfinityCutoffsReduceToSingleHost checks the degenerate-SITA
// relation: with every cutoff at +Inf all jobs land on host 0, and the
// h-host system must reproduce a 1-host system's record stream bit for
// bit — same starts, same departures, same streams — with the spare
// hosts untouched.
func TestSITAInfinityCutoffsReduceToSingleHost(t *testing.T) {
	const hosts = 4
	inf := math.Inf(1)
	seeds := scaled(8, 40)
	for s := 0; s < seeds; s++ {
		seed := uint64(800 + s)
		var jobs []workload.Job
		if s%2 == 0 {
			jobs = GenAdversarialJobs(seed, 400)
		} else {
			jobs = GenExpJobs(seed, 400, 0.6, 2.0, 1)
		}
		for _, engine := range []bool{true, false} {
			multi, multiRec := collectRecords(jobs, server.Config{
				Hosts: hosts, Policy: policy.NewSITA("sita-inf", []float64{inf, inf, inf}), OrderCheck: engine,
			})
			single, singleRec := collectRecords(jobs, server.Config{
				Hosts: 1, Policy: policy.NewSITA("solo", nil), OrderCheck: engine,
			})
			if len(multiRec) != len(singleRec) {
				t.Fatalf("seed%d engine=%v: %d records vs %d", seed, engine, len(multiRec), len(singleRec))
			}
			for i := range multiRec {
				a, b := multiRec[i], singleRec[i]
				//lint:allow floateq the reduction must be bit-exact
				if a.ID != b.ID || a.Host != 0 || b.Host != 0 ||
					a.Arrival != b.Arrival || a.Size != b.Size ||
					a.Start != b.Start || a.Departure != b.Departure {
					t.Fatalf("seed%d engine=%v: record %d: multi %+v, single %+v", seed, engine, i, a, b)
				}
			}
			for h := 1; h < hosts; h++ {
				if multi.PerHostJobs[h] != 0 || multi.PerHostWork[h] != 0 {
					t.Fatalf("seed%d engine=%v: spare host %d saw traffic", seed, engine, h)
				}
			}
			if err := sameStream(&multi.Slowdown, &single.Slowdown); err != nil {
				t.Fatalf("seed%d engine=%v: slowdown stream: %v", seed, engine, err)
			}
		}
	}
}

// heapVsDirectProp builds the heap-vs-direct equivalence property for
// one oblivious policy: the engine path (forced via OrderCheck) and the
// direct recurrence must produce bit-identical record streams and
// results on the given trace. Deterministic, so it can be handed to
// Shrink.
func heapVsDirectProp(build func() server.Policy, hosts int) Property {
	return func(jobs []workload.Job) error {
		engRes, engRec := collectRecords(jobs, server.Config{Hosts: hosts, Policy: build(), OrderCheck: true})
		dirRec := make([]server.JobRecord, 0, len(jobs))
		dirCfg := server.Config{Hosts: hosts, Policy: build(),
			OnRecord: func(rec server.JobRecord) { dirRec = append(dirRec, rec) }}
		dirRes := server.RunDirect(jobs, dirCfg)
		if len(engRec) != len(dirRec) {
			return fmt.Errorf("engine emitted %d records, direct %d", len(engRec), len(dirRec))
		}
		for i := range engRec {
			if engRec[i] != dirRec[i] {
				return fmt.Errorf("record %d: engine %+v, direct %+v", i, engRec[i], dirRec[i])
			}
		}
		for _, s := range []struct {
			name string
			a, b *stats.Stream
		}{
			{"slowdown", &engRes.Slowdown, &dirRes.Slowdown},
			{"response", &engRes.Response, &dirRes.Response},
			{"wait", &engRes.Wait, &dirRes.Wait},
		} {
			if err := sameStream(s.a, s.b); err != nil {
				return fmt.Errorf("%s stream: %v", s.name, err)
			}
		}
		//lint:allow floateq the two paths are bit-identical by contract
		if engRes.Horizon != dirRes.Horizon {
			return fmt.Errorf("horizon %v vs %v", engRes.Horizon, dirRes.Horizon)
		}
		return nil
	}
}

// TestHeapVsDirectOnGeneratedTraces drives the heap-vs-direct
// equivalence over a pool of generated traces — adversarial and
// stochastic — for every oblivious policy. On a violation the failing
// trace is shrunk to a minimal counterexample before reporting, so a
// regression shows up as a handful of jobs, not a dump.
func TestHeapVsDirectOnGeneratedTraces(t *testing.T) {
	const hosts = 3
	builds := map[string]func() server.Policy{
		"random":      func() server.Policy { return policy.NewRandom(sim.NewRNG(55, 1)) },
		"round-robin": func() server.Policy { return policy.NewRoundRobin() },
		"sita":        func() server.Policy { return policy.NewSITA("sita", sitaCutoffs) },
	}
	traces := scaled(64, 600)
	for name, build := range builds {
		prop := heapVsDirectProp(build, hosts)
		for s := 0; s < traces; s++ {
			seed := uint64(900 + s)
			var jobs []workload.Job
			switch s % 3 {
			case 0:
				jobs = GenAdversarialJobs(seed, 300+97*(s%5))
			case 1:
				jobs = GenExpJobs(seed, 400, 0.85, 2.0, hosts)
			default:
				jobs = GenExpJobs(seed, 400, 0.5, 2.0, hosts)
			}
			if err := prop(jobs); err != nil {
				min, minErr := Shrink(jobs, prop, 2000)
				t.Fatalf("%s/seed%d: heap-vs-direct divergence: %v\nminimized to %d jobs (%v):\n%s",
					name, seed, err, len(min), minErr, FormatJobs(min))
			}
		}
	}
}
