package simtest

import "sita/internal/workload"

// Property evaluates a job trace and returns nil if the property holds,
// or a descriptive error for the (first) violation. Properties must be
// deterministic: the shrinker re-evaluates candidate traces many times
// and relies on a failure staying a failure.
type Property func(jobs []workload.Job) error

// Shrink minimizes a failing trace with the ddmin strategy: repeatedly
// try deleting contiguous chunks (first halves, then quarters, down to
// single jobs) and keep any deletion that still fails the property,
// restarting at coarse granularity after each success. The result is
// 1-minimal — deleting any single remaining job makes the property
// pass — unless the run budget maxEvals is exhausted first.
//
// Shrink is a pure function of (jobs, prop, maxEvals): same inputs,
// same minimized trace. It returns the minimized trace and the error
// the property reports on it. If jobs does not fail prop at all, Shrink
// returns (nil, nil). Relative arrival order is preserved; job IDs are
// left as-is (server.Run renumbers internally when IDs are not dense).
func Shrink(jobs []workload.Job, prop Property, maxEvals int) ([]workload.Job, error) {
	evals := 0
	check := func(cand []workload.Job) error {
		evals++
		return prop(cand)
	}
	lastErr := check(jobs)
	if lastErr == nil {
		return nil, nil
	}
	cur := append([]workload.Job(nil), jobs...)
	chunks := 2
	for len(cur) > 1 && evals < maxEvals {
		shrunk := false
		size := (len(cur) + chunks - 1) / chunks
		for lo := 0; lo < len(cur) && evals < maxEvals; {
			hi := lo + size
			if hi > len(cur) {
				hi = len(cur)
			}
			cand := make([]workload.Job, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			if err := check(cand); err != nil {
				cur, lastErr = cand, err
				shrunk = true
				// The slice got shorter; keep the same chunk size and
				// retry from this offset.
				continue
			}
			lo = hi
		}
		if shrunk {
			chunks = 2 // restart coarse after progress
			continue
		}
		if size == 1 {
			break // 1-minimal
		}
		chunks *= 2
		if chunks > len(cur) {
			chunks = len(cur)
		}
	}
	return cur, lastErr
}
