// Package simtest is the property-based correctness harness for the
// simulation stack: it checks every task-assignment policy and both
// simulation paths (the event-heap engine and the direct recurrence)
// against first principles instead of frozen golden files.
//
// Three layers:
//
//   - Analytic oracles. On synthetic exponential traces the simulated
//     Random system is h independent M/M/1 queues (Bernoulli splitting of
//     a Poisson stream) and the Central-Queue system is an M/M/h queue, so
//     simulated means must agree with the closed forms in
//     internal/queueing within replication confidence bounds. Little's
//     law (E[Q] = lambda*E[W]) and work-conservation invariants are
//     asserted from record streams for every policy — no distributional
//     assumptions needed.
//
//   - Metamorphic relations. Properties that relate two runs without
//     knowing the right answer for either: scaling all sizes and
//     interarrival gaps by a power of two scales every response time
//     bit-exactly; relabeling hosts under an oblivious policy permutes
//     host accounting but leaves every job's delay bit-identical; a SITA
//     policy with all cutoffs at +Inf reduces to a single-host system;
//     and the direct recurrence must reproduce the engine's record
//     stream bit-for-bit on randomly generated traces.
//
//   - Shrinking. When a generated trace falsifies a property, Shrink
//     deterministically minimizes it (ddmin over job subsets) so the
//     failure report is a handful of jobs, not a 50k-job stream.
//
// The harness leans on two hooks added for it: server.Config.OnRecord
// streams every completed job's record (warmup included) out of both
// simulation paths, and sim.Engine.SetOrderCheck arms the kernel's
// dispatch-order invariant for the duration of a property run.
//
// Everything here is deterministic: generators are seeded, the shrinker
// is a pure function of its inputs, and failures reproduce byte-for-byte.
package simtest

import (
	"fmt"
	"math"

	"sita/internal/server"
	"sita/internal/workload"
)

// RunChecked simulates jobs under cfg via server.Run with the record
// stream captured, then verifies the stream against the FCFS invariants
// (CheckRecords) and the Result's accounting (CheckResult). It returns
// the Result and the captured records; any violation comes back as a
// non-nil error naming the first offending record.
//
// cfg.OnRecord and cfg.KeepRecords are overwritten. perHostFCFS must be
// false for CentralSJF runs (the SJF queue legally starts held jobs out
// of arrival order within a host).
func RunChecked(jobs []workload.Job, cfg server.Config, perHostFCFS bool) (*server.Result, []server.JobRecord, error) {
	records := make([]server.JobRecord, 0, len(jobs))
	cfg.OnRecord = func(rec server.JobRecord) { records = append(records, rec) }
	cfg.KeepRecords = false
	res := server.Run(jobs, cfg)
	if err := CheckRecords(records, len(jobs), cfg.Hosts, perHostFCFS); err != nil {
		return res, records, err
	}
	if err := CheckResult(res, records); err != nil {
		return res, records, err
	}
	return res, records, nil
}

// CheckRecords verifies the model-independent invariants of a complete
// FCFS record stream, in emission order:
//
//   - IDs are a permutation of 0..n-1 and hosts are in range.
//   - Sizes are positive, Start >= Arrival, and Departure = Start + Size
//     exactly (service is run-to-completion on a unit-speed host; both
//     simulation paths compute the departure as that exact float sum).
//   - Departures are emitted in nondecreasing time order (the engine
//     dispatches events in (time, seq) order; the direct path reproduces
//     it).
//   - Per host, service intervals do not overlap: each job starts at or
//     after the previous departure on its host.
//   - Work conservation (no idle host with local work waiting): a job
//     that waited must start exactly at the previous departure on its
//     host — an idle gap before a delayed job means the simulator let a
//     host sit idle while work was queued. This form covers the central
//     queue too: a held job is started by the host that just freed, at
//     that host's departure instant.
//   - With perHostFCFS, jobs on one host are served in arrival order
//     (true for every standard policy except the SJF central queue).
func CheckRecords(records []server.JobRecord, n, hosts int, perHostFCFS bool) error {
	if len(records) != n {
		return fmt.Errorf("simtest: %d records for %d jobs", len(records), n)
	}
	seen := make([]bool, n)
	lastDeparture := math.Inf(-1)
	prev := make([]server.JobRecord, hosts) // last record per host
	prevSet := make([]bool, hosts)
	for i, rec := range records {
		if rec.ID < 0 || rec.ID >= n {
			return fmt.Errorf("simtest: record %d has ID %d outside [0,%d)", i, rec.ID, n)
		}
		if seen[rec.ID] {
			return fmt.Errorf("simtest: job %d completed twice", rec.ID)
		}
		seen[rec.ID] = true
		if rec.Host < 0 || rec.Host >= hosts {
			return fmt.Errorf("simtest: job %d on host %d of %d", rec.ID, rec.Host, hosts)
		}
		if rec.Size <= 0 {
			return fmt.Errorf("simtest: job %d has size %v", rec.ID, rec.Size)
		}
		if rec.Start < rec.Arrival {
			return fmt.Errorf("simtest: job %d starts at %v before its arrival %v", rec.ID, rec.Start, rec.Arrival)
		}
		//lint:allow floateq both paths compute the departure as exactly Start + Size; any deviation is a simulator bug
		if rec.Departure != rec.Start+rec.Size {
			return fmt.Errorf("simtest: job %d departs at %v, want Start+Size = %v", rec.ID, rec.Departure, rec.Start+rec.Size)
		}
		if rec.Departure < lastDeparture {
			return fmt.Errorf("simtest: job %d emitted at %v after departure %v — emission order broken", rec.ID, rec.Departure, lastDeparture)
		}
		lastDeparture = rec.Departure
		if prevSet[rec.Host] {
			p := prev[rec.Host]
			if rec.Start < p.Departure {
				return fmt.Errorf("simtest: host %d overlap: job %d starts at %v before job %d departs at %v",
					rec.Host, rec.ID, rec.Start, p.ID, p.Departure)
			}
			//lint:allow floateq a delayed start coincides exactly with the predecessor's departure; a gap is a conservation bug
			if rec.Start > rec.Arrival && rec.Start != p.Departure {
				return fmt.Errorf("simtest: host %d idled %v..%v while job %d waited (arrived %v) — work conservation broken",
					rec.Host, p.Departure, rec.Start, rec.ID, rec.Arrival)
			}
			if perHostFCFS && rec.Arrival < p.Arrival {
				return fmt.Errorf("simtest: host %d served job %d (arrived %v) after job %d (arrived %v) — FCFS order broken",
					rec.Host, p.ID, p.Arrival, rec.ID, rec.Arrival)
			}
		} else if rec.Start > rec.Arrival {
			return fmt.Errorf("simtest: host %d idled 0..%v while its first job %d waited (arrived %v)",
				rec.Host, rec.Start, rec.ID, rec.Arrival)
		}
		prev[rec.Host] = rec
		prevSet[rec.Host] = true
	}
	return nil
}

// CheckResult cross-checks a Result's aggregate accounting against the
// record stream it was folded from: per-host completed work and job
// counts, the horizon, utilization bounds, and — when the run came off
// the engine path — Little's law, comparing the event-accrued
// time-average queue length (Result.MeanQueueLen) against the same
// integral computed from the records (the sum of waits over the
// horizon). The two accumulations follow different float paths, so they
// agree to rounding, not bit-exactly.
func CheckResult(res *server.Result, records []server.JobRecord) error {
	work := make([]float64, res.Hosts)
	jobs := make([]int64, res.Hosts)
	horizon := 0.0
	waitSum := 0.0
	for _, rec := range records {
		work[rec.Host] += rec.Size
		jobs[rec.Host]++
		if rec.Departure > horizon {
			horizon = rec.Departure
		}
		waitSum += rec.Wait()
	}
	for i := range work {
		//lint:allow floateq Result.observe sums the identical values in the identical order
		if work[i] != res.PerHostWork[i] {
			return fmt.Errorf("simtest: host %d work %v in records, %v in result", i, work[i], res.PerHostWork[i])
		}
		if jobs[i] != res.PerHostJobs[i] {
			return fmt.Errorf("simtest: host %d completed %d jobs in records, %d in result", i, jobs[i], res.PerHostJobs[i])
		}
	}
	//lint:allow floateq both are the maximum of the identical departure values
	if horizon != res.Horizon {
		return fmt.Errorf("simtest: horizon %v in records, %v in result", horizon, res.Horizon)
	}
	for i := range work {
		if res.Horizon > 0 && res.Utilization(i) > 1+1e-9 {
			return fmt.Errorf("simtest: host %d utilization %v > 1", i, res.Utilization(i))
		}
	}
	// Little's law: only the engine FCFS path accrues the independent
	// time integral (MeanQueueLen is 0 on the direct path — and a run
	// with genuinely zero queueing makes the check vacuous either way).
	if res.MeanQueueLen != 0 && horizon > 0 {
		fromRecords := waitSum / horizon
		if !withinRel(res.MeanQueueLen, fromRecords, 1e-6) {
			return fmt.Errorf("simtest: Little's law: event-accrued E[Q] = %v, record-derived lambda*E[W] = %v",
				res.MeanQueueLen, fromRecords)
		}
	}
	return nil
}

// withinRel reports whether a and b agree within relative tolerance tol
// (absolute below 1).
func withinRel(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}
