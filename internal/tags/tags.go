// Package tags implements TAGS — Task Assignment by Guessing Size
// (Harchol-Balter, ICDCS 2000), the paper's reference [10] and its answer
// for distributed servers where job sizes are *unknown* at dispatch time.
//
// Under TAGS every job starts on Host 1. Host i runs its FCFS queue
// one job at a time; a job that accumulates s_i seconds of service on host
// i without finishing is killed and restarted from scratch at the back of
// host i+1's queue. Big jobs therefore ratchet up the host chain, paying
// wasted work for the anonymity of their size, while small jobs finish on
// the early hosts — TAGS inherits SITA's variance reduction (host i only
// completes jobs in (s_{i-1}, s_i]) and SITA-U's deliberate load
// unbalancing, without needing size estimates.
package tags

import (
	"fmt"
	"math"
	"sort"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// Result aggregates one TAGS simulation.
type Result struct {
	Slowdown stats.Stream
	Response stats.Stream
	// WastedWork is the total service time spent on runs that were killed,
	// and TotalWork the total useful service time; their ratio is the price
	// TAGS pays for not knowing sizes.
	WastedWork float64
	TotalWork  float64
	// PerHostCompleted counts jobs finishing at each host.
	PerHostCompleted []int64
	// PerHostBusy accumulates busy time (useful + wasted) per host.
	PerHostBusy []float64
	Horizon     float64
}

// WasteFraction reports wasted work as a fraction of all work performed.
func (r *Result) WasteFraction() float64 {
	done := r.WastedWork + r.TotalWork
	if done == 0 {
		return 0
	}
	return r.WastedWork / done
}

// Typed-event kinds for the TAGS simulation.
const (
	evArrival uint8 = iota + 1 // Ev.Job arrives at Host 1
	evDone                     // Ev.Job's run on host Ev.Host ends (kill or completion)
)

// tagsHost is one host's FCFS state; the waiting queue is a head-indexed
// FIFO over a reusable backing array, like internal/server's hosts.
type tagsHost struct {
	queue   []workload.Job
	head    int
	running bool
}

func (h *tagsHost) queued() int { return len(h.queue) - h.head }

func (h *tagsHost) dequeue() workload.Job {
	j := h.queue[h.head]
	h.head++
	if h.head == len(h.queue) {
		h.queue = h.queue[:0]
		h.head = 0
	}
	return j
}

// tagsSim is the event handler for one TAGS run: lazy arrival feeding plus
// the kill-and-restart host chain. The run budget of a job on host h is a
// pure function of (job size, h, cutoffs), so the evDone event recomputes
// it at fire time instead of carrying it in a closure.
type tagsSim struct {
	eng     *sim.Engine
	cutoffs []float64
	res     *Result
	hs      []tagsHost
	warmup  int

	feed     []workload.Job
	feedNext int
	feedBase uint64
}

// runBudget reports how long a job may run on host h and whether it is
// killed at that budget.
func (t *tagsSim) runBudget(h int, job workload.Job) (runFor float64, killed bool) {
	if h < len(t.cutoffs) && job.Size > t.cutoffs[h] {
		return t.cutoffs[h], true
	}
	return job.Size, false
}

// start begins a run of job on host h (busy time accrues at start, as the
// budget is committed).
func (t *tagsSim) start(h int, job workload.Job, now float64) {
	t.hs[h].running = true
	runFor, _ := t.runBudget(h, job)
	t.res.PerHostBusy[h] += runFor
	t.eng.ScheduleAfter(runFor, sim.Ev{Kind: evDone, Host: int32(h), Job: job})
}

// feedNextArrival schedules the next unscheduled arrival, renumbering by
// arrival order for warmup accounting.
func (t *tagsSim) feedNextArrival() {
	if t.feedNext >= len(t.feed) {
		return
	}
	j := t.feed[t.feedNext]
	j.ID = t.feedNext
	t.eng.ScheduleReserved(j.Arrival, t.feedBase+uint64(t.feedNext), sim.Ev{Kind: evArrival, Job: j})
	t.feedNext++
}

// HandleEvent dispatches the engine's typed events.
func (t *tagsSim) HandleEvent(now float64, ev sim.Ev) {
	switch ev.Kind {
	case evArrival:
		t.feedNextArrival()
		if t.hs[0].running || t.hs[0].queued() > 0 {
			t.hs[0].queue = append(t.hs[0].queue, ev.Job)
		} else {
			t.start(0, ev.Job, now)
		}
	case evDone:
		t.done(int(ev.Host), ev.Job, now)
	}
}

// done ends a job's run on host h: a kill restarts it from scratch on
// host h+1, a completion records its statistics; either way the host
// pulls its next queued job.
func (t *tagsSim) done(h int, job workload.Job, now float64) {
	res := t.res
	runFor, killed := t.runBudget(h, job)
	t.hs[h].running = false
	if killed {
		res.WastedWork += runFor
		// Restart from scratch on the next host.
		next := h + 1
		if t.hs[next].running || t.hs[next].queued() > 0 {
			t.hs[next].queue = append(t.hs[next].queue, job)
		} else {
			t.start(next, job, now)
		}
	} else {
		res.TotalWork += job.Size
		res.PerHostCompleted[h]++
		if now > res.Horizon {
			res.Horizon = now
		}
		if job.ID >= t.warmup {
			response := now - job.Arrival
			res.Response.Add(response)
			slow := response / job.Size
			if slow < 1 {
				// Floating-point guard: a job served the moment it
				// arrives can round a hair below its size.
				slow = 1
			}
			res.Slowdown.Add(slow)
		}
	}
	// Pull the next job on this host.
	if t.hs[h].queued() > 0 {
		t.start(h, t.hs[h].dequeue(), now)
	}
}

// Simulate runs the job list through a TAGS system with the given internal
// cutoffs (len = hosts-1, ascending; host i kills at cutoffs[i], the last
// host never kills). Jobs must be sorted by arrival time. warmup is the
// fraction of jobs (by arrival order) excluded from delay statistics.
// Panics if the cutoffs do not ascend or the jobs are unsorted.
// The jobs slice is never written (the feed is read by value), so callers
// may share one job list across concurrent runs — the same read-only
// input contract as server.Run.
//
//sim:entry
//sim:readonly jobs
func Simulate(jobs []workload.Job, cutoffs []float64, warmup float64) *Result {
	if !sort.Float64sAreSorted(cutoffs) {
		panic(fmt.Sprintf("tags: cutoffs must ascend, got %v", cutoffs))
	}
	prev := 0.0
	for i, j := range jobs {
		if j.Arrival < prev {
			panic(fmt.Sprintf("tags: job %d arrives at %v before %v", i, j.Arrival, prev))
		}
		prev = j.Arrival
	}
	hosts := len(cutoffs) + 1
	res := &Result{
		PerHostCompleted: make([]int64, hosts),
		PerHostBusy:      make([]float64, hosts),
	}
	eng := sim.Acquire()
	defer sim.Release(eng)
	t := &tagsSim{
		eng:     eng,
		cutoffs: cutoffs,
		res:     res,
		hs:      make([]tagsHost, hosts),
		warmup:  int(warmup * float64(len(jobs))),
		feed:    jobs,
	}
	eng.SetHandler(t)
	t.feedBase = eng.ReserveSeq(len(jobs))
	t.feedNextArrival()
	eng.Run()
	return res
}

// Analysis evaluates TAGS analytically, following the TAGS paper's
// decomposition: host i sees (approximately Poisson) arrivals of every job
// bigger than cutoff s_{i-1}, at rate lambda*P(X > s_{i-1}); its service
// time is min(X, s_i) conditioned on X > s_{i-1}. A job of size in
// (s_{i-1}, s_i] pays the full cutoff s_j plus the wait at every earlier
// host j < i, then waits once more and runs to completion on host i.
type Analysis struct {
	Lambda  float64
	Size    dist.Distribution
	Cutoffs []float64
}

// NewAnalysis validates parameters. Panics if lambda <= 0, size is nil, or
// the cutoffs do not ascend.
func NewAnalysis(lambda float64, size dist.Distribution, cutoffs []float64) Analysis {
	if lambda <= 0 || size == nil {
		panic(fmt.Sprintf("tags: analysis needs lambda > 0 and a size distribution, got %v", lambda))
	}
	if !sort.Float64sAreSorted(cutoffs) {
		panic(fmt.Sprintf("tags: cutoffs must ascend, got %v", cutoffs))
	}
	cp := make([]float64, len(cutoffs))
	copy(cp, cutoffs)
	return Analysis{Lambda: lambda, Size: size, Cutoffs: cp}
}

// hostEdges returns (s_{i-1}, s_i) for host i with s_{-1} treated as the
// support minimum and s_last as the support maximum.
func (a Analysis) hostEdges(i int) (lo, hi float64) {
	suppLo, suppHi := a.Size.Support()
	lo = math.Min(suppLo-1, 0)
	hi = suppHi
	if i > 0 {
		lo = a.Cutoffs[i-1]
	}
	if i < len(a.Cutoffs) {
		hi = a.Cutoffs[i]
	}
	return lo, hi
}

// HostMetrics is the analytic state of one TAGS host.
type HostMetrics struct {
	Host     int
	Rate     float64 // arrival rate into this host
	Load     float64 // utilization including wasted work
	MeanWait float64 // FCFS waiting time at this host
}

// serviceMoment computes E[min(X, hi)^j | X > lo] * P(X > lo):
// the unnormalized j-th moment of host i's per-visit service time.
func (a Analysis) serviceMoment(j, lo, hi float64) float64 {
	_, suppHi := a.Size.Support()
	finish := dist.PartialMoment(a.Size, j, lo, hi)
	if hi >= suppHi {
		return finish
	}
	killMass := dist.Prob(a.Size, hi, math.Inf(1))
	return finish + math.Pow(hi, j)*killMass
}

// Hosts evaluates every host's arrival rate, load and mean wait; a host is
// reported with MeanWait = +Inf when unstable.
func (a Analysis) Hosts() []HostMetrics {
	n := len(a.Cutoffs) + 1
	out := make([]HostMetrics, n)
	suppLo, _ := a.Size.Support()
	for i := 0; i < n; i++ {
		lo, hi := a.hostEdges(i)
		surviveMass := 1.0
		if i > 0 {
			surviveMass = dist.Prob(a.Size, lo, math.Inf(1))
		}
		rate := a.Lambda * surviveMass
		m := HostMetrics{Host: i, Rate: rate}
		if surviveMass <= 1e-15 {
			out[i] = m
			continue
		}
		floor := math.Min(suppLo-1, 0)
		if i > 0 {
			floor = lo
		}
		s1 := a.serviceMoment(1, floor, hi) / surviveMass
		s2 := a.serviceMoment(2, floor, hi) / surviveMass
		m.Load = rate * s1
		if m.Load >= 1 {
			m.MeanWait = math.Inf(1)
		} else {
			m.MeanWait = rate * s2 / (2 * (1 - m.Load))
		}
		out[i] = m
	}
	return out
}

// Feasible reports whether every host is stable.
func (a Analysis) Feasible() bool {
	for _, h := range a.Hosts() {
		if h.Load >= 1 {
			return false
		}
	}
	return true
}

// MeanSlowdown evaluates the job-average expected slowdown: a job finishing
// on host i experienced sum_{j<i}(W_j + s_j) + W_i + x, so
// E[S | class i] = 1 + (sum_{j<i}(W_j + s_j) + W_i) * E[1/X | class i].
func (a Analysis) MeanSlowdown() float64 {
	hosts := a.Hosts()
	total := 0.0
	prefix := 0.0 // sum of (W_j + s_j) over earlier hosts
	for i, h := range hosts {
		if math.IsInf(h.MeanWait, 1) {
			return math.Inf(1)
		}
		lo, hi := a.hostEdges(i)
		mass := dist.Prob(a.Size, lo, hi)
		if mass > 1e-15 {
			invX := dist.PartialMoment(a.Size, -1, lo, hi) / mass
			total += mass * (1 + (prefix+h.MeanWait)*invX)
		}
		if i < len(a.Cutoffs) {
			prefix += h.MeanWait + a.Cutoffs[i]
		}
	}
	return total
}

// MeanResponse evaluates the job-average expected response time.
func (a Analysis) MeanResponse() float64 {
	hosts := a.Hosts()
	total := 0.0
	prefix := 0.0
	for i, h := range hosts {
		if math.IsInf(h.MeanWait, 1) {
			return math.Inf(1)
		}
		lo, hi := a.hostEdges(i)
		mass := dist.Prob(a.Size, lo, hi)
		if mass > 1e-15 {
			meanX := dist.PartialMoment(a.Size, 1, lo, hi) / mass
			total += mass * (prefix + h.MeanWait + meanX)
		}
		if i < len(a.Cutoffs) {
			prefix += h.MeanWait + a.Cutoffs[i]
		}
	}
	return total
}

// OptimalCutoffs searches for the TAGS cutoffs minimizing analytic mean
// slowdown for h hosts, by cyclic coordinate descent on a geometric grid —
// the same strategy as the SITA multi-cutoff optimizer, with TAGS' extra
// constraint that wasted work keeps every downstream host stable.
func OptimalCutoffs(lambda float64, size dist.Distribution, h int) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("tags: need h >= 2, got %d", h)
	}
	suppLo, suppHi := size.Support()
	if suppLo <= 0 {
		suppLo = 1e-12
	}
	if math.IsInf(suppHi, 1) {
		if q, ok := size.(dist.Quantiler); ok {
			suppHi = q.Quantile(1 - 1e-12)
		} else {
			suppHi = suppLo * 1e18
		}
	}
	objective := func(cuts []float64) float64 {
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				return math.Inf(1)
			}
		}
		return NewAnalysis(lambda, size, cuts).MeanSlowdown()
	}
	// Start from the SITA equal-load cutoffs scaled up slightly (TAGS wants
	// higher cutoffs because restarts add load downstream); fall back to a
	// coarse global grid scan for a feasible start.
	cuts := make([]float64, h-1)
	logLo, logHi := math.Log(suppLo), math.Log(suppHi)
	for i := range cuts {
		cuts[i] = math.Exp(logLo + (logHi-logLo)*float64(i+1)/float64(h))
	}
	best := objective(cuts)
	if math.IsInf(best, 1) {
		const scan = 24
		found := false
		if h == 2 {
			for g := 1; g < scan && !found; g++ {
				c := math.Exp(logLo + (logHi-logLo)*float64(g)/scan)
				if v := objective([]float64{c}); !math.IsInf(v, 1) {
					cuts[0], best, found = c, v, true
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("tags: no stable cutoffs found for lambda=%v h=%d", lambda, h)
		}
	}
	for sweep := 0; sweep < 20; sweep++ {
		improved := false
		for i := range cuts {
			a := suppLo
			if i > 0 {
				a = cuts[i-1]
			}
			b := suppHi
			if i < len(cuts)-1 {
				b = cuts[i+1]
			}
			la, lb := math.Log(a*(1+1e-9)), math.Log(b*(1-1e-9))
			if lb <= la {
				continue
			}
			const gridN = 48
			bestC, bestV := cuts[i], best
			for g := 0; g <= gridN; g++ {
				c := math.Exp(la + (lb-la)*float64(g)/gridN)
				old := cuts[i]
				cuts[i] = c
				v := objective(cuts)
				cuts[i] = old
				if v < bestV {
					bestC, bestV = c, v
				}
			}
			if bestV < best-1e-12*math.Abs(best) {
				cuts[i] = bestC
				best = bestV
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	if math.IsInf(best, 1) {
		return nil, fmt.Errorf("tags: optimization diverged for lambda=%v h=%d", lambda, h)
	}
	return cuts, nil
}
