package tags

import (
	"math"
	"testing"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/workload"
)

func mkJobs(n int, load float64, hosts int, size dist.Distribution, seed uint64) []workload.Job {
	lambda := workload.RateForLoad(load, size.Moment(1), hosts)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(seed, 0), sim.NewRNG(seed, 1))
	return src.Take(n)
}

func TestSimulateHandCase(t *testing.T) {
	// One cutoff at 10. Job of size 25 runs 10s on host 0 (killed), then
	// restarts and runs 25s on host 1: response 35, wasted 10.
	jobs := []workload.Job{{ID: 0, Arrival: 0, Size: 25}}
	res := Simulate(jobs, []float64{10}, 0)
	if res.Slowdown.Count() != 1 {
		t.Fatalf("completed %d jobs, want 1", res.Slowdown.Count())
	}
	if got := res.Response.Mean(); got != 35 {
		t.Fatalf("response = %v, want 35", got)
	}
	if res.WastedWork != 10 {
		t.Fatalf("wasted = %v, want 10", res.WastedWork)
	}
	if res.TotalWork != 25 {
		t.Fatalf("useful = %v, want 25", res.TotalWork)
	}
	if res.PerHostCompleted[0] != 0 || res.PerHostCompleted[1] != 1 {
		t.Fatalf("completions %v, want [0 1]", res.PerHostCompleted)
	}
	if res.PerHostBusy[0] != 10 || res.PerHostBusy[1] != 25 {
		t.Fatalf("busy %v, want [10 25]", res.PerHostBusy)
	}
}

func TestSimulateSmallJobNeverKilled(t *testing.T) {
	jobs := []workload.Job{{ID: 0, Arrival: 0, Size: 5}}
	res := Simulate(jobs, []float64{10}, 0)
	if res.WastedWork != 0 {
		t.Fatalf("wasted = %v, want 0", res.WastedWork)
	}
	if res.Response.Mean() != 5 {
		t.Fatalf("response = %v, want 5", res.Response.Mean())
	}
	if res.PerHostCompleted[0] != 1 {
		t.Fatal("small job should finish on host 0")
	}
}

func TestSimulateFCFSBehindKill(t *testing.T) {
	// A big job blocks host 0 for exactly the cutoff, not its full size.
	jobs := []workload.Job{
		{ID: 0, Arrival: 0, Size: 100}, // killed at 10 on host 0
		{ID: 1, Arrival: 1, Size: 2},   // waits for the kill, starts at 10
	}
	res := Simulate(jobs, []float64{10}, 0)
	if got := res.Response.Count(); got != 2 {
		t.Fatalf("completed %d", got)
	}
	// Job 1 finishes at 12 -> response 11.
	if got := res.Response.Max(); !(got == 110 || got == 11) {
		t.Fatalf("unexpected responses, max = %v", got)
	}
	// Mean = (110 + 11)/2 where job 0 restarts at 10 on host 1 running 100.
	want := (110.0 + 11.0) / 2
	if math.Abs(res.Response.Mean()-want) > 1e-9 {
		t.Fatalf("mean response = %v, want %v", res.Response.Mean(), want)
	}
}

func TestSimulateSlowdownAtLeastOne(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e4)
	jobs := mkJobs(20000, 0.5, 2, size, 3)
	cut := size.Quantile(0.99)
	res := Simulate(jobs, []float64{cut}, 0)
	if res.Slowdown.Count() != int64(len(jobs)) {
		t.Fatalf("completed %d of %d", res.Slowdown.Count(), len(jobs))
	}
	if res.Slowdown.Min() < 1 {
		t.Fatalf("slowdown %v < 1", res.Slowdown.Min())
	}
	if res.WasteFraction() <= 0 || res.WasteFraction() >= 1 {
		t.Fatalf("waste fraction = %v", res.WasteFraction())
	}
}

func TestAnalysisServiceMomentsSaneOnDeterministic(t *testing.T) {
	// All jobs size 5, cutoff 10: host 0 is an M/D/1, host 1 idle.
	size := dist.Deterministic{Value: 5}
	a := NewAnalysis(0.1, size, []float64{10})
	hosts := a.Hosts()
	if !almostEqual(hosts[0].Load, 0.5, 1e-9) {
		t.Fatalf("host 0 load = %v, want 0.5", hosts[0].Load)
	}
	if hosts[1].Load != 0 {
		t.Fatalf("host 1 load = %v, want 0", hosts[1].Load)
	}
	// M/D/1: E[W] = lambda E[X^2]/(2(1-rho)) = 0.1*25/(2*0.5) = 2.5.
	if !almostEqual(hosts[0].MeanWait, 2.5, 1e-9) {
		t.Fatalf("host 0 wait = %v, want 2.5", hosts[0].MeanWait)
	}
	// Slowdown: 1 + 2.5/5 = 1.5.
	if got := a.MeanSlowdown(); !almostEqual(got, 1.5, 1e-9) {
		t.Fatalf("mean slowdown = %v, want 1.5", got)
	}
	if got := a.MeanResponse(); !almostEqual(got, 7.5, 1e-9) {
		t.Fatalf("mean response = %v, want 7.5", got)
	}
}

func TestAnalysisAccountsWastedLoad(t *testing.T) {
	// Host 0 runs every job: small jobs to completion plus the cutoff's
	// worth of every eventually-killed big job, so its load strictly
	// exceeds the raw work of the small class. Host 1 reruns survivors
	// from scratch, so its load equals the surviving class's full work.
	size := dist.NewBoundedPareto(1.0, 1, 1e5)
	lambda := 2 * 0.5 / size.Moment(1)
	cut := size.Quantile(0.99)
	a := NewAnalysis(lambda, size, []float64{cut})
	hosts := a.Hosts()
	smallWork := lambda * dist.PartialMoment(size, 1, 0, cut)
	if hosts[0].Load <= smallWork {
		t.Fatalf("host 0 load %v should exceed small-class work %v (killed runs)", hosts[0].Load, smallWork)
	}
	surviving := lambda * dist.PartialMoment(size, 1, cut, math.Inf(1))
	if !almostEqual(hosts[1].Load, surviving, 1e-9) {
		t.Fatalf("host 1 load %v should equal surviving work %v (restart from scratch)", hosts[1].Load, surviving)
	}
}

func TestAnalysisMatchesSimulation(t *testing.T) {
	size := dist.NewBoundedPareto(1.2, 10, 1e5)
	load := 0.5
	lambda := 2 * load / size.Moment(1)
	cut := size.Quantile(0.995)
	a := NewAnalysis(lambda, size, []float64{cut})
	if !a.Feasible() {
		t.Skip("cutoff infeasible for this configuration")
	}
	jobs := mkJobs(400000, load, 2, size, 11)
	res := Simulate(jobs, []float64{cut}, 0.1)
	pred := a.MeanSlowdown()
	got := res.Slowdown.Mean()
	if math.Abs(got-pred)/pred > 0.25 {
		t.Fatalf("simulated slowdown %v vs analytic %v (off > 25%%)", got, pred)
	}
}

func TestAnalysisUnstableReportsInf(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e5)
	lambda := 2 * 0.99 / size.Moment(1)
	// Absurdly low cutoff: nearly everything restarts, host 1 melts.
	a := NewAnalysis(lambda, size, []float64{2})
	if a.Feasible() {
		t.Fatal("expected infeasible")
	}
	if !math.IsInf(a.MeanSlowdown(), 1) || !math.IsInf(a.MeanResponse(), 1) {
		t.Fatal("unstable TAGS should report Inf")
	}
}

func TestOptimalCutoffsImproveOverNaive(t *testing.T) {
	size := dist.NewBoundedPareto(0.8, 60, 2e6)
	load := 0.5
	lambda := 2 * load / size.Moment(1)
	cuts, err := OptimalCutoffs(lambda, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewAnalysis(lambda, size, cuts).MeanSlowdown()
	naive := NewAnalysis(lambda, size, []float64{size.Quantile(0.5)}).MeanSlowdown()
	if opt > naive {
		t.Fatalf("optimized %v worse than naive %v", opt, naive)
	}
	if math.IsInf(opt, 1) {
		t.Fatal("optimized cutoffs unstable")
	}
}

func TestTAGSBeatsSizeBlindBaselineAnalytically(t *testing.T) {
	// The point of TAGS: without size information it still crushes Random
	// (the size-blind baseline) by exploiting the heavy tail.
	size := dist.NewBoundedPareto(0.8, 60, 2e6)
	load := 0.5
	lambda := 2 * load / size.Moment(1)
	cuts, err := OptimalCutoffs(lambda, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	tagsS := NewAnalysis(lambda, size, cuts).MeanSlowdown()
	// Random split: each host an M/G/1 at rate lambda/2.
	randomQ := lambda / 2 * size.Moment(2) / (2 * (1 - load))
	randomS := 1 + randomQ*size.Moment(-1)
	if tagsS >= randomS {
		t.Fatalf("TAGS %v should beat Random %v", tagsS, randomS)
	}
}

func TestSimulateValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { Simulate(nil, []float64{5, 1}, 0) },
		func() {
			Simulate([]workload.Job{{Arrival: 5}, {Arrival: 1}}, []float64{10}, 0)
		},
		func() { NewAnalysis(0, dist.NewExponential(1), nil) },
		func() { NewAnalysis(1, dist.NewExponential(1), []float64{5, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
	// The cutoff search is reachable from CLI flags; bad host counts come
	// back as errors, not panics.
	if _, err := OptimalCutoffs(1, dist.NewExponential(1), 1); err == nil {
		t.Error("OptimalCutoffs(h=1): expected error")
	}
}

func TestWasteGrowsAsCutoffShrinks(t *testing.T) {
	size := dist.NewBoundedPareto(1.2, 10, 1e5)
	jobs := mkJobs(30000, 0.4, 2, size, 5)
	lowCut := Simulate(jobs, []float64{size.Quantile(0.9)}, 0)
	highCut := Simulate(jobs, []float64{size.Quantile(0.999)}, 0)
	if lowCut.WasteFraction() <= highCut.WasteFraction() {
		t.Fatalf("waste with low cutoff (%v) should exceed high cutoff (%v)",
			lowCut.WasteFraction(), highCut.WasteFraction())
	}
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff < tol
	}
	return diff/scale < tol
}

// TestSimulateLeavesInputIntact pins the //sim:readonly contract: the
// TAGS simulator shares cached job streams with the FCFS and PS engines,
// so it must never write the slice it is given.
func TestSimulateLeavesInputIntact(t *testing.T) {
	size := dist.NewBoundedPareto(1.2, 1, 1e4)
	shared := mkJobs(2000, 0.7, 2, size, 5)
	snapshot := append([]workload.Job(nil), shared...)
	Simulate(shared, []float64{10}, 0.1)
	for i := range shared {
		if shared[i] != snapshot[i] {
			t.Fatalf("job %d mutated: %+v, was %+v", i, shared[i], snapshot[i])
		}
	}
}
