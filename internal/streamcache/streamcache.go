// Package streamcache shares retimed job streams across simulation cells.
//
// The paper's methodology is common random numbers: every policy at a load
// point consumes the *same* arrival/size stream so the curves are directly
// comparable. The sweep drivers therefore call trace.JobsAtLoad with
// identical arguments once per (policy, load) cell — P regenerations of one
// multi-megabyte []workload.Job per load point. This package generates each
// distinct stream exactly once and hands the same backing slice, read-only,
// to every consumer.
//
// Safety rests on two contracts. First, JobsAtLoad is a pure function of
// (trace content, load, hosts, poisson, seed); trace.Identity stands in for
// the content, so a Key pins the stream bytes exactly and cache hits are
// indistinguishable from regeneration. Second, consumers never write the
// slice: server.Run and server.RunPS document (and //sim:readonly enforces)
// that job slices are read-only, so one slice can feed many concurrent
// simulations without copies. Traces without an identity (zero
// trace.Identity, e.g. hand-built literals) bypass the cache and regenerate.
//
// Entries are kept in a byte-bounded LRU; concurrent requests for the same
// key are collapsed single-flight so a 16-worker sweep still generates once.
package streamcache

import (
	"container/list"
	"sync"

	"sita/internal/trace"
	"sita/internal/workload"
)

// bytesPerJob is the in-memory size of one workload.Job (three 8-byte
// fields), used to charge entries against the byte bound.
const bytesPerJob = 24

// DefaultMaxBytes bounds the shared cache: 256 MiB holds on the order of
// a hundred 55k-job streams, comfortably more than one full figure sweep
// touches, while staying far below experiment peak memory.
const DefaultMaxBytes = 256 << 20

// Key identifies one retimed stream: the trace's content identity plus the
// JobsAtLoad retiming parameters.
type Key struct {
	Trace   trace.Identity
	Load    float64
	Hosts   int
	Poisson bool
	Seed    uint64
}

// entry is one cached stream.
type entry struct {
	key  Key
	jobs []workload.Job
}

// flight tracks an in-progress generation so concurrent requests for the
// same key wait for one result instead of regenerating.
type flight struct {
	done chan struct{}
	jobs []workload.Job
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits        uint64 // served from the LRU
	Misses      uint64 // triggered a generation
	Joins       uint64 // waited on another goroutine's generation
	Evictions   uint64 // entries dropped to respect MaxBytes
	Bypasses    uint64 // identity-less traces generated directly
	Generations uint64 // total JobsAtLoad invocations performed
	Entries     int
	Bytes       int64
	MaxBytes    int64
}

// Cache is a byte-bounded, single-flight stream cache. The zero value is
// not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // of *entry, front = most recent
	items    map[Key]*list.Element
	inflight map[Key]*flight
	bypass   bool

	hits, misses, joins, evictions, bypasses, generations uint64

	statsMu    sync.Mutex
	traceStats map[trace.Identity]trace.Stats

	// testHookGenerate, when non-nil, is invoked once per actual stream
	// generation (inside the single-flight critical path, outside the
	// cache lock) — tests use it to count and to widen race windows.
	testHookGenerate func(Key)
}

// Shared is the process-wide cache used by the experiment drivers, the
// sweep/simserver commands, and the simd service.
var Shared = New(DefaultMaxBytes)

// New returns a cache bounded to maxBytes of job data (<= 0 disables
// storage: every lookup regenerates, which keeps behavior correct while
// making the cache a no-op).
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes:   maxBytes,
		lru:        list.New(),
		items:      make(map[Key]*list.Element),
		inflight:   make(map[Key]*flight),
		traceStats: make(map[trace.Identity]trace.Stats),
	}
}

// SetMaxBytes rebounds the cache, evicting as needed. Safe for concurrent
// use.
func (c *Cache) SetMaxBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	c.evictLocked()
}

// SetBypass toggles bypass mode: when on, every call regenerates and the
// stored entries are dropped. Used by tests to compare cache-on vs
// cache-off output and by operators to rule the cache out.
func (c *Cache) SetBypass(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bypass = on
	if on {
		c.lru.Init()
		c.items = make(map[Key]*list.Element)
		c.bytes = 0
	}
}

// JobsAtLoad returns tr's jobs retimed to the target load, generating at
// most once per distinct key and sharing the result. The returned slice is
// read-only — callers must treat it exactly as they treat a Trace's Jobs
// (see the immutability contract in internal/trace). Panics, like
// trace.JobsAtLoad, if load is outside (0, 1).
func (c *Cache) JobsAtLoad(tr *trace.Trace, load float64, hosts int, poisson bool, seed uint64) []workload.Job {
	id, ok := tr.Identity()
	c.mu.Lock()
	if !ok || c.bypass {
		c.bypasses++
		c.generations++
		hook := c.testHookGenerate
		c.mu.Unlock()
		if hook != nil {
			hook(Key{Trace: id, Load: load, Hosts: hosts, Poisson: poisson, Seed: seed})
		}
		return tr.JobsAtLoad(load, hosts, poisson, seed)
	}
	key := Key{Trace: id, Load: load, Hosts: hosts, Poisson: poisson, Seed: seed}
	for {
		if el, hit := c.items[key]; hit {
			c.hits++
			c.lru.MoveToFront(el)
			jobs := el.Value.(*entry).jobs
			c.mu.Unlock()
			return jobs
		}
		if fl, busy := c.inflight[key]; busy {
			c.joins++
			c.mu.Unlock()
			<-fl.done
			return fl.jobs
		}
		break
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.generations++
	hook := c.testHookGenerate
	c.mu.Unlock()

	if hook != nil {
		hook(key)
	}
	jobs := tr.JobsAtLoad(load, hosts, poisson, seed)
	fl.jobs = jobs

	c.mu.Lock()
	delete(c.inflight, key)
	sz := int64(len(jobs)) * bytesPerJob
	if !c.bypass && sz <= c.maxBytes {
		el := c.lru.PushFront(&entry{key: key, jobs: jobs})
		c.items[key] = el
		c.bytes += sz
		c.evictLocked()
	}
	c.mu.Unlock()
	close(fl.done)
	return jobs
}

// evictLocked drops least-recently-used entries until the byte bound is
// respected. Caller holds c.mu.
func (c *Cache) evictLocked() {
	for c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := c.lru.Remove(el).(*entry)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.jobs)) * bytesPerJob
		c.evictions++
	}
}

// TraceStats returns tr.ComputeStats(), memoized by trace identity. This
// replaces pointer-keyed stats caches: two regenerations of the same
// profile+seed share one entry, and distinct traces can never collide even
// if an old *Trace's address is reused. Identity-less traces compute
// directly.
func (c *Cache) TraceStats(tr *trace.Trace) trace.Stats {
	id, ok := tr.Identity()
	if !ok {
		return tr.ComputeStats()
	}
	c.statsMu.Lock()
	s, hit := c.traceStats[id]
	c.statsMu.Unlock()
	if hit {
		return s
	}
	s = tr.ComputeStats()
	c.statsMu.Lock()
	c.traceStats[id] = s
	c.statsMu.Unlock()
	return s
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Joins:       c.joins,
		Evictions:   c.evictions,
		Bypasses:    c.bypasses,
		Generations: c.generations,
		Entries:     c.lru.Len(),
		Bytes:       c.bytes,
		MaxBytes:    c.maxBytes,
	}
}
