package streamcache

import (
	"testing"

	"sita/internal/trace"
)

// BenchmarkJobsAtLoad prices one stream acquisition on the two paths a
// sweep cell can take: a warm hit (the steady state of a multi-policy
// sweep, where every policy after the first shares the load point's
// stream) and a full generation (the bypass path, equal to the pre-cache
// cost of every cell). The hit/generate ratio is the per-cell saving the
// BENCH_8 sweep numbers are built from.
func BenchmarkJobsAtLoad(b *testing.B) {
	p := trace.C90()
	p.Jobs = 100_000
	tr, err := trace.Generate(p, 42)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("hit", func(b *testing.B) {
		c := New(DefaultMaxBytes)
		c.JobsAtLoad(tr, 0.7, 2, true, 1) // warm the single entry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.JobsAtLoad(tr, 0.7, 2, true, 1)
		}
	})

	b.Run("generate", func(b *testing.B) {
		c := New(DefaultMaxBytes)
		c.SetBypass(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.JobsAtLoad(tr, 0.7, 2, true, 1)
		}
	})
}
