package streamcache

import (
	"reflect"
	"sync"
	"testing"
	"unsafe"

	"sita/internal/runner"
	"sita/internal/trace"
	"sita/internal/workload"
)

func testTrace(t *testing.T, jobs int) *trace.Trace {
	t.Helper()
	p := trace.C90()
	p.Jobs = jobs
	tr, err := trace.Generate(p, 42)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tr
}

func TestBytesPerJobMatchesLayout(t *testing.T) {
	if got := unsafe.Sizeof(workload.Job{}); int64(got) != bytesPerJob {
		t.Fatalf("workload.Job is %d bytes, cache charges %d — update bytesPerJob", got, bytesPerJob)
	}
}

// TestSingleFlight fans many concurrent requests for one key through the
// cache and requires exactly one generation; every caller must get the
// same backing array.
func TestSingleFlight(t *testing.T) {
	tr := testTrace(t, 2000)
	c := New(DefaultMaxBytes)

	var mu sync.Mutex
	generations := 0
	release := make(chan struct{})
	c.testHookGenerate = func(Key) {
		mu.Lock()
		generations++
		mu.Unlock()
		<-release // hold the first generation open so others must join
	}

	const callers = 16
	results := make([][]workload.Job, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = c.JobsAtLoad(tr, 0.7, 2, true, 99)
		}(i)
	}
	// Let the losers reach the join path, then release the winner. The
	// sleep-free way: close once the first generation has started.
	close(release)
	wg.Wait()

	if generations != 1 {
		t.Fatalf("got %d generations, want exactly 1", generations)
	}
	for i := 1; i < callers; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("caller %d got a different backing array", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Joins != callers-1 {
		t.Errorf("hits(%d)+joins(%d) = %d, want %d", st.Hits, st.Joins, st.Hits+st.Joins, callers-1)
	}
}

// TestHitReturnsSameSlice: sequential re-requests are hits on the same
// backing array — the common-random-numbers guarantee with zero copies.
func TestHitReturnsSameSlice(t *testing.T) {
	tr := testTrace(t, 1000)
	c := New(DefaultMaxBytes)
	a := c.JobsAtLoad(tr, 0.5, 2, true, 7)
	b := c.JobsAtLoad(tr, 0.5, 2, true, 7)
	if &a[0] != &b[0] {
		t.Fatal("second request did not hit the cached slice")
	}
	if d := c.JobsAtLoad(tr, 0.5, 2, true, 8); &d[0] == &a[0] {
		t.Fatal("different seed must be a different stream")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

// TestLRUEviction bounds the cache below two streams and checks the older
// one is evicted, then re-generated on demand.
func TestLRUEviction(t *testing.T) {
	tr := testTrace(t, 1000) // 24 KB per stream
	c := New(int64(1500) * bytesPerJob)

	c.JobsAtLoad(tr, 0.3, 2, true, 1)
	c.JobsAtLoad(tr, 0.5, 2, true, 1) // evicts 0.3
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("after second insert: %+v, want 1 eviction, 1 entry", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}
	c.JobsAtLoad(tr, 0.3, 2, true, 1) // must regenerate
	if st = c.Stats(); st.Misses != 3 {
		t.Fatalf("evicted key did not regenerate: %+v", st)
	}
}

// TestOversizedEntryNotStored: a stream larger than the whole bound is
// served but never cached.
func TestOversizedEntryNotStored(t *testing.T) {
	tr := testTrace(t, 1000)
	c := New(10) // 10 bytes: nothing fits
	c.JobsAtLoad(tr, 0.5, 2, true, 1)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry was stored: %+v", st)
	}
}

// TestSetMaxBytesEvicts shrinks a populated cache and expects immediate
// eviction down to the new bound.
func TestSetMaxBytesEvicts(t *testing.T) {
	tr := testTrace(t, 1000)
	c := New(DefaultMaxBytes)
	for _, load := range []float64{0.3, 0.5, 0.7, 0.9} {
		c.JobsAtLoad(tr, load, 2, true, 1)
	}
	c.SetMaxBytes(int64(1500) * bytesPerJob)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes > st.MaxBytes {
		t.Fatalf("after shrink: %+v, want 1 entry within bound", st)
	}
}

// TestIdentityLessTraceBypasses: a hand-built Trace literal has no
// identity, so the cache regenerates per call and never stores.
func TestIdentityLessTraceBypasses(t *testing.T) {
	jobs := []workload.Job{{ID: 0, Arrival: 0, Size: 1}, {ID: 1, Arrival: 1, Size: 2}}
	tr := &trace.Trace{Name: "literal", Jobs: jobs}
	c := New(DefaultMaxBytes)
	a := c.JobsAtLoad(tr, 0.5, 2, true, 1)
	b := c.JobsAtLoad(tr, 0.5, 2, true, 1)
	if &a[0] == &b[0] {
		t.Fatal("identity-less trace must not be cached")
	}
	st := c.Stats()
	if st.Bypasses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 2 bypasses and no entries", st)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("bypassed regenerations must still be deterministic")
	}
}

// TestCacheTransparent: the cached stream is byte-identical to a direct
// trace.JobsAtLoad call, and bypass mode matches too — the cache can never
// change experiment output.
func TestCacheTransparent(t *testing.T) {
	tr := testTrace(t, 3000)
	c := New(DefaultMaxBytes)
	direct := tr.JobsAtLoad(0.7, 4, false, 1234)
	cached := c.JobsAtLoad(tr, 0.7, 4, false, 1234)
	if !reflect.DeepEqual(direct, cached) {
		t.Fatal("cached stream differs from direct generation")
	}
	c.SetBypass(true)
	bypassed := c.JobsAtLoad(tr, 0.7, 4, false, 1234)
	if !reflect.DeepEqual(direct, bypassed) {
		t.Fatal("bypass-mode stream differs from direct generation")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("SetBypass(true) must drop stored entries: %+v", st)
	}
}

// TestDerivedTraceDistinctIdentity: a truncated trace must not collide
// with its parent in the cache even though it shares the backing array.
func TestDerivedTraceDistinctIdentity(t *testing.T) {
	tr := testTrace(t, 2000)
	half := tr.Truncate(1000)
	c := New(DefaultMaxBytes)
	a := c.JobsAtLoad(tr, 0.5, 2, true, 1)
	b := c.JobsAtLoad(half, 0.5, 2, true, 1)
	if len(a) == len(b) {
		t.Fatal("parent and truncated child returned the same stream")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("expected two distinct entries, got %+v", st)
	}
}

// TestTraceStatsMemo: identity-keyed stats memoization returns identical
// rows and computes once per identity, including across regenerations of
// the same recipe (which pointer keying could not share).
func TestTraceStatsMemo(t *testing.T) {
	tr1 := testTrace(t, 2000)
	tr2 := testTrace(t, 2000) // same recipe, different *Trace
	if tr1 == tr2 {
		t.Fatal("want distinct pointers")
	}
	c := New(DefaultMaxBytes)
	s1 := c.TraceStats(tr1)
	s2 := c.TraceStats(tr2)
	if s1 != s2 {
		t.Fatalf("same identity produced different stats: %+v vs %+v", s1, s2)
	}
	if want := tr1.ComputeStats(); s1 != want {
		t.Fatalf("memoized stats %+v differ from direct %+v", s1, want)
	}
}

// TestConcurrentFanOut drives the cache through runner.MapOpts the way a
// sweep does — many cells, few distinct keys — and checks generation
// count and byte-identical per-key results. Run under -race in CI.
func TestConcurrentFanOut(t *testing.T) {
	tr := testTrace(t, 2000)
	c := New(DefaultMaxBytes)

	loads := []float64{0.3, 0.5, 0.7, 0.9}
	const policies = 6
	type cell struct {
		load float64
		rep  int
	}
	var cells []cell
	for _, l := range loads {
		for p := 0; p < policies; p++ {
			cells = append(cells, cell{l, p})
		}
	}
	out, err := runner.MapOpts(runner.Options{Workers: 8}, cells,
		func(i int, cl cell) ([]workload.Job, error) {
			return c.JobsAtLoad(tr, cl.load, 2, true, 7), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, jobs := range out {
		want := c.JobsAtLoad(tr, cells[i].load, 2, true, 7)
		if &jobs[0] != &want[0] {
			t.Fatalf("cell %d: stream not shared for load %v", i, cells[i].load)
		}
	}
	st := c.Stats()
	if st.Generations != uint64(len(loads)) {
		t.Fatalf("generations = %d, want one per distinct load (%d); stats %+v",
			st.Generations, len(loads), st)
	}
}

// TestExactByteBudgetBoundary pins the byte-accounting at the exact
// budget edge: an entry that fills the bound to the last byte is stored
// without evicting, the next insert evicts the LRU entry (not the new
// one), and an entry one job over the whole bound is served but never
// stored.
func TestExactByteBudgetBoundary(t *testing.T) {
	const n = 1000
	tr := testTrace(t, n)
	c := New(int64(n) * bytesPerJob) // budget == exactly one stream

	a := c.JobsAtLoad(tr, 0.3, 2, true, 1)
	if len(a) != n {
		t.Fatalf("stream has %d jobs, want %d", len(a), n)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != st.MaxBytes || st.Evictions != 0 {
		t.Fatalf("exact-fit entry: %+v, want 1 entry filling the bound with no eviction", st)
	}

	// Second exact-fit stream: the budget forces the older one out, and
	// the newcomer must be the survivor.
	b := c.JobsAtLoad(tr, 0.5, 2, true, 1)
	st = c.Stats()
	if st.Entries != 1 || st.Bytes != st.MaxBytes || st.Evictions != 1 {
		t.Fatalf("after second exact-fit insert: %+v, want 1 entry, 1 eviction", st)
	}
	if b2 := c.JobsAtLoad(tr, 0.5, 2, true, 1); &b2[0] != &b[0] {
		t.Fatal("newest entry was evicted instead of the LRU one")
	}
	if st = c.Stats(); st.Hits != 1 {
		t.Fatalf("survivor lookup was not a hit: %+v", st)
	}

	// One job over the whole bound: served, never stored, nothing evicted.
	over := testTrace(t, n+1)
	before := c.Stats()
	if got := c.JobsAtLoad(over, 0.5, 2, true, 1); len(got) != n+1 {
		t.Fatalf("oversized stream has %d jobs, want %d", len(got), n+1)
	}
	st = c.Stats()
	if st.Entries != before.Entries || st.Bytes != before.Bytes || st.Evictions != before.Evictions {
		t.Fatalf("oversized entry disturbed the cache: %+v -> %+v", before, st)
	}
}
