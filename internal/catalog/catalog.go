// Package catalog is the shared registry of user-facing names and
// parameter contracts: the task assignment policies a caller can name, the
// built-in workload profiles, and the validation rules every entry point
// (the cmd/ binaries and the simd HTTP service) applies to common
// parameters before running anything.
//
// Centralizing this keeps the surfaces consistent: a policy name accepted
// by `simserver -policy` is accepted by `POST /v1/simulate`, rejections
// carry the same one-line message naming the valid values everywhere, and
// invalid parameters are caught at the boundary instead of panicking deep
// inside internal/server.
//
// Building a policy is deterministic: the same (name, load, workload,
// hosts, seed) tuple always yields a policy whose simulation output is
// byte-identical, which is what makes service responses cacheable.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"sita"
	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/sim"
	"sita/internal/trace"
)

// PolicyNames lists every accepted policy name in presentation order.
// Aliases (rr, sq, cq, least-work-left) are accepted by Build but not
// listed.
func PolicyNames() []string {
	return []string{"random", "round-robin", "shortest-queue", "lwl",
		"central-queue", "sita-e", "sita-u-opt", "sita-u-fair", "sita-u-rule"}
}

// ProfileNames lists the built-in workload profiles in sorted order.
func ProfileNames() []string {
	m := trace.Profiles()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CheckLoad validates a system load: it must lie strictly inside (0, 1),
// the open interval where every queueing formula and simulation is stable.
func CheckLoad(load float64) error {
	if !(load > 0 && load < 1) {
		return fmt.Errorf("load must be in (0,1), got %v", load)
	}
	return nil
}

// CheckWarmup validates a warmup fraction: [0, 1) — excluding every job
// from statistics is never meaningful. Written in the affirmative form
// so NaN (which fails every comparison) is rejected rather than slipping
// through a negated range check.
func CheckWarmup(w float64) error {
	if !(w >= 0 && w < 1) {
		return fmt.Errorf("warmup must be in [0,1), got %v", w)
	}
	return nil
}

// CheckWorkers validates a worker count: at least 1.
func CheckWorkers(w int) error {
	if w < 1 {
		return fmt.Errorf("workers must be >= 1, got %d", w)
	}
	return nil
}

// CheckHosts validates a host count: at least 1.
func CheckHosts(h int) error {
	if h < 1 {
		return fmt.Errorf("hosts must be >= 1, got %d", h)
	}
	return nil
}

// CheckJobs validates a job-count cap: 0 (profile default) or positive.
func CheckJobs(jobs int) error {
	if jobs < 0 {
		return fmt.Errorf("jobs must be >= 0 (0 = profile default), got %d", jobs)
	}
	return nil
}

// CheckPolicy validates a policy name, naming the valid values on failure.
func CheckPolicy(name string) error {
	if _, ok := canonicalPolicy(name); !ok {
		return fmt.Errorf("unknown policy %q (have: %s)", name, strings.Join(PolicyNames(), ", "))
	}
	return nil
}

// CheckProfile validates a built-in profile name, naming the valid values
// on failure.
func CheckProfile(name string) error {
	if _, ok := trace.Profiles()[name]; !ok {
		return fmt.Errorf("unknown profile %q (have: %s)", name, strings.Join(ProfileNames(), ", "))
	}
	return nil
}

// canonicalPolicy resolves aliases to the canonical policy name.
func canonicalPolicy(name string) (string, bool) {
	switch strings.ToLower(name) {
	case "random":
		return "random", true
	case "round-robin", "rr":
		return "round-robin", true
	case "shortest-queue", "sq":
		return "shortest-queue", true
	case "lwl", "least-work-left":
		return "lwl", true
	case "central-queue", "cq":
		return "central-queue", true
	case "sita-e":
		return "sita-e", true
	case "sita-u-opt":
		return "sita-u-opt", true
	case "sita-u-fair":
		return "sita-u-fair", true
	case "sita-u-rule":
		return "sita-u-rule", true
	}
	return "", false
}

// CanonicalPolicy returns the canonical spelling of a policy name (aliases
// resolved, case folded), or an error naming the valid values.
func CanonicalPolicy(name string) (string, error) {
	c, ok := canonicalPolicy(name)
	if !ok {
		return "", CheckPolicy(name)
	}
	return c, nil
}

// Build constructs the named policy for a workload at the given system
// load on the given host count. SITA variants return the derived Design
// alongside the policy (nil for size-oblivious policies) so callers can
// classify jobs and audit fairness. The seed feeds only the Random
// policy's generator (stream 100, the convention every entry point
// shares).
func Build(name string, load float64, wl *sita.Workload, hosts int, seed uint64) (sita.Policy, *sita.Design, error) {
	c, ok := canonicalPolicy(name)
	if !ok {
		return nil, nil, CheckPolicy(name)
	}
	switch c {
	case "random":
		return policy.NewRandom(sim.NewRNG(seed, 100)), nil, nil
	case "round-robin":
		return policy.NewRoundRobin(), nil, nil
	case "shortest-queue":
		return policy.NewShortestQueue(), nil, nil
	case "lwl":
		return policy.NewLeastWorkLeft(), nil, nil
	case "central-queue":
		return policy.NewCentralQueue(), nil, nil
	default: // the SITA family
		var v sita.Variant
		switch c {
		case "sita-e":
			v = core.SITAE
		case "sita-u-opt":
			v = core.SITAUOpt
		case "sita-u-fair":
			v = core.SITAUFair
		default:
			v = core.SITARule
		}
		d, err := sita.NewDesign(v, load, wl.Size, hosts)
		if err != nil {
			return nil, nil, err
		}
		return d.Policy(), d, nil
	}
}
