package catalog

import (
	"math"
	"strings"
	"testing"
)

// FuzzCanonicalPolicy hammers policy-name resolution with arbitrary
// strings: it must never panic, resolution must be idempotent (the
// canonical spelling of a canonical name is itself), every accepted
// name must resolve into the published PolicyNames list, and acceptance
// must agree with CheckPolicy and be case-insensitive.
func FuzzCanonicalPolicy(f *testing.F) {
	for _, name := range PolicyNames() {
		f.Add(name)
	}
	f.Add("rr")
	f.Add("SQ")
	f.Add("Least-Work-Left")
	f.Add("")
	f.Add("sita-")
	f.Add("random ")
	f.Add("cq\x00")
	f.Fuzz(func(t *testing.T, name string) {
		c, err := CanonicalPolicy(name)
		if (err == nil) != (CheckPolicy(name) == nil) {
			t.Fatalf("CanonicalPolicy and CheckPolicy disagree on %q: %v vs %v", name, err, CheckPolicy(name))
		}
		if err != nil {
			if c != "" {
				t.Fatalf("rejected %q but returned canonical %q", name, c)
			}
			return
		}
		published := false
		for _, p := range PolicyNames() {
			if c == p {
				published = true
				break
			}
		}
		if !published {
			t.Fatalf("accepted %q resolves to %q, which PolicyNames does not list", name, c)
		}
		again, err := CanonicalPolicy(c)
		if err != nil || again != c {
			t.Fatalf("canonicalization not idempotent: %q -> %q -> (%q, %v)", name, c, again, err)
		}
		upper, err := CanonicalPolicy(strings.ToUpper(name))
		if err != nil || upper != c {
			t.Fatalf("case-folding broken: %q accepted but %q -> (%q, %v)", name, strings.ToUpper(name), upper, err)
		}
	})
}

// FuzzParameterChecks throws arbitrary values at the shared parameter
// validators: they must never panic and must enforce their documented
// contracts exactly — including on NaN, infinities, and negative zero,
// which arrive at these checks straight from JSON and flag parsing.
func FuzzParameterChecks(f *testing.F) {
	f.Add(0.5, 0.2, 4, 8, 1000)
	f.Add(0.0, 1.0, 0, 0, 0)
	f.Add(math.Inf(1), math.Inf(-1), -1, -1, -1)
	f.Add(math.NaN(), math.NaN(), math.MaxInt, math.MinInt, math.MinInt)
	f.Add(math.Copysign(0, -1), -0.0, 1, 1, 1)
	f.Fuzz(func(t *testing.T, load, warmup float64, hosts, workers, jobs int) {
		if err := CheckLoad(load); (err == nil) != (load > 0 && load < 1) {
			t.Fatalf("CheckLoad(%v) = %v", load, err)
		}
		// The contract is [0, 1); NaN must be rejected, which the direct
		// comparison form encodes (NaN fails both bounds checks only if
		// written as below).
		wantWarmupOK := warmup >= 0 && warmup < 1
		if err := CheckWarmup(warmup); (err == nil) != wantWarmupOK {
			t.Fatalf("CheckWarmup(%v) = %v, want ok=%v", warmup, err, wantWarmupOK)
		}
		if err := CheckHosts(hosts); (err == nil) != (hosts >= 1) {
			t.Fatalf("CheckHosts(%d) = %v", hosts, err)
		}
		if err := CheckWorkers(workers); (err == nil) != (workers >= 1) {
			t.Fatalf("CheckWorkers(%d) = %v", workers, err)
		}
		if err := CheckJobs(jobs); (err == nil) != (jobs >= 0) {
			t.Fatalf("CheckJobs(%d) = %v", jobs, err)
		}
	})
}
