package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level functions of "time" that read or
// depend on the wall clock or the host's time configuration. Durations,
// formatting, and time arithmetic on values already held are fine;
// acquiring the current time (or sleeping against it) inside simulation
// code makes output depend on the machine, which breaks deterministic
// replay. Simulated time comes from sim.Engine; intentional uses (CLI
// progress reporting) carry a //lint:allow nowallclock annotation.
var wallClockFuncs = map[string]bool{
	"Now":          true,
	"Since":        true,
	"Until":        true,
	"Sleep":        true,
	"After":        true,
	"AfterFunc":    true,
	"Tick":         true,
	"NewTicker":    true,
	"NewTimer":     true,
	"LoadLocation": true, // reads the host timezone database
}

// machineFuncs are non-time sources whose value depends on the machine or
// process environment rather than the simulation inputs: equally fatal to
// replay, and historically the first things a "quick tuning hack"
// reaches for. runtime.GOMAXPROCS is deliberately absent — the runner
// sizes its worker pool with it, and worker count never influences
// output (cells merge in deterministic order); detflow still forbids it
// inside //sim:entry call trees, where even scheduling must not vary.
var machineFuncs = map[string]map[string]bool{
	"runtime": {"NumCPU": true},
	"os": {
		"Getenv":    true,
		"LookupEnv": true,
		"Environ":   true,
		"Hostname":  true,
		"Getpid":    true,
	},
}

// NoWallClock forbids wall-clock and machine-dependent access in
// simulation code, whether called directly or referenced as a function
// value (a stored time.Now is a wall clock on a delay line).
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "time.Now, time.Since and friends read the wall clock, and " +
		"runtime.NumCPU / os.Getenv read the machine, so any value they " +
		"influence differs between runs and hosts. Simulated time advances " +
		"only through sim.Engine; intentional uses (command progress " +
		"output) carry an explicit //lint:allow nowallclock annotation. " +
		"References to these functions as values are flagged like calls.",
	Run: runNoWallClock,
}

// forbiddenSource classifies a package-level function, returning a
// display name ("time.Now") when it is a forbidden source.
func forbiddenSource(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if path == "time" && wallClockFuncs[name] {
		return "time." + name, true
	}
	if set, ok := machineFuncs[path]; ok && set[name] {
		return path + "." + name, true
	}
	return "", false
}

func runNoWallClock(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Distinguish call sites from value references: both are
		// forbidden, but the message should say which shape it saw.
		calls := make(map[ast.Node]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				calls[ast.Unparen(call.Fun)] = true
			}
			return true
		})
		inspectFuncs(file, func(n ast.Node, _ *ast.FuncDecl) {
			// Qualified references are always SelectorExprs (pkg.Func);
			// reporting there, not at the inner Ident, avoids
			// double-counting one reference as two findings.
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return // methods (t.Add, d.Seconds) are pure arithmetic
			}
			name, forbidden := forbiddenSource(fn)
			if !forbidden {
				return
			}
			if calls[sel] {
				pass.Reportf(sel.Pos(),
					"%s reads the wall clock or the machine and breaks deterministic replay; simulated time comes from sim.Engine (annotate intentional progress output with %s nowallclock <reason>)",
					name, AllowPrefix)
				return
			}
			pass.Reportf(sel.Pos(),
				"%s referenced as a value smuggles a wall-clock/machine source past call-site checks; pass simulated time or a seeded source instead (%s nowallclock <reason> if intentional)",
				name, AllowPrefix)
		})
	}
}
