package analysis

import (
	"go/ast"
)

// wallClockFuncs are the package-level functions of "time" that read or
// depend on the wall clock. Durations, formatting, and time arithmetic on
// values already held are fine; acquiring the current time (or sleeping
// against it) inside simulation code makes output depend on the machine,
// which breaks deterministic replay. Simulated time comes from
// sim.Engine; intentional uses (CLI progress reporting) carry a
// //lint:allow nowallclock annotation.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoWallClock forbids wall-clock access in simulation code.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "time.Now, time.Since and friends read the wall clock, so any " +
		"value they influence differs between runs and machines. " +
		"Simulated time advances only through sim.Engine; wall-clock use " +
		"is reserved for command progress output under an explicit " +
		"//lint:allow nowallclock annotation.",
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		inspectFuncs(file, func(n ast.Node, _ *ast.FuncDecl) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			pkgPath, name, ok := calleePkgFunc(pass.Pkg.Info, call)
			if !ok || pkgPath != "time" || !wallClockFuncs[name] {
				return
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock and breaks deterministic replay; simulated time comes from sim.Engine (annotate intentional progress output with %s nowallclock <reason>)",
				name, AllowPrefix)
		})
	}
}
