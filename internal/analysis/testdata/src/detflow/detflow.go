// Package detflow is the golden fixture for the interprocedural
// determinism-taint analyzer: forbidden sources reached through call
// chains from //sim:entry roots, interface dispatch, function-value
// references, //sim:io boundaries, and map-order leaks.
package detflow

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"
)

// Drive is a simulation entry point; everything it reaches must be
// deterministic.
//
//sim:entry
func Drive() {
	step()
	logProgress()
	var s stepper = machine{}
	s.tick()
	spawn(hook)
}

// step sits one hop from the entry: the taint walk follows it into both
// the clock helper and the map-order leak.
func step() {
	readClock()
	_ = keys(map[int]int{1: 1})
}

// readClock hides a wall-clock read behind a file-local allow: the
// call-site analyzer is silenced, the interprocedural walk is not.
func readClock() time.Time {
	//lint:allow nowallclock fixture: stands in for ad-hoc progress timing
	return time.Now() // want `readClock reaches time\.Now \(wall-clock time\) inside the deterministic region \(via detflow\.Drive -> detflow\.step -> detflow\.readClock\)`
}

// logProgress is a sanctioned exit from simulation code: the walk stops
// at the boundary, so the clock read inside is not reported.
//
//sim:io fixture: operator progress output, never folded into results
func logProgress() {
	//lint:allow nowallclock operator progress output, not a simulation result
	fmt.Println("t =", time.Now())
}

// stepper dispatches through an interface: detflow conservatively links
// the call to every same-name, same-signature concrete method.
type stepper interface{ tick() }

// machine draws from the global math/rand state: flagged through the
// interface edge.
type machine struct{}

func (machine) tick() {
	//lint:allow seedflow fixture: stands in for an unseeded global draw
	_ = rand.Int() // want `tick reaches math/rand\.Int \(global math/rand state\) inside the deterministic region`
}

// idler is a clean implementor on the same interface: dispatch
// over-approximation visits it and finds nothing.
type idler struct{}

func (idler) tick() {}

// spawn calls its argument through a func value — an edge the graph
// cannot see — but the reference that reaches it is tracked.
func spawn(f func()) { f() }

// hook is only ever passed as a value; the EdgeRef from Drive still
// pulls it into the deterministic region.
func hook() {
	//lint:allow nowallclock fixture: stands in for a sizing heuristic
	_ = runtime.NumCPU() // want `hook reaches runtime\.NumCPU \(machine-dependent CPU count\) inside the deterministic region`
}

// keys leaks map iteration order into its result: flagged by maporder at
// the append (file-local) and by detflow at the range (with the entry
// path that makes it a reproducibility bug, not a style nit).
func keys(m map[int]int) []int {
	var out []int
	for k := range m { // want `detflow\.keys ranges over a map and accumulates elements in iteration order inside the deterministic region`
		out = append(out, k) // want `appending to out while ranging over a map`
	}
	return out
}

// Replay is a second, disjoint entry: environment reads taint its tree.
//
//sim:entry
func Replay() { tune() }

// tune reads a tuning knob from the environment: replay on another
// machine would silently simulate a different system.
func tune() {
	//lint:allow nowallclock fixture: stands in for an ops knob
	_ = os.Getenv("SIM_TUNE") // want `tune reaches os\.Getenv \(environment variable\) inside the deterministic region \(via detflow\.Replay -> detflow\.tune\)`
}

// Offline is not an entry and not reachable from one: its clock read is
// the file-local analyzer's business alone.
func Offline() time.Time {
	//lint:allow nowallclock fixture: outside every entry tree
	return time.Now()
}

// Contradictory carries both directives: an entry cannot be its own
// exit boundary.
//
//sim:entry
//sim:io fixture: contradictory on purpose
func Contradictory() {} // want `marked both //sim:entry and //sim:io`
