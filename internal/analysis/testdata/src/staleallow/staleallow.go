// Package staleallow is the fixture for the stale-suppression check: a
// //lint:allow that no longer suppresses anything must itself be
// reported, so the allowlist cannot rot as analyzers and code evolve.
// The driver test asserts the diagnostics directly (a want comment
// cannot share a line with the directive it describes).
package staleallow

import "time"

// used carries a directive that still suppresses a live finding: not
// reported.
func used() time.Time {
	//lint:allow nowallclock fixture: a genuinely suppressed wall-clock read
	return time.Now()
}

// stale carries a directive with nothing left to suppress — the line it
// guards does arithmetic on values already held, which nowallclock never
// flagged.
func stale(a, b time.Time) time.Duration {
	//lint:allow nowallclock fixture: the violation this guarded was refactored away
	return b.Sub(a)
}
