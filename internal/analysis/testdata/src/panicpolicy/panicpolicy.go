// Package panicpolicy is the golden fixture for the panicpolicy
// analyzer: panic must be a documented contract, a Must/init helper, or
// an annotated invariant; error-returning functions must use the error
// path.
package panicpolicy

import (
	"errors"
	"fmt"
)

// Documented declares its panic in the doc comment, like
// regexp.MustCompile. Panics if n is negative.
func Documented(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// MustPositive is a Must helper; the name is the documentation.
func MustPositive(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

func init() {
	if MustPositive(1) != 1 {
		panic("unreachable")
	}
}

// Validate returns an error yet panics on bad input: flagged — the error
// path exists, use it.
func Validate(n int) error {
	if n < 0 {
		panic("negative") // want `Validate returns an error; return the validation failure`
	}
	return nil
}

// Build has error in a multi-value result list: still flagged.
func Build(n int) (int, error) {
	if n < 0 {
		panic("negative") // want `Build returns an error; return the validation failure`
	}
	return n, nil
}

// Undocumented dies on bad input without declaring the contract:
// flagged. (This comment must not contain the p-word, or it would count
// as documentation.)
func Undocumented(n int) int {
	if n < 0 {
		panic("negative") // want `undocumented panic in Undocumented`
	}
	return n
}

// counter exists to exercise the method label.
type counter struct{ n int }

// dec dies undocumented inside a method: flagged with the receiver type
// in the label.
func (c *counter) dec() {
	if c.n == 0 {
		panic("underflow") // want `undocumented panic in \*counter\.dec`
	}
	c.n--
}

// Ok uses the error path as the policy demands — legal.
func Ok(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

// Invariant keeps an internal consistency check under an annotation.
func Invariant(n int) int {
	if n < 0 {
		//lint:allow panicpolicy fixture exercises the suppression path
		panic(fmt.Sprintf("invariant violated: %d", n))
	}
	return n
}
