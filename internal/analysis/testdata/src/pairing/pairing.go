// Package pairing is the golden fixture for the resource-lifecycle
// analyzer: Acquire/Release pairing, SetCancelCheck ordering, mutex
// lock/unlock windows, and WaitGroup.Add placement.
package pairing

import "sync"

// engine stands in for the pooled simulation engine.
type engine struct{ cancelEvery int }

func (e *engine) SetCancelCheck(every int, fn func() bool) { e.cancelEvery = every }
func (e *engine) work() int                                { return e.cancelEvery }

var pool sync.Pool

// Acquire and Release mimic the sim package's pool API.
func Acquire() *engine { return pool.Get().(*engine) }

func Release(e *engine) {
	e.cancelEvery = 0
	pool.Put(e)
}

// good is the sanctioned shape: defer Release registered immediately,
// before SetCancelCheck installs per-run state.
func good(interrupt func() bool) int {
	eng := Acquire()
	defer Release(eng)
	if interrupt != nil {
		eng.SetCancelCheck(4096, interrupt)
	}
	return eng.work()
}

// leaky never releases: every return path leaks the pooled engine.
func leaky() int {
	eng := Acquire() // want `leaky acquired without a deferred Release for "eng"`
	return eng.work()
}

// earlyReturn registers the defer too late: the conditional return
// between Acquire and the defer leaks the engine.
func earlyReturn(skip bool) int {
	eng := Acquire()
	if skip {
		return 0 // want `return between Acquire of "eng" and its deferred Release leaks the pooled resource`
	}
	defer Release(eng)
	return eng.work()
}

// poisoned installs cancel state before the deferred Release exists: a
// panic inside SetCancelCheck's window would pool a poisoned engine.
func poisoned(interrupt func() bool) int {
	eng := Acquire()
	eng.SetCancelCheck(4096, interrupt) // want `SetCancelCheck on eng before its deferred Release is registered`
	defer Release(eng)
	return eng.work()
}

// counter guards a value with a mutex.
type counter struct {
	mu sync.Mutex
	n  int
}

// lockedReturn exits while holding the lock: the return sits between
// Lock and the lexically next Unlock.
func (c *counter) lockedReturn(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		return c.n // want `return while c\.mu is locked`
	}
	c.n++
	c.mu.Unlock()
	return 0
}

// lockedForever never unlocks at all.
func (c *counter) lockedForever() {
	c.mu.Lock() // want `c\.mu\.Lock has no deferred or paired Unlock`
	c.n++
}

// deferred is the sanctioned shape: defer pairs the unlock with every
// return path.
func (c *counter) deferred(limit int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > limit {
		return c.n
	}
	c.n++
	return 0
}

// manualPaired unlocks before each return: legal without defer.
func (c *counter) manualPaired(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		c.mu.Unlock()
		return c.n
	}
	c.n++
	c.mu.Unlock()
	return 0
}

// deferredClosure unlocks inside a deferred closure: also a valid pair.
func (c *counter) deferredClosure() {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	c.n++
}

// rwGuard pairs RLock with RUnlock, not Unlock.
type rwGuard struct {
	mu sync.RWMutex
	n  int
}

// readLockedReturn exits between RLock and RUnlock.
func (g *rwGuard) readLockedReturn(limit int) int {
	g.mu.RLock()
	if g.n > limit {
		return g.n // want `return while g\.mu is locked`
	}
	g.mu.RUnlock()
	return 0
}

// addInGoroutine increments the WaitGroup inside the goroutine the
// counter is waiting for: Wait can observe zero before the goroutine
// runs.
func addInGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `WaitGroup\.Add inside the goroutine being waited for races Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

// addBeforeGoroutine is the sanctioned shape: Add before go.
func addBeforeGoroutine() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		inner.Add(1) // the goroutine's own WaitGroup: not a race with the outer Wait
		inner.Done()
		inner.Wait()
	}()
	wg.Wait()
}
