// Package allocfree is the golden fixture for the //sim:noalloc
// contract analyzer: allocation sites in annotated functions and their
// static callees, the panic-path exemption, and the //lint:allow escape
// hatch for documented amortized-growth appends.
package allocfree

import "fmt"

// ring is a recycled buffer in the style of the kernel's event heap.
type ring struct {
	buf  []int
	head int
}

// Push is a hot-path entry point under the noalloc contract; the helper
// it calls is checked too.
//
//sim:noalloc
func (r *ring) Push(v int) {
	r.ensure()
	r.buf = append(r.buf, v) //lint:allow allocfree capacity pre-grown by ensure; append never reallocates here
	grow(r)
}

// ensure is reached from Push, so the contract applies here without its
// own annotation.
func (r *ring) ensure() {
	if r.buf == nil {
		r.buf = make([]int, 0, 64) // want `\(\*allocfree\.ring\)\.ensure calls make inside a //sim:noalloc region \(noalloc via \(\*allocfree\.ring\)\.Push -> \(\*allocfree\.ring\)\.ensure\)`
	}
}

// grow allocates two ways; both are reported with the chain that makes
// them hot-path violations.
func grow(r *ring) {
	r.buf = append(r.buf, 0) // want `allocfree\.grow calls append inside a //sim:noalloc region`
	_ = new(ring)            // want `allocfree\.grow calls new inside a //sim:noalloc region`
}

// Pop panics on contract violation: panic arguments are not steady
// state, so the formatting allocation is exempt.
//
//sim:noalloc
func (r *ring) Pop() int {
	if len(r.buf) == 0 {
		panic(fmt.Sprintf("pop of empty ring %d", r.head))
	}
	v := r.buf[len(r.buf)-1]
	r.buf = r.buf[:len(r.buf)-1]
	return v
}

// Observe boxes its operand into an interface parameter — one heap
// value per call.
//
//sim:noalloc
func (r *ring) Observe(sink func(any)) {
	sink(r.head) // want `boxes a int into interface`
}

// Describe concatenates strings and builds a capturing closure: two
// allocations per call.
//
//sim:noalloc
func (r *ring) Describe(name string) (string, func() int) {
	label := "ring:" + name // want `concatenates strings inside a //sim:noalloc region`
	probe := func() int {   // want `builds a capturing closure inside a //sim:noalloc region`
		return r.head
	}
	_ = label
	return name, probe
}

// Reset is init-path code with no annotation and is unreachable from any
// annotated function: it may allocate freely.
func (r *ring) Reset(n int) {
	r.buf = make([]int, 0, n)
}

// staticProbe is capture-free: it compiles to a static func value, not a
// closure, so noalloc code may build it.
//
//sim:noalloc
func staticProbe() func() int {
	return func() int { return 0 }
}
