// Package maporder is the golden fixture for the maporder analyzer: map
// iteration must not feed ordered output without an intervening sort.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// unsortedKeys leaks map iteration order into the returned slice: flagged.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to keys while ranging over a map`
	}
	return keys
}

// sortedKeys sorts the accumulated slice after the loop — legal.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedFunc blesses the slice through slices-style sorting via sort.Slice
// — legal.
func sortedFunc(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// printDirect writes rows straight from the range: flagged.
func printDirect(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map range`
	}
}

// buildDirect streams bytes to a writer inside the range: flagged.
func buildDirect(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside a map range`
	}
	return b.String()
}

// loopLocal accumulates into a slice scoped to the loop body, which
// cannot leak iteration order — legal.
func loopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// reduce aggregates order-insensitively — legal.
func reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// suppressed keeps a deliberately unsorted accumulation under an
// annotation.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow maporder fixture exercises the suppression path
		keys = append(keys, k)
	}
	return keys
}
