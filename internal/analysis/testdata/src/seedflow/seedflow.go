// Package seedflow is the golden fixture for the seedflow analyzer: RNG
// construction and global-source draws are legal only inside the approved
// seed-derivation helpers.
package seedflow

import "math/rand/v2"

// NewRNG mirrors sim.NewRNG — an approved helper name, so constructing
// a generator here is legal.
func NewRNG(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream))
}

// CellSeed mirrors runner.CellSeed; drawing inside an approved helper is
// legal too.
func CellSeed(base uint64) uint64 {
	return base ^ rand.Uint64()
}

// adHoc builds a generator outside any helper: both calls are flagged.
func adHoc() *rand.Rand {
	return rand.New(rand.NewPCG(1, 2)) // want `rand\.New in adHoc` `rand\.NewPCG in adHoc`
}

// globalDraw samples the process-global source, which is seeded
// nondeterministically at startup: flagged.
func globalDraw() float64 {
	return rand.Float64() // want `rand\.Float64 in globalDraw`
}

var packageScope = rand.Uint64() // want `rand\.Uint64 at package scope`

// closure shows that a draw inside a function literal is attributed to
// the named function containing it.
func closure() func() int {
	return func() int {
		return rand.IntN(10) // want `rand\.IntN in closure`
	}
}

// suppressed exercises the shared //lint:allow mechanism: the directive
// on the line above silences the finding.
func suppressed() int {
	//lint:allow seedflow fixture exercises the suppression path
	return rand.IntN(10)
}
