// Package nowallclock is the golden fixture for the nowallclock
// analyzer: wall-clock reads are forbidden in simulation code.
package nowallclock

import "time"

// stamp reads the wall clock: flagged.
func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// pause sleeps against the wall clock: flagged.
func pause() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// elapsed measures a wall-clock interval: flagged.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// sub does arithmetic on time values already held — no clock read, legal.
func sub(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// scale works with durations only — legal.
func scale(d time.Duration) time.Duration {
	return 3 * d
}

// progress is the one sanctioned shape: operator-facing progress output
// under an explicit annotation.
func progress() time.Time {
	//lint:allow nowallclock operator progress output, not a simulation result
	return time.Now()
}
