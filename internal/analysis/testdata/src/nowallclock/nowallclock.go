// Package nowallclock is the golden fixture for the nowallclock
// analyzer: wall-clock reads are forbidden in simulation code.
package nowallclock

import (
	"os"
	"runtime"
	"time"
)

// stamp reads the wall clock: flagged.
func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// pause sleeps against the wall clock: flagged.
func pause() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// elapsed measures a wall-clock interval: flagged.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// sub does arithmetic on time values already held — no clock read, legal.
func sub(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// scale works with durations only — legal.
func scale(d time.Duration) time.Duration {
	return 3 * d
}

// progress is the one sanctioned shape: operator-facing progress output
// under an explicit annotation.
func progress() time.Time {
	//lint:allow nowallclock operator progress output, not a simulation result
	return time.Now()
}

// clockValue stores time.Now as a function value — a wall clock on a
// delay line, flagged like the call.
func clockValue() func() time.Time {
	return time.Now // want `time\.Now referenced as a value`
}

// zoned reads the host timezone database: flagged.
func zoned() {
	_, _ = time.LoadLocation("UTC") // want `time\.LoadLocation reads the wall clock`
}

// sized reads the machine's CPU count: machine-dependent, flagged.
func sized() int {
	return runtime.NumCPU() // want `runtime\.NumCPU reads the wall clock or the machine`
}

// tuned reads the process environment: machine-dependent, flagged.
func tuned() string {
	return os.Getenv("SIM_KNOB") // want `os\.Getenv reads the wall clock or the machine`
}

// envValue smuggles os.Getenv as a value: flagged like the call.
func envValue() func(string) string {
	return os.Getenv // want `os\.Getenv referenced as a value`
}

// gomaxprocs is deliberately legal here: worker-pool sizing never
// reaches simulation output (detflow still forbids it inside //sim:entry
// call trees).
func gomaxprocs() int {
	return runtime.GOMAXPROCS(0)
}
