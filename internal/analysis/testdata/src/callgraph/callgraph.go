// Package callgraph is the fixture for the call-graph builder itself:
// interface dispatch, method values, mutual recursion, closures, and
// dynamic calls the graph deliberately cannot see. The builder test
// asserts reachability sets over this package directly.
package callgraph

// policy dispatches through an interface; both implementors must appear
// as EdgeIface candidates at the call site in drive.
type policy interface {
	pick(n int) int
}

type roundRobin struct{ next int }

func (r *roundRobin) pick(n int) int {
	r.next = (r.next + 1) % n
	return r.next
}

type leastLoaded struct{ load []int }

func (l *leastLoaded) pick(n int) int {
	return argmin(l.load[:n])
}

// sameNameDifferentSig must NOT be an interface candidate: the method
// name matches but the signature does not.
type decoy struct{}

func (decoy) pick(n, m int) int { return n + m }

// argmin is reached only through leastLoaded.pick.
func argmin(xs []int) int {
	best := 0
	for i := range xs {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// drive calls through the interface and refers to a helper as a value.
func drive(p policy, hosts int) int {
	f := observer // method-style value reference: EdgeRef
	f(hosts)
	return p.pick(hosts)
}

// observer is referenced as a value in drive, never called directly.
func observer(n int) {}

// ping and pong are mutually recursive; reachability from either must
// include both and terminate.
func ping(n int) int {
	if n <= 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	if n <= 0 {
		return 1
	}
	return ping(n - 1)
}

// viaClosure calls ping from inside a closure: the edge belongs to
// viaClosure, the enclosing declaration.
func viaClosure(n int) int {
	f := func() int { return ping(n) }
	return f()
}

// dynamic launders a call through a func value: the graph records the
// references but no call edge, the documented soundness hole.
func dynamic(n int) int {
	fns := []func(int) int{ping, pong}
	return fns[n%2](n)
}

// isolated is reachable from nothing in this package.
func isolated() {}
