// Package floateq is the golden fixture for the floateq analyzer: exact
// floating-point equality outside tolerance helpers is flagged.
package floateq

// equalDirect compares floats exactly: flagged.
func equalDirect(a, b float64) bool {
	return a == b // want `floating-point == is exact and brittle`
}

// notEqualDirect compares float32s exactly: flagged.
func notEqualDirect(a, b float32) bool {
	return a != b // want `floating-point != is exact and brittle`
}

// signTest compares against the constant zero — exact by IEEE-754, exempt.
func signTest(a float64) bool {
	return a == 0
}

// isNaN is the x != x self-test — exempt.
func isNaN(a float64) bool {
	return a != a
}

// folded compares two compile-time constants — exempt.
func folded() bool {
	return 0.1+0.2 == 0.3
}

// intsAreFine compares integers — not this analyzer's business.
func intsAreFine(a, b int) bool {
	return a == b
}

// almostEqual is a tolerance helper by name; its exact fast path is
// exempt.
func almostEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// suppressedAbove carries the annotation on the line above the
// comparison.
func suppressedAbove(a, b float64) bool {
	//lint:allow floateq fixture exercises the suppression path
	return a == b
}

// suppressedSameLine carries the annotation on the flagged line itself.
func suppressedSameLine(a, b float64) bool {
	return a == b //lint:allow floateq fixture exercises same-line suppression
}

// slowdown is a named float type: the underlying kind is what compares,
// so naming it buys no exemption.
type slowdown float64

// namedEqual compares named floats exactly: flagged like the builtin.
func namedEqual(a, b slowdown) bool {
	return a == b // want `floating-point == is exact and brittle`
}

// mixedNamed compares a named float against its underlying type through
// a conversion: still float equality.
func mixedNamed(a slowdown, b float64) bool {
	return a == slowdown(b) // want `floating-point == is exact and brittle`
}

// switchDispatch dispatches on a float tag: every case arm is an exact
// equality in disguise.
func switchDispatch(load float64) int {
	switch load {
	case 0.5: // want `switch case compares floats exactly`
		return 1
	case 1.0: // want `switch case compares floats exactly`
		return 2
	}
	return 0
}

// switchNamed dispatches on a named float: flagged the same way.
func switchNamed(s slowdown) int {
	switch s {
	case 2.5: // want `switch case compares floats exactly`
		return 1
	}
	return 0
}

// switchZeroSentinel keeps the constant-zero exemption: a float is
// exactly zero iff nothing nonzero reached it.
func switchZeroSentinel(load float64) int {
	switch load {
	case 0:
		return 1
	}
	return 0
}

// switchInt dispatches on an integer — not this analyzer's business.
func switchInt(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// switchTagless has no tag; its boolean arms are plain binary
// expressions, caught (or exempted) by the binary-expression rule.
func switchTagless(a, b float64) int {
	switch {
	case a == b: // want `floating-point == is exact and brittle`
		return 1
	case a == 0:
		return 2
	}
	return 0
}
