// Package floateq is the golden fixture for the floateq analyzer: exact
// floating-point equality outside tolerance helpers is flagged.
package floateq

// equalDirect compares floats exactly: flagged.
func equalDirect(a, b float64) bool {
	return a == b // want `floating-point == is exact and brittle`
}

// notEqualDirect compares float32s exactly: flagged.
func notEqualDirect(a, b float32) bool {
	return a != b // want `floating-point != is exact and brittle`
}

// signTest compares against the constant zero — exact by IEEE-754, exempt.
func signTest(a float64) bool {
	return a == 0
}

// isNaN is the x != x self-test — exempt.
func isNaN(a float64) bool {
	return a != a
}

// folded compares two compile-time constants — exempt.
func folded() bool {
	return 0.1+0.2 == 0.3
}

// intsAreFine compares integers — not this analyzer's business.
func intsAreFine(a, b int) bool {
	return a == b
}

// almostEqual is a tolerance helper by name; its exact fast path is
// exempt.
func almostEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// suppressedAbove carries the annotation on the line above the
// comparison.
func suppressedAbove(a, b float64) bool {
	//lint:allow floateq fixture exercises the suppression path
	return a == b
}

// suppressedSameLine carries the annotation on the flagged line itself.
func suppressedSameLine(a, b float64) bool {
	return a == b //lint:allow floateq fixture exercises same-line suppression
}
