// Package oblivious fixes the oblivious analyzer's behavior: types that
// declare the Oblivious capability must keep View state queries out of
// Assign and its static callees; Hosts() stays legal, non-declaring types
// stay unchecked, and interface dispatch to an inner policy is not
// followed (the wrapper pattern).
package oblivious

// Job and View mirror the server package's shapes; fixtures cannot import
// module packages, and both analyzers match by name (interface named View,
// its state-query methods).
type Job struct {
	ID      int
	Arrival float64
	Size    float64
}

type View interface {
	Hosts() int
	NumJobs(i int) int
	WorkLeft(i int) float64
	Idle(i int) bool
	MinWorkHost() int
	MinWorkHostIn(lo, hi int) int
	MinJobsHost() int
	NextIdleHost() int
}

type Policy interface {
	Name() string
	Assign(j Job, v View) int
}

// RoundRobinish is honestly oblivious: Hosts() is configuration, not
// state, so no diagnostic.
type RoundRobinish struct{ next int }

func (*RoundRobinish) Name() string { return "rr" }
func (p *RoundRobinish) Assign(_ Job, v View) int {
	idx := p.next
	p.next = (p.next + 1) % v.Hosts()
	return idx
}
func (*RoundRobinish) Oblivious() bool { return true }

// Liar claims the capability but reads queue state directly in Assign.
type Liar struct{}

func (Liar) Name() string { return "liar" }
func (Liar) Assign(_ Job, v View) int {
	if v.Idle(0) { // want `\(oblivious\.Liar\)\.Assign reads View\.Idle but its receiver declares the Oblivious capability`
		return 0
	}
	return v.MinJobsHost() // want `\(oblivious\.Liar\)\.Assign reads View\.MinJobsHost but its receiver declares the Oblivious capability`
}
func (Liar) Oblivious() bool { return true }

// Launderer hides the state read behind a static helper call: the walk
// follows EdgeCall and names the path.
type Launderer struct{}

func (Launderer) Name() string             { return "launderer" }
func (Launderer) Assign(_ Job, v View) int { return leastLoaded(v) }
func (Launderer) Oblivious() bool          { return true }

func leastLoaded(v View) int {
	return v.MinWorkHost() // want `oblivious\.leastLoaded reads View\.MinWorkHost but its receiver declares the Oblivious capability \(reached via \(oblivious\.Launderer\)\.Assign -> oblivious\.leastLoaded\)`
}

// Honest does not declare the capability, so its state reads are the
// engine path's business, not this analyzer's.
type Honest struct{}

func (Honest) Name() string             { return "honest" }
func (Honest) Assign(_ Job, v View) int { return v.MinJobsHost() }

// Wrapper delegates Assign through the Policy interface. Interface
// dispatch is not followed (the inner policy is checked where it declares
// the capability; the wrapper's claim is resolved at run time), so
// wrapping Honest produces no diagnostic here.
type Wrapper struct{ inner Policy }

func (w *Wrapper) Name() string             { return "wrap(" + w.inner.Name() + ")" }
func (w *Wrapper) Assign(j Job, v View) int { return w.inner.Assign(j, v) }
func (w *Wrapper) Oblivious() bool          { return false }

// Allowed demonstrates the shared suppression escape hatch.
type Allowed struct{}

func (Allowed) Name() string { return "allowed" }
func (Allowed) Assign(_ Job, v View) int {
	//lint:allow oblivious fixture demo: suppression keeps the claim reviewable in place
	return v.NextIdleHost()
}
func (Allowed) Oblivious() bool { return true }
