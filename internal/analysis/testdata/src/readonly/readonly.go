// Package readonly is the golden fixture for the //sim:readonly contract
// analyzer: job-slice mutations in annotated functions and their static
// callees, the copy-first exemption for locally allocated slices, and the
// //lint:allow escape hatch.
package readonly

// Job mirrors the module's sim.Job shape; the analyzer matches job slices
// by element type name so fixtures need not import the real package.
type Job struct {
	ID      int
	Arrival float64
	Size    float64
}

// Result is a stand-in for the simulation result type.
type Result struct{ completed int }

// Run is an annotated entry point: its own body and everything it
// statically reaches must leave the input slice untouched.
//
//sim:readonly jobs
func Run(jobs []Job) *Result {
	jobs[0].ID = 7 // want `readonly\.Run writes a job-slice element inside a //sim:readonly region`
	jobs[1].Size++ // want `readonly\.Run writes a job-slice element inside a //sim:readonly region`

	// The copy-first idiom is exempt: renumbered aliases no caller memory.
	renumbered := make([]Job, len(jobs))
	copy(renumbered, jobs)
	for i := range renumbered {
		renumbered[i].ID = i
	}

	var scratch []Job
	scratch = append(scratch, jobs...)
	scratch[0].Size = 1

	mutateHelper(jobs)
	return simulate(renumbered)
}

// mutateHelper is reached from Run, so the contract applies without its
// own annotation, and the diagnostic carries the chain.
func mutateHelper(js []Job) {
	js[0].Size = 2 // want `readonly\.mutateHelper writes a job-slice element inside a //sim:readonly region \(readonly via readonly\.Run -> readonly\.mutateHelper\)`
}

// simulate sneaks shared-capacity writes in through append and copy.
func simulate(js []Job) *Result {
	js = append(js, Job{}) // want `readonly\.simulate appends to a job slice inside a //sim:readonly region`
	copy(js, js[1:])       // want `readonly\.simulate copies into a job slice inside a //sim:readonly region`
	return &Result{completed: len(js)}
}

// Rebind loses the local exemption when a locally allocated variable is
// rebound to caller memory.
//
//sim:readonly jobs
func Rebind(jobs []Job) {
	buf := make([]Job, 1)
	buf = jobs
	buf[0].ID = 1 // want `readonly\.Rebind writes a job-slice element inside a //sim:readonly region`
}

// Sanctioned documents a deliberate exception with the shared suppression
// mechanism.
//
//sim:readonly jobs
func Sanctioned(jobs []Job) {
	jobs[0].ID = 0 //lint:allow readonly fixture demonstrates the documented escape hatch
}

// Unannotated is unreachable from any annotated function: it may mutate
// freely.
func Unannotated(jobs []Job) {
	jobs[0].ID = 99
	jobs = append(jobs, Job{})
}
