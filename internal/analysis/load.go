package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked target package. Only non-test files are
// loaded: the determinism contracts govern simulation code, and _test.go
// files are explicitly allowlisted by every analyzer (tests may seed RNGs
// ad hoc, time themselves, and compare floats exactly).
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// IsCommand reports whether the package builds a binary (package main);
// panicpolicy relaxes its contract for commands, which may die loudly.
func (p *Package) IsCommand() bool { return p.Name == "main" }

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load type-checks the packages matching patterns (default "./...")
// relative to dir and returns them in `go list` order. It shells out to
// `go list -export -deps -json`, which compiles the dependency graph and
// hands back export data, so the loader needs no third-party machinery
// and works offline; target packages are then parsed (with comments, for
// suppression directives) and type-checked against that export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go builds only: cgo files would need the C preprocessor and
	// break offline, deterministic analysis.
	//lint:allow nowallclock the analyzer driver must inherit the environment to invoke the go tool; no simulation output depends on it
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Name:       t.Name,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
