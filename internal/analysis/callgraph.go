package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module static call graph the interprocedural
// analyzers (detflow, allocfree) run on. Nodes are named functions and
// methods; a function literal is attributed to the named declaration that
// lexically contains it, so a closure's calls count as its enclosing
// function's calls. Edges come in three conservatively widening kinds:
//
//   - EdgeCall: a statically resolved call (package function, method on a
//     concrete receiver, or qualified pkg.Func).
//   - EdgeIface: an interface-dispatch candidate. A call through an
//     interface method links to every concrete method in the module with
//     the same name and parameter/result types; signature matching is
//     textual (fully qualified type strings), which stays correct across
//     the loader's mix of source-checked and export-data packages, where
//     go/types object identity does not hold.
//   - EdgeRef: a function referenced as a value (method value, handler
//     registration, function stored in a table). The reference may be
//     called later from anywhere, so reachability treats it as a call.
//
// Calls through func-typed variables and fields resolve to no edge: the
// set of functions ever stored in a variable is not tracked. This is the
// one deliberate soundness hole (documented in ARCHITECTURE.md); the
// file-local analyzers still run over every function, annotated or not,
// so a forbidden call hiding behind a func value is caught by them.
//
// # Annotation grammar
//
// Contracts are declared as //sim: directives inside a function's doc
// comment:
//
//	//sim:entry            detflow root: everything reachable from here
//	                       must be deterministic and machine-independent
//	//sim:io <reason>      boundary: the call tree legitimately exits
//	                       simulation code here; detflow stops traversing
//	//sim:noalloc          allocfree contract: this function and its
//	                       static callees must not allocate
//
// A malformed directive (unknown verb, missing //sim:io reason) is
// reported under the pseudo-analyzer "lint", like a malformed
// //lint:allow, so a typo cannot silently drop a contract.

// SimPrefix is the comment prefix of a //sim: contract directive.
const SimPrefix = "//sim:"

// EdgeKind classifies how a caller can transfer control to a callee.
type EdgeKind uint8

const (
	// EdgeCall is a statically resolved direct call.
	EdgeCall EdgeKind = iota
	// EdgeIface is an interface-dispatch candidate (name+signature match).
	EdgeIface
	// EdgeRef is a reference to the function as a value.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeIface:
		return "iface"
	default:
		return "ref"
	}
}

// CGEdge is one outgoing edge of the call graph.
type CGEdge struct {
	To   *CGNode
	Pos  token.Pos // the call or reference site in the caller
	Kind EdgeKind
}

// CGNode is one function or method. External functions (stdlib, export
// data only) get leaf nodes with Pkg == nil and no outgoing edges.
type CGNode struct {
	Key     string        // types.Func.FullName(), e.g. "(*sita/internal/sim.Engine).Run"
	PkgPath string        // defining package import path
	Name    string        // bare function or method name
	Pkg     *Package      // defining target package; nil for externals
	Decl    *ast.FuncDecl // declaration; nil for externals
	Out     []CGEdge      // sorted by (To.Key, Pos, Kind)

	// Contract annotations parsed from the doc comment.
	Entry    bool   // //sim:entry
	NoAlloc  bool   // //sim:noalloc
	IO       bool   // //sim:io
	IOReason string // the mandatory //sim:io reason
	ReadOnly bool   // //sim:readonly — job-slice inputs are never mutated
}

// Method reports whether the node is a method (has a receiver).
func (n *CGNode) Method() bool { return strings.HasPrefix(n.Key, "(") }

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	nodes map[string]*CGNode
	keys  []string // sorted node keys

	// pkgPaths maps target import paths to package names, for display.
	pkgPaths map[string]string
}

// Node returns the node with the given key, or nil.
func (g *CallGraph) Node(key string) *CGNode { return g.nodes[key] }

// Nodes returns every node in sorted key order.
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, len(g.keys))
	for i, k := range g.keys {
		out[i] = g.nodes[k]
	}
	return out
}

// Display shortens a node key for diagnostics: target package import
// paths collapse to their package name, so
// "(*sita/internal/sim.Engine).Run" reads "(*sim.Engine).Run".
func (g *CallGraph) Display(key string) string {
	for _, p := range g.displayOrder() {
		key = strings.ReplaceAll(key, p+".", g.pkgPaths[p]+".")
	}
	return key
}

// displayOrder returns target import paths longest-first so nested paths
// rewrite before their prefixes.
func (g *CallGraph) displayOrder() []string {
	paths := make([]string, 0, len(g.pkgPaths))
	for p := range g.pkgPaths {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) > len(paths[j])
		}
		return paths[i] < paths[j]
	})
	return paths
}

// Walk runs a breadth-first traversal from roots following the edge kinds
// in follow, and returns the visit order plus, for every reached node,
// the node it was first discovered from (roots map to nil). When stopIO
// is set, //sim:io-annotated nodes are boundaries: they are not entered,
// not reported in order, and nothing is reached through them. External
// leaf nodes are likewise never entered (they have no edges). Roots are
// visited in sorted key order, so discovery parents — and therefore the
// paths diagnostics print — are deterministic.
func (g *CallGraph) Walk(roots []*CGNode, follow map[EdgeKind]bool, stopIO bool) (order []*CGNode, parent map[*CGNode]*CGNode) {
	parent = make(map[*CGNode]*CGNode)
	queue := make([]*CGNode, 0, len(roots))
	sorted := append([]*CGNode(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, r := range sorted {
		if r == nil {
			continue
		}
		if stopIO && r.IO {
			continue
		}
		if _, seen := parent[r]; seen {
			continue
		}
		parent[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.Out {
			if !follow[e.Kind] {
				continue
			}
			to := e.To
			if to.Pkg == nil { // external leaf: checked by callers, never entered
				continue
			}
			if stopIO && to.IO {
				continue
			}
			if _, seen := parent[to]; seen {
				continue
			}
			parent[to] = n
			queue = append(queue, to)
		}
	}
	return order, parent
}

// Path renders the discovery chain root -> ... -> n as display keys.
func (g *CallGraph) Path(parent map[*CGNode]*CGNode, n *CGNode) []string {
	var rev []string
	for at := n; at != nil; at = parent[at] {
		rev = append(rev, g.Display(at.Key))
		if parent[at] == nil {
			break
		}
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// pathVia renders a compact "via a -> b -> c" fragment for diagnostics,
// eliding the middle of long chains.
func (g *CallGraph) pathVia(parent map[*CGNode]*CGNode, n *CGNode) string {
	p := g.Path(parent, n)
	if len(p) > 5 {
		p = append(append([]string{}, p[:2]...), append([]string{"..."}, p[len(p)-2:]...)...)
	}
	return strings.Join(p, " -> ")
}

// ifaceCall is one unresolved interface-dispatch site awaiting pass 3.
type ifaceCall struct {
	from *CGNode
	name string // method name
	sig  string // loose signature string
	pos  token.Pos
	kind EdgeKind // EdgeIface for calls, EdgeRef for method values
}

// BuildCallGraph builds the module call graph over the loaded packages and
// returns it along with diagnostics for malformed //sim: directives.
func BuildCallGraph(pkgs []*Package) (*CallGraph, []Diagnostic) {
	g := &CallGraph{
		nodes:    make(map[string]*CGNode),
		pkgPaths: make(map[string]string),
	}
	var diags []Diagnostic

	// Pass 1: one node per named declaration, with parsed annotations.
	// decls keeps file order, so later passes append edges and resolve
	// interface candidates in a deterministic sequence.
	var decls []*CGNode
	for _, pkg := range pkgs {
		g.pkgPaths[pkg.ImportPath] = pkg.Name
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				key := obj.FullName()
				for i := 2; g.nodes[key] != nil; i++ { // multiple init funcs
					key = fmt.Sprintf("%s#%d", obj.FullName(), i)
				}
				n := &CGNode{
					Key:     key,
					PkgPath: pkg.ImportPath,
					Name:    obj.Name(),
					Pkg:     pkg,
					Decl:    fn,
				}
				parseSimDirectives(pkg, fn, n, &diags)
				g.nodes[key] = n
				decls = append(decls, n)
			}
		}
	}

	// Pass 2: outgoing edges per declaration.
	var pending []ifaceCall
	for _, n := range decls {
		pending = append(pending, collectEdges(g, n)...)
	}

	// Pass 3: resolve interface-dispatch candidates against every
	// concrete method in the module by (name, loose signature).
	methods := make(map[string][]*CGNode)
	for _, n := range decls {
		fn, ok := n.Pkg.Info.Defs[n.Decl.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil || types.IsInterface(sig.Recv().Type()) {
			continue
		}
		methods[n.Name+"|"+looseSig(sig)] = append(methods[n.Name+"|"+looseSig(sig)], n)
	}
	for _, c := range pending {
		for _, m := range methods[c.name+"|"+c.sig] {
			c.from.Out = append(c.from.Out, CGEdge{To: m, Pos: c.pos, Kind: c.kind})
		}
	}

	for _, n := range g.nodes {
		sort.Slice(n.Out, func(i, j int) bool {
			a, b := n.Out[i], n.Out[j]
			if a.To.Key != b.To.Key {
				return a.To.Key < b.To.Key
			}
			if a.Pos != b.Pos {
				return a.Pos < b.Pos
			}
			return a.Kind < b.Kind
		})
	}
	g.keys = make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		g.keys = append(g.keys, k)
	}
	sort.Strings(g.keys)
	return g, diags
}

// parseSimDirectives reads //sim: directives from the declaration's doc
// comment into the node, reporting malformed ones.
func parseSimDirectives(pkg *Package, fn *ast.FuncDecl, n *CGNode, diags *[]Diagnostic) {
	if fn.Doc == nil {
		return
	}
	bad := func(pos token.Pos, format string, args ...any) {
		*diags = append(*diags, Diagnostic{
			Analyzer: "lint",
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, c := range fn.Doc.List {
		if !strings.HasPrefix(c.Text, SimPrefix) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, SimPrefix)
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			bad(c.Pos(), "malformed %s directive: need a verb (entry, io, noalloc, readonly)", SimPrefix)
			continue
		}
		switch fields[0] {
		case "entry":
			n.Entry = true
		case "noalloc":
			n.NoAlloc = true
		case "io":
			if len(fields) < 2 {
				bad(c.Pos(), "%sio needs a reason: why may this call tree exit simulation code?", SimPrefix)
				continue
			}
			n.IO = true
			n.IOReason = strings.Join(fields[1:], " ")
		case "readonly":
			// Optional trailing fields name the read-only parameters for
			// the reader; the analyzer checks every job slice regardless.
			n.ReadOnly = true
		default:
			bad(c.Pos(), "%s%s is not a contract directive (want entry, io, noalloc, or readonly)", SimPrefix, fields[0])
		}
	}
}

// collectEdges scans one declaration (closures included) for calls and
// function references, appending resolved edges to n.Out and returning
// interface-dispatch sites for pass 3.
func collectEdges(g *CallGraph, n *CGNode) []ifaceCall {
	info := n.Pkg.Info
	var pending []ifaceCall

	// callFuns marks expressions in call position so the reference pass
	// does not double-count a called function as a value reference.
	callFuns := make(map[ast.Node]bool)
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	addEdge := func(fn *types.Func, pos token.Pos, kind EdgeKind) {
		fn = fn.Origin() // generic instantiations share their origin's node
		to := g.nodes[fn.FullName()]
		if to == nil {
			// External leaf (stdlib or export data): created on demand.
			pkgPath := ""
			if fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
			to = &CGNode{Key: fn.FullName(), PkgPath: pkgPath, Name: fn.Name()}
			g.nodes[fn.FullName()] = to
		}
		n.Out = append(n.Out, CGEdge{To: to, Pos: pos, Kind: kind})
	}

	// resolve handles one function-valued expression, in call position
	// (kind EdgeCall/EdgeIface) or value position (EdgeRef).
	resolve := func(expr ast.Expr, asCall bool) {
		kind := EdgeRef
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok {
				if asCall {
					kind = EdgeCall
				}
				addEdge(fn, e.Pos(), kind)
			}
		case *ast.SelectorExpr:
			sel, isSel := info.Selections[e]
			if !isSel {
				// Qualified identifier pkg.Func.
				if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
					if asCall {
						kind = EdgeCall
					}
					addEdge(fn, e.Pos(), kind)
				}
				return
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			msig, ok := m.Type().(*types.Signature)
			if !ok || msig.Recv() == nil {
				return
			}
			if types.IsInterface(msig.Recv().Type()) {
				// Interface dispatch: resolved in pass 3 by name+signature.
				k := EdgeRef
				if asCall {
					k = EdgeIface
				}
				pending = append(pending, ifaceCall{
					from: n, name: m.Name(), sig: looseSig(msig), pos: e.Pos(), kind: k,
				})
				return
			}
			if asCall {
				kind = EdgeCall
			}
			addEdge(m, e.Pos(), kind)
		}
	}

	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(node.Fun)
			if tv, ok := info.Types[fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			resolve(fun, true)
		case *ast.Ident:
			if !callFuns[node] {
				resolve(node, false)
			}
			return false // an Ident has no children
		case *ast.SelectorExpr:
			if !callFuns[node] {
				resolve(node, false)
			}
			// Still descend: the receiver expression may contain calls.
			ast.Inspect(node.X, func(inner ast.Node) bool {
				switch inner := inner.(type) {
				case *ast.CallExpr:
					fun := ast.Unparen(inner.Fun)
					if tv, ok := info.Types[fun]; ok && tv.IsType() {
						return true
					}
					callFuns[fun] = true
					resolve(fun, true)
				case *ast.Ident:
					if !callFuns[inner] {
						resolve(inner, false)
					}
					return false
				case *ast.SelectorExpr:
					if !callFuns[inner] {
						resolve(inner, false)
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return pending
}

// looseSig renders a signature's parameter and result types as a fully
// package-qualified string, receiver and parameter names excluded. Two
// methods match an interface method exactly when their loose signatures
// are equal, even when their types.Object identities differ because one
// side was loaded from export data.
func looseSig(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteByte(')')
	if sig.Results().Len() > 0 {
		b.WriteByte('(')
		for i := 0; i < sig.Results().Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
		}
		b.WriteByte(')')
	}
	return b.String()
}
