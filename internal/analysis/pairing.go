package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pairing checks resource-lifecycle pairing conventions in function
// bodies — the rules the engine pool (internal/sim) and the HTTP service
// (internal/service) depend on for correctness under early returns and
// concurrency:
//
//   - Acquire/Release: a value obtained from an Acquire call must have a
//     deferred Release for the same variable, registered before any
//     return statement can execute; otherwise an early return leaks the
//     pooled resource.
//
//   - SetCancelCheck ordering: SetCancelCheck installs per-run cancel
//     state on a pooled engine; Release is what clears it. The deferred
//     Release must therefore already be registered (lexically earlier)
//     when SetCancelCheck runs — otherwise a panic or early return
//     between the two would return a poisoned engine to the pool.
//
//   - Lock/Unlock: a mutex Lock without a deferred Unlock must reach its
//     unlock on every path; a return statement lexically between the
//     Lock and the next matching Unlock of the same receiver exits with
//     the lock held. (RLock pairs with RUnlock, Lock with Unlock.)
//
//   - WaitGroup.Add placement: wg.Add on a captured WaitGroup inside a
//     go-launched function literal races the corresponding Wait — the
//     counter may be observed at zero before the goroutine runs. Add
//     belongs before the go statement.
//
// Acquire/Release/SetCancelCheck are matched by name (the module's pool
// convention); mutex and WaitGroup methods are matched by their defining
// package (sync), so renamed fields and embedded mutexes are still
// caught. Each function body is analyzed as its own unit: returns and
// locks inside nested function literals belong to the literal, not the
// enclosing function.
var Pairing = &Analyzer{
	Name: "pairing",
	Doc: "resource-lifecycle pairing: Acquire needs a deferred Release " +
		"before any return, SetCancelCheck requires the deferred Release " +
		"already registered, no return between Lock and its Unlock, no " +
		"WaitGroup.Add inside the goroutine being waited for",
	Run: runPairing,
}

// bodyUnit is one function body analyzed in isolation: a declaration or
// a function literal, with nested literals excluded from its statements.
type bodyUnit struct {
	body     *ast.BlockStmt
	label    string
	goLaunch bool         // the unit is the function of a go statement
	litRange [2]token.Pos // literal extent; zero for declarations
}

func runPairing(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			units := collectUnits(fn)
			for _, u := range units {
				checkUnit(pass, u)
			}
		}
	}
}

// collectUnits splits a declaration into body units: the declaration
// itself plus every nested function literal, each tagged with whether it
// is directly launched by a go statement.
func collectUnits(fn *ast.FuncDecl) []bodyUnit {
	units := []bodyUnit{{body: fn.Body, label: fn.Name.Name}}
	goLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		if g, ok := node.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			units = append(units, bodyUnit{
				body:     lit.Body,
				label:    fn.Name.Name + " (func literal)",
				goLaunch: goLits[lit],
				litRange: [2]token.Pos{lit.Pos(), lit.End()},
			})
		}
		return true
	})
	return units
}

// inspectUnit walks a body unit's statements, skipping nested literals.
func inspectUnit(u bodyUnit, visit func(ast.Node) bool) {
	ast.Inspect(u.body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit.Body != u.body {
			return false
		}
		return visit(node)
	})
}

// syncMethod reports whether call is a method call defined by package
// sync with the given name, returning the receiver expression.
func syncMethod(info *types.Info, call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return nil, false
	}
	obj := selection.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, false
	}
	return sel.X, true
}

// calleeName extracts the bare name of a call's function expression.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func checkUnit(pass *Pass, u bodyUnit) {
	info := pass.Pkg.Info

	type acquire struct {
		varName string
		pos     token.Pos
	}
	type deferRelease struct {
		varName string
		pos     token.Pos
	}
	type lockSite struct {
		recv   string // receiver expression, printed
		unlock string // matching unlock method name
		pos    token.Pos
	}
	var acquires []acquire
	var releases []deferRelease
	var locks []lockSite
	unlocks := make(map[string][]token.Pos)      // recv+method -> plain unlock positions
	deferUnlocks := make(map[string][]token.Pos) // recv+method -> deferred unlock positions
	var returns []token.Pos

	// releaseVar extracts the variable a Release call releases: the sole
	// argument (package-function form, Release(v)) or the receiver
	// (method form, v.Release()).
	releaseVar := func(call *ast.CallExpr) string {
		if len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				return id.Name
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				return id.Name
			}
		}
		return ""
	}

	recordDeferredCall := func(call *ast.CallExpr, pos token.Pos) {
		switch calleeName(call) {
		case "Release":
			if v := releaseVar(call); v != "" {
				releases = append(releases, deferRelease{varName: v, pos: pos})
			}
		case "Unlock", "RUnlock":
			if recv, ok := syncMethod(info, call, calleeName(call)); ok {
				k := types.ExprString(recv) + "." + calleeName(call)
				deferUnlocks[k] = append(deferUnlocks[k], pos)
			}
		}
	}

	inspectUnit(u, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, node.Pos())
		case *ast.AssignStmt:
			if len(node.Rhs) == 1 && len(node.Lhs) >= 1 {
				if call, ok := ast.Unparen(node.Rhs[0]).(*ast.CallExpr); ok && calleeName(call) == "Acquire" {
					if id, ok := ast.Unparen(node.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
						acquires = append(acquires, acquire{varName: id.Name, pos: node.Pos()})
					}
				}
			}
		case *ast.DeferStmt:
			recordDeferredCall(node.Call, node.Pos())
			// A deferred closure that unlocks or releases also counts:
			// defer func() { mu.Unlock() }() is a valid pairing.
			if lit, ok := ast.Unparen(node.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					if call, ok := inner.(*ast.CallExpr); ok {
						recordDeferredCall(call, node.Pos())
					}
					return true
				})
			}
			return false // statements inside a defer are not normal flow
		case *ast.CallExpr:
			name := calleeName(node)
			switch name {
			case "Lock", "RLock":
				if recv, ok := syncMethod(info, node, name); ok {
					unlock := "Unlock"
					if name == "RLock" {
						unlock = "RUnlock"
					}
					locks = append(locks, lockSite{
						recv:   types.ExprString(recv),
						unlock: unlock,
						pos:    node.Pos(),
					})
				}
			case "Unlock", "RUnlock":
				if recv, ok := syncMethod(info, node, name); ok {
					k := types.ExprString(recv) + "." + name
					unlocks[k] = append(unlocks[k], node.Pos())
				}
			case "Add":
				if recv, ok := syncMethod(info, node, "Add"); ok && u.goLaunch {
					// Only a captured WaitGroup races the outer Wait; one
					// declared inside the goroutine is the goroutine's own.
					if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok &&
							(v.Pos() < u.litRange[0] || v.Pos() > u.litRange[1]) {
							pass.Reportf(node.Pos(),
								"WaitGroup.Add inside the goroutine being waited for races Wait; call Add before the go statement")
						}
					}
				}
			case "SetCancelCheck":
				sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
				if !ok {
					break
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					break
				}
				acquired := false
				for _, a := range acquires {
					if a.varName == id.Name && a.pos < node.Pos() {
						acquired = true
					}
				}
				if !acquired {
					break
				}
				guarded := false
				for _, r := range releases {
					if r.varName == id.Name && r.pos < node.Pos() {
						guarded = true
					}
				}
				if !guarded {
					pass.Reportf(node.Pos(),
						"SetCancelCheck on %s before its deferred Release is registered; a panic here would return a poisoned engine to the pool", id.Name)
				}
			}
		}
		return true
	})

	// Acquire pairing: a deferred Release for the same variable must
	// exist, and no return may sit between the Acquire and that defer.
	for _, a := range acquires {
		var release *deferRelease
		for i := range releases {
			if releases[i].varName == a.varName && releases[i].pos > a.pos {
				release = &releases[i]
				break
			}
		}
		if release == nil {
			pass.Reportf(a.pos,
				"%s acquired without a deferred Release for %q; every return path leaks the pooled resource", u.label, a.varName)
			continue
		}
		for _, r := range returns {
			if r > a.pos && r < release.pos {
				pass.Reportf(r,
					"return between Acquire of %q and its deferred Release leaks the pooled resource", a.varName)
			}
		}
	}

	// Lock pairing: a lock with no deferred unlock must reach a plain
	// unlock of the same receiver, with no return in the window between.
	for _, l := range locks {
		k := l.recv + "." + l.unlock
		deferred := false
		for _, p := range deferUnlocks[k] {
			if p > l.pos {
				deferred = true
				break
			}
		}
		if deferred {
			continue
		}
		var next token.Pos
		for _, p := range unlocks[k] {
			if p > l.pos && (next == token.NoPos || p < next) {
				next = p
			}
		}
		if next == token.NoPos {
			pass.Reportf(l.pos,
				"%s.%s has no deferred or paired %s in %s; the lock can be held past every exit",
				l.recv, lockName(l.unlock), l.unlock, u.label)
			continue
		}
		for _, r := range returns {
			if r > l.pos && r < next {
				pass.Reportf(r,
					"return while %s is locked (locked at one site above, %s comes later); unlock first or use defer", l.recv, l.unlock)
			}
		}
	}
}

// lockName maps an unlock method back to its lock method for messages.
func lockName(unlock string) string {
	if unlock == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}
