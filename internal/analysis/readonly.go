package analysis

import (
	"go/ast"
	"go/types"
)

// Readonly enforces the //sim:readonly contract: a function so annotated
// — and every module function it statically reaches — must never mutate a
// shared job slice. The contract is what lets internal/streamcache hand
// one generated []workload.Job to every policy at a load point, copy-free
// and concurrently: server.Run, server.RunPS, and tags.Simulate all carry
// the annotation, so a write sneaking into their call trees would corrupt
// every sibling simulation sharing the stream — silently, since the
// corrupted stream is still a valid job list.
//
// Flagged constructs, in the annotated function and its reachable module
// callees:
//
//   - assignment or ++/-- through an index into a job slice
//     (jobs[i] = ..., jobs[i].Size = ..., jobs[i].ID++)
//   - append to a job slice (append can write into the caller's backing
//     array when spare capacity exists)
//   - copy with a job slice destination
//
// Writes into locally allocated job slices are exempt: a slice whose
// variable is created in the same function by make, a composite literal,
// or a var declaration without initializer (nil slice) aliases no caller
// memory — exactly the copy-first idiom server.renumber uses. A job slice
// is any slice whose element type is named Job, so the rule tracks
// sim.Job and its workload.Job alias without importing either.
//
// The walk follows static call edges only, like allocfree: the simulation
// hot paths are deliberately devirtualized, and a job slice crossing an
// interface boundary would be a design smell on its own.
var Readonly = &Analyzer{
	Name: "readonly",
	Doc: "//sim:readonly functions and their static callees must not " +
		"mutate job slices: no element writes, appends, or copies into " +
		"non-local []Job — shared streams feed many concurrent runs",
	RunModule: runReadonly,
}

func runReadonly(pass *ModulePass) {
	g := pass.Graph

	var roots []*CGNode
	for _, n := range g.Nodes() {
		if n.ReadOnly {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}

	order, parent := g.Walk(roots, map[EdgeKind]bool{EdgeCall: true}, false)
	for _, n := range order {
		if n.Pkg == nil || n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		checkJobWrites(pass, g, n, parent)
	}
}

// isJobSlice reports whether t is a slice of a type named Job. Matching by
// element type name keeps the analyzer usable from fixtures (which cannot
// import the module's packages) while being exact in practice: the module
// has one Job type, sim.Job, which workload.Job aliases.
func isJobSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := types.Unalias(s.Elem()).(*types.Named)
	return ok && named.Obj().Name() == "Job"
}

// checkJobWrites reports job-slice mutations in one function body.
func checkJobWrites(pass *ModulePass, g *CallGraph, n *CGNode, parent map[*CGNode]*CGNode) {
	info := n.Pkg.Info
	where := g.Display(n.Key)
	via := ""
	if parent[n] != nil {
		via = " (readonly via " + g.pathVia(parent, n) + ")"
	}

	// Pass 1: collect locally allocated job-slice variables. A variable
	// whose value comes from make, a composite literal, or a nil var
	// declaration aliases no caller memory, so writing through it is the
	// sanctioned copy-first idiom (server.renumber). Rebinding such a
	// variable to caller memory later would evade the rule, so an
	// assignment from anything else removes the exemption.
	local := make(map[*types.Var]bool)
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, _ := obj.(*types.Var)
		return v
	}
	isLocalAlloc := func(rhs ast.Expr) bool {
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			id, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
			if !ok {
				return false
			}
			b, ok := info.Uses[id].(*types.Builtin)
			if !ok {
				return false
			}
			if b.Name() == "make" {
				return true
			}
			if b.Name() == "append" && len(rhs.Args) > 0 {
				// append result is local iff its base already was.
				if v := varOf(rhs.Args[0]); v != nil {
					return local[v]
				}
			}
			return false
		}
		return false
	}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ValueSpec:
			if len(node.Values) == 0 {
				for _, name := range node.Names {
					if v, ok := info.Defs[name].(*types.Var); ok && isJobSlice(v.Type()) {
						local[v] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i, lhs := range node.Lhs {
				v := varOf(lhs)
				if v == nil || !isJobSlice(v.Type()) {
					continue
				}
				local[v] = isLocalAlloc(node.Rhs[i])
			}
		}
		return true
	})

	// jobSliceWrite resolves an lvalue down to the indexed job slice, if
	// any: jobs[i], jobs[i].Size, (jobs[i]).ID, jobs[i].X[j]...
	jobSliceWrite := func(e ast.Expr) ast.Expr {
		for {
			switch t := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				e = t.X
			case *ast.IndexExpr:
				if tv, ok := info.Types[t.X]; ok && isJobSlice(tv.Type) {
					return t.X
				}
				e = t.X
			default:
				return nil
			}
		}
	}
	exempt := func(base ast.Expr) bool {
		v := varOf(base)
		return v != nil && local[v]
	}

	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if base := jobSliceWrite(lhs); base != nil && !exempt(base) {
					pass.Reportf(lhs.Pos(), "%s writes a job-slice element inside a //sim:readonly region%s (copy first, like server.renumber)", where, via)
				}
			}
		case *ast.IncDecStmt:
			if base := jobSliceWrite(node.X); base != nil && !exempt(base) {
				pass.Reportf(node.Pos(), "%s writes a job-slice element inside a //sim:readonly region%s (copy first, like server.renumber)", where, via)
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(node.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := info.Uses[id].(*types.Builtin)
			if !ok || len(node.Args) == 0 {
				return true
			}
			tv, ok := info.Types[node.Args[0]]
			if !ok || !isJobSlice(tv.Type) {
				return true
			}
			switch b.Name() {
			case "append":
				if !exempt(node.Args[0]) {
					pass.Reportf(node.Pos(), "%s appends to a job slice inside a //sim:readonly region%s (append can write into shared spare capacity)", where, via)
				}
			case "copy":
				if !exempt(node.Args[0]) {
					pass.Reportf(node.Pos(), "%s copies into a job slice inside a //sim:readonly region%s", where, via)
				}
			}
		}
		return true
	})
}
