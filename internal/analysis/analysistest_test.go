package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-fixture convention mirrors x/tools' analysistest: a fixture
// line that should be flagged carries a trailing comment of the form
//
//	// want `regexp` `regexp` ...
//
// with one regexp per expected diagnostic on that line, matched against
// the diagnostic message. Lines without a want comment must produce no
// diagnostics, so the fixtures pin both the positive and negative
// behavior of every analyzer, including the //lint:allow suppressions.

// wantToken extracts the quoted regexps of a want comment (backquoted or
// double-quoted, per strconv.Unquote).
var wantToken = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type wantKey struct {
	file string
	line int
}

// parseWants collects the want comments of every fixture file, keyed by
// position.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				toks := wantToken.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(toks) == 0 {
					t.Fatalf("%s: want comment carries no quoted regexp", pos)
				}
				k := wantKey{pos.Filename, pos.Line}
				for _, tok := range toks {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						t.Fatalf("%s: unquoting %s: %v", pos, tok, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: compiling want regexp %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

// runFixture loads one testdata package, runs the full suite over it, and
// checks the diagnostics against the fixture's want comments.
func runFixture(t *testing.T, name string) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	wants := parseWants(t, pkgs[0].Fset, pkgs[0].Files)
	for _, d := range Run(pkgs, Analyzers()) {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re)
			}
		}
	}
}

func TestAnalyzers(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a.Name) })
	}
}

// TestAnalyzersRegistered pins the suite composition: adding an analyzer
// without a fixture directory must fail loudly here, not silently skip.
func TestAnalyzersRegistered(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing a name or doc", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must set exactly one of Run (file-local) and RunModule (interprocedural)", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if _, err := os.Stat(filepath.Join("testdata", "src", a.Name)); err != nil {
			t.Errorf("analyzer %q has no fixture directory: %v", a.Name, err)
		}
	}
}

// parseSource type-checks nothing: it builds the minimal Package that
// parseDirectives needs (a file set) for directive-syntax tests.
func parseSource(t *testing.T, src string) (*Package, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing directive fixture: %v", err)
	}
	return &Package{Fset: fset}, f
}

// TestDirectiveValidation checks that malformed //lint:allow comments are
// reported rather than silently ignored, and that well-formed ones parse.
func TestDirectiveValidation(t *testing.T) {
	known := map[string]bool{"seedflow": true}
	cases := []struct {
		name       string
		comment    string
		wantDiag   string // substring of the lint diagnostic, "" for none
		directives int
	}{
		{"bare", "//lint:allow", "need an analyzer name and a reason", 0},
		{"unknown", "//lint:allow bogus some reason", `unknown analyzer "bogus"`, 0},
		{"reasonless", "//lint:allow seedflow", "must carry a reason", 0},
		{"valid", "//lint:allow seedflow reseeding is isolated here", "", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, f := parseSource(t, "package p\n\n"+tc.comment+"\nvar x = 1\n")
			var diags []Diagnostic
			ds := parseDirectives(pkg, f, known, &diags)
			if len(ds) != tc.directives {
				t.Errorf("got %d directives, want %d", len(ds), tc.directives)
			}
			if tc.wantDiag == "" {
				if len(diags) != 0 {
					t.Errorf("unexpected diagnostics: %v", diags)
				}
				return
			}
			if len(diags) != 1 || diags[0].Analyzer != "lint" ||
				!strings.Contains(diags[0].Message, tc.wantDiag) {
				t.Errorf("got %v, want one lint diagnostic containing %q", diags, tc.wantDiag)
			}
		})
	}
	t.Run("reason-joined", func(t *testing.T) {
		pkg, f := parseSource(t, "package p\n\n//lint:allow seedflow a b c\nvar x = 1\n")
		var diags []Diagnostic
		ds := parseDirectives(pkg, f, known, &diags)
		if len(ds) != 1 || ds[0].analyzer != "seedflow" || ds[0].reason != "a b c" {
			t.Fatalf("got %+v, want one seedflow directive with reason \"a b c\"", ds)
		}
	})
}

// TestSeededViolationFailsGate builds a throwaway module containing one
// deliberate violation and checks the suite catches it — the end-to-end
// guarantee that the CI gate can actually fail.
func TestSeededViolationFailsGate(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"clock.go": "// Package seeded holds a deliberate violation.\n" +
			"package seeded\n\nimport \"time\"\n\n" +
			"// Stamp reads the wall clock.\n" +
			"func Stamp() time.Time { return time.Now() }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("loading seeded module: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	if len(diags) != 1 || diags[0].Analyzer != "nowallclock" ||
		!strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("got %v, want exactly one nowallclock diagnostic for time.Now", diags)
	}
}

// TestSimvetExitsClean is the meta-check: the checked-in tree must stay
// simvet-clean so the CI gate only ever fails on newly introduced
// violations.
func TestSimvetExitsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the simvet binary")
	}
	cmd := exec.Command("go", "run", "./cmd/simvet", "./...")
	cmd.Dir = filepath.Join("..", "..")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/simvet ./... = %v, want exit 0; output:\n%s", err, out)
	}
}

// TestDiagnosticString pins the one-line report format the CLI prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "floateq",
		Pos:      token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Message:  "exact comparison",
	}
	want := fmt.Sprintf("%s: exact comparison (floateq)", d.Pos)
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
