package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPolicy restricts panic in library packages to declared contracts.
// A panic is legal only when (a) the enclosing function's doc comment
// documents it ("Panics if ..."), making it part of the API the way
// regexp.MustCompile's is, (b) the function is init or a Must*/must*
// helper, whose name is the documentation, or (c) an invariant site
// carries a //lint:allow panicpolicy annotation. A function that already
// returns an error may never panic for validation — the error path
// exists; use it. Commands (package main) are exempt: dying loudly is a
// CLI's error path.
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc: "panic in library packages must be a documented contract " +
		"(\"Panics if ...\" in the doc comment), a Must*/init helper, or " +
		"an annotated invariant; functions returning an error must " +
		"return validation failures instead of panicking.",
	Run: runPanicPolicy,
}

func runPanicPolicy(pass *Pass) {
	if pass.Pkg.IsCommand() {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		inspectFuncs(file, func(n ast.Node, fn *ast.FuncDecl) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "panic") {
				return
			}
			if fn == nil {
				pass.Reportf(call.Pos(), "panic at package scope; validate in a constructor that can document or return the failure")
				return
			}
			name := fn.Name.Name
			if name == "init" || strings.HasPrefix(strings.ToLower(name), "must") {
				return
			}
			if returnsError(info, fn) {
				pass.Reportf(call.Pos(),
					"%s returns an error; return the validation failure instead of panicking", funcLabel(info, fn))
				return
			}
			if fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "panic") {
				return
			}
			pass.Reportf(call.Pos(),
				"undocumented panic in %s; document the contract (\"Panics if ...\") in the doc comment, return an error, or annotate an invariant with %s panicpolicy <reason>",
				funcLabel(info, fn), AllowPrefix)
		})
	}
}

// funcLabel names a function for diagnostics, including the receiver type
// for methods.
func funcLabel(info *types.Info, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return fn.Name.Name
	}
	return types.TypeString(t, func(*types.Package) string { return "" }) + "." + fn.Name.Name
}
