package analysis

import (
	"go/ast"
	"go/types"
)

// calleePkgFunc resolves a call expression to a package-level function
// (not a method, not a builtin, not a local value) and reports its
// defining package path and name. ok is false for anything else.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// inspectFuncs visits every node of the file, handing each visit the
// innermost and outermost enclosing function declarations (nil at package
// scope, e.g. inside package-level variable initializers). Function
// literals count toward neither: diagnostics about a closure are
// attributed to the named function that contains it, whose doc comment is
// where contracts live.
func inspectFuncs(file *ast.File, visit func(n ast.Node, fn *ast.FuncDecl)) {
	for _, decl := range file.Decls {
		fn, _ := decl.(*ast.FuncDecl)
		ast.Inspect(decl, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			visit(n, fn)
			return true
		})
	}
}

// returnsError reports whether the function's results include an error.
func returnsError(info *types.Info, fn *ast.FuncDecl) bool {
	if fn == nil || fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if t := info.TypeOf(field.Type); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
