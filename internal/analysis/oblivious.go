package analysis

import (
	"go/ast"
	"go/types"
)

// Oblivious machine-checks the capability contract behind server.RunDirect:
// a policy type that declares the oblivious capability — a method
// `Oblivious() bool` alongside `Assign` — promises that its Assign never
// reads the simulated system's state, only the job and the policy's own
// sequential state. The direct-recurrence fast path depends on that
// promise for correctness (a state-reading policy would silently simulate
// a different system), so the claim is enforced statically here, at run
// time by the tripwire View the direct path installs, and empirically by
// the differential tests in internal/policy.
//
// The check: from each capability-declaring type's Assign method, walk the
// static call edges (EdgeCall, like allocfree and readonly) and flag any
// call to a state-query method of an interface named View — NumJobs,
// WorkLeft, Idle, MinWorkHost, MinWorkHostIn, MinJobsHost, NextIdleHost.
// Hosts() is exempt: the host count is configuration, not state.
//
// Delegating wrappers (Misclassify, EstimatedSITA) forward the capability
// from an inner policy held behind an interface; the inner Assign is
// interface dispatch, which this walk deliberately does not follow — the
// wrapper's claim is resolved at run time from the inner policy's answer,
// and the inner type is checked on its own when it declares the
// capability. What the walk does cover is the wrapper's own code and every
// concrete helper it statically calls.
var Oblivious = &Analyzer{
	Name: "oblivious",
	Doc: "types declaring the Oblivious capability must not read View " +
		"state from Assign or its static callees: the direct-recurrence " +
		"fast path simulates them without maintaining that state",
	RunModule: runOblivious,
}

// viewStateMethods are the View queries that read simulated system state.
var viewStateMethods = map[string]bool{
	"NumJobs":       true,
	"WorkLeft":      true,
	"Idle":          true,
	"MinWorkHost":   true,
	"MinWorkHostIn": true,
	"MinJobsHost":   true,
	"NextIdleHost":  true,
}

func runOblivious(pass *ModulePass) {
	g := pass.Graph

	// Pass 1: receiver types declaring the capability (Oblivious() bool)
	// and, per receiver type, the node of its Assign method. Assign nodes
	// are kept in declaration order so the root list — and with it the
	// walk's discovery parents — is deterministic (Walk re-sorts by key).
	declares := make(map[*types.TypeName]bool)
	type assignDecl struct {
		recv *types.TypeName
		node *CGNode
	}
	var assigns []assignDecl
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Recv == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				recv := receiverTypeName(obj)
				if recv == nil {
					continue
				}
				switch fn.Name.Name {
				case "Oblivious":
					sig := obj.Type().(*types.Signature)
					if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
						types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool]) {
						declares[recv] = true
					}
				case "Assign":
					assigns = append(assigns, assignDecl{recv: recv, node: g.Node(obj.FullName())})
				}
			}
		}
	}

	var roots []*CGNode
	for _, a := range assigns {
		if declares[a.recv] && a.node != nil {
			roots = append(roots, a.node)
		}
	}
	if len(roots) == 0 {
		return
	}

	order, parent := g.Walk(roots, map[EdgeKind]bool{EdgeCall: true}, false)
	for _, n := range order {
		if n.Pkg == nil || n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		checkViewReads(pass, g, n, parent)
	}
}

// receiverTypeName resolves a method's receiver to its named type, seeing
// through pointers.
func receiverTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// checkViewReads reports state-query calls on a View interface inside one
// function body reached from a capability-declaring Assign.
func checkViewReads(pass *ModulePass, g *CallGraph, n *CGNode, parent map[*CGNode]*CGNode) {
	info := n.Pkg.Info
	where := g.Display(n.Key)
	via := ""
	if parent[n] != nil {
		via = " (reached via " + g.pathVia(parent, n) + ")"
	}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok {
			return true
		}
		m, ok := selection.Obj().(*types.Func)
		if !ok || !viewStateMethods[m.Name()] {
			return true
		}
		msig, ok := m.Type().(*types.Signature)
		if !ok || msig.Recv() == nil || !types.IsInterface(msig.Recv().Type()) {
			return true
		}
		named, ok := types.Unalias(selection.Recv()).(*types.Named)
		if !ok || named.Obj().Name() != "View" {
			return true
		}
		pass.Reportf(call.Pos(), "%s reads View.%s but its receiver declares the Oblivious capability%s — state-blind policies must not consult system state", where, m.Name(), via)
		return true
	})
}
