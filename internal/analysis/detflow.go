package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detflow is the interprocedural determinism-taint analyzer. Starting
// from every //sim:entry function (the simulation drivers: engine run
// loops, server.Run, experiment tables), it walks the static call graph —
// direct calls, interface-dispatch candidates, and function references —
// and reports any path that reaches a nondeterministic or
// machine-dependent source:
//
//   - wall-clock time (time.Now, Since, Sleep, timers, LoadLocation)
//   - the global math/rand generator (unseeded, process-global state)
//   - machine- and environment-dependent values (runtime.NumCPU,
//     runtime.GOMAXPROCS, os.Getenv, os.Environ, os.Hostname, os.Getpid)
//   - map-range iteration whose elements are appended to a result
//     (iteration order leaks into returned data)
//
// The file-local analyzers (nowallclock, seedflow, maporder) catch the
// same constructs at the site where they occur; detflow additionally
// proves that no annotated simulation entry point can reach such a site
// through any chain of module functions — including chains that cross
// package boundaries, where file-local checks are blind.
//
// A call tree that must legitimately leave simulation code (progress
// logging to a terminal, request-deadline polling) is marked at its
// boundary function with //sim:io <reason>; the walk stops there and
// nothing beyond it is reported. The reason is mandatory, keeping the
// boundary set auditable.
//
// The walk is conservative on interface dispatch (every same-name,
// same-signature concrete method in the module is a candidate) and
// blind through func-typed variables; see callgraph.go for the exact
// edge semantics.
var Detflow = &Analyzer{
	Name: "detflow",
	Doc: "determinism taint: no //sim:entry call tree may reach wall-clock, " +
		"global math/rand, machine-dependent sources, or map-order-dependent " +
		"results; mark legitimate exits with //sim:io <reason>",
	RunModule: runDetflow,
}

// detForbidden maps external function keys (types.Func.FullName) to a
// short phrase naming what contract the source breaks.
var detForbidden = map[string]string{
	"time.Now":          "wall-clock time",
	"time.Since":        "wall-clock time",
	"time.Until":        "wall-clock time",
	"time.Sleep":        "wall-clock pacing",
	"time.After":        "wall-clock timer",
	"time.AfterFunc":    "wall-clock timer",
	"time.Tick":         "wall-clock ticker",
	"time.NewTicker":    "wall-clock ticker",
	"time.NewTimer":     "wall-clock timer",
	"time.LoadLocation": "host timezone database",

	"runtime.NumCPU":     "machine-dependent CPU count",
	"runtime.GOMAXPROCS": "machine-dependent parallelism",
	"os.Getenv":          "environment variable",
	"os.LookupEnv":       "environment variable",
	"os.Environ":         "process environment",
	"os.Hostname":        "machine hostname",
	"os.Getpid":          "process id",
}

// detForbiddenPkgs flags package-level draw functions of a package: the
// global math/rand top-level functions draw from shared process state,
// so every one of them (Intn, Float64, Shuffle, Seed, ...) is
// nondeterministic across runs and goroutine schedules. Methods are
// exempt — a *rand.Rand drawn from a seeded source is the approved
// pattern (see seedflow) — and so are New* constructors (rand.New,
// rand.NewPCG), which are pure functions of the explicit seed they are
// handed; whether that seed is derived correctly is seedflow's contract,
// not a taint question.
var detForbiddenPkgs = map[string]string{
	"math/rand":    "global math/rand state",
	"math/rand/v2": "global math/rand state",
}

func runDetflow(pass *ModulePass) {
	g := pass.Graph

	var roots []*CGNode
	for _, n := range g.Nodes() {
		if n.Entry {
			roots = append(roots, n)
		}
		if n.Entry && n.IO {
			// The two directives contradict: an entry roots the
			// deterministic region; io exits it.
			pass.Reportf(n.Decl.Pos(),
				"%s is marked both //sim:entry and //sim:io; an entry point cannot be its own exit boundary",
				g.Display(n.Key))
		}
	}
	if len(roots) == 0 {
		return
	}

	follow := map[EdgeKind]bool{EdgeCall: true, EdgeIface: true, EdgeRef: true}
	order, parent := g.Walk(roots, follow, true)

	for _, n := range order {
		// Each reached module function is inside the deterministic
		// region: inspect its direct out-edges for forbidden externals.
		// Reporting at the call site (not the entry point) puts the
		// diagnostic where the fix goes; the path fragment names the
		// chain from the entry point that taints it.
		seen := make(map[string]bool) // one report per callee per function
		for _, e := range n.Out {
			to := e.To
			if to.Pkg != nil {
				continue // module-internal: visited on its own
			}
			why, bad := detForbidden[to.Key]
			if !bad {
				if w, ok := detForbiddenPkgs[to.PkgPath]; ok && !to.Method() &&
					!strings.HasPrefix(to.Name, "New") {
					why, bad = w, true
				}
			}
			if !bad || seen[to.Key] {
				continue
			}
			seen[to.Key] = true
			pass.Reportf(e.Pos,
				"%s reaches %s (%s) inside the deterministic region (via %s); make it simulation-time, thread a seeded RNG, or mark the boundary //sim:io <reason>",
				g.Display(n.Key), g.Display(to.Key), why, g.pathVia(parent, n))
		}

		if n.Decl != nil && n.Decl.Body != nil {
			reportOrderSensitiveRanges(pass, g, n, parent)
		}
	}
}

// reportOrderSensitiveRanges flags map-range statements inside the
// deterministic region whose iteration order leaks into accumulated
// output: the body appends into a slice that outlives the loop and is
// never sorted afterwards. The condition is deliberately identical to
// the file-local maporder analyzer's — what detflow adds is the proof
// that the leak sits on a simulation entry point's call tree (named in
// the path fragment), which is what turns "stylistic nit" into
// "committed results change between runs".
func reportOrderSensitiveRanges(pass *ModulePass, g *CallGraph, n *CGNode, parent map[*CGNode]*CGNode) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		rs, ok := node.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := info.TypeOf(rs.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		leaks := false
		ast.Inspect(rs.Body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok || leaks {
				return !leaks
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || i >= len(as.Lhs) {
					continue
				}
				obj := assignedObj(info, as.Lhs[i])
				if obj == nil || obj.Pos() >= rs.Pos() {
					continue
				}
				if sortedAfter(info, n.Decl, rs, obj) {
					continue
				}
				leaks = true
			}
			return true
		})
		if leaks {
			pass.Reportf(rs.Pos(),
				"%s ranges over a map and accumulates elements in iteration order inside the deterministic region (via %s); iterate a sorted key slice instead",
				g.Display(n.Key), g.pathVia(parent, n))
		}
		return true
	})
}
