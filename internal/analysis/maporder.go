package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags map iteration that feeds an ordered output — appending
// to a slice declared outside the loop, or writing directly to a
// writer/printer — without a later sort of the accumulated slice. This is
// the exact nondeterminism class PR 1 fixed by hand in Replicate: Go
// randomizes map iteration order, so such loops emit rows in a different
// order every run and committed results stop being byte-identical.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "iterating a map while appending to an outer slice or writing " +
		"to an io.Writer makes output order depend on Go's randomized " +
		"map iteration. Collect and sort keys first, or sort the " +
		"accumulated slice before it is consumed.",
	Run: runMapOrder,
}

// sortFuncs lists the package-level sorting entry points that bless an
// accumulated slice: once the slice is sorted after the loop, the map's
// iteration order no longer reaches the output.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// writerMethods are method names that emit bytes in call order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Printf": true, "Print": true, "Println": true,
}

// fmtPrinters are fmt package functions that emit directly.
var fmtPrinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				checkMapRange(pass, fn, rng)
				return true
			})
		}
	}
}

// checkMapRange inspects one map-range body for ordered-output sinks.
func checkMapRange(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || i >= len(n.Lhs) {
					continue
				}
				obj := assignedObj(info, n.Lhs[i])
				// Only accumulation into a slice that outlives the loop
				// can leak iteration order.
				if obj == nil || obj.Pos() >= rng.Pos() {
					continue
				}
				if sortedAfter(info, fn, rng, obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"appending to %s while ranging over a map: iteration order is randomized, so the slice's order changes run to run; sort the keys first or sort %s before it is consumed",
					obj.Name(), obj.Name())
			}
		case *ast.CallExpr:
			if pkgPath, name, ok := calleePkgFunc(info, n); ok {
				if pkgPath == "fmt" && fmtPrinters[name] {
					pass.Reportf(n.Pos(),
						"fmt.%s inside a map range writes rows in randomized iteration order; collect into a slice and sort before printing", name)
				}
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
				if _, isMethod := info.Selections[sel]; isMethod {
					pass.Reportf(n.Pos(),
						"%s inside a map range emits bytes in randomized iteration order; collect into a slice and sort before writing", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// assignedObj resolves the object written by an assignment target, if it
// is a plain identifier.
func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// sortedAfter reports whether obj is passed to a sort function anywhere in
// fn after the range statement ends.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkgPath, name, ok := calleePkgFunc(info, call)
		if !ok || !sortFuncs[pkgPath][name] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
