package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureGraph loads one testdata package and builds its call graph,
// failing the test on malformed //sim: directives unless wantDiags.
func loadFixtureGraph(t *testing.T, name string) *CallGraph {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	g, diags := BuildCallGraph(pkgs)
	if len(diags) != 0 {
		t.Fatalf("fixture %s: unexpected directive diagnostics: %v", name, diags)
	}
	return g
}

// byDisplay finds the unique node with the given display key.
func byDisplay(t *testing.T, g *CallGraph, display string) *CGNode {
	t.Helper()
	var found *CGNode
	for _, n := range g.Nodes() {
		if g.Display(n.Key) == display {
			if found != nil {
				t.Fatalf("display key %q is ambiguous", display)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with display key %q", display)
	}
	return found
}

// reachSet walks from one root over the given edge kinds and returns the
// display keys of every reached module node.
func reachSet(g *CallGraph, root *CGNode, follow map[EdgeKind]bool) map[string]bool {
	order, _ := g.Walk([]*CGNode{root}, follow, false)
	set := make(map[string]bool, len(order))
	for _, n := range order {
		set[g.Display(n.Key)] = true
	}
	return set
}

var followAll = map[EdgeKind]bool{EdgeCall: true, EdgeIface: true, EdgeRef: true}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := loadFixtureGraph(t, "callgraph")
	reach := reachSet(g, byDisplay(t, g, "callgraph.drive"), followAll)

	for _, want := range []string{
		"callgraph.drive",
		"(*callgraph.roundRobin).pick",  // interface candidate
		"(*callgraph.leastLoaded).pick", // interface candidate
		"callgraph.argmin",              // through leastLoaded.pick
		"callgraph.observer",            // value reference
	} {
		if !reach[want] {
			t.Errorf("drive should reach %s; reached %v", want, keys(reach))
		}
	}
	for _, bad := range []string{
		"(callgraph.decoy).pick", // same name, different signature
		"callgraph.isolated",
		"callgraph.ping",
	} {
		if reach[bad] {
			t.Errorf("drive must not reach %s", bad)
		}
	}
}

func TestCallGraphMutualRecursionTerminates(t *testing.T) {
	g := loadFixtureGraph(t, "callgraph")
	reach := reachSet(g, byDisplay(t, g, "callgraph.viaClosure"), followAll)
	// The closure's call belongs to viaClosure; the ping/pong cycle is
	// entered once and the walk terminates.
	for _, want := range []string{"callgraph.viaClosure", "callgraph.ping", "callgraph.pong"} {
		if !reach[want] {
			t.Errorf("viaClosure should reach %s; reached %v", want, keys(reach))
		}
	}
}

func TestCallGraphDynamicCallsHaveNoCallEdge(t *testing.T) {
	g := loadFixtureGraph(t, "callgraph")
	dyn := byDisplay(t, g, "callgraph.dynamic")
	var calls, refs []string
	for _, e := range dyn.Out {
		switch e.Kind {
		case EdgeCall:
			calls = append(calls, g.Display(e.To.Key))
		case EdgeRef:
			refs = append(refs, g.Display(e.To.Key))
		}
	}
	if len(calls) != 0 {
		t.Errorf("dynamic's func-value call must produce no call edge, got %v", calls)
	}
	// The references into the table are still visible, so reachability
	// with EdgeRef stays conservative.
	want := map[string]bool{"callgraph.ping": false, "callgraph.pong": false}
	for _, r := range refs {
		if _, ok := want[r]; ok {
			want[r] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("dynamic should hold a reference edge to %s, got %v", name, refs)
		}
	}
}

func TestCallGraphIsolatedNode(t *testing.T) {
	g := loadFixtureGraph(t, "callgraph")
	iso := byDisplay(t, g, "callgraph.isolated")
	if len(iso.Out) != 0 {
		t.Errorf("isolated should have no out edges, got %d", len(iso.Out))
	}
}

// TestSimDirectiveValidation checks that malformed //sim: directives are
// reported rather than silently dropped.
func TestSimDirectiveValidation(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module simdirectives\n\ngo 1.22\n",
		"d.go": "// Package d carries malformed contract directives.\n" +
			"package d\n\n" +
			"// A is fine.\n" +
			"//sim:entry\n" +
			"func A() {}\n\n" +
			"// B mistypes the verb.\n" +
			"//sim:noallocs\n" +
			"func B() {}\n\n" +
			"// C forgets the mandatory io reason.\n" +
			"//sim:io\n" +
			"func C() {}\n\n" +
			"// D has no verb at all.\n" +
			"//sim:\n" +
			"func D() {}\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("loading directive module: %v", err)
	}
	g, diags := BuildCallGraph(pkgs)
	if len(diags) != 3 {
		t.Fatalf("got %d directive diagnostics, want 3: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("directive diagnostics report as %q, want lint", d.Analyzer)
		}
	}
	joined := ""
	for _, d := range diags {
		joined += d.Message + "\n"
	}
	for _, want := range []string{"noallocs", "needs a reason", "need a verb"} {
		if !strings.Contains(joined, want) {
			t.Errorf("directive diagnostics %q missing %q", joined, want)
		}
	}
	// The well-formed entry parsed.
	var entry *CGNode
	for _, n := range g.Nodes() {
		if n.Name == "A" && n.Pkg != nil {
			entry = n
		}
	}
	if entry == nil || !entry.Entry {
		t.Errorf("well-formed //sim:entry on A not parsed: %+v", entry)
	}
}

// TestStaleAllowReported pins the stale-suppression check: a directive
// with nothing to suppress is itself a finding, a used one is not.
func TestStaleAllowReported(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/staleallow")
	if err != nil {
		t.Fatalf("loading staleallow fixture: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the stale directive: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "stale") ||
		!strings.Contains(d.Message, "nowallclock") {
		t.Errorf("got %v, want a lint diagnostic for the stale nowallclock allow", d)
	}
	if !strings.HasSuffix(d.Pos.Filename, "staleallow.go") || d.Pos.Line != 21 {
		t.Errorf("stale directive reported at %s:%d, want staleallow.go:21", d.Pos.Filename, d.Pos.Line)
	}
}

// keys flattens a reach set for failure messages.
func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}
