package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Allocfree enforces the //sim:noalloc contract: a function so annotated
// — and every module function it statically reaches — must not allocate
// on its steady-state path. The kernel's event heap and the host-index
// query paths carry this annotation because the 0 allocs/op results of
// BENCH_3/BENCH_4 are part of the reproduction's performance claims;
// this analyzer turns those benchmark numbers into a compile-time-checked
// property instead of a regression a benchmark run may or may not catch.
//
// Flagged constructs, in both the annotated function and its reachable
// module callees:
//
//   - make and new
//   - append (amortized growth allocates; append into a pre-grown
//     recycled backing array is the one sanctioned pattern and must be
//     suppressed per-site with //lint:allow allocfree <reason>, which
//     documents why the capacity argument holds)
//   - func literals that capture enclosing variables (closure allocation;
//     capture-free literals compile to static funcs and are fine)
//   - string concatenation with + (builds a new string)
//   - interface boxing: assigning or passing a concrete non-pointer value
//     where an interface is expected (fmt.Errorf("%v", x) and friends)
//
// panic call arguments are exempt: a panic path is by definition not the
// steady state, and the hot paths here panic with formatted messages on
// contract violations (invalid event IDs, wrong generation).
//
// The walk follows static call edges only — not interface dispatch or
// function references — because the hot paths are deliberately written
// devirtualized; an interface call inside a noalloc region would itself
// be a design smell worth a finding, which boxing detection surfaces.
var Allocfree = &Analyzer{
	Name: "allocfree",
	Doc: "//sim:noalloc functions and their static callees must not " +
		"allocate: no make/new/append/closure-capture/interface-boxing/" +
		"string-concat outside suppressed, documented sites",
	RunModule: runAllocfree,
}

func runAllocfree(pass *ModulePass) {
	g := pass.Graph

	var roots []*CGNode
	for _, n := range g.Nodes() {
		if n.NoAlloc {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}

	// Static calls only; //sim:io does not bound allocation checking
	// (an io boundary may still sit on a hot path's panic branch).
	order, parent := g.Walk(roots, map[EdgeKind]bool{EdgeCall: true}, false)

	for _, n := range order {
		if n.Pkg == nil || n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		checkAllocs(pass, g, n, parent)
	}
}

// checkAllocs reports allocating constructs in one function body.
func checkAllocs(pass *ModulePass, g *CallGraph, n *CGNode, parent map[*CGNode]*CGNode) {
	info := n.Pkg.Info
	where := g.Display(n.Key)
	via := ""
	if parent[n] != nil {
		via = " (noalloc via " + g.pathVia(parent, n) + ")"
	}

	// panicArgs collects the argument subtrees of panic calls, which are
	// exempt from every allocation rule.
	panicArgs := make(map[ast.Node]bool)
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args {
					panicArgs[arg] = true
				}
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for arg := range panicArgs {
			if arg.Pos() <= pos && pos <= arg.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(node.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := info.Uses[id].(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "make", "new", "append":
				if inPanic(node.Pos()) {
					return true
				}
				pass.Reportf(node.Pos(), "%s calls %s inside a //sim:noalloc region%s", where, b.Name(), via)
			}
		case *ast.FuncLit:
			if inPanic(node.Pos()) {
				return false
			}
			if captures(node, info) {
				pass.Reportf(node.Pos(), "%s builds a capturing closure inside a //sim:noalloc region%s (a capture-free func literal would be fine)", where, via)
			}
			// Descend regardless: the literal runs as part of this
			// function's hot path, so its body obeys the same rules.
		case *ast.BinaryExpr:
			if node.Op != token.ADD || inPanic(node.Pos()) {
				return true
			}
			if tv, ok := info.Types[node]; ok {
				if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
					pass.Reportf(node.Pos(), "%s concatenates strings inside a //sim:noalloc region%s", where, via)
				}
			}
		}
		return true
	})

	checkBoxing(pass, n, where, via, inPanic)
}

// captures reports whether a func literal references any identifier
// declared outside the literal itself (a closure capture). References to
// package-level objects do not count: they need no closure environment.
func captures(lit *ast.FuncLit, info *types.Info) bool {
	captured := false
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil {
			return true
		}
		if p := v.Pkg(); p != nil && v.Parent() == p.Scope() {
			return true // package-level: needs no closure environment
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// checkBoxing reports concrete non-pointer values converted to interface
// types: in arguments to calls whose parameter is an interface, and in
// explicit interface conversions. Pointer, interface-typed, and untyped
// nil operands do not box a copy of the value. Calls to fmt-style
// variadic ...any printers are where this bites in practice.
func checkBoxing(pass *ModulePass, n *CGNode, where, via string, inPanic func(token.Pos) bool) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		var sig *types.Signature
		if tv, ok := info.Types[fun]; ok {
			sig, _ = tv.Type.Underlying().(*types.Signature)
		}
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if inPanic(arg.Pos()) {
				continue
			}
			var paramType types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				last := sig.Params().At(sig.Params().Len() - 1).Type()
				if slice, ok := last.(*types.Slice); ok {
					paramType = slice.Elem()
				}
			case i < sig.Params().Len():
				paramType = sig.Params().At(i).Type()
			}
			if paramType == nil || !types.IsInterface(paramType) {
				continue
			}
			atv, ok := info.Types[arg]
			if !ok || atv.Type == nil {
				continue
			}
			if atv.IsNil() || types.IsInterface(atv.Type) {
				continue
			}
			if _, isPtr := atv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			pass.Reportf(arg.Pos(), "%s boxes a %s into interface %s inside a //sim:noalloc region%s",
				where, atv.Type.String(), paramType.String(), via)
		}
		return true
	})
}
