// Package analysis is the simulator's static-analysis suite: five
// file-local analyzers (seedflow, nowallclock, maporder, floateq,
// panicpolicy) plus five interprocedural ones (detflow, allocfree,
// pairing, readonly, oblivious) that machine-check the determinism,
// allocation, input-immutability, policy-capability, and
// resource-lifecycle contracts the experiment pipeline depends on, and
// the small framework they run on — including a whole-module call graph
// (see callgraph.go) for the interprocedural family.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape —
// an Analyzer holds a Run function over a type-checked Pass, diagnostics
// carry positions, testdata fixtures use "// want" comments — but is
// built only on the standard library (go/ast, go/types, go list) so the
// module stays dependency-free. See cmd/simvet for the CLI entry point
// and ARCHITECTURE.md for what each analyzer enforces and why.
//
// # Suppressions
//
// All analyzers share one suppression mechanism: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line, or on the line directly above it, silences that
// analyzer there. The reason is mandatory — a suppression must say why
// the exception is sound — and a malformed or unknown-analyzer directive
// is itself reported, so the allowlist stays self-documenting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check. File-local analyzers set Run, which
// inspects one package per pass; interprocedural analyzers set RunModule,
// which sees every target package at once plus the module call graph.
// Suppression filtering and diagnostic ordering are handled by the
// driver, not by individual analyzers.
type Analyzer struct {
	Name      string // short lower-case identifier, used in //lint:allow
	Doc       string // one-paragraph description of the contract enforced
	Run       func(pass *Pass)
	RunModule func(pass *ModulePass)
}

// A Pass couples one analyzer with one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ModulePass couples one interprocedural analyzer with the whole set
// of loaded target packages and the call graph built over them.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph

	fset  *token.FileSet
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// AllowPrefix is the comment prefix of a suppression directive.
const AllowPrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// parseDirectives scans a file's comments for suppression directives.
// Malformed directives (missing analyzer or reason, or naming an analyzer
// that is not running) are reported as diagnostics of the pseudo-analyzer
// "lint" so typos cannot silently disable a check.
func parseDirectives(pkg *Package, file *ast.File, known map[string]bool, diags *[]Diagnostic) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, AllowPrefix)
			fields := strings.Fields(rest)
			bad := func(format string, args ...any) {
				*diags = append(*diags, Diagnostic{
					Analyzer: "lint",
					Pos:      pkg.Fset.Position(c.Pos()),
					Message:  fmt.Sprintf(format, args...),
				})
			}
			if len(fields) == 0 {
				bad("malformed %s: need an analyzer name and a reason", AllowPrefix)
				continue
			}
			if !known[fields[0]] {
				bad("%s names unknown analyzer %q", AllowPrefix, fields[0])
				continue
			}
			if len(fields) < 2 {
				bad("%s %s: a suppression must carry a reason", AllowPrefix, fields[0])
				continue
			}
			out = append(out, directive{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				line:     pkg.Fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics in deterministic (file, line, column, analyzer) order.
// A diagnostic is dropped when a matching //lint:allow directive sits on
// the same line or the line directly above it. A directive that drops
// nothing is itself reported as stale (pseudo-analyzer "lint"), so the
// allowlist cannot outlive the findings it was written for.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	needGraph := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.RunModule != nil {
			needGraph = true
		}
	}

	var diags []Diagnostic
	// allowed maps (filename, line, analyzer) to its suppression record,
	// which tracks whether the directive ever matched a diagnostic.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	type allowRec struct {
		pos  token.Position
		used bool
	}
	allowed := make(map[key]*allowRec)

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseDirectives(pkg, f, known, &diags) {
				p := pkg.Fset.Position(d.pos)
				allowed[key{p.Filename, d.line, d.analyzer}] = &allowRec{pos: p}
			}
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}

	if needGraph && len(pkgs) > 0 {
		graph, gdiags := BuildCallGraph(pkgs)
		diags = append(diags, gdiags...)
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			pass := &ModulePass{
				Analyzer: a,
				Pkgs:     pkgs,
				Graph:    graph,
				fset:     pkgs[0].Fset,
				diags:    &diags,
			}
			a.RunModule(pass)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if rec := allowed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; rec != nil {
			rec.used = true
			continue
		}
		if rec := allowed[key{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]; rec != nil {
			rec.used = true
			continue
		}
		kept = append(kept, d)
	}
	for k, rec := range allowed {
		if rec.used {
			continue
		}
		kept = append(kept, Diagnostic{
			Analyzer: "lint",
			Pos:      rec.pos,
			Message:  fmt.Sprintf("stale %s %s: it no longer suppresses anything; delete it", AllowPrefix, k.analyzer),
		})
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// Analyzers returns the full simvet suite in a fixed order: the five
// file-local checkers first, then the interprocedural family built on the
// module call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Seedflow, NoWallClock, MapOrder, FloatEq, PanicPolicy,
		Detflow, Allocfree, Pairing, Readonly, Oblivious,
	}
}
