// Package analysis is the simulator's static-analysis suite: five
// analyzers (seedflow, nowallclock, maporder, floateq, panicpolicy) that
// machine-check the determinism and numeric-correctness contracts the
// experiment pipeline depends on, plus the small framework they run on.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape —
// an Analyzer holds a Run function over a type-checked Pass, diagnostics
// carry positions, testdata fixtures use "// want" comments — but is
// built only on the standard library (go/ast, go/types, go list) so the
// module stays dependency-free. See cmd/simvet for the CLI entry point
// and ARCHITECTURE.md for what each analyzer enforces and why.
//
// # Suppressions
//
// All analyzers share one suppression mechanism: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line, or on the line directly above it, silences that
// analyzer there. The reason is mandatory — a suppression must say why
// the exception is sound — and a malformed or unknown-analyzer directive
// is itself reported, so the allowlist stays self-documenting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects the package in pass and
// reports findings via pass.Reportf; suppression filtering and diagnostic
// ordering are handled by the driver, not by individual analyzers.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:allow
	Doc  string // one-paragraph description of the contract enforced
	Run  func(pass *Pass)
}

// A Pass couples one analyzer with one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// AllowPrefix is the comment prefix of a suppression directive.
const AllowPrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// parseDirectives scans a file's comments for suppression directives.
// Malformed directives (missing analyzer or reason, or naming an analyzer
// that is not running) are reported as diagnostics of the pseudo-analyzer
// "lint" so typos cannot silently disable a check.
func parseDirectives(pkg *Package, file *ast.File, known map[string]bool, diags *[]Diagnostic) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, AllowPrefix)
			fields := strings.Fields(rest)
			bad := func(format string, args ...any) {
				*diags = append(*diags, Diagnostic{
					Analyzer: "lint",
					Pos:      pkg.Fset.Position(c.Pos()),
					Message:  fmt.Sprintf(format, args...),
				})
			}
			if len(fields) == 0 {
				bad("malformed %s: need an analyzer name and a reason", AllowPrefix)
				continue
			}
			if !known[fields[0]] {
				bad("%s names unknown analyzer %q", AllowPrefix, fields[0])
				continue
			}
			if len(fields) < 2 {
				bad("%s %s: a suppression must carry a reason", AllowPrefix, fields[0])
				continue
			}
			out = append(out, directive{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				line:     pkg.Fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics in deterministic (file, line, column, analyzer) order.
// A diagnostic is dropped when a matching //lint:allow directive sits on
// the same line or the line directly above it.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	// allowed maps (filename, line, analyzer) to a suppression.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool)

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseDirectives(pkg, f, known, &diags) {
				name := pkg.Fset.Position(d.pos).Filename
				allowed[key{name, d.line, d.analyzer}] = true
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if allowed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			allowed[key{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// Analyzers returns the full simvet suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Seedflow, NoWallClock, MapOrder, FloatEq, PanicPolicy}
}
