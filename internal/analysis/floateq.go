package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands. Simulation
// metrics accumulate rounding differently under reordering (the parallel
// runner sums per-cell results in deterministic order precisely because
// float addition is not associative), so exact equality silently encodes
// an ordering assumption. Three shapes remain legal because they are
// exact by IEEE-754 semantics: comparison against the constant zero
// (sentinel and sign tests), x == x (the NaN self-test), and
// constant-folded comparisons. Everything else belongs in a tolerance
// helper such as stats.AlmostEqual.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "exact floating-point equality is brittle under rounding and " +
		"reordering; compare through a tolerance helper (AlmostEqual) or " +
		"restructure. Comparisons against the constant 0 and x == x NaN " +
		"checks are exempt.",
	Run: runFloatEq,
}

// toleranceHelperNames marks functions allowed to compare floats exactly:
// the tolerance helpers themselves, whose fast path is an exact match.
var toleranceHelperNames = []string{"almost", "approx", "within", "toler", "close"}

func isToleranceHelper(fn *ast.FuncDecl) bool {
	if fn == nil {
		return false
	}
	name := strings.ToLower(fn.Name.Name)
	for _, frag := range toleranceHelperNames {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		inspectFuncs(file, func(n ast.Node, fn *ast.FuncDecl) {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				checkFloatSwitch(pass, sw, fn)
				return
			}
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return
			}
			xt, yt := info.Types[bin.X], info.Types[bin.Y]
			if xt.Type == nil || yt.Type == nil || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return
			}
			if xt.Value != nil && yt.Value != nil { // constant-folded
				return
			}
			if isConstZero(xt) || isConstZero(yt) {
				return
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) { // NaN self-test
				return
			}
			if isToleranceHelper(fn) {
				return
			}
			pass.Reportf(bin.Pos(),
				"floating-point %s is exact and brittle under rounding; use a tolerance helper (AlmostEqual) or compare against an explicit epsilon", bin.Op)
		})
	}
}

// checkFloatSwitch flags switch statements whose tag is a float (named
// float types included — the underlying kind is what compares): every
// case arm is an exact == against the tag, so the whole construct is a
// chain of the comparisons runFloatEq forbids, just spelled differently.
// Case expressions that are the constant zero keep the binary-expression
// exemption (a float is exactly zero iff nothing nonzero reached it);
// a switch whose every arm is exempt is not reported at all.
func checkFloatSwitch(pass *Pass, sw *ast.SwitchStmt, fn *ast.FuncDecl) {
	if sw.Tag == nil || isToleranceHelper(fn) {
		return
	}
	info := pass.Pkg.Info
	tagTV, ok := info.Types[sw.Tag]
	if !ok || tagTV.Type == nil || !isFloat(tagTV.Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range clause.List {
			tv, ok := info.Types[expr]
			if ok && isConstZero(tv) {
				continue
			}
			pass.Reportf(expr.Pos(),
				"switch case compares floats exactly (%s is %s); exact float dispatch is brittle under rounding — use if/else with a tolerance helper", types.ExprString(sw.Tag), tagTV.Type)
		}
	}
}

// isConstZero reports whether the operand is a compile-time numeric
// constant equal to zero. Exact-zero comparisons are well-defined (a
// float is zero iff no rounding has produced a nonzero bit) and serve as
// sentinel and sign tests throughout the queueing math.
func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
