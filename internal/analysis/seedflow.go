package analysis

import (
	"go/ast"
)

// approvedSeedFuncs are the seed-derivation helpers inside which RNG
// construction and drawing are legitimate. Everywhere else a simulation
// package must receive its randomness from a helper so that every stream
// is a pure function of the experiment's base seed and the cell
// coordinates (see internal/runner/seed.go and sim.NewRNG): that is what
// keeps committed results byte-identical at any worker count.
var approvedSeedFuncs = map[string]bool{
	"NewRNG":           true, // sim.NewRNG: the one blessed rand.New site
	"CellSeed":         true, // runner.CellSeed
	"ReplicationSeeds": true, // runner.ReplicationSeeds
	"jobSeed":          true, // experiment.Config.jobSeed
}

// randPackages are the RNG packages whose package-level functions are
// restricted. Both constructors (rand.New, rand.NewPCG) and global draws
// (rand.IntN, rand.Float64, ...) are caught: the global source is seeded
// nondeterministically at process start, and ad-hoc constructors bypass
// the seed-derivation discipline.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Seedflow enforces the seed-derivation contract.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc: "RNG construction or global-source draws outside the approved " +
		"seed-derivation helpers (sim.NewRNG, runner.CellSeed, " +
		"runner.ReplicationSeeds, Config.jobSeed). All simulation " +
		"randomness must be derived from the cell seed so reruns are " +
		"byte-identical at any worker count.",
	Run: runSeedflow,
}

func runSeedflow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		inspectFuncs(file, func(n ast.Node, fn *ast.FuncDecl) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			pkgPath, name, ok := calleePkgFunc(pass.Pkg.Info, call)
			if !ok || !randPackages[pkgPath] {
				return
			}
			if fn != nil && approvedSeedFuncs[fn.Name.Name] {
				return
			}
			where := "at package scope"
			if fn != nil {
				where = "in " + fn.Name.Name
			}
			pass.Reportf(call.Pos(),
				"rand.%s %s: construct RNGs only inside approved seed-derivation helpers (sim.NewRNG, runner.CellSeed/ReplicationSeeds, Config.jobSeed) so streams stay a pure function of the cell seed",
				name, where)
		})
	}
}
