package sim

import (
	"math/rand/v2"
	"testing"
)

// recorder collects typed events in dispatch order.
type recorder struct {
	evs   []Ev
	times []float64
}

func (r *recorder) HandleEvent(now float64, ev Ev) {
	r.evs = append(r.evs, ev)
	r.times = append(r.times, now)
}

func TestEngineTypedDispatch(t *testing.T) {
	var e Engine
	var r recorder
	e.SetHandler(&r)
	e.Schedule(2, Ev{Kind: 7, Host: 3, Job: Job{ID: 42, Arrival: 2, Size: 5}})
	e.ScheduleAfter(1, Ev{Kind: 9, T0: 0.5})
	e.Run()
	if len(r.evs) != 2 {
		t.Fatalf("dispatched %d events, want 2", len(r.evs))
	}
	if r.times[0] != 1 || r.evs[0].Kind != 9 || r.evs[0].T0 != 0.5 {
		t.Fatalf("first event = %+v at %v, want kind 9 at t=1", r.evs[0], r.times[0])
	}
	if r.times[1] != 2 || r.evs[1].Kind != 7 || r.evs[1].Host != 3 || r.evs[1].Job.ID != 42 {
		t.Fatalf("second event = %+v at %v, want kind 7 host 3 job 42 at t=2", r.evs[1], r.times[1])
	}
}

func TestEnginePendingExcludesCanceled(t *testing.T) {
	var e Engine
	var hs []Handle
	for i := 0; i < 5; i++ {
		hs = append(hs, e.At(float64(i+1), func(float64) {}))
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	hs[1].Cancel()
	hs[3].Cancel()
	if e.Pending() != 3 {
		t.Fatalf("pending after 2 cancels = %d, want 3 (canceled events must not count)", e.Pending())
	}
	hs[3].Cancel() // double-cancel must not double-decrement
	if e.Pending() != 3 {
		t.Fatalf("pending after double-cancel = %d, want 3", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", e.Pending())
	}
	if e.Fired() != 3 {
		t.Fatalf("fired = %d, want 3", e.Fired())
	}
}

func TestEngineResetRestartsClockAndSeq(t *testing.T) {
	var e Engine
	for i := 0; i < 8; i++ {
		e.At(float64(i+10), func(float64) {})
	}
	e.Run()
	if e.Now() != 17 || e.Fired() != 8 {
		t.Fatalf("pre-reset now=%v fired=%d, want 17/8", e.Now(), e.Fired())
	}
	e.Reset()
	if e.Now() != 0 || e.Fired() != 0 || e.Pending() != 0 {
		t.Fatalf("post-reset now=%v fired=%d pending=%d, want zeros", e.Now(), e.Fired(), e.Pending())
	}
	// The clock restarted, so scheduling before the old horizon must work.
	var fired []float64
	e.At(1, func(now float64) { fired = append(fired, now) })
	e.Run()
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("post-reset run fired %v, want [1]", fired)
	}
}

// TestEngineTieBreakAcrossReset is the seq-restart regression test: after
// Reset the sequence counter returns to zero, so a replication scheduling
// the same simultaneous events observes the same FIFO tie-break as a fresh
// engine — not one skewed by leftover sequence numbers from the previous
// run.
func TestEngineTieBreakAcrossReset(t *testing.T) {
	run := func(e *Engine) []int {
		var order []int
		// Reserved block first (lazy-feed arrivals), then runtime events at
		// the same instant: reserved seqs must win the tie.
		base := e.ReserveSeq(2)
		e.At(1.0, func(float64) { order = append(order, 100) })
		e.ScheduleReserved(1.0, base+1, Ev{})
		e.ScheduleReserved(1.0, base, Ev{})
		e.SetHandler(handlerFunc(func(now float64, ev Ev) { order = append(order, len(order)) }))
		e.Run()
		return order
	}
	var e Engine
	first := run(&e)
	e.Reset()
	second := run(&e)
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("runs fired %d/%d events, want 3 each", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("tie-break differs across Reset: %v vs %v", first, second)
		}
	}
	// Reserved seqs 0 and 1 precede the At event's seq 2.
	if second[2] != 100 {
		t.Fatalf("reserved seqs must fire before later runtime seqs at the same time: %v", second)
	}
}

// handlerFunc adapts a function to the Handler interface for tests.
type handlerFunc func(now float64, ev Ev)

func (f handlerFunc) HandleEvent(now float64, ev Ev) { f(now, ev) }

func TestEngineResetInvalidatesHandles(t *testing.T) {
	var e Engine
	h := e.At(5, func(float64) {})
	e.Reset()
	// The old handle's slot was recycled; cancel must not touch whatever
	// lives there now.
	fired := false
	e.At(1, func(float64) { fired = true })
	h.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("stale cancel changed pending = %d, want 1", e.Pending())
	}
	e.Run()
	if !fired {
		t.Fatal("stale handle canceled an event scheduled after Reset")
	}
}

func TestEngineScheduleReservedUnreservedPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling an unreserved sequence")
		}
	}()
	e.ScheduleReserved(1, 0, Ev{}) // nothing reserved: counter is 0
}

// TestEngineReserveSeqMatchesEagerOrder checks the determinism contract
// behind lazy arrival feeding: scheduling a reserved block lazily fires in
// exactly the order of scheduling everything eagerly up front.
func TestEngineReserveSeqMatchesEagerOrder(t *testing.T) {
	arrivals := []float64{1, 1, 2, 2, 2, 3}

	var eager Engine
	var eagerOrder []int
	for i, at := range arrivals {
		i := i
		eager.At(at, func(float64) { eagerOrder = append(eagerOrder, i) })
	}
	// Runtime events racing the arrivals at t=2.
	eager.At(2, func(float64) { eagerOrder = append(eagerOrder, 100) })
	eager.Run()

	var lazy Engine
	var lazyOrder []int
	base := lazy.ReserveSeq(len(arrivals))
	next := 0
	var feed func()
	feed = func() {
		if next >= len(arrivals) {
			return
		}
		i := next
		lazy.ScheduleReserved(arrivals[i], base+uint64(i), Ev{Kind: 1, Host: int32(i)})
		next++
	}
	lazy.SetHandler(handlerFunc(func(now float64, ev Ev) {
		feed()
		lazyOrder = append(lazyOrder, int(ev.Host))
	}))
	feed()
	lazy.At(2, func(float64) { lazyOrder = append(lazyOrder, 100) })
	lazy.Run()

	if len(eagerOrder) != len(lazyOrder) {
		t.Fatalf("eager fired %d, lazy fired %d", len(eagerOrder), len(lazyOrder))
	}
	for i := range eagerOrder {
		if eagerOrder[i] != lazyOrder[i] {
			t.Fatalf("lazy feeding reordered simultaneous events:\neager %v\nlazy  %v", eagerOrder, lazyOrder)
		}
	}
}

func TestAcquireReleaseReuse(t *testing.T) {
	e := Acquire()
	e.At(3, func(float64) {})
	e.Run()
	Release(e)
	e2 := Acquire()
	// Whether or not the pool returned the same engine, it must be reset.
	if e2.Now() != 0 || e2.Pending() != 0 || e2.Fired() != 0 {
		t.Fatalf("acquired engine not reset: now=%v pending=%d fired=%d", e2.Now(), e2.Pending(), e2.Fired())
	}
	count := 0
	e2.At(1, func(float64) { count++ })
	e2.Run()
	if count != 1 {
		t.Fatalf("reused engine fired %d events, want 1", count)
	}
	Release(e2)
}

// nopHandler discards events; used by the steady-state benchmarks.
type nopHandler struct{ n int }

func (h *nopHandler) HandleEvent(float64, Ev) { h.n++ }

// BenchmarkEngineTypedSteadyState measures the self-perpetuating hot loop
// of a simulation: each fired event schedules the next. After warmup this
// must not allocate (0 allocs/op).
func BenchmarkEngineTypedSteadyState(b *testing.B) {
	var e Engine
	var h nopHandler
	e.SetHandler(&h)
	depth := 64 // concurrent events in flight, like busy hosts
	for i := 0; i < depth; i++ {
		e.Schedule(float64(i), Ev{Kind: 1})
	}
	fired := 0
	e.SetHandler(handlerFunc(func(now float64, ev Ev) {
		fired++
		if fired < b.N {
			e.ScheduleAfter(1, Ev{Kind: 1})
		}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineScheduleCancel measures schedule-then-cancel churn, the
// PS-host pattern (every arrival cancels and reschedules a completion).
func BenchmarkEngineScheduleCancel(b *testing.B) {
	var e Engine
	var h nopHandler
	e.SetHandler(&h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hd := e.Schedule(float64(i)+1, Ev{Kind: 1})
		hd.Cancel()
		e.Step() // drain the canceled entry so the heap stays small
	}
}

// BenchmarkEngineResetReuse measures a full small simulation per op on a
// single reused engine — the sweep runner's per-cell pattern.
func BenchmarkEngineResetReuse(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	times := make([]float64, 1000)
	for i := range times {
		times[i] = rng.Float64() * 1000
	}
	var e Engine
	var h nopHandler
	e.SetHandler(&h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for _, at := range times {
			e.Schedule(at, Ev{Kind: 1})
		}
		e.Run()
	}
}

// BenchmarkEngineFreshPerRun is the contrast case for ResetReuse: a brand
// new engine per simulation, growing its arrays from nothing each time.
func BenchmarkEngineFreshPerRun(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	times := make([]float64, 1000)
	for i := range times {
		times[i] = rng.Float64() * 1000
	}
	var h nopHandler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var e Engine
		e.SetHandler(&h)
		for _, at := range times {
			e.Schedule(at, Ev{Kind: 1})
		}
		e.Run()
	}
}
