package sim

import "testing"

// chainHandler reschedules itself forever: an unbounded event supply for
// exercising the cancel probe.
type chainHandler struct{ e *Engine }

func (h *chainHandler) HandleEvent(now float64, ev Ev) {
	h.e.ScheduleAfter(1, Ev{Kind: 1})
}

func TestCancelCheckStopsRun(t *testing.T) {
	var e Engine
	h := &chainHandler{e: &e}
	e.SetHandler(h)
	e.Schedule(0, Ev{Kind: 1})

	polls := 0
	e.SetCancelCheck(10, func() bool {
		polls++
		return polls >= 3
	})
	e.Run()

	if !e.Interrupted() {
		t.Fatal("engine did not report Interrupted after cancel check fired")
	}
	if polls != 3 {
		t.Fatalf("cancel check polled %d times, want 3", polls)
	}
	// 3 polls at an interval of 10 events = exactly 30 fired events.
	if e.Fired() != 30 {
		t.Fatalf("fired %d events before stopping, want 30", e.Fired())
	}
}

func TestCancelCheckOffByDefault(t *testing.T) {
	var e Engine
	done := false
	e.At(1, func(now float64) { done = true })
	e.Run()
	if !done || e.Interrupted() {
		t.Fatalf("plain run: done=%v interrupted=%v, want true/false", done, e.Interrupted())
	}
}

// TestCancelCheckClearedOnReuse ensures a pooled engine cannot observe a
// previous request's probe: Reset, Acquire and Release all drop it.
func TestCancelCheckClearedOnReuse(t *testing.T) {
	e := Acquire()
	e.SetCancelCheck(1, func() bool { return true })
	e.Reset()
	if e.checkEvery != 0 || e.checkFn != nil {
		t.Fatal("Reset kept the cancel check")
	}

	e.SetCancelCheck(1, func() bool { return true })
	Release(e)
	if e.checkEvery != 0 || e.checkFn != nil {
		t.Fatal("Release kept the cancel check")
	}
}

// TestCancelCheckDeterministicPrefix: with a probe installed that never
// fires, the event sequence is identical to a probe-free run.
func TestCancelCheckDeterministicPrefix(t *testing.T) {
	run := func(probe bool) (fired uint64, now float64) {
		var e Engine
		h := &countdownHandler{e: &e, left: 100}
		e.SetHandler(h)
		e.Schedule(0, Ev{Kind: 1})
		if probe {
			e.SetCancelCheck(7, func() bool { return false })
		}
		e.Run()
		return e.Fired(), e.Now()
	}
	f1, t1 := run(false)
	f2, t2 := run(true)
	if f1 != f2 || t1 != t2 {
		t.Fatalf("probe perturbed the run: (%d, %v) vs (%d, %v)", f1, t1, f2, t2)
	}
}

type countdownHandler struct {
	e    *Engine
	left int
}

func (h *countdownHandler) HandleEvent(now float64, ev Ev) {
	if h.left--; h.left > 0 {
		h.e.ScheduleAfter(0.5, Ev{Kind: 1})
	}
}
