package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	var e Engine
	var fired []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		e.At(at, func(now float64) { fired = append(fired, now) })
	}
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

func TestEngineFIFOForSimultaneousEvents(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func(float64) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	var e Engine
	var log []float64
	e.After(1, func(now float64) {
		log = append(log, now)
		e.After(2, func(now float64) {
			log = append(log, now)
		})
	})
	e.Run()
	if len(log) != 2 || log[0] != 1 || log[1] != 3 {
		t.Fatalf("nested scheduling log = %v, want [1 3]", log)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(float64) { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want horizon 5", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("after full run count = %d, want 10", count)
	}
}

func TestEngineStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(float64) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("stop did not halt: count = %d", count)
	}
	e.Run() // resumable
	if count != 10 {
		t.Fatalf("resume failed: count = %d", count)
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	h := e.At(1, func(float64) { fired = true })
	h.Cancel()
	h.Cancel() // double-cancel is fine
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("fired count = %d, want 0", e.Fired())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	var e Engine
	e.At(5, func(float64) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(1, func(float64) {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	e.After(-1, func(float64) {})
}

func TestEngineStep(t *testing.T) {
	var e Engine
	count := 0
	e.At(1, func(float64) { count++ })
	e.At(2, func(float64) { count++ })
	if !e.Step() || count != 1 {
		t.Fatal("first step failed")
	}
	if !e.Step() || count != 2 {
		t.Fatal("second step failed")
	}
	if e.Step() {
		t.Fatal("step on empty queue should report false")
	}
}

func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var e Engine
		var fired []float64
		for _, r := range raw {
			at := r
			if at < 0 {
				at = -at
			}
			if at != at { // NaN
				continue
			}
			e.At(at, func(now float64) { fired = append(fired, now) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRNGDeterminismAndStreams(t *testing.T) {
	a := NewRNG(1, 0)
	b := NewRNG(1, 0)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, stream) should be identical")
		}
	}
	c := NewRNG(1, 1)
	d := NewRNG(1, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Float64() == d.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 nearly identical (%d collisions)", same)
	}
}

func TestNewRNGStreamsUncorrelated(t *testing.T) {
	// Crude correlation check across adjacent seeds.
	var xs, ys []float64
	for seed := uint64(0); seed < 500; seed++ {
		xs = append(xs, NewRNG(seed, 0).Float64())
		ys = append(ys, NewRNG(seed+1, 0).Float64())
	}
	// Pearson correlation should be near zero.
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
		syy += (ys[i] - my) * (ys[i] - my)
	}
	r := sxy / (sxx * syy)
	if r > 0.2 || r < -0.2 {
		t.Fatalf("adjacent-seed correlation = %v", r)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.At(rng.Float64()*1000, func(float64) {})
		}
		e.Run()
	}
}

func TestEngineRandomCancelStress(t *testing.T) {
	// Random interleavings of scheduling and canceling must never fire a
	// canceled event, never fire out of order, and always drain.
	rng := rand.New(rand.NewPCG(99, 100))
	for trial := 0; trial < 50; trial++ {
		var e Engine
		type tracked struct {
			h        Handle
			at       float64
			canceled bool
		}
		var items []*tracked
		fired := map[*tracked]bool{}
		lastTime := -1.0
		for i := 0; i < 200; i++ {
			it := &tracked{at: rng.Float64() * 100}
			it.h = e.At(it.at, func(now float64) {
				if now < lastTime {
					t.Fatalf("trial %d: time went backwards", trial)
				}
				lastTime = now
				if it.canceled {
					t.Fatalf("trial %d: canceled event fired", trial)
				}
				fired[it] = true
			})
			items = append(items, it)
			// Randomly cancel an earlier event.
			if rng.Float64() < 0.3 {
				victim := items[rng.IntN(len(items))]
				if !fired[victim] {
					victim.h.Cancel()
					victim.canceled = true
				}
			}
		}
		e.Run()
		for _, it := range items {
			if !it.canceled && !fired[it] {
				t.Fatalf("trial %d: live event never fired", trial)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d events left pending", trial, e.Pending())
		}
	}
}

func TestEngineStepInterleavedWithRunUntil(t *testing.T) {
	var e Engine
	var order []int
	for i := 1; i <= 6; i++ {
		i := i
		e.At(float64(i), func(float64) { order = append(order, i) })
	}
	if !e.Step() { // fires event 1
		t.Fatal("step failed")
	}
	e.RunUntil(4) // fires 2, 3, 4
	e.Run()       // fires the rest
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("mixed stepping broke order: %v", order)
		}
	}
}

func TestEngineFiredCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 10; i++ {
		e.At(float64(i), func(float64) {})
	}
	h := e.At(100, func(float64) {})
	h.Cancel()
	e.Run()
	if e.Fired() != 10 {
		t.Fatalf("fired = %d, want 10 (canceled events don't count)", e.Fired())
	}
}
