// Package sim is a minimal deterministic discrete-event simulation kernel:
// a virtual clock and a time-ordered event queue with stable FIFO ordering
// for simultaneous events. The distributed-server model in internal/server
// runs on top of it.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now float64)

type item struct {
	at  float64
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  Event
	// index within the heap, maintained by the heap interface, needed for
	// cancellation.
	index    int
	canceled bool
}

// Handle identifies a scheduled event so it can be canceled.
type Handle struct{ it *item }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.canceled = true
	}
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:allow floateq exact event-time tie-break; equal times fall through to seq for determinism
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event simulator. The zero value is a
// ready-to-use engine starting at time 0.
type Engine struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// Now reports the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Fired reports how many events have executed, useful for progress and
// complexity assertions in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled (including canceled ones
// not yet drained).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it is always a model bug.
func (e *Engine) At(t float64, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	it := &item{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, it)
	return Handle{it: it}
}

// After schedules fn to run delay time units from now.
// Panics if delay is negative: it is always a model bug.
func (e *Engine) After(delay float64, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Stop makes the current Run call return after the executing event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains or Stop is
// called.
func (e *Engine) Run() {
	e.RunUntil(-1)
}

// RunUntil executes events with timestamp <= horizon (or all events when
// horizon < 0). The clock advances to each event's time; if the queue drains
// earlier the clock stays at the last event.
func (e *Engine) RunUntil(horizon float64) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		it := e.events[0]
		if horizon >= 0 && it.at > horizon {
			e.now = horizon
			return
		}
		heap.Pop(&e.events)
		if it.canceled {
			continue
		}
		e.now = it.at
		e.fired++
		it.fn(e.now)
	}
}

// Step executes exactly one non-canceled event, reporting whether one was
// available.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		it := heap.Pop(&e.events).(*item)
		if it.canceled {
			continue
		}
		e.now = it.at
		e.fired++
		it.fn(e.now)
		return true
	}
	return false
}

// NewRNG derives a deterministic PCG generator from a seed and a stream
// index. Separate streams decouple, e.g., arrival times from job sizes so
// that changing one workload dimension does not perturb the other.
func NewRNG(seed uint64, stream uint64) *rand.Rand {
	// splitmix-style mixing so nearby (seed, stream) pairs decorrelate.
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return rand.New(rand.NewPCG(seed, z^(z>>31)))
}
