// Package sim is a minimal deterministic discrete-event simulation kernel:
// a virtual clock and a time-ordered event queue with stable FIFO ordering
// for simultaneous events. The distributed-server model in internal/server
// runs on top of it.
//
// The kernel is allocation-free in steady state. Events live as values in
// an indexed binary heap — no per-event heap object, no per-event closure
// on the hot path — and carry a small typed payload (Ev: kind + host index
// + job) dispatched to a Handler. Closure events (At/After) remain
// available for tests and one-off timers. Cancellation uses
// generation-counted handles into a reusable slot arena, so a Handle stays
// 16 bytes and a stale handle (its event fired, or the engine was Reset)
// is a safe no-op. Engines are reusable via Reset and poolable via
// Acquire/Release, so a sweep of thousands of simulation cells reuses a
// few engines' backing arrays instead of reallocating per cell.
//
// Serving paths that must bound a simulation's wall-clock cost can install
// a cooperative cancellation probe (SetCancelCheck): a zero-allocation
// callback polled every N fired events. The probe is off by default and
// cleared on Reset/Acquire/Release, so batch paths (cmd/sweep, results/)
// never observe it and their output stays byte-identical.
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now float64)

// Job is the unit of simulated work typed events carry by value: an
// identifier, an arrival instant, and a service requirement in seconds.
// internal/workload aliases this type as its Job, so the kernel can carry
// one inside an event payload without an import cycle.
type Job struct {
	ID      int
	Arrival float64
	Size    float64
}

// Ev is a typed event payload. Kind is client-defined (each Handler owns
// its engine and therefore its kind namespace); Host, T0 and Job are
// free-form payload fields — conventionally the host index the event
// targets, an auxiliary timestamp (e.g. service start), and the job the
// event is about.
type Ev struct {
	Kind uint8
	Host int32
	T0   float64
	Job  Job
}

// Handler consumes typed events. An engine dispatches every event
// scheduled via Schedule/ScheduleReserved to its handler; models
// (internal/server, internal/tags) implement Handler and switch on
// Ev.Kind.
type Handler interface {
	HandleEvent(now float64, ev Ev)
}

// entry is one element of the event heap: the firing time, the FIFO
// tie-break sequence, and the index of the slot holding the payload.
// Entries are small values, so sift operations move 24 bytes and never
// touch the allocator.
type entry struct {
	at  float64
	seq uint64
	id  int32
}

// slot holds a scheduled event's payload in the engine's slot arena.
// gen increments every time the slot is freed, invalidating outstanding
// Handles; canceled marks a lazily-canceled event still in the heap.
type slot struct {
	gen      uint32
	canceled bool
	ev       Ev
	fn       Event
}

// Handle identifies a scheduled event so it can be canceled. The zero
// Handle is valid and cancels nothing.
type Handle struct {
	e   *Engine
	id  int32
	gen uint32
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or zero Handle is a no-op, as is canceling across an
// Engine.Reset (the reset bumps every slot generation).
func (h Handle) Cancel() {
	if h.e == nil || int(h.id) >= len(h.e.slots) {
		return
	}
	s := &h.e.slots[h.id]
	if s.gen != h.gen || s.canceled {
		return
	}
	s.canceled = true
	h.e.live--
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// a ready-to-use engine starting at time 0.
type Engine struct {
	now     float64
	seq     uint64
	events  []entry // binary min-heap on (at, seq)
	slots   []slot  // payload arena; entries point into it by index
	free    []int32 // freelist of reusable slot indices
	live    int     // scheduled and not canceled
	stopped bool
	fired   uint64
	handler Handler

	// Cooperative cancellation (SetCancelCheck): checkFn is polled every
	// checkEvery fired events; when it reports true the run stops and
	// interrupted is set. checkEvery == 0 (the default) disables the
	// check entirely, so CLI/sweep paths pay one predictable branch per
	// event and produce byte-identical output.
	checkEvery  uint64
	checkCount  uint64
	checkFn     func() bool
	interrupted bool

	// Dispatch-order verification (SetOrderCheck): when enabled, fire
	// asserts that events leave the heap in nondecreasing (time, seq)
	// order — the kernel's core determinism invariant. Off by default
	// (one predictable branch per event); the property harness
	// (internal/simtest) turns it on so any future heap regression fails
	// loudly inside the run that triggers it instead of surfacing as a
	// silently reordered record stream.
	orderCheck bool
	lastAt     float64
	lastSeq    uint64
}

// Now reports the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Fired reports how many events have executed, useful for progress and
// complexity assertions in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many live (scheduled and not canceled) events
// remain. Canceled events still occupying heap slots until drained are
// not counted.
func (e *Engine) Pending() int { return e.live }

// SetHandler installs the typed-event consumer. Schedule panics at fire
// time if no handler is installed.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// less orders heap entries by (time, seq): virtual time first, schedule
// order among simultaneous events.
func (e *Engine) less(i, j int) bool {
	a, b := e.events[i], e.events[j]
	//lint:allow floateq exact event-time tie-break; equal times fall through to seq for determinism
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.events)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && e.less(r, l) {
			small = r
		}
		if !e.less(small, i) {
			return
		}
		e.events[i], e.events[small] = e.events[small], e.events[i]
		i = small
	}
}

// popTop removes the heap minimum (the caller reads events[0] first).
//
//sim:noalloc
func (e *Engine) popTop() {
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events = e.events[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// allocSlot takes a slot from the freelist, growing the arena if empty.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.slots = append(e.slots, slot{}) //lint:allow allocfree arena grows to the high-water event count, then the freelist recycles
	return int32(len(e.slots) - 1)
}

// freeSlot returns a slot to the freelist, invalidating outstanding
// handles and dropping payload references so closures are not retained.
func (e *Engine) freeSlot(id int32) {
	s := &e.slots[id]
	s.gen++
	s.canceled = false
	s.ev = Ev{}
	s.fn = nil
	e.free = append(e.free, id) //lint:allow allocfree freelist capacity tracks the arena; append never outgrows it in steady state
}

// push schedules one event value.
// Panics if t is before the current virtual time: it is always a model bug.
//
//sim:noalloc
func (e *Engine) push(t float64, seq uint64, ev Ev, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	id := e.allocSlot()
	s := &e.slots[id]
	s.ev = ev
	s.fn = fn
	e.events = append(e.events, entry{at: t, seq: seq, id: id}) //lint:allow allocfree heap grows to the high-water event count, then reuses capacity
	e.siftUp(len(e.events) - 1)
	e.live++
	return Handle{e: e, id: id, gen: s.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it is always a model bug.
func (e *Engine) At(t float64, fn Event) Handle {
	h := e.push(t, e.seq, Ev{}, fn)
	e.seq++
	return h
}

// After schedules fn to run delay time units from now.
// Panics if delay is negative: it is always a model bug.
func (e *Engine) After(delay float64, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Schedule schedules a typed event at absolute virtual time t, dispatched
// to the engine's Handler. Panics if t is in the past.
func (e *Engine) Schedule(t float64, ev Ev) Handle {
	h := e.push(t, e.seq, ev, nil)
	e.seq++
	return h
}

// ScheduleAfter schedules a typed event delay time units from now.
// Panics if delay is negative.
func (e *Engine) ScheduleAfter(delay float64, ev Ev) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.Schedule(e.now+delay, ev)
}

// ReserveSeq reserves n consecutive FIFO sequence numbers and returns the
// first. A lazy event source (internal/server feeding arrivals one at a
// time) reserves one number per future event up front and schedules each
// event with ScheduleReserved(..., base+i, ...): simultaneous events then
// order exactly as if all n had been scheduled eagerly before anything
// else, which is what keeps results byte-identical across feeding
// strategies.
func (e *Engine) ReserveSeq(n int) uint64 {
	base := e.seq
	e.seq += uint64(n)
	return base
}

// ScheduleReserved schedules a typed event with a sequence number
// previously obtained from ReserveSeq. Panics if t is in the past or seq
// was not reserved (>= the engine's sequence counter): both are model
// bugs.
func (e *Engine) ScheduleReserved(t float64, seq uint64, ev Ev) Handle {
	if seq >= e.seq {
		panic(fmt.Sprintf("sim: sequence %d not reserved (counter at %d)", seq, e.seq))
	}
	return e.push(t, seq, ev, nil)
}

// Stop makes the current Run call return after the executing event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// SetCancelCheck installs a cooperative cancellation probe: fn is polled
// once every `every` fired events during Run/RunUntil, and when it reports
// true the run stops after the current event and Interrupted reports true.
// every <= 0 (or fn == nil) disables the check — the default — so the
// probe costs nothing on paths that never set it and simulation output
// stays byte-identical. The probe itself allocates nothing on the engine
// side; fn should be equally cheap (e.g. a non-blocking context poll).
// Reset and Acquire clear the probe, so pooled engines never retain a
// request-scoped closure across reuse.
func (e *Engine) SetCancelCheck(every int, fn func() bool) {
	if every <= 0 || fn == nil {
		e.checkEvery, e.checkFn = 0, nil
		return
	}
	e.checkEvery = uint64(every)
	e.checkFn = fn
	e.checkCount = 0
}

// Interrupted reports whether the most recent Run/RunUntil stopped because
// the cancel check fired (as opposed to draining the queue, reaching the
// horizon, or Stop).
func (e *Engine) Interrupted() bool { return e.interrupted }

// SetOrderCheck toggles dispatch-order verification: with the check on,
// every fired event must carry a (time, seq) pair no smaller — in
// lexicographic order — than the previously fired one, and a violation
// panics. This is the kernel invariant that makes simulations
// deterministic and record streams reproducible; the check exists so
// property tests (internal/simtest) can run entire simulations with the
// invariant armed. Off by default; cleared by Reset (and therefore
// Acquire), like the cancel probe, so pooled engines never carry it into
// batch paths.
func (e *Engine) SetOrderCheck(on bool) {
	e.orderCheck = on
	e.lastAt = math.Inf(-1)
	e.lastSeq = 0
}

// Run executes events in time order until the queue drains or Stop is
// called.
//
//sim:entry
func (e *Engine) Run() {
	e.RunUntil(-1)
}

// RunUntil executes events with timestamp <= horizon (or all events when
// horizon < 0). The clock advances to each event's time; if the queue
// drains earlier the clock stays at the last event. Panics (from the
// dispatch path) if a typed event fires with no Handler installed.
//
//sim:entry
//sim:noalloc
func (e *Engine) RunUntil(horizon float64) {
	e.stopped = false
	e.interrupted = false
	for len(e.events) > 0 && !e.stopped {
		top := e.events[0]
		if horizon >= 0 && top.at > horizon {
			e.now = horizon
			return
		}
		e.popTop()
		e.fire(top)
		if e.checkEvery != 0 {
			if e.checkCount++; e.checkCount >= e.checkEvery {
				e.checkCount = 0
				if e.checkFn() {
					e.interrupted = true
					e.stopped = true
				}
			}
		}
	}
}

// Step executes exactly one non-canceled event, reporting whether one was
// available.
//
//sim:noalloc
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		top := e.events[0]
		e.popTop()
		if e.fire(top) {
			return true
		}
	}
	return false
}

// fire dispatches one popped heap entry, reporting whether it was live.
// The slot is freed before dispatch so the callback can schedule new
// events into the just-vacated slot (the generation bump keeps stale
// handles inert). Panics if the order check (SetOrderCheck) is armed and
// the entry is out of (time, seq) dispatch order — that is the check's
// entire job.
func (e *Engine) fire(top entry) bool {
	s := &e.slots[top.id]
	if s.canceled {
		e.freeSlot(top.id)
		return false
	}
	ev, fn := s.ev, s.fn
	e.freeSlot(top.id)
	e.live--
	if e.orderCheck {
		//lint:allow floateq exact dispatch-order assertion: equal times fall through to the seq tie-break
		if top.at < e.lastAt || (top.at == e.lastAt && top.seq <= e.lastSeq) {
			panic(fmt.Sprintf("sim: dispatch order violated: event (t=%v, seq=%d) after (t=%v, seq=%d)",
				top.at, top.seq, e.lastAt, e.lastSeq))
		}
		e.lastAt, e.lastSeq = top.at, top.seq
	}
	e.now = top.at
	e.fired++
	if fn != nil {
		fn(e.now)
	} else {
		e.handler.HandleEvent(e.now, ev)
	}
	return true
}

// Reset returns the engine to its zero state — time 0, empty queue,
// sequence counter 0 — while keeping the heap, slot arena, and freelist
// capacity for reuse. Every outstanding Handle is invalidated (its slot
// generation advances), so canceling across a Reset is a no-op. The
// handler is kept; replace it with SetHandler when repurposing the
// engine.
func (e *Engine) Reset() {
	for _, en := range e.events {
		e.freeSlot(en.id)
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.live = 0
	e.fired = 0
	e.stopped = false
	e.checkEvery = 0
	e.checkCount = 0
	e.checkFn = nil
	e.interrupted = false
	e.orderCheck = false
}

// enginePool recycles engines across simulation cells: a sweep's worker
// goroutines Acquire/Release thousands of times but allocate only a
// handful of engines, and each reuse carries warmed-up heap and arena
// capacity with it.
var enginePool = sync.Pool{New: func() any {
	poolNews.Add(1)
	return new(Engine)
}}

// poolAcquires and poolNews count Acquire calls and fresh allocations the
// pool had to make, so long-running services can report engine reuse on
// their metrics surface. One atomic add per simulation cell is noise next
// to the cell's own cost.
var (
	poolAcquires atomic.Uint64
	poolNews     atomic.Uint64
)

// PoolStats reports how many engines have been handed out by Acquire and
// how many of those were fresh allocations (rather than pool reuses) since
// process start. Safe for concurrent use.
func PoolStats() (acquires, news uint64) {
	return poolAcquires.Load(), poolNews.Load()
}

// Acquire returns a Reset engine from a process-wide reuse pool. Pair
// with Release when the simulation is done. Safe for concurrent use; the
// engine itself remains single-goroutine.
func Acquire() *Engine {
	poolAcquires.Add(1)
	e := enginePool.Get().(*Engine)
	e.Reset()
	e.handler = nil
	return e
}

// Release returns an engine to the reuse pool. The caller must not use
// the engine afterwards (outstanding Handles become inert only after the
// next Acquire's Reset, so do not Release an engine whose handles are
// still being canceled). The cancel check is dropped before pooling so a
// request-scoped closure is never retained by an idle engine.
func Release(e *Engine) {
	e.checkEvery, e.checkFn = 0, nil
	enginePool.Put(e)
}

// NewRNG derives a deterministic PCG generator from a seed and a stream
// index. Separate streams decouple, e.g., arrival times from job sizes so
// that changing one workload dimension does not perturb the other.
func NewRNG(seed uint64, stream uint64) *rand.Rand {
	// splitmix-style mixing so nearby (seed, stream) pairs decorrelate.
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return rand.New(rand.NewPCG(seed, z^(z>>31)))
}
