// Package runner is the concurrent experiment-execution engine: a bounded
// worker pool that fans independent simulation cells (one server.Run per
// (policy, load, replication) tuple) out across CPUs and collects their
// results in submission order.
//
// Determinism is the package's contract. A cell's random seed must be a
// pure function of the cell's coordinates — derived before fan-out, e.g.
// with CellSeed — never of scheduling, worker identity, or completion
// order. Under that discipline Map returns bit-identical results for any
// worker count, so a parallel sweep is a drop-in replacement for the
// sequential loop it accelerates: same tables, same CSV bytes, just
// faster wall-clock.
package runner

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes a Map call.
type Options struct {
	// Workers bounds the number of concurrently executing cells.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after each cell completes with the
	// number of cells done so far and the total. Calls are serialized, but
	// arrive in completion order, not submission order.
	Progress func(done, total int)
}

// workers resolves the effective worker count for n cells. Marked as a
// determinism boundary: the machine's GOMAXPROCS only sizes the worker
// pool, and cell results merge by index, so output is byte-identical at
// any worker count (the determinism tests pin exactly this).
//
//sim:io worker-pool sizing; results merge in index order at any worker count
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Map runs fn over every item on a bounded pool of workers and returns the
// results in item order. fn receives the item's index and the item; it is
// called exactly once per item, from at most `workers` goroutines at a
// time. All items run even if some fail; the returned error joins every
// per-item error in item order (nil when all succeed).
//
// fn must not share mutable state across items — each cell owns its
// policy instance, RNG, and Result.
func Map[In, Out any](workers int, items []In, fn func(i int, item In) (Out, error)) ([]Out, error) {
	return MapOpts(Options{Workers: workers}, items, fn)
}

// MapOpts is Map with explicit options.
func MapOpts[In, Out any](opts Options, items []In, fn func(i int, item In) (Out, error)) ([]Out, error) {
	n := len(items)
	out := make([]Out, n)
	errs := make([]error, n)
	if n == 0 {
		return out, nil
	}

	workers := opts.workers(n)
	if workers <= 1 {
		// Sequential fast path: no goroutines, no synchronization. The
		// parallel path below must produce identical out/errs slices.
		for i, item := range items {
			out[i], errs[i] = fn(i, item)
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return out, errors.Join(errs...)
	}

	var (
		next atomic.Int64 // next unclaimed cell index
		done atomic.Int64 // completed cells, for progress reporting
		mu   sync.Mutex   // serializes Progress callbacks
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i, items[i])
				d := int(done.Add(1))
				if opts.Progress != nil {
					mu.Lock()
					opts.Progress(d, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}
