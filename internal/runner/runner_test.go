package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdered verifies results land at their item's index for worker
// counts below, at, and above the item count.
func TestMapOrdered(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 4, 7, 100, 1000} {
		out, err := Map(workers, items, func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapDeterminism demands bit-identical output across worker counts when
// cells derive their randomness from their own coordinates.
func TestMapDeterminism(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	run := func(workers int) []uint64 {
		out, err := Map(workers, items, func(i, item int) (uint64, error) {
			return CellSeed(42, "policy", float64(item)/10, item), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 32} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %x, want %x", w, i, got[i], want[i])
			}
		}
	}
}

// TestMapConcurrency proves cells genuinely overlap: 8 sleeping cells on 8
// workers must finish far faster than sequentially. Sleeps overlap even at
// GOMAXPROCS=1, so this holds on any machine.
func TestMapConcurrency(t *testing.T) {
	const cells = 8
	const nap = 30 * time.Millisecond
	var peak, cur atomic.Int64
	start := time.Now()
	_, err := Map(cells, make([]struct{}, cells), func(int, struct{}) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(nap)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > time.Duration(cells)*nap/2 {
		t.Errorf("8 parallel %v naps took %v; cells are not overlapping", nap, elapsed)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("peak concurrency %d, want >= 2", p)
	}
}

// TestMapBounded verifies no more than Workers cells run at once.
func TestMapBounded(t *testing.T) {
	const workers = 3
	var peak, cur atomic.Int64
	_, err := Map(workers, make([]struct{}, 20), func(int, struct{}) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestMapErrors: every cell runs despite failures, and the joined error
// reports failures in item order regardless of completion order.
func TestMapErrors(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	var ran atomic.Int64
	out, err := Map(4, items, func(i, item int) (int, error) {
		ran.Add(1)
		if item%2 == 1 {
			return 0, fmt.Errorf("cell %d failed", item)
		}
		return item * 10, nil
	})
	if ran.Load() != int64(len(items)) {
		t.Fatalf("ran %d cells, want %d", ran.Load(), len(items))
	}
	if err == nil {
		t.Fatal("want joined error")
	}
	want := "cell 1 failed\ncell 3 failed\ncell 5 failed"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
	if out[0] != 0 || out[2] != 20 || out[4] != 40 {
		t.Errorf("successful results clobbered: %v", out)
	}
}

// TestMapProgress checks the callback fires once per cell with a monotone
// done count reaching the total.
func TestMapProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int
		last := 0
		_, err := MapOpts(Options{Workers: workers, Progress: func(done, total int) {
			calls++
			if total != 10 {
				t.Errorf("total = %d, want 10", total)
			}
			if done != last+1 {
				t.Errorf("done jumped from %d to %d", last, done)
			}
			last = done
		}}, make([]struct{}, 10), func(int, struct{}) (struct{}, error) {
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != 10 {
			t.Errorf("workers=%d: %d progress calls, want 10", workers, calls)
		}
	}
}

// TestMapEmpty and default worker resolution.
func TestMapEmpty(t *testing.T) {
	out, err := Map(0, nil, func(int, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
	if w := (Options{}).workers(5); w != runtime.GOMAXPROCS(0) && w != 5 {
		t.Errorf("default workers = %d, want min(GOMAXPROCS, 5)", w)
	}
	if w := (Options{Workers: 16}).workers(3); w != 3 {
		t.Errorf("workers clamped to %d, want 3 (item count)", w)
	}
}

// TestCellSeedDistinct: changing any single coordinate must change the
// seed, and the empty-policy stream must differ from named policies.
func TestCellSeedDistinct(t *testing.T) {
	base := CellSeed(1, "SITA-E", 0.7, 0)
	for name, other := range map[string]uint64{
		"base":   CellSeed(2, "SITA-E", 0.7, 0),
		"policy": CellSeed(1, "SITA-U", 0.7, 0),
		"load":   CellSeed(1, "SITA-E", 0.8, 0),
		"rep":    CellSeed(1, "SITA-E", 0.7, 1),
		"shared": CellSeed(1, "", 0.7, 0),
	} {
		if other == base {
			t.Errorf("changing %s did not change the seed", name)
		}
	}
	if CellSeed(1, "SITA-E", 0.7, 0) != base {
		t.Error("CellSeed is not deterministic")
	}
}

// TestSeedTextBoundaries: coordinate boundaries must matter, so composite
// derivations cannot collide by shifting bytes between fields.
func TestSeedTextBoundaries(t *testing.T) {
	a := NewSeed(1).Text("ab").Text("c").U64()
	b := NewSeed(1).Text("a").Text("bc").U64()
	if a == b {
		t.Error("text field boundaries are invisible to the hash")
	}
}

// TestSeedStability pins the derivation: recorded experiment output keys on
// these values, so changing the hash must be a deliberate act that fails
// this test.
func TestSeedStability(t *testing.T) {
	got := CellSeed(1, "SITA-E", 0.7, 0)
	const want = uint64(0xfd474e635ba51488)
	if got != want {
		t.Errorf("CellSeed(1, SITA-E, 0.7, 0) = %#x, want %#x — the seed "+
			"derivation changed; recorded results are invalidated", got, want)
	}
}

// TestReplicationSeeds: distinct, deterministic, and free of the base+i
// structure.
func TestReplicationSeeds(t *testing.T) {
	seeds := ReplicationSeeds(7, 16)
	seen := map[uint64]bool{}
	for i, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate replication seed at %d", i)
		}
		seen[s] = true
		if s == 7+uint64(i) {
			t.Errorf("seed %d is base+i; want hashed separation", i)
		}
	}
	again := ReplicationSeeds(7, 16)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("replication seeds not deterministic")
		}
	}
}

// TestMapSharedCounter is the race detector's playground: cells update a
// shared atomic; `go test -race` must stay silent because all other state
// is per-cell.
func TestMapSharedCounter(t *testing.T) {
	var sum atomic.Int64
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	out, err := Map(8, items, func(i, item int) (int, error) {
		sum.Add(int64(item))
		return item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 500*499/2 {
		t.Errorf("sum = %d, want %d", sum.Load(), 500*499/2)
	}
	_ = out
}

func TestErrorsJoinNil(t *testing.T) {
	out, err := Map(3, []int{1, 2, 3}, func(i, v int) (int, error) { return v, nil })
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !errors.Is(err, nil) && len(out) != 3 {
		t.Fatal("nil join broken")
	}
}
