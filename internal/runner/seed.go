package runner

import "math"

// Seed derivation for simulation cells. A cell's RNG seed must depend only
// on the experiment's base seed and the cell's own coordinates (policy
// name, load point, replication index, ...) so that results do not depend
// on worker count or scheduling order, and so that nearby cells do not
// share low-entropy seeds. The derivation is an FNV-1a hash over the
// coordinates with a splitmix64 finalizer; it is stable across processes
// and releases — changing it invalidates recorded experiment output.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Seed is an accumulating seed derivation. Build one with NewSeed, mix in
// each cell coordinate, then call U64 (or pass it anywhere a uint64 seed is
// wanted) via Derive. The zero value is usable but NewSeed is clearer.
type Seed struct{ h uint64 }

// NewSeed starts a derivation from a base seed.
func NewSeed(base uint64) Seed {
	return Seed{h: fnvOffset64}.Uint(base)
}

// Uint mixes a 64-bit coordinate into the derivation.
func (s Seed) Uint(v uint64) Seed {
	for i := 0; i < 8; i++ {
		s.h ^= v & 0xff
		s.h *= fnvPrime64
		v >>= 8
	}
	return s
}

// Int mixes a signed integer coordinate (replication index, host count).
func (s Seed) Int(v int) Seed { return s.Uint(uint64(int64(v))) }

// Float mixes a float64 coordinate (a load point) by its bit pattern.
func (s Seed) Float(v float64) Seed { return s.Uint(math.Float64bits(v)) }

// Text mixes a string coordinate (a policy name).
func (s Seed) Text(t string) Seed {
	for i := 0; i < len(t); i++ {
		s.h ^= uint64(t[i])
		s.h *= fnvPrime64
	}
	// Terminate so that Text("ab").Text("c") differs from Text("a").Text("bc").
	s.h ^= 0xff
	s.h *= fnvPrime64
	return s
}

// U64 finalizes the derivation with a splitmix64 avalanche so that seeds of
// cells differing in a single coordinate bit are decorrelated.
func (s Seed) U64() uint64 {
	z := s.h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CellSeed derives the RNG seed for one simulation cell from the base seed
// and the cell's coordinates: the policy name (empty for seeds shared by
// every policy at a load point — common random numbers for paired
// comparison), the load, and the replication index.
func CellSeed(base uint64, policy string, load float64, rep int) uint64 {
	return NewSeed(base).Text(policy).Float(load).Int(rep).U64()
}

// ReplicationSeeds derives n well-separated base seeds for independent
// replications of a whole experiment. Unlike base+i counting, consecutive
// replications share no low-bit structure.
func ReplicationSeeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = NewSeed(base).Text("replication").Int(i).U64()
	}
	return out
}
