package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSampleQuantileKnown(t *testing.T) {
	s := NewSample(5)
	s.AddAll([]float64{10, 20, 30, 40, 50})
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.125, 15},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleQuantileEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("quantile of empty sample should be NaN")
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	s := NewSample(1000)
	for i := 0; i < 1000; i++ {
		s.Add(rng.Float64() * 100)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestSampleMeanVariance(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{1, 2, 3, 4})
	if got := s.Mean(); got != 2.5 {
		t.Errorf("mean = %v, want 2.5", got)
	}
	if got := s.Variance(); !almostEqual(got, 5.0/3.0, 1e-12) {
		t.Errorf("variance = %v, want %v", got, 5.0/3.0)
	}
}

func TestSampleMoment(t *testing.T) {
	s := NewSample(2)
	s.AddAll([]float64{2, 4})
	if got := s.Moment(2); got != 10 {
		t.Errorf("E[X^2] = %v, want 10", got)
	}
	if got := s.Moment(-1); !almostEqual(got, 0.375, 1e-12) {
		t.Errorf("E[1/X] = %v, want 0.375", got)
	}
}

func TestTailLoadFraction(t *testing.T) {
	s := NewSample(10)
	// Nine jobs of size 1, one job of size 91: top 10% = 91/100 of the load.
	for i := 0; i < 9; i++ {
		s.Add(1)
	}
	s.Add(91)
	if got := s.TailLoadFraction(0.10); !almostEqual(got, 0.91, 1e-12) {
		t.Errorf("tail load fraction = %v, want 0.91", got)
	}
	if got := s.TailLoadFraction(1.0); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("full tail load fraction = %v, want 1", got)
	}
	if got := s.TailLoadFraction(0); got != 0 {
		t.Errorf("zero-fraction tail load = %v, want 0", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Correlation(xs, flat); got != 0 {
		t.Errorf("correlation with constant = %v, want 0", got)
	}
}

func TestCorrelationPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Correlation([]float64{1}, []float64{1, 2})
}

func TestClassTally(t *testing.T) {
	ct := NewClassTally()
	ct.Add(0, 1)
	ct.Add(0, 3)
	ct.Add(1, 10)
	if got := ct.Class(0).Mean(); got != 2 {
		t.Errorf("class 0 mean = %v, want 2", got)
	}
	if got := ct.Class(1).Mean(); got != 10 {
		t.Errorf("class 1 mean = %v, want 10", got)
	}
	if ct.Class(7) != nil {
		t.Error("missing class should be nil")
	}
	if cs := ct.Classes(); len(cs) != 2 || cs[0] != 0 || cs[1] != 1 {
		t.Errorf("classes = %v, want [0 1]", cs)
	}
	if got := ct.Total().Count(); got != 3 {
		t.Errorf("total count = %v, want 3", got)
	}
	if got := ct.MaxSpread(); got != 5 {
		t.Errorf("max spread = %v, want 5", got)
	}
}

func TestClassTallySpreadDegenerate(t *testing.T) {
	ct := NewClassTally()
	if got := ct.MaxSpread(); got != 1 {
		t.Errorf("empty tally spread = %v, want 1", got)
	}
	ct.Add(0, 5)
	if got := ct.MaxSpread(); got != 1 {
		t.Errorf("single-class spread = %v, want 1", got)
	}
}

func TestLogHistogramBasic(t *testing.T) {
	h := NewLogHistogram(2)
	for _, x := range []float64{1, 1.5, 3, 100, -1, 0} {
		h.Add(x)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Underflow() != 2 {
		t.Errorf("underflow = %d, want 2", h.Underflow())
	}
	bins := h.Bins()
	var total int64
	for _, b := range bins {
		if b.Lo >= b.Hi {
			t.Errorf("bin [%v,%v) malformed", b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != 4 {
		t.Errorf("binned count = %d, want 4", total)
	}
}

func TestLogHistogramQuantileApproximatesSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	h := NewLogHistogram(math.Pow(10, 0.05)) // 20 bins per decade
	s := NewSample(50000)
	for i := 0; i < 50000; i++ {
		x := math.Exp(rng.NormFloat64()) // lognormal
		h.Add(x)
		s.Add(x)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		hq, sq := h.Quantile(q), s.Quantile(q)
		if math.Abs(hq-sq)/sq > 0.10 {
			t.Errorf("q=%v histogram %v vs sample %v (>10%% off)", q, hq, sq)
		}
	}
}

func TestLogHistogramPanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for base <= 1")
		}
	}()
	NewLogHistogram(1.0)
}

func TestDecileTally(t *testing.T) {
	d := NewDecileTally([]float64{10, 100})
	d.Add(5, 1.0)    // class 0
	d.Add(50, 2.0)   // class 1
	d.Add(5000, 4.0) // class 2
	d.Add(10, 3.0)   // boundary goes to lower class
	if d.Classes() != 3 {
		t.Fatalf("classes = %d, want 3", d.Classes())
	}
	if got := d.Mean(0); got != 2 {
		t.Errorf("class 0 mean = %v, want 2", got)
	}
	if got := d.Count(1); got != 1 {
		t.Errorf("class 1 count = %v, want 1", got)
	}
	if got := d.Mean(2); got != 4 {
		t.Errorf("class 2 mean = %v, want 4", got)
	}
	if got := d.Spread(); got != 2 {
		t.Errorf("spread = %v, want 2", got)
	}
	if got := d.Mean(9); got != 0 {
		t.Errorf("empty class mean = %v, want 0", got)
	}
}

func TestDecileTallyPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for descending bounds")
		}
	}()
	NewDecileTally([]float64{10, 5})
}

func TestSampleValuesSorted(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewSample(len(xs))
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			s.Add(x)
		}
		vs := s.Values()
		for i := 1; i < len(vs); i++ {
			if vs[i] < vs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A constant series has zero (defined) autocorrelation.
	if got := Autocorrelation([]float64{3, 3, 3}, 1); got != 0 {
		t.Errorf("constant series acf = %v, want 0", got)
	}
	// Lag 0 of any non-constant series is 1.
	xs := []float64{1, 5, 2, 8, 3, 9, 1, 7}
	if got := Autocorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lag-0 acf = %v, want 1", got)
	}
	// Alternating series has strongly negative lag-1 autocorrelation.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1, 1, -1}
	if got := Autocorrelation(alt, 1); got > -0.5 {
		t.Errorf("alternating lag-1 acf = %v, want strongly negative", got)
	}
	// Smooth run has positive lag-1 autocorrelation.
	var run []float64
	for i := 0; i < 50; i++ {
		run = append(run, float64(i%10))
	}
	if got := Autocorrelation(run, 1); got < 0.3 {
		t.Errorf("runs lag-1 acf = %v, want positive", got)
	}
	// Out-of-range lags are 0.
	if Autocorrelation(xs, len(xs)) != 0 || Autocorrelation(xs, -1) != 0 {
		t.Error("out-of-range lag should be 0")
	}
}
