package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects raw observations for exact quantile computation. Use it
// when the number of observations is modest (per-experiment summaries); for
// million-job runs prefer Stream plus a Histogram.
//
// The zero value is an empty sample.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a sample pre-sized for n observations.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll records a batch of observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns the observations in sorted order. The returned slice is
// owned by the sample; callers must not modify it.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return s.xs
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7, the R default). Returns NaN on an empty
// sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// Moment returns the raw sample moment E[X^j]; j may be negative (e.g. -1
// for E[1/X]) as long as no observation is zero.
func (s *Sample) Moment(j float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += math.Pow(x, j)
	}
	return sum / float64(len(s.xs))
}

// TailLoadFraction reports the fraction of the total sum contributed by the
// largest frac-fraction of observations. For heavy-tailed job-size samples
// this is the "biggest 1.3% of jobs make up half the load" statistic from
// the paper.
func (s *Sample) TailLoadFraction(frac float64) float64 {
	if len(s.xs) == 0 || frac <= 0 {
		return 0
	}
	s.ensureSorted()
	total := 0.0
	for _, x := range s.xs {
		total += x
	}
	if total == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(len(s.xs))))
	if k > len(s.xs) {
		k = len(s.xs)
	}
	top := 0.0
	for _, x := range s.xs[len(s.xs)-k:] {
		top += x
	}
	return top / total
}

// Correlation computes the Pearson correlation coefficient of two
// equal-length series. It returns 0 when either series is constant and
// panics if the lengths differ (a programming error).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: correlation length mismatch %d != %d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ClassTally keeps one Stream per integer class. It is used for per-host and
// per-size-class slowdown statistics (the fairness analyses).
type ClassTally struct {
	streams map[int]*Stream
}

// NewClassTally returns an empty tally.
func NewClassTally() *ClassTally {
	return &ClassTally{streams: make(map[int]*Stream)}
}

// Add records observation x under class c.
func (t *ClassTally) Add(c int, x float64) {
	s, ok := t.streams[c]
	if !ok {
		s = &Stream{}
		t.streams[c] = s
	}
	s.Add(x)
}

// Class returns the stream for class c, or nil if the class has no
// observations.
func (t *ClassTally) Class(c int) *Stream { return t.streams[c] }

// Classes returns the observed class labels in ascending order.
func (t *ClassTally) Classes() []int {
	cs := make([]int, 0, len(t.streams))
	for c := range t.streams {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

// Total merges all classes into a single stream.
func (t *ClassTally) Total() *Stream {
	var total Stream
	for _, s := range t.streams {
		total.Merge(s)
	}
	return &total
}

// MaxSpread reports the largest ratio between any two class means; 1 means
// perfectly equal means (the fairness ideal). Classes with no observations
// are ignored. Returns 1 when fewer than two classes have data or when a
// class mean is zero.
func (t *ClassTally) MaxSpread() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	count := 0
	for _, s := range t.streams {
		if s.Count() == 0 {
			continue
		}
		m := s.Mean()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
		count++
	}
	if count < 2 || lo <= 0 {
		return 1
	}
	return hi / lo
}

// Autocorrelation computes the lag-k sample autocorrelation of a series —
// used to verify that generated traces carry (or don't carry) the
// "many jobs with similar runtimes arrive together" correlation of real
// supercomputing logs. Returns 0 for k >= len(xs) or a constant series.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+k < n {
			num += d * (xs[i+k] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
