// Package stats provides streaming and batch statistics used throughout the
// simulator and the experiment harness: Welford mean/variance accumulators,
// per-class tallies, histograms, quantile estimation, and confidence
// intervals.
//
// All accumulators are plain values whose zero value is ready to use, in the
// spirit of sync.Mutex and bytes.Buffer. None of them are safe for concurrent
// use; simulation is single-threaded per replication and cross-replication
// aggregation happens after the fact.
package stats

import (
	"fmt"
	"math"
)

// Stream is a streaming moment accumulator using Welford's algorithm.
// It tracks count, mean, and variance (via the M2 sum of squared
// deviations). The zero value is an empty stream.
//
// Add is the simulator's per-job accounting path — three Adds per
// completed record, hundreds of millions per sweep — so Stream tracks
// only the moments an output actually reads. (It once carried the third
// and fourth central moments too; no table or figure consumes skewness or
// kurtosis, and dropping their update roughly halved Add's cost without
// changing a bit of mean, M2, sum, min, or max.)
type Stream struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
	sum      float64
}

// Add records one observation. It stays under the compiler's inlining
// budget on purpose: the simulator calls it three times per completed
// job on both the engine and direct paths, so the call overhead is pure
// shared tax. (An observation flag used to gate min/max seeding; n == 0
// carries the same information for free.)
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	n1 := float64(s.n)
	s.n++
	n := float64(s.n)
	delta := x - s.mean
	deltaN := delta / n
	s.mean += deltaN
	s.m2 += delta * deltaN * n1
	s.sum += x
}

// AddN records the same observation value k times. It is equivalent to
// calling Add(x) k times but runs in O(1): the k copies contribute no
// spread of their own, so they fold in via the pairwise-merge formulas.
func (s *Stream) AddN(x float64, k int64) {
	if k <= 0 {
		return
	}
	var other Stream
	other.n = k
	other.mean = x
	other.min, other.max = x, x
	other.sum = x * float64(k)
	s.Merge(&other)
}

// Merge folds another stream into s using the parallel (pairwise) update
// formulas, so that partitioned accumulation matches sequential accumulation.
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	na, nb := float64(s.n), float64(o.n)
	n := na + nb
	delta := o.mean - s.mean
	delta2 := delta * delta

	m2 := s.m2 + o.m2 + delta2*na*nb/n

	s.mean += delta * nb / n
	s.m2 = m2
	s.n += o.n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Count reports the number of observations.
func (s *Stream) Count() int64 { return s.n }

// Sum reports the sum of all observations.
func (s *Stream) Sum() float64 { return s.sum }

// Mean reports the sample mean, or 0 if the stream is empty.
func (s *Stream) Mean() float64 { return s.mean }

// Variance reports the unbiased (n-1) sample variance. It returns 0 for
// fewer than two observations.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// PopVariance reports the population (n) variance.
func (s *Stream) PopVariance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev reports the unbiased sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// SecondMoment reports the sample E[X^2].
func (s *Stream) SecondMoment() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2/float64(s.n) + s.mean*s.mean
}

// SquaredCV reports the squared coefficient of variation Var/Mean^2.
// It returns 0 when the mean is 0.
func (s *Stream) SquaredCV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.PopVariance() / (s.mean * s.mean)
}

// Min reports the smallest observation (0 if empty).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest observation (0 if empty).
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// StdErr reports the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI returns the half-width of a normal-approximation confidence interval
// for the mean at the given confidence level (e.g. 0.95).
func (s *Stream) CI(level float64) float64 {
	return zQuantile(0.5+level/2) * s.StdErr()
}

// String summarizes the stream for debugging and reports.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// zQuantile computes the standard normal quantile via the
// Beasley-Springer-Moro rational approximation (max abs error ~3e-9,
// plenty for confidence intervals).
func zQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ZQuantile exposes the standard normal inverse CDF; it is used by the
// lognormal distribution and by confidence-interval helpers in other
// packages.
func ZQuantile(p float64) float64 { return zQuantile(p) }
