package stats

import (
	"fmt"
	"math"
	"strings"
)

// LogHistogram buckets positive observations into logarithmically spaced
// bins. Job sizes and slowdowns span many orders of magnitude, so log bins
// give usable resolution everywhere with O(1) memory. Values at or below
// zero land in an underflow bucket.
type LogHistogram struct {
	base      float64 // bin width in log space; each bin covers [base^i, base^(i+1))
	logBase   float64
	counts    map[int]int64
	underflow int64
	n         int64
}

// NewLogHistogram returns a histogram whose bins grow geometrically by
// factor base (base > 1, e.g. 2 for doubling bins, 10^0.1 for 10 bins per
// decade). Panics if base <= 1.
func NewLogHistogram(base float64) *LogHistogram {
	if base <= 1 {
		panic(fmt.Sprintf("stats: log histogram base must exceed 1, got %v", base))
	}
	return &LogHistogram{
		base:    base,
		logBase: math.Log(base),
		counts:  make(map[int]int64),
	}
}

// Add records one observation.
func (h *LogHistogram) Add(x float64) {
	h.n++
	if x <= 0 {
		h.underflow++
		return
	}
	bin := int(math.Floor(math.Log(x) / h.logBase))
	h.counts[bin]++
}

// Count reports the total number of observations, including underflow.
func (h *LogHistogram) Count() int64 { return h.n }

// Underflow reports the number of non-positive observations.
func (h *LogHistogram) Underflow() int64 { return h.underflow }

// Bin describes one occupied histogram bin.
type Bin struct {
	Lo, Hi float64 // half-open interval [Lo, Hi)
	Count  int64
}

// Bins returns the occupied bins in ascending order.
func (h *LogHistogram) Bins() []Bin {
	if len(h.counts) == 0 {
		return nil
	}
	lo, hi := math.MaxInt32, math.MinInt32
	for b := range h.counts {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	var bins []Bin
	for b := lo; b <= hi; b++ {
		c := h.counts[b]
		if c == 0 {
			continue
		}
		bins = append(bins, Bin{
			Lo:    math.Pow(h.base, float64(b)),
			Hi:    math.Pow(h.base, float64(b+1)),
			Count: c,
		})
	}
	return bins
}

// Quantile estimates the q-quantile assuming mass is log-uniform within each
// bin. Returns NaN on an empty histogram. Underflow observations are treated
// as the smallest values.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	target := q * float64(h.n)
	cum := float64(h.underflow)
	if target <= cum {
		return 0
	}
	for _, bin := range h.Bins() {
		next := cum + float64(bin.Count)
		if target <= next {
			frac := (target - cum) / float64(bin.Count)
			return bin.Lo * math.Pow(bin.Hi/bin.Lo, frac)
		}
		cum = next
	}
	bins := h.Bins()
	return bins[len(bins)-1].Hi
}

// String renders a compact ASCII sketch of the histogram, useful in CLI
// output and test failure messages.
func (h *LogHistogram) String() string {
	bins := h.Bins()
	if len(bins) == 0 {
		return "(empty histogram)"
	}
	var maxCount int64
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		width := int(40 * float64(b.Count) / float64(maxCount))
		fmt.Fprintf(&sb, "[%10.3g, %10.3g) %8d %s\n",
			b.Lo, b.Hi, b.Count, strings.Repeat("#", width))
	}
	return sb.String()
}

// DecileTally partitions observations by a size attribute into deciles
// defined by fixed boundaries, keeping one Stream of a metric per decile.
// It powers the fairness audit: expected slowdown per job-size decile.
type DecileTally struct {
	bounds []float64 // len 9: boundaries between deciles
	tally  *ClassTally
}

// NewDecileTally builds a tally from decile boundaries (ascending, length 9
// for true deciles, but any number of boundaries defines len+1 classes).
// Panics if the boundaries are not ascending.
func NewDecileTally(bounds []float64) *DecileTally {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			panic("stats: decile boundaries must be ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &DecileTally{bounds: b, tally: NewClassTally()}
}

// Add records metric value v for an item whose size attribute is size.
func (d *DecileTally) Add(size, v float64) {
	d.tally.Add(d.classOf(size), v)
}

func (d *DecileTally) classOf(size float64) int {
	// Linear scan: the boundary list is tiny (typically 9 entries).
	for i, b := range d.bounds {
		if size <= b {
			return i
		}
	}
	return len(d.bounds)
}

// Classes returns the number of classes (len(bounds)+1).
func (d *DecileTally) Classes() int { return len(d.bounds) + 1 }

// Mean reports the mean of the metric in class c (0 if no data).
func (d *DecileTally) Mean(c int) float64 {
	s := d.tally.Class(c)
	if s == nil {
		return 0
	}
	return s.Mean()
}

// Count reports the number of observations in class c.
func (d *DecileTally) Count(c int) int64 {
	s := d.tally.Class(c)
	if s == nil {
		return 0
	}
	return s.Count()
}

// Spread reports the max/min ratio across nonempty class means (1 = fair).
func (d *DecileTally) Spread() float64 { return d.tally.MaxSpread() }
