package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff < tol
	}
	return diff/scale < tol
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatalf("zero-value stream not empty: %v", s.String())
	}
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty stream min/max should be 0")
	}
}

func TestStreamSingle(t *testing.T) {
	var s Stream
	s.Add(42)
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1", s.Count())
	}
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("single-value stats wrong: %s", s.String())
	}
	if s.Variance() != 0 {
		t.Fatalf("variance of single value = %v, want 0", s.Variance())
	}
}

func TestStreamKnownValues(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := s.PopVariance(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("population variance = %v, want 4", got)
	}
	if got := s.Variance(); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("sample variance = %v, want %v", got, 32.0/7.0)
	}
	if got := s.Sum(); got != 40 {
		t.Errorf("sum = %v, want 40", got)
	}
}

func TestStreamSecondMomentMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var s Stream
	direct := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		x := rng.ExpFloat64() * 3
		s.Add(x)
		direct += x * x
	}
	direct /= n
	if !almostEqual(s.SecondMoment(), direct, 1e-9) {
		t.Errorf("second moment = %v, direct = %v", s.SecondMoment(), direct)
	}
}

func TestStreamMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 50 + int(split)%100
		k := 1 + int(split)%n
		var whole, a, b Stream
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 5
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return whole.Count() == a.Count() &&
			almostEqual(whole.Mean(), a.Mean(), 1e-9) &&
			almostEqual(whole.Variance(), a.Variance(), 1e-7) &&
			almostEqual(whole.Sum(), a.Sum(), 1e-9) &&
			whole.Min() == a.Min() && whole.Max() == a.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStreamMergeEmpty(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 2 || a.Mean() != 2 {
		t.Fatalf("merge with empty changed stats: %s", a.String())
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty wrong: %s", b.String())
	}
}

func TestStreamAddN(t *testing.T) {
	var a, b Stream
	for i := 0; i < 5; i++ {
		a.Add(7)
	}
	a.Add(3)
	b.AddN(7, 5)
	b.AddN(3, 1)
	b.AddN(99, 0) // no-op
	if a.Count() != b.Count() || !almostEqual(a.Mean(), b.Mean(), 1e-12) ||
		!almostEqual(a.Variance(), b.Variance(), 1e-12) {
		t.Fatalf("AddN mismatch: %s vs %s", a.String(), b.String())
	}
}

func TestStreamSquaredCVExponential(t *testing.T) {
	// Exponential has C^2 = 1.
	rng := rand.New(rand.NewPCG(11, 13))
	var s Stream
	for i := 0; i < 200000; i++ {
		s.Add(rng.ExpFloat64() * 42)
	}
	if !almostEqual(s.SquaredCV(), 1, 0.03) {
		t.Errorf("exponential C^2 = %v, want ~1", s.SquaredCV())
	}
}

func TestStreamCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	var s Stream
	for i := 0; i < 10000; i++ {
		s.Add(rng.NormFloat64())
	}
	hw := s.CI(0.95)
	want := 1.96 * s.StdErr()
	if !almostEqual(hw, want, 1e-3) {
		t.Errorf("CI half-width = %v, want %v", hw, want)
	}
}

func TestZQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99998}, // ~Phi(1)
	}
	for _, c := range cases {
		if got := ZQuantile(c.p); !almostEqual(got, c.z, 1e-3) && math.Abs(got-c.z) > 1e-3 {
			t.Errorf("ZQuantile(%v) = %v, want %v", c.p, got, c.z)
		}
	}
	if !math.IsNaN(ZQuantile(0)) || !math.IsNaN(ZQuantile(1)) {
		t.Error("ZQuantile at 0/1 should be NaN")
	}
}

func TestZQuantileSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := 0.5 + math.Mod(math.Abs(raw), 0.499)
		return almostEqual(ZQuantile(p), -ZQuantile(1-p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamMinMaxTracking(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		var s Stream
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if s.Count() == 0 {
			return true
		}
		return s.Min() == lo && s.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
