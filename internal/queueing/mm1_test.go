package queueing

import (
	"math"
	"testing"

	"sita/internal/dist"
)

// TestMM1MatchesMG1Exponential pins the direct M/M/1 forms to the general
// Pollaczek-Khinchine machinery with an exponential size distribution:
// the two derivations must agree to floating-point noise.
func TestMM1MatchesMG1Exponential(t *testing.T) {
	for _, rho := range []float64{0.1, 0.5, 0.7, 0.9, 0.99} {
		mean := 3.5
		lambda := rho / mean
		mm1 := NewMM1(lambda, mean)
		mg1 := NewMG1(lambda, dist.NewExponential(mean))
		if got, want := mm1.MeanWait(), mg1.MeanWait(); !almostEqual(got, want, 1e-12) {
			t.Errorf("rho=%v: MM1 MeanWait %v != MG1 %v", rho, got, want)
		}
		if got, want := mm1.MeanResponse(), mg1.MeanResponse(); !almostEqual(got, want, 1e-12) {
			t.Errorf("rho=%v: MM1 MeanResponse %v != MG1 %v", rho, got, want)
		}
		if got, want := mm1.MeanQueueLength(), mg1.MeanQueueLength(); !almostEqual(got, want, 1e-12) {
			t.Errorf("rho=%v: MM1 MeanQueueLength %v != MG1 %v", rho, got, want)
		}
	}
}

// TestMM1Identities checks the textbook identities: E[T] = E[W] + E[X],
// E[N] = lambda*E[T] (Little), E[N] = E[Q] + rho, instability at rho >= 1.
func TestMM1Identities(t *testing.T) {
	q := NewMM1(0.2, 4) // rho = 0.8
	if got, want := q.MeanResponse(), q.MeanWait()+q.MeanService; !almostEqual(got, want, 1e-12) {
		t.Errorf("E[T] %v != E[W]+E[X] %v", got, want)
	}
	if got, want := q.MeanJobsInSystem(), q.Lambda*q.MeanResponse(); !almostEqual(got, want, 1e-12) {
		t.Errorf("E[N] %v != lambda*E[T] %v", got, want)
	}
	if got, want := q.MeanJobsInSystem(), q.MeanQueueLength()+q.Load(); !almostEqual(got, want, 1e-12) {
		t.Errorf("E[N] %v != E[Q]+rho %v", got, want)
	}
	unstable := NewMM1(1, 1)
	for name, v := range map[string]float64{
		"MeanWait":         unstable.MeanWait(),
		"MeanResponse":     unstable.MeanResponse(),
		"MeanQueueLength":  unstable.MeanQueueLength(),
		"MeanJobsInSystem": unstable.MeanJobsInSystem(),
	} {
		if !math.IsInf(v, 1) {
			t.Errorf("unstable %s = %v, want +Inf", name, v)
		}
	}
}

// TestMMhOneServerMatchesMM1Direct pins the Erlang-C machinery at h=1 to the M/M/1
// forms.
func TestMMhOneServerMatchesMM1Direct(t *testing.T) {
	for _, rho := range []float64{0.3, 0.7, 0.95} {
		mean := 2.0
		lambda := rho / mean
		mm1 := NewMM1(lambda, mean)
		mmh := NewMMh(lambda, mean, 1)
		if got, want := mmh.MeanWait(), mm1.MeanWait(); !almostEqual(got, want, 1e-12) {
			t.Errorf("rho=%v: MMh(1) MeanWait %v != MM1 %v", rho, got, want)
		}
	}
}
