package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"sita/internal/dist"
	"sita/internal/sim"
)

// c90ish is a heavy-tailed size distribution calibrated like the paper's
// C90 trace: smallest jobs around a minute, largest around 2.2e6 seconds,
// mean around 4500 seconds; the implied tail index is ~0.64 and a fraction
// of a percent of jobs carries half the load.
func c90ish() dist.BoundedPareto {
	b, err := dist.FitBoundedParetoMean(4500, 60, 2.2e6)
	if err != nil {
		panic(err)
	}
	return b
}

func TestSITAHostMassesAndLoadsSum(t *testing.T) {
	size := c90ish()
	lambda := 2 * 0.7 / size.Moment(1)
	cut := EqualLoadCutoff(size)
	r := NewSITA(lambda, size, []float64{cut}).Analyze()
	if len(r.Hosts) != 2 {
		t.Fatalf("hosts = %d, want 2", len(r.Hosts))
	}
	massSum := r.Hosts[0].JobFraction + r.Hosts[1].JobFraction
	if !almostEqual(massSum, 1, 1e-9) {
		t.Fatalf("job fractions sum to %v", massSum)
	}
	loadSum := r.LoadFractions[0] + r.LoadFractions[1]
	if !almostEqual(loadSum, 1, 1e-9) {
		t.Fatalf("load fractions sum to %v", loadSum)
	}
	if !almostEqual(r.SystemLoad, 0.7, 1e-6) {
		t.Fatalf("system load = %v, want 0.7", r.SystemLoad)
	}
}

func TestSITAEqualLoadBalances(t *testing.T) {
	size := c90ish()
	cut := EqualLoadCutoff(size)
	lambda := 2 * 0.6 / size.Moment(1)
	hosts := NewSITA(lambda, size, []float64{cut}).HostAnalysis()
	if !almostEqual(hosts[0].Load, hosts[1].Load, 1e-4) {
		t.Fatalf("SITA-E loads unequal: %v vs %v", hosts[0].Load, hosts[1].Load)
	}
	// Heavy tail: the short host must carry the overwhelming majority of
	// jobs (the paper reports 98.7% for the C90 data).
	if hosts[0].JobFraction < 0.9 {
		t.Fatalf("short-host job fraction = %v, want > 0.9", hosts[0].JobFraction)
	}
}

func TestSITAEVarianceReduction(t *testing.T) {
	// SITA-E's short host must see far lower size variability than the raw
	// stream (the whole point of size-interval assignment).
	size := c90ish()
	cut := EqualLoadCutoff(size)
	short := dist.NewTruncated(size, 0, cut)
	if scv := dist.SquaredCV(short); scv > dist.SquaredCV(size)/2 {
		t.Fatalf("short-host C^2 = %v, want far below raw %v", scv, dist.SquaredCV(size))
	}
}

func TestSITAEBeatsRandomAndLWLAtHighLoad(t *testing.T) {
	// The paper's figure 2/8 ordering at load 0.7 (2 hosts): Random >>
	// LWL > SITA-E in mean slowdown.
	size := c90ish()
	h := 2
	lambda := float64(h) * 0.7 / size.Moment(1)
	random := RandomSplit(lambda, size, h).MeanSlowdown()
	lwl := LWL(lambda, size, h).MeanSlowdown()
	sitaE := NewSITA(lambda, size, []float64{EqualLoadCutoff(size)}).MeanSlowdown()
	if !(random > lwl && lwl > sitaE) {
		t.Fatalf("ordering violated: random=%v lwl=%v sitaE=%v", random, lwl, sitaE)
	}
	if random/sitaE < 3 {
		t.Fatalf("random/sitaE = %v, want large gap", random/sitaE)
	}
}

func TestFeasibleCutoffRange(t *testing.T) {
	size := c90ish()
	// Low load: everything feasible.
	lambda := 2 * 0.3 / size.Moment(1)
	cLo, cHi, err := FeasibleCutoffRange(lambda, size)
	if err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	if cLo >= cHi {
		t.Fatalf("range [%v, %v] empty", cLo, cHi)
	}
	// High load: range shrinks but exists.
	lambda = 2 * 0.9 / size.Moment(1)
	cLo2, cHi2, err := FeasibleCutoffRange(lambda, size)
	if err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	if cLo2 < cLo {
		t.Fatalf("high-load lower bound %v should exceed low-load %v", cLo2, cLo)
	}
	if cHi2 > cHi*1.0001 {
		t.Fatalf("high-load upper bound %v should not grow (was %v)", cHi2, cHi)
	}
	// Overload: no feasible cutoff.
	lambda = 2 * 1.2 / size.Moment(1)
	if _, _, err := FeasibleCutoffRange(lambda, size); err == nil {
		t.Fatal("expected infeasibility at load 1.2")
	}
}

func TestOptimalCutoffBeatsEqualLoad(t *testing.T) {
	size := c90ish()
	for _, load := range []float64{0.5, 0.7, 0.8} {
		lambda := 2 * load / size.Moment(1)
		cOpt, err := OptimalCutoff(lambda, size)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		sOpt := NewSITA(lambda, size, []float64{cOpt}).MeanSlowdown()
		sE := NewSITA(lambda, size, []float64{EqualLoadCutoff(size)}).MeanSlowdown()
		if sOpt > sE {
			t.Fatalf("load %v: opt %v worse than equal-load %v", load, sOpt, sE)
		}
		// Figure 9: the gap should be substantial at medium-high load.
		if load >= 0.7 && sE/sOpt < 2 {
			t.Errorf("load %v: improvement only %vx, want > 2x", load, sE/sOpt)
		}
	}
}

func TestOptimalCutoffUnderloadsShortHost(t *testing.T) {
	// Figure 5: the optimal split sends *less* than half the load to the
	// short host.
	size := c90ish()
	for _, load := range []float64{0.4, 0.6, 0.8} {
		lambda := 2 * load / size.Moment(1)
		c, err := OptimalCutoff(lambda, size)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		fr := NewSITA(lambda, size, []float64{c}).Analyze().LoadFractions[0]
		if fr >= 0.5 {
			t.Fatalf("load %v: short-host load fraction %v, want < 0.5", load, fr)
		}
	}
}

func TestRuleOfThumbApproximatesOptimal(t *testing.T) {
	// The paper's rule: short-host load fraction ~= rho/2. Verify the
	// optimizer lands in that neighborhood.
	size := c90ish()
	for _, load := range []float64{0.5, 0.7} {
		lambda := 2 * load / size.Moment(1)
		c, err := OptimalCutoff(lambda, size)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		fr := NewSITA(lambda, size, []float64{c}).Analyze().LoadFractions[0]
		rule := load / 2
		if math.Abs(fr-rule) > 0.20 {
			t.Errorf("load %v: opt fraction %v vs rule-of-thumb %v (off > 0.20)", load, fr, rule)
		}
	}
}

func TestFairCutoffEqualizesSlowdowns(t *testing.T) {
	size := c90ish()
	for _, load := range []float64{0.5, 0.7, 0.9} {
		lambda := 2 * load / size.Moment(1)
		c, err := FairCutoff(lambda, size)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		s, l := hostSlowdowns(lambda, size, c)
		if math.Abs(s-l)/math.Max(s, l) > 0.02 {
			t.Fatalf("load %v: slowdowns %v vs %v not equalized", load, s, l)
		}
	}
}

func TestFairCloseToOptimal(t *testing.T) {
	// Figure 4's headline: SITA-U-fair is only slightly worse than
	// SITA-U-opt.
	size := c90ish()
	lambda := 2 * 0.7 / size.Moment(1)
	cOpt, err := OptimalCutoff(lambda, size)
	if err != nil {
		t.Fatal(err)
	}
	cFair, err := FairCutoff(lambda, size)
	if err != nil {
		t.Fatal(err)
	}
	sOpt := NewSITA(lambda, size, []float64{cOpt}).MeanSlowdown()
	sFair := NewSITA(lambda, size, []float64{cFair}).MeanSlowdown()
	if sFair < sOpt*(1-1e-9) {
		t.Fatalf("fair %v beats opt %v: optimizer failed", sFair, sOpt)
	}
	if sFair > 2*sOpt {
		t.Fatalf("fair %v more than 2x worse than opt %v", sFair, sOpt)
	}
}

func TestCutoffForShortLoadMonotone(t *testing.T) {
	size := c90ish()
	lambda := 2 * 0.7 / size.Moment(1)
	prev := 0.0
	total := lambda * size.Moment(1)
	for _, target := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3} {
		c := CutoffForShortLoad(lambda, size, math.Min(target, total))
		if c < prev {
			t.Fatalf("cutoff not monotone in target load: %v after %v", c, prev)
		}
		prev = c
		got := workBelow(lambda, size, c)
		want := math.Min(target, total)
		if !almostEqual(got, want, 1e-4) {
			t.Errorf("target %v: realized short load %v", want, got)
		}
	}
}

func TestEqualLoadCutoffsMulti(t *testing.T) {
	size := c90ish()
	for _, h := range []int{2, 3, 4, 8} {
		cuts, err := EqualLoadCutoffs(size, h)
		if err != nil {
			t.Fatal(err)
		}
		if len(cuts) != h-1 {
			t.Fatalf("h=%d: %d cutoffs", h, len(cuts))
		}
		lambda := float64(h) * 0.6 / size.Moment(1)
		hosts := NewSITA(lambda, size, cuts).HostAnalysis()
		for i, hm := range hosts {
			if !almostEqual(hm.Load, 0.6, 1e-3) {
				t.Errorf("h=%d host %d load = %v, want 0.6", h, i, hm.Load)
			}
		}
	}
}

func TestOptimalCutoffsMultiImprove(t *testing.T) {
	size := c90ish()
	h := 4
	lambda := float64(h) * 0.7 / size.Moment(1)
	cuts, err := OptimalCutoffs(lambda, size, h)
	if err != nil {
		t.Fatal(err)
	}
	sOpt := NewSITA(lambda, size, cuts).MeanSlowdown()
	eCuts, err := EqualLoadCutoffs(size, h)
	if err != nil {
		t.Fatal(err)
	}
	sE := NewSITA(lambda, size, eCuts).MeanSlowdown()
	if sOpt > sE {
		t.Fatalf("multi-opt %v worse than equal-load %v", sOpt, sE)
	}
}

func TestFairCutoffsMultiEqualize(t *testing.T) {
	size := c90ish()
	h := 4
	lambda := float64(h) * 0.7 / size.Moment(1)
	cuts, err := FairCutoffs(lambda, size, h)
	if err != nil {
		t.Fatal(err)
	}
	hosts := NewSITA(lambda, size, cuts).HostAnalysis()
	var lo, hi float64 = math.Inf(1), 0
	for _, hm := range hosts {
		if hm.JobFraction == 0 {
			continue
		}
		lo = math.Min(lo, hm.MeanSlowdown)
		hi = math.Max(hi, hm.MeanSlowdown)
	}
	if hi/lo > 1.10 {
		t.Fatalf("per-host slowdowns spread %v..%v (> 10%%)", lo, hi)
	}
}

func TestSITAAnalysisAgreesWithDirectMG1(t *testing.T) {
	// A SITA system with a cutoff above the support maximum is a single
	// M/G/1 at host 0.
	size := dist.NewBoundedPareto(1.5, 1, 100)
	lambda := 0.5 / size.Moment(1)
	r := NewSITA(lambda, size, []float64{200}).Analyze()
	direct := NewMG1(lambda, size)
	if !almostEqual(r.MeanSlowdown, direct.MeanSlowdown(), 1e-6) {
		t.Fatalf("degenerate SITA %v vs MG1 %v", r.MeanSlowdown, direct.MeanSlowdown())
	}
	if r.Hosts[1].JobFraction != 0 {
		t.Fatalf("host 1 should be empty, has fraction %v", r.Hosts[1].JobFraction)
	}
}

func TestSITALawOfTotalExpectationProperty(t *testing.T) {
	// Mixing host conditional response moments must reproduce a direct
	// job-average computation for random cutoffs.
	size := dist.NewBoundedPareto(1.2, 1, 1e5)
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed, 0)
		cut := size.Quantile(0.3 + 0.6*rng.Float64())
		lambda := 2 * 0.5 / size.Moment(1)
		r := NewSITA(lambda, size, []float64{cut}).Analyze()
		// Weighted host mean sizes must reassemble E[X].
		var ex float64
		for _, hm := range r.Hosts {
			if hm.JobFraction == 0 {
				continue
			}
			tr := dist.NewTruncated(size, hm.Lo, hm.Hi)
			ex += hm.JobFraction * tr.Moment(1)
		}
		return almostEqual(ex, size.Moment(1), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSITAValidation(t *testing.T) {
	size := dist.NewExponential(1)
	for i, fn := range []func(){
		func() { NewSITA(0, size, nil) },
		func() { NewSITA(1, size, []float64{5, 2}) },
		func() { NewMMh(0, 1, 1) },
		func() { NewMGh(1, nil, 1) },
		func() { NewGG1(1, -1, size) },
		func() { ErlangC(0, 1) },
		func() { RandomSplit(1, size, 0) },
		func() { RoundRobinSplit(1, size, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// The cutoff searches are reachable from CLI flags, so bad host counts
// must come back as errors rather than panics.
func TestCutoffSearchValidationErrors(t *testing.T) {
	size := dist.NewExponential(1)
	if _, err := EqualLoadCutoffs(size, 1); err == nil {
		t.Error("EqualLoadCutoffs(h=1): expected error")
	}
	if _, err := OptimalCutoffs(1, size, 1); err == nil {
		t.Error("OptimalCutoffs(h=1): expected error")
	}
	if _, err := FairCutoffs(1, size, 1); err == nil {
		t.Error("FairCutoffs(h=1): expected error")
	}
}

func TestOptimalCutoffInfeasible(t *testing.T) {
	size := dist.NewExponential(10)
	lambda := 0.25 // rho per host = 1.25
	if _, err := OptimalCutoff(lambda, size); err == nil {
		t.Fatal("expected infeasibility")
	}
	if _, err := FairCutoff(lambda, size); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestRuleOfThumbCutoffLoadFraction(t *testing.T) {
	size := c90ish()
	load := 0.6
	lambda := 2 * load / size.Moment(1)
	c := RuleOfThumbCutoff(lambda, size)
	fr := NewSITA(lambda, size, []float64{c}).Analyze().LoadFractions[0]
	if !almostEqual(fr, load/2, 1e-3) {
		t.Fatalf("rule-of-thumb load fraction = %v, want %v", fr, load/2)
	}
}
