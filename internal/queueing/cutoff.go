package queueing

import (
	"errors"
	"fmt"
	"math"

	"sita/internal/dist"
)

// The cutoff searches below define the three SITA variants for a 2-host
// system, mirroring section 4 of the paper:
//
//   - SITA-E: cutoff equalizes the load on the two hosts.
//   - SITA-U-opt: cutoff minimizes the job-average mean slowdown.
//   - SITA-U-fair: cutoff equalizes the expected slowdown of short and long
//     jobs.
//
// The search space is the set of feasible cutoffs — those keeping both host
// utilizations below 1 (section 4.1).

// ErrInfeasible is returned when no cutoff keeps every host stable.
var ErrInfeasible = errors.New("queueing: no feasible cutoff (system overloaded)")

// supportBounds returns search bounds strictly inside the size support.
func supportBounds(size dist.Distribution) (lo, hi float64) {
	lo, hi = size.Support()
	if lo <= 0 {
		lo = 1e-12
	}
	if math.IsInf(hi, 1) {
		// Cap the search at a size beyond which essentially no mass remains.
		if q, ok := size.(dist.Quantiler); ok {
			hi = q.Quantile(1 - 1e-12)
		} else {
			hi = lo * 1e18
		}
	}
	return lo, hi
}

// workBelow reports the expected work rate routed to the short host at
// cutoff c: lambda * E[X ; X <= c].
func workBelow(lambda float64, size dist.Distribution, c float64) float64 {
	lo, _ := size.Support()
	return lambda * dist.PartialMoment(size, 1, math.Min(lo-1, 0), c)
}

// CutoffForShortLoad finds the cutoff c at which the short host's
// utilization equals target: lambda * E[X ; X <= c] = target. The left side
// is nondecreasing in c, so geometric bisection applies.
func CutoffForShortLoad(lambda float64, size dist.Distribution, target float64) float64 {
	lo, hi := supportBounds(size)
	total := lambda * size.Moment(1)
	if target <= 0 {
		return lo
	}
	if target >= total {
		return hi
	}
	for i := 0; i < 120; i++ {
		mid := math.Sqrt(lo * hi)
		if workBelow(lambda, size, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// EqualLoadCutoff returns the SITA-E cutoff: both hosts carry half the total
// work. It depends only on the size distribution, not the arrival rate.
func EqualLoadCutoff(size dist.Distribution) float64 {
	// Use lambda = 1; the target scales identically.
	return CutoffForShortLoad(1, size, 0.5*size.Moment(1))
}

// FeasibleCutoffRange returns the cutoff interval within which both hosts of
// a 2-host SITA system are stable. The total work rate R = lambda*E[X] must
// be below 2 (both hosts together). The short host's load rises with c from
// 0 to R, the long host's falls from R to 0, so feasibility is
// shortLoad(c) in (R-1, 1).
func FeasibleCutoffRange(lambda float64, size dist.Distribution) (cLo, cHi float64, err error) {
	const margin = 1e-6 // keep strictly inside stability
	total := lambda * size.Moment(1)
	if total >= 2-margin {
		return 0, 0, fmt.Errorf("%w: total work rate %v with 2 hosts", ErrInfeasible, total)
	}
	lo, hi := supportBounds(size)
	cLo, cHi = lo, hi
	if total > 1 {
		cLo = CutoffForShortLoad(lambda, size, total-1+margin)
	}
	cHi = CutoffForShortLoad(lambda, size, math.Min(1-margin, total-margin))
	if cHi <= cLo {
		return 0, 0, fmt.Errorf("%w: empty feasible range [%v, %v]", ErrInfeasible, cLo, cHi)
	}
	return cLo, cHi, nil
}

// meanSlowdownAt evaluates the 2-host SITA mean slowdown at cutoff c,
// returning +Inf outside the feasible region.
func meanSlowdownAt(lambda float64, size dist.Distribution, c float64) float64 {
	r := NewSITA(lambda, size, []float64{c}).Analyze()
	for _, h := range r.Hosts {
		if h.Load >= 1 {
			return math.Inf(1)
		}
	}
	return r.MeanSlowdown
}

// OptimalCutoff returns the SITA-U-opt cutoff: the feasible cutoff
// minimizing job-average mean slowdown. The objective is evaluated on a
// geometric grid and refined by golden-section search around the best grid
// point; this is robust to the mild non-smoothness of empirical size
// distributions.
func OptimalCutoff(lambda float64, size dist.Distribution) (float64, error) {
	cLo, cHi, err := FeasibleCutoffRange(lambda, size)
	if err != nil {
		return 0, err
	}
	const gridN = 192
	best, bestVal := cLo, math.Inf(1)
	logLo, logHi := math.Log(cLo), math.Log(cHi)
	for i := 0; i <= gridN; i++ {
		c := math.Exp(logLo + (logHi-logLo)*float64(i)/gridN)
		if v := meanSlowdownAt(lambda, size, c); v < bestVal {
			best, bestVal = c, v
		}
	}
	if math.IsInf(bestVal, 1) {
		return 0, fmt.Errorf("%w: no stable cutoff on grid", ErrInfeasible)
	}
	// Golden-section refinement on the bracketing grid interval.
	step := (logHi - logLo) / gridN
	a := math.Max(logLo, math.Log(best)-step)
	b := math.Min(logHi, math.Log(best)+step)
	f := func(lc float64) float64 { return meanSlowdownAt(lambda, size, math.Exp(lc)) }
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 80; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	c := math.Exp((a + b) / 2)
	if meanSlowdownAt(lambda, size, c) <= bestVal {
		return c, nil
	}
	return best, nil
}

// hostSlowdowns evaluates the short- and long-host mean slowdowns at cutoff
// c. A host with no probability mass has slowdown 1 (its queue is empty).
func hostSlowdowns(lambda float64, size dist.Distribution, c float64) (short, long float64) {
	hosts := NewSITA(lambda, size, []float64{c}).HostAnalysis()
	short, long = 1, 1
	if hosts[0].JobFraction > 0 {
		short = hosts[0].MeanSlowdown
	}
	if hosts[1].JobFraction > 0 {
		long = hosts[1].MeanSlowdown
	}
	return short, long
}

// FairCutoff returns the SITA-U-fair cutoff: the feasible cutoff at which
// the expected slowdown of jobs on the short host equals that of jobs on the
// long host. The difference short-long rises from negative (tiny short
// host, overloaded long host) to positive (overloaded short host), so the
// root is found by a grid bracket plus bisection.
func FairCutoff(lambda float64, size dist.Distribution) (float64, error) {
	cLo, cHi, err := FeasibleCutoffRange(lambda, size)
	if err != nil {
		return 0, err
	}
	diff := func(c float64) float64 {
		s, l := hostSlowdowns(lambda, size, c)
		if math.IsInf(s, 1) && math.IsInf(l, 1) {
			return 0
		}
		return s - l
	}
	const gridN = 192
	logLo, logHi := math.Log(cLo), math.Log(cHi)
	prevC := math.Exp(logLo)
	prevD := diff(prevC)
	for i := 1; i <= gridN; i++ {
		c := math.Exp(logLo + (logHi-logLo)*float64(i)/gridN)
		d := diff(c)
		if prevD == 0 {
			return prevC, nil
		}
		if prevD*d <= 0 && !math.IsNaN(d) {
			a, b := prevC, c
			da := prevD
			for j := 0; j < 100; j++ {
				mid := math.Sqrt(a * b)
				dm := diff(mid)
				if da*dm <= 0 {
					b = mid
				} else {
					a, da = mid, dm
				}
			}
			return math.Sqrt(a * b), nil
		}
		prevC, prevD = c, d
	}
	// No crossing: at every feasible cutoff one side dominates. Fall back to
	// the cutoff minimizing the imbalance.
	best, bestVal := cLo, math.Inf(1)
	for i := 0; i <= gridN; i++ {
		c := math.Exp(logLo + (logHi-logLo)*float64(i)/gridN)
		if v := math.Abs(diff(c)); v < bestVal {
			best, bestVal = c, v
		}
	}
	return best, nil
}

// RuleOfThumbCutoff implements the paper's section 4.4 heuristic: at system
// load rho, send load fraction rho/2 to the short host. With 2 hosts the
// total work rate is 2*rho, so the short host's target utilization is
// rho^2 (fraction rho/2 of 2*rho).
func RuleOfThumbCutoff(lambda float64, size dist.Distribution) float64 {
	rho := lambda * size.Moment(1) / 2
	targetFraction := rho / 2
	return CutoffForShortLoad(lambda, size, targetFraction*lambda*size.Moment(1))
}
