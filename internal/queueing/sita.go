package queueing

import (
	"fmt"
	"math"
	"sort"

	"sita/internal/dist"
)

// SITA analyzes a size-interval task assignment system: h hosts, host i
// serving jobs whose size falls in (cutoff[i-1], cutoff[i]], each host an
// independent FCFS M/G/1 queue (Poisson splitting of a Poisson stream by an
// i.i.d. size attribute yields independent Poisson streams).
type SITA struct {
	Lambda  float64 // total arrival rate into the dispatcher
	Size    dist.Distribution
	Cutoffs []float64 // ascending internal cutoffs; len = hosts-1
}

// NewSITA validates rate and cutoff ordering. Panics if lambda <= 0, size
// is nil, or the cutoffs do not strictly ascend.
func NewSITA(lambda float64, size dist.Distribution, cutoffs []float64) SITA {
	if lambda <= 0 || size == nil {
		panic(fmt.Sprintf("queueing: SITA needs lambda > 0 and size dist, got %v", lambda))
	}
	if !sort.Float64sAreSorted(cutoffs) {
		panic(fmt.Sprintf("queueing: SITA cutoffs must ascend, got %v", cutoffs))
	}
	cp := make([]float64, len(cutoffs))
	copy(cp, cutoffs)
	return SITA{Lambda: lambda, Size: size, Cutoffs: cp}
}

// Hosts reports the number of hosts (len(Cutoffs)+1).
func (s SITA) Hosts() int { return len(s.Cutoffs) + 1 }

// interval reports the size interval (lo, hi] served by host i.
func (s SITA) interval(i int) (lo, hi float64) {
	suppLo, suppHi := s.Size.Support()
	lo = suppLo - 1 // strictly below the support so the first interval catches the minimum
	if lo < 0 {
		lo = 0 // job sizes are positive
		if suppLo <= 0 {
			lo = suppLo - 1
		}
	}
	hi = suppHi
	if i > 0 {
		lo = s.Cutoffs[i-1]
	}
	if i < len(s.Cutoffs) {
		hi = s.Cutoffs[i]
	}
	return lo, hi
}

// HostMetrics describes one host's analytic behaviour under SITA.
type HostMetrics struct {
	Host         int
	Lo, Hi       float64 // size interval (Lo, Hi]
	JobFraction  float64 // fraction of all jobs routed here
	LoadFraction float64 // fraction of total work routed here
	Load         float64 // utilization of this host
	MeanWait     float64
	MeanSlowdown float64
	VarSlowdown  float64
	MeanResponse float64
	VarResponse  float64
}

// HostAnalysis computes the per-host metrics. Hosts whose size interval has
// (numerically) zero probability mass report zeros with JobFraction 0.
func (s SITA) HostAnalysis() []HostMetrics {
	out := make([]HostMetrics, s.Hosts())
	for i := range out {
		lo, hi := s.interval(i)
		m := HostMetrics{Host: i, Lo: lo, Hi: hi}
		mass := dist.Prob(s.Size, lo, hi)
		if mass <= 1e-15 {
			out[i] = m
			continue
		}
		m.JobFraction = mass
		work := dist.PartialMoment(s.Size, 1, lo, hi)
		m.LoadFraction = work / s.Size.Moment(1)
		m.Load = s.Lambda * work
		q := MG1{Lambda: s.Lambda * mass, Size: dist.NewTruncated(s.Size, lo, hi)}
		m.MeanWait = q.MeanWait()
		m.MeanSlowdown = q.MeanSlowdown()
		m.VarSlowdown = q.SlowdownVariance()
		m.MeanResponse = q.MeanResponse()
		m.VarResponse = q.ResponseVariance()
		out[i] = m
	}
	return out
}

// Feasible reports whether every host's utilization is below 1.
func (s SITA) Feasible() bool {
	for _, m := range s.HostAnalysis() {
		if m.Load >= 1 {
			return false
		}
	}
	return true
}

// Report aggregates per-host metrics into job-average system metrics.
type Report struct {
	Hosts         []HostMetrics
	MeanSlowdown  float64
	VarSlowdown   float64
	MeanResponse  float64
	VarResponse   float64
	SystemLoad    float64 // average utilization across hosts
	LoadFractions []float64
}

// Analyze produces the full analytic report for the SITA system.
func (s SITA) Analyze() Report {
	hosts := s.HostAnalysis()
	r := Report{Hosts: hosts, LoadFractions: make([]float64, len(hosts))}
	var es, es2, et, et2, loadSum float64
	for i, m := range hosts {
		r.LoadFractions[i] = m.LoadFraction
		loadSum += m.Load
		if m.JobFraction == 0 {
			continue
		}
		es += m.JobFraction * m.MeanSlowdown
		es2 += m.JobFraction * (m.VarSlowdown + m.MeanSlowdown*m.MeanSlowdown)
		et += m.JobFraction * m.MeanResponse
		et2 += m.JobFraction * (m.VarResponse + m.MeanResponse*m.MeanResponse)
	}
	r.MeanSlowdown = es
	r.VarSlowdown = es2 - es*es
	r.MeanResponse = et
	r.VarResponse = et2 - et*et
	r.SystemLoad = loadSum / float64(len(hosts))
	return r
}

// MeanSlowdown is a convenience accessor for Analyze().MeanSlowdown.
func (s SITA) MeanSlowdown() float64 { return s.Analyze().MeanSlowdown }

// RandomSplit analyzes the Random policy: Bernoulli splitting sends each
// host an independent Poisson stream at rate lambda/h with the *unreduced*
// size distribution; every host is an M/G/1 carrying the full service-time
// variability. Panics if h <= 0.
func RandomSplit(lambda float64, size dist.Distribution, h int) MG1 {
	if h <= 0 {
		panic(fmt.Sprintf("queueing: RandomSplit needs h > 0, got %d", h))
	}
	return NewMG1(lambda/float64(h), size)
}

// RoundRobinSplit approximates the Round-Robin policy: each host sees an
// E_h/G/1 queue (Erlang-h interarrivals, Ca^2 = 1/h) with the full size
// distribution. Panics if h <= 0.
func RoundRobinSplit(lambda float64, size dist.Distribution, h int) GG1 {
	if h <= 0 {
		panic(fmt.Sprintf("queueing: RoundRobinSplit needs h > 0, got %d", h))
	}
	return NewGG1(lambda/float64(h), 1/float64(h), size)
}

// LWL models Least-Work-Left (equivalently Central-Queue) as an M/G/h
// queue.
func LWL(lambda float64, size dist.Distribution, h int) MGh {
	return NewMGh(lambda, size, h)
}

// SlowdownOfWait converts a mean waiting time into a mean slowdown for jobs
// drawn from size: E[S] = 1 + E[W]E[1/X]. Exposed for callers composing
// their own approximations.
func SlowdownOfWait(meanWait float64, size dist.Distribution) float64 {
	if math.IsInf(meanWait, 1) {
		return math.Inf(1)
	}
	return 1 + meanWait*size.Moment(-1)
}
