package queueing

import (
	"fmt"
	"math"

	"sita/internal/dist"
)

// ErlangC reports the M/M/h probability that an arriving job must wait,
// where a = lambda/mu is the offered load in Erlangs and h the number of
// servers. Returns 1 when the system is unstable (a >= h). Terms are
// accumulated with the usual recurrence to avoid factorial overflow.
// Panics if h <= 0 or a < 0.
func ErlangC(h int, a float64) float64 {
	if h <= 0 || a < 0 {
		panic(fmt.Sprintf("queueing: ErlangC needs h > 0 and a >= 0, got h=%d a=%v", h, a))
	}
	if a == 0 {
		return 0
	}
	rho := a / float64(h)
	if rho >= 1 {
		return 1
	}
	// term_k = a^k/k!, built incrementally; sum collects k = 0..h-1.
	term := 1.0
	sum := 1.0
	for k := 1; k < h; k++ {
		term *= a / float64(k)
		sum += term
	}
	top := term * a / float64(h) / (1 - rho) // a^h/h! * 1/(1-rho)
	return top / (sum + top)
}

// MMh is an M/M/h queue: Poisson arrivals at rate Lambda, h identical
// exponential servers with mean service time MeanService.
type MMh struct {
	Lambda      float64
	MeanService float64
	H           int
}

// NewMMh validates parameters. Panics if lambda, meanService, or h is not
// positive.
func NewMMh(lambda, meanService float64, h int) MMh {
	if lambda <= 0 || meanService <= 0 || h <= 0 {
		panic(fmt.Sprintf("queueing: invalid MMh lambda=%v mean=%v h=%d", lambda, meanService, h))
	}
	return MMh{Lambda: lambda, MeanService: meanService, H: h}
}

// Load reports the per-server utilization rho = lambda*E[X]/h.
func (q MMh) Load() float64 { return q.Lambda * q.MeanService / float64(q.H) }

// MeanWait reports E[W] = C(h, a) / (h*mu - lambda); +Inf if unstable.
func (q MMh) MeanWait() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	a := q.Lambda * q.MeanService
	c := ErlangC(q.H, a)
	return c / (float64(q.H)/q.MeanService - q.Lambda)
}

// MeanQueueLength reports E[Q] = lambda*E[W].
func (q MMh) MeanQueueLength() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	return q.Lambda * q.MeanWait()
}

// MGh approximates an M/G/h queue — the model for the Least-Work-Left /
// Central-Queue policy — using the Lee-Longton two-moment approximation:
//
//	E[W_M/G/h] ~= (1 + C^2)/2 * E[W_M/M/h]
//
// with C^2 the squared coefficient of variation of the service distribution.
// This is the approximation family the paper cites (Sozaki-Ross, Wolff): the
// waiting time stays proportional to E[X^2], which is the analytic heart of
// the paper's argument for why LWL cannot escape job-size variability.
type MGh struct {
	Lambda float64
	Size   dist.Distribution
	H      int
}

// NewMGh validates parameters. Panics if lambda <= 0, size is nil, or
// h <= 0.
func NewMGh(lambda float64, size dist.Distribution, h int) MGh {
	if lambda <= 0 || size == nil || h <= 0 {
		panic(fmt.Sprintf("queueing: invalid MGh lambda=%v h=%d", lambda, h))
	}
	return MGh{Lambda: lambda, Size: size, H: h}
}

// Load reports the per-server utilization.
func (q MGh) Load() float64 { return q.Lambda * q.Size.Moment(1) / float64(q.H) }

// MeanWait reports the approximate E[W]; +Inf if unstable.
func (q MGh) MeanWait() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	base := NewMMh(q.Lambda, q.Size.Moment(1), q.H).MeanWait()
	scv := dist.SquaredCV(q.Size)
	return (1 + scv) / 2 * base
}

// MeanResponse reports E[T] = E[W] + E[X].
func (q MGh) MeanResponse() float64 { return q.MeanWait() + q.Size.Moment(1) }

// MeanSlowdown reports E[S] = 1 + E[W]*E[1/X]; the independence of a job's
// size from its delay is inherited from the FCFS central queue.
func (q MGh) MeanSlowdown() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	return 1 + q.MeanWait()*q.Size.Moment(-1)
}

// MeanQueueLength reports E[Q] = lambda*E[W].
func (q MGh) MeanQueueLength() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	return q.Lambda * q.MeanWait()
}
