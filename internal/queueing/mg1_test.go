package queueing

import (
	"math"
	"testing"

	"sita/internal/dist"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff < tol
	}
	return diff/scale < tol
}

func TestMG1MatchesMM1ClosedForm(t *testing.T) {
	// M/M/1: E[W] = rho/(1-rho) * E[X].
	size := dist.NewExponential(2) // mean 2
	q := NewMG1(0.25, size)        // rho = 0.5
	if !almostEqual(q.Load(), 0.5, 1e-12) {
		t.Fatalf("load = %v, want 0.5", q.Load())
	}
	wantW := 0.5 / 0.5 * 2.0 // = 2
	if !almostEqual(q.MeanWait(), wantW, 1e-12) {
		t.Fatalf("E[W] = %v, want %v", q.MeanWait(), wantW)
	}
	if !almostEqual(q.MeanResponse(), 4, 1e-12) {
		t.Fatalf("E[T] = %v, want 4", q.MeanResponse())
	}
	// Little: E[Q] = lambda E[W] = 0.5
	if !almostEqual(q.MeanQueueLength(), 0.5, 1e-12) {
		t.Fatalf("E[Q] = %v, want 0.5", q.MeanQueueLength())
	}
}

func TestMG1DeterministicVsExponential(t *testing.T) {
	// M/D/1 waits are exactly half of M/M/1 at equal load (PK with
	// E[X^2] = E[X]^2 vs 2E[X]^2).
	lambda := 0.4
	md1 := NewMG1(lambda, dist.Deterministic{Value: 1})
	mm1 := NewMG1(lambda, dist.NewExponential(1))
	if !almostEqual(md1.MeanWait()*2, mm1.MeanWait(), 1e-12) {
		t.Fatalf("M/D/1 %v should be half of M/M/1 %v", md1.MeanWait(), mm1.MeanWait())
	}
}

func TestMG1UnstableReturnsInf(t *testing.T) {
	q := NewMG1(1.0, dist.NewExponential(2)) // rho = 2
	if q.Stable() {
		t.Fatal("rho=2 should be unstable")
	}
	for name, v := range map[string]float64{
		"MeanWait":            q.MeanWait(),
		"WaitSecondMoment":    q.WaitSecondMoment(),
		"MeanSlowdown":        q.MeanSlowdown(),
		"SlowdownVariance":    q.SlowdownVariance(),
		"MeanQueueLength":     q.MeanQueueLength(),
		"ResponseVariance":    q.ResponseVariance(),
		"SlowdownSecondMomnt": q.SlowdownSecondMoment(),
	} {
		if !math.IsInf(v, 1) {
			t.Errorf("%s = %v, want +Inf", name, v)
		}
	}
}

func TestMG1SlowdownBoundedParetoFinite(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e6)
	q := NewMG1(0.5/size.Moment(1), size) // rho = 0.5
	s := q.MeanSlowdown()
	if s <= 1 || math.IsInf(s, 1) {
		t.Fatalf("mean slowdown = %v, want finite > 1", s)
	}
	v := q.SlowdownVariance()
	if v <= 0 || math.IsInf(v, 1) {
		t.Fatalf("slowdown variance = %v, want finite > 0", v)
	}
}

func TestMG1WaitGrowsWithVariability(t *testing.T) {
	// Same mean, increasing C^2 -> increasing E[W] (the PK story).
	lambda := 0.08
	mean := 10.0
	prev := -1.0
	for _, scv := range []float64{1, 4, 16, 64} {
		h := dist.NewH2Balanced(mean, scv)
		w := NewMG1(lambda, h).MeanWait()
		if w <= prev {
			t.Fatalf("E[W] not increasing in C^2: %v after %v", w, prev)
		}
		prev = w
	}
}

func TestMG1WaitExplodesNearSaturation(t *testing.T) {
	size := dist.NewExponential(1)
	w9 := NewMG1(0.9, size).MeanWait()
	w99 := NewMG1(0.99, size).MeanWait()
	if w99 < 5*w9 {
		t.Fatalf("wait at rho=0.99 (%v) should dwarf rho=0.9 (%v)", w99, w9)
	}
}

func TestMG1Validation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMG1(0, dist.NewExponential(1))
}

func TestErlangCKnownValues(t *testing.T) {
	// h=1: C(1, a) = a (probability of waiting in M/M/1 is rho).
	if got := ErlangC(1, 0.7); !almostEqual(got, 0.7, 1e-12) {
		t.Fatalf("ErlangC(1, 0.7) = %v, want 0.7", got)
	}
	// h=2, a=1 (rho=0.5): C = (1/2)/( (1+1) * (1/2) + 1/2 ) ... standard
	// value 1/3.
	if got := ErlangC(2, 1); !almostEqual(got, 1.0/3, 1e-12) {
		t.Fatalf("ErlangC(2, 1) = %v, want 1/3", got)
	}
	if got := ErlangC(4, 0); got != 0 {
		t.Fatalf("ErlangC with no load = %v, want 0", got)
	}
	if got := ErlangC(2, 3); got != 1 {
		t.Fatalf("unstable ErlangC = %v, want 1", got)
	}
}

func TestErlangCDecreasesWithServers(t *testing.T) {
	// At fixed per-server load, more servers -> smaller waiting probability
	// (economies of scale).
	prev := 2.0
	for _, h := range []int{1, 2, 4, 8, 16, 64} {
		c := ErlangC(h, 0.8*float64(h))
		if c >= prev {
			t.Fatalf("ErlangC(%d) = %v, not decreasing (prev %v)", h, c, prev)
		}
		prev = c
	}
}

func TestMMhReducesToMM1(t *testing.T) {
	mm1 := NewMG1(0.5, dist.NewExponential(1))
	mmh := NewMMh(0.5, 1, 1)
	if !almostEqual(mm1.MeanWait(), mmh.MeanWait(), 1e-12) {
		t.Fatalf("M/M/1 via MMh %v vs MG1 %v", mmh.MeanWait(), mm1.MeanWait())
	}
}

func TestMGhReducesToPKForOneServer(t *testing.T) {
	// For h=1 the Lee-Longton scaling (1+C^2)/2 times the M/M/1 wait equals
	// the exact PK wait.
	size := dist.NewBoundedPareto(1.5, 1, 1e4)
	lambda := 0.5 / size.Moment(1)
	exact := NewMG1(lambda, size).MeanWait()
	approx := NewMGh(lambda, size, 1).MeanWait()
	if !almostEqual(exact, approx, 1e-9) {
		t.Fatalf("MGh(h=1) = %v, PK = %v", approx, exact)
	}
}

func TestMGhUnstable(t *testing.T) {
	size := dist.NewExponential(1)
	q := NewMGh(3, size, 2)
	if !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.MeanSlowdown(), 1) {
		t.Fatal("unstable MGh should report Inf")
	}
}

func TestGG1ReducesToPKForPoisson(t *testing.T) {
	// Kingman with Ca^2 = 1 equals PK exactly for M/G/1:
	// rho/(1-rho)*E[X]*(1+Cs^2)/2 = lambda E[X^2] / (2(1-rho)).
	size := dist.NewBoundedPareto(1.3, 1, 1e5)
	lambda := 0.6 / size.Moment(1)
	pk := NewMG1(lambda, size).MeanWait()
	kg := NewGG1(lambda, 1, size).MeanWait()
	if !almostEqual(pk, kg, 1e-9) {
		t.Fatalf("Kingman(Ca2=1) = %v, PK = %v", kg, pk)
	}
}

func TestGG1BurstierIsWorse(t *testing.T) {
	size := dist.NewExponential(1)
	w1 := NewGG1(0.7, 1, size).MeanWait()
	w25 := NewGG1(0.7, 25, size).MeanWait()
	if w25 <= w1 {
		t.Fatalf("bursty wait %v should exceed poisson wait %v", w25, w1)
	}
}

func TestRoundRobinBetweenRandomAndLWL(t *testing.T) {
	// Round-Robin (Ca^2 = 1/h) mildly improves on Random (Ca^2 = 1) but
	// keeps full size variability.
	size := dist.NewBoundedPareto(1.5, 1, 1e4)
	h := 2
	lambda := 0.7 * float64(h) / size.Moment(1)
	random := RandomSplit(lambda, size, h).MeanSlowdown()
	rr := RoundRobinSplit(lambda, size, h).MeanSlowdown()
	if rr >= random {
		t.Fatalf("round robin %v should beat random %v", rr, random)
	}
	if random/rr > 3 {
		t.Fatalf("round robin %v should be close to random %v (same variability)", rr, random)
	}
}

func TestSlowdownOfWait(t *testing.T) {
	size := dist.Deterministic{Value: 2}
	if got := SlowdownOfWait(4, size); got != 3 {
		t.Fatalf("slowdown = %v, want 3", got)
	}
	if !math.IsInf(SlowdownOfWait(math.Inf(1), size), 1) {
		t.Fatal("Inf wait should give Inf slowdown")
	}
}
