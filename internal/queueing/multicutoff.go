package queueing

import (
	"fmt"
	"math"

	"sita/internal/dist"
)

// Multi-host cutoff searches (h > 2). The paper sidesteps these because the
// search space grows and runtime estimates must be more precise (section 5);
// it instead reuses the 2-host cutoff with two host groups. We implement the
// full h-1-cutoff searches anyway as the "expensive" baseline, so the
// grouped scheme can be compared against it (an ablation the paper alludes
// to but does not run).

// EqualLoadCutoffs returns the SITA-E cutoffs for h hosts: h-1 cutoffs
// splitting the total work into h equal shares.
func EqualLoadCutoffs(size dist.Distribution, h int) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("queueing: EqualLoadCutoffs needs h >= 2, got %d", h)
	}
	total := size.Moment(1)
	cuts := make([]float64, h-1)
	for i := 1; i < h; i++ {
		cuts[i-1] = CutoffForShortLoad(1, size, total*float64(i)/float64(h))
	}
	return cuts, nil
}

// systemMeanSlowdown evaluates an h-host SITA system, +Inf when any host is
// unstable or the cutoffs are not strictly ascending.
func systemMeanSlowdown(lambda float64, size dist.Distribution, cuts []float64) float64 {
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return math.Inf(1)
		}
	}
	r := NewSITA(lambda, size, cuts).Analyze()
	for _, hm := range r.Hosts {
		if hm.Load >= 1 {
			return math.Inf(1)
		}
	}
	return r.MeanSlowdown
}

// OptimalCutoffs returns SITA-U-opt cutoffs for h hosts by cyclic coordinate
// descent: starting from the equal-load cutoffs, each cutoff in turn is
// optimized by golden-section search between its neighbors until the
// objective stops improving.
func OptimalCutoffs(lambda float64, size dist.Distribution, h int) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("queueing: OptimalCutoffs needs h >= 2, got %d", h)
	}
	if h == 2 {
		c, err := OptimalCutoff(lambda, size)
		if err != nil {
			return nil, err
		}
		return []float64{c}, nil
	}
	lo, hi := supportBounds(size)
	cuts, err := EqualLoadCutoffs(size, h)
	if err != nil {
		return nil, err
	}
	best := systemMeanSlowdown(lambda, size, cuts)
	if math.IsInf(best, 1) {
		return nil, fmt.Errorf("%w: equal-load start infeasible for h=%d", ErrInfeasible, h)
	}
	const phi = 0.6180339887498949
	for sweep := 0; sweep < 30; sweep++ {
		improved := false
		for i := range cuts {
			a := lo
			if i > 0 {
				a = cuts[i-1]
			}
			b := hi
			if i < len(cuts)-1 {
				b = cuts[i+1]
			}
			la, lb := math.Log(a*(1+1e-9)), math.Log(b*(1-1e-9))
			if lb <= la {
				continue
			}
			f := func(lc float64) float64 {
				old := cuts[i]
				cuts[i] = math.Exp(lc)
				v := systemMeanSlowdown(lambda, size, cuts)
				cuts[i] = old
				return v
			}
			// Coarse grid to escape local flats, then golden-section.
			const gridN = 32
			bestL, bestV := math.Log(cuts[i]), best
			for g := 0; g <= gridN; g++ {
				lc := la + (lb-la)*float64(g)/gridN
				if v := f(lc); v < bestV {
					bestL, bestV = lc, v
				}
			}
			step := (lb - la) / gridN
			ga, gb := math.Max(la, bestL-step), math.Min(lb, bestL+step)
			x1 := gb - phi*(gb-ga)
			x2 := ga + phi*(gb-ga)
			f1, f2 := f(x1), f(x2)
			for it := 0; it < 60; it++ {
				if f1 < f2 {
					gb, x2, f2 = x2, x1, f1
					x1 = gb - phi*(gb-ga)
					f1 = f(x1)
				} else {
					ga, x1, f1 = x1, x2, f2
					x2 = ga + phi*(gb-ga)
					f2 = f(x2)
				}
			}
			lc := (ga + gb) / 2
			if v := f(lc); v < bestV {
				bestL, bestV = lc, v
			}
			if bestV < best-1e-12*math.Abs(best) {
				cuts[i] = math.Exp(bestL)
				best = bestV
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cuts, nil
}

// FairCutoffs returns SITA-U-fair cutoffs for h hosts: every host's expected
// slowdown equals a common value tau. For a given tau the cutoffs are built
// left to right (host i's slowdown is increasing in its upper cutoff), and
// tau itself is then bisected on the sign of the last host's slowdown error.
func FairCutoffs(lambda float64, size dist.Distribution, h int) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("queueing: FairCutoffs needs h >= 2, got %d", h)
	}
	if h == 2 {
		c, err := FairCutoff(lambda, size)
		if err != nil {
			return nil, err
		}
		return []float64{c}, nil
	}
	lo, hi := supportBounds(size)

	// hostSlowdown evaluates host (prev, c] under total rate lambda.
	hostSlowdown := func(prev, c float64) float64 {
		mass := dist.Prob(size, prev, c)
		if mass <= 1e-15 {
			return 1
		}
		q := MG1{Lambda: lambda * mass, Size: dist.NewTruncated(size, prev, c)}
		if !q.Stable() {
			return math.Inf(1)
		}
		return q.MeanSlowdown()
	}

	// cutsForTau builds h-1 cutoffs so hosts 1..h-1 each hit slowdown tau;
	// it reports the last host's slowdown (or +Inf when infeasible).
	cutsForTau := func(tau float64) ([]float64, float64) {
		cuts := make([]float64, h-1)
		prev := lo
		for i := 0; i < h-1; i++ {
			a, b := prev*(1+1e-12), hi
			if hostSlowdown(prev, b) < tau {
				// Even absorbing everything stays below tau: saturate.
				cuts[i] = b
				prev = b
				continue
			}
			for it := 0; it < 100; it++ {
				mid := math.Sqrt(a * b)
				if hostSlowdown(prev, mid) < tau {
					a = mid
				} else {
					b = mid
				}
			}
			cuts[i] = math.Sqrt(a * b)
			prev = cuts[i]
		}
		return cuts, hostSlowdown(prev, hi)
	}

	// Bisect tau: as tau grows each host absorbs more jobs, leaving the last
	// host less work, so lastSlowdown(tau) decreases.
	tauLo, tauHi := 1+1e-9, 2.0
	for i := 0; ; i++ {
		_, last := cutsForTau(tauHi)
		if last <= tauHi {
			break
		}
		tauHi *= 4
		if i > 60 {
			return nil, fmt.Errorf("%w: fairness target diverges for h=%d", ErrInfeasible, h)
		}
	}
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(tauLo * tauHi)
		_, last := cutsForTau(mid)
		if last > mid {
			tauLo = mid
		} else {
			tauHi = mid
		}
	}
	cuts, _ := cutsForTau(math.Sqrt(tauLo * tauHi))
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return nil, fmt.Errorf("%w: degenerate fair cutoffs %v", ErrInfeasible, cuts)
		}
	}
	if !NewSITA(lambda, size, cuts).Feasible() {
		return nil, fmt.Errorf("%w: fair cutoffs unstable %v", ErrInfeasible, cuts)
	}
	return cuts, nil
}
