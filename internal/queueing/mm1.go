package queueing

import (
	"fmt"
	"math"
)

// MM1 is a single FCFS M/M/1 queue: Poisson arrivals at rate Lambda,
// exponential service with mean MeanService. The closed forms below are
// exact (no approximation), which makes them the reference oracles the
// property harness (internal/simtest) checks simulated Random and
// Central-Queue systems against: under Bernoulli splitting each host of a
// Random system is an independent M/M/1 at rate Lambda/h, and the
// Central-Queue system with exponential sizes is the MMh model.
//
// MM1 is numerically a special case of MG1 with an Exponential size
// distribution, but stated directly: the oracle side of a
// simulation-vs-analysis check should be too simple to be wrong.
type MM1 struct {
	Lambda      float64
	MeanService float64
}

// NewMM1 validates parameters. Panics if lambda or meanService is not
// positive.
func NewMM1(lambda, meanService float64) MM1 {
	if lambda <= 0 || meanService <= 0 {
		panic(fmt.Sprintf("queueing: invalid MM1 lambda=%v mean=%v", lambda, meanService))
	}
	return MM1{Lambda: lambda, MeanService: meanService}
}

// Load reports the utilization rho = lambda * E[X].
func (q MM1) Load() float64 { return q.Lambda * q.MeanService }

// Stable reports whether rho < 1.
func (q MM1) Stable() bool { return q.Load() < 1 }

// MeanWait reports E[W] = rho/(mu - lambda); +Inf if unstable.
func (q MM1) MeanWait() float64 {
	rho := q.Load()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1/q.MeanService - q.Lambda)
}

// MeanResponse reports E[T] = 1/(mu - lambda); +Inf if unstable.
func (q MM1) MeanResponse() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	return 1 / (1/q.MeanService - q.Lambda)
}

// MeanQueueLength reports E[Q] = lambda * E[W] = rho^2/(1-rho), Little's
// law on the waiting room; +Inf if unstable.
func (q MM1) MeanQueueLength() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	return q.Lambda * q.MeanWait()
}

// MeanJobsInSystem reports E[N] = rho/(1-rho), Little's law on the whole
// system; +Inf if unstable.
func (q MM1) MeanJobsInSystem() float64 {
	rho := q.Load()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// Note on slowdown: E[S] = 1 + E[W]*E[1/X] is +Inf for exponential service
// (E[1/X] diverges at zero), so there is no finite M/M/1 slowdown oracle;
// slowdown oracles use MG1 with a size distribution bounded away from
// zero (see internal/simtest).
