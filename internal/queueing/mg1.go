// Package queueing implements the analytical side of the paper: the
// Pollaczek-Khinchine M/G/1 formulas (theorem 1), the Erlang-C M/M/h
// formulas, the Lee-Longton M/G/h approximation used for Least-Work-Left,
// per-host SITA analysis, and the cutoff searches that define SITA-E,
// SITA-U-opt and SITA-U-fair.
//
// Conventions: hosts have unit speed, so a job's service time equals its
// size; a queue with utilization >= 1 is unstable and all its delay metrics
// are +Inf. Slowdown is S = T/X = 1 + W/X where T is response time, W
// waiting time and X the job's size. (The paper's theorem 1 writes
// E{S} = E{W}E{1/X}, i.e. it drops the deterministic +1; we keep the +1 so
// that simulation and analysis use the identical definition. The comparisons
// between policies are unaffected.)
package queueing

import (
	"fmt"
	"math"

	"sita/internal/dist"
)

// MG1 is a single FCFS M/G/1 queue: Poisson arrivals at rate Lambda, service
// times from Size.
type MG1 struct {
	Lambda float64
	Size   dist.Distribution
}

// NewMG1 validates the arrival rate. Panics if lambda <= 0 or size is nil.
func NewMG1(lambda float64, size dist.Distribution) MG1 {
	if lambda <= 0 || size == nil {
		panic(fmt.Sprintf("queueing: MG1 needs lambda > 0 and a size distribution, got %v", lambda))
	}
	return MG1{Lambda: lambda, Size: size}
}

// Load reports the utilization rho = lambda * E[X].
func (q MG1) Load() float64 { return q.Lambda * q.Size.Moment(1) }

// Stable reports whether rho < 1.
func (q MG1) Stable() bool { return q.Load() < 1 }

// MeanWait reports E[W] = lambda*E[X^2] / (2(1-rho)), the
// Pollaczek-Khinchine mean waiting time; +Inf if unstable.
func (q MG1) MeanWait() float64 {
	rho := q.Load()
	if rho >= 1 {
		return math.Inf(1)
	}
	return q.Lambda * q.Size.Moment(2) / (2 * (1 - rho))
}

// WaitSecondMoment reports E[W^2] = 2E[W]^2 + lambda*E[X^3]/(3(1-rho))
// (Takacs); +Inf if unstable.
func (q MG1) WaitSecondMoment() float64 {
	rho := q.Load()
	if rho >= 1 {
		return math.Inf(1)
	}
	w := q.MeanWait()
	return 2*w*w + q.Lambda*q.Size.Moment(3)/(3*(1-rho))
}

// MeanResponse reports E[T] = E[W] + E[X].
func (q MG1) MeanResponse() float64 { return q.MeanWait() + q.Size.Moment(1) }

// ResponseSecondMoment reports E[T^2] = E[W^2] + 2E[W]E[X] + E[X^2], using
// the independence of a job's own size from its FCFS waiting time.
func (q MG1) ResponseSecondMoment() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.WaitSecondMoment() + 2*q.MeanWait()*q.Size.Moment(1) + q.Size.Moment(2)
}

// ResponseVariance reports Var(T).
func (q MG1) ResponseVariance() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	t := q.MeanResponse()
	return q.ResponseSecondMoment() - t*t
}

// MeanSlowdown reports E[S] = 1 + E[W] * E[1/X]. In FCFS M/G/1 a job's
// waiting time is independent of its own size, so the expectation factors.
func (q MG1) MeanSlowdown() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return 1 + q.MeanWait()*q.Size.Moment(-1)
}

// SlowdownSecondMoment reports E[S^2] = 1 + 2E[W]E[1/X] + E[W^2]E[1/X^2].
func (q MG1) SlowdownSecondMoment() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return 1 + 2*q.MeanWait()*q.Size.Moment(-1) +
		q.WaitSecondMoment()*q.Size.Moment(-2)
}

// SlowdownVariance reports Var(S).
func (q MG1) SlowdownVariance() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	s := q.MeanSlowdown()
	return q.SlowdownSecondMoment() - s*s
}

// MeanQueueLength reports E[Q] = lambda * E[W] (Little's law on the waiting
// room).
func (q MG1) MeanQueueLength() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Lambda * q.MeanWait()
}

// MG1PS models an M/G/1 Processor-Sharing queue: the paper's footnote-1
// reference for perfect fairness. PS response time is insensitive to the
// service distribution beyond its mean: E[T | X = x] = x/(1-rho), so every
// job's expected slowdown is exactly 1/(1-rho).
type MG1PS struct {
	Lambda float64
	Size   dist.Distribution
}

// Load reports the utilization rho = lambda * E[X].
func (q MG1PS) Load() float64 { return q.Lambda * q.Size.Moment(1) }

// MeanResponse reports E[T] = E[X]/(1-rho); +Inf if unstable.
func (q MG1PS) MeanResponse() float64 {
	rho := q.Load()
	if rho >= 1 {
		return math.Inf(1)
	}
	return q.Size.Moment(1) / (1 - rho)
}

// MeanSlowdown reports E[S] = 1/(1-rho), identical for every job size.
func (q MG1PS) MeanSlowdown() float64 {
	rho := q.Load()
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - rho)
}
