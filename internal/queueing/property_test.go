package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"sita/internal/dist"
	"sita/internal/sim"
)

func TestMG1MetricsIncreaseWithLoad(t *testing.T) {
	size := c90ish()
	prevW, prevS, prevV := 0.0, 0.0, 0.0
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		q := NewMG1(load/size.Moment(1), size)
		if w := q.MeanWait(); w <= prevW {
			t.Fatalf("E[W] not increasing at load %v: %v after %v", load, w, prevW)
		} else {
			prevW = w
		}
		if s := q.MeanSlowdown(); s <= prevS {
			t.Fatalf("E[S] not increasing at load %v", load)
		} else {
			prevS = s
		}
		if v := q.SlowdownVariance(); v <= prevV {
			t.Fatalf("Var[S] not increasing at load %v", load)
		} else {
			prevV = v
		}
	}
}

func TestErlangCIncreasesWithOfferedLoad(t *testing.T) {
	f := func(raw uint8) bool {
		h := 1 + int(raw)%16
		prev := -1.0
		for a := 0.1 * float64(h); a < float64(h); a += 0.1 * float64(h) {
			c := ErlangC(h, a)
			if c <= prev || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSITAMeanSlowdownContinuousInCutoff(t *testing.T) {
	// Adjacent cutoffs on a fine grid must give close mean slowdowns — the
	// optimizers rely on it.
	size := c90ish()
	lambda := 2 * 0.6 / size.Moment(1)
	cLo, cHi, err := FeasibleCutoffRange(lambda, size)
	if err != nil {
		t.Fatal(err)
	}
	// Stay away from the feasibility edges, where 1/(1-rho) poles make the
	// (continuous) curve arbitrarily steep.
	logLo, logHi := math.Log(cLo), math.Log(cHi)
	span := logHi - logLo
	logLo += 0.05 * span
	logHi -= 0.05 * span
	const n = 400
	prev := math.NaN()
	for i := 0; i <= n; i++ {
		c := math.Exp(logLo + (logHi-logLo)*float64(i)/n)
		s := NewSITA(lambda, size, []float64{c}).MeanSlowdown()
		if !math.IsNaN(prev) {
			if ratio := s / prev; ratio > 2 || ratio < 0.5 {
				t.Fatalf("jump at cutoff %v: %v -> %v", c, prev, s)
			}
		}
		prev = s
	}
}

func TestSITAWithEmpiricalDistribution(t *testing.T) {
	// The whole analysis pipeline must accept an empirical (trace-derived)
	// size distribution: the paper derives cutoffs from trace halves.
	bp := c90ish()
	rng := sim.NewRNG(55, 0)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = bp.Sample(rng)
	}
	emp := dist.NewEmpirical(xs)
	lambda := 2 * 0.6 / emp.Moment(1)
	cut := EqualLoadCutoff(emp)
	r := NewSITA(lambda, emp, []float64{cut}).Analyze()
	if math.Abs(r.LoadFractions[0]-0.5) > 0.02 {
		t.Fatalf("empirical SITA-E load fraction %v, want ~0.5", r.LoadFractions[0])
	}
	// Cutoff searches work on empirical distributions too.
	if _, err := OptimalCutoff(lambda, emp); err != nil {
		t.Fatalf("optimal cutoff on empirical: %v", err)
	}
	if _, err := FairCutoff(lambda, emp); err != nil {
		t.Fatalf("fair cutoff on empirical: %v", err)
	}
	// Analytic results on the empirical sample track the parametric truth.
	parametric := NewSITA(2*0.6/bp.Moment(1), bp, []float64{EqualLoadCutoff(bp)}).MeanSlowdown()
	empirical := r.MeanSlowdown
	if ratio := empirical / parametric; ratio < 0.3 || ratio > 3 {
		t.Fatalf("empirical analysis %v vs parametric %v (off > 3x)", empirical, parametric)
	}
}

func TestEqualLoadCutoffIndependentOfRate(t *testing.T) {
	size := c90ish()
	// SITA-E's cutoff depends only on the size distribution.
	c1 := EqualLoadCutoff(size)
	c2 := CutoffForShortLoad(5, size, 2.5*size.Moment(1))
	if math.Abs(c1-c2)/c1 > 1e-6 {
		t.Fatalf("equal-load cutoff rate-dependent: %v vs %v", c1, c2)
	}
}

func TestMGhApproachesMM1ScalingAtManyServers(t *testing.T) {
	// At fixed per-server load, M/G/h waiting vanishes as h grows (economy
	// of scale), while the single-server wait stays put.
	size := dist.NewH2Balanced(1, 8)
	w1 := NewMGh(0.7, size, 1).MeanWait()
	w64 := NewMGh(0.7*64, size, 64).MeanWait()
	if w64 > w1/100 {
		t.Fatalf("M/G/64 wait %v should be tiny vs M/G/1 %v", w64, w1)
	}
}

func TestReportVarianceNonNegative(t *testing.T) {
	size := c90ish()
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed, 0)
		load := 0.2 + 0.7*rng.Float64()
		lambda := 2 * load / size.Moment(1)
		cut := size.Quantile(0.2 + 0.79*rng.Float64())
		r := NewSITA(lambda, size, []float64{cut}).Analyze()
		for _, h := range r.Hosts {
			if h.Load < 1 && h.JobFraction > 0 && h.VarSlowdown < -1e-9 {
				return false
			}
		}
		if r.SystemLoad < 1 && !math.IsInf(r.MeanSlowdown, 1) && r.VarSlowdown < -1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMG1PS(t *testing.T) {
	q := MG1PS{Lambda: 0.25, Size: dist.NewExponential(2)} // rho = 0.5
	if got := q.MeanSlowdown(); got != 2 {
		t.Fatalf("PS slowdown = %v, want 2", got)
	}
	if got := q.MeanResponse(); got != 4 {
		t.Fatalf("PS response = %v, want 4", got)
	}
	over := MG1PS{Lambda: 1, Size: dist.NewExponential(2)}
	if !math.IsInf(over.MeanSlowdown(), 1) || !math.IsInf(over.MeanResponse(), 1) {
		t.Fatal("unstable PS should report Inf")
	}
}

func TestMG1PSInsensitivity(t *testing.T) {
	// PS mean slowdown depends only on rho, not the distribution shape.
	lambdaFor := func(d dist.Distribution) float64 { return 0.6 / d.Moment(1) }
	a := MG1PS{Lambda: lambdaFor(dist.NewExponential(5)), Size: dist.NewExponential(5)}
	b := MG1PS{Lambda: lambdaFor(c90ish()), Size: c90ish()}
	if math.Abs(a.MeanSlowdown()-b.MeanSlowdown()) > 1e-9 {
		t.Fatalf("PS not insensitive: %v vs %v", a.MeanSlowdown(), b.MeanSlowdown())
	}
}
