package queueing

import (
	"fmt"
	"math"

	"sita/internal/dist"
)

// GG1 approximates a G/G/1 FCFS queue with the Allen-Cunneen / Kingman
// two-moment formula:
//
//	E[W] ~= rho/(1-rho) * E[X] * (Ca^2 + Cs^2)/2
//
// where Ca^2 is the squared coefficient of variation of interarrival times
// and Cs^2 of service times. It covers the two non-Poisson cases in the
// paper: Round-Robin (host interarrivals are Erlang-h, Ca^2 = 1/h) and
// bursty trace-scaled arrivals (Ca^2 >> 1, section 6).
type GG1 struct {
	Lambda float64
	CA2    float64 // squared coefficient of variation of interarrival gaps
	Size   dist.Distribution
}

// NewGG1 validates parameters. Panics if lambda <= 0, ca2 < 0, or size is
// nil.
func NewGG1(lambda, ca2 float64, size dist.Distribution) GG1 {
	if lambda <= 0 || ca2 < 0 || size == nil {
		panic(fmt.Sprintf("queueing: invalid GG1 lambda=%v ca2=%v", lambda, ca2))
	}
	return GG1{Lambda: lambda, CA2: ca2, Size: size}
}

// Load reports rho = lambda*E[X].
func (q GG1) Load() float64 { return q.Lambda * q.Size.Moment(1) }

// MeanWait reports the approximate mean waiting time; +Inf if unstable.
func (q GG1) MeanWait() float64 {
	rho := q.Load()
	if rho >= 1 {
		return math.Inf(1)
	}
	cs2 := dist.SquaredCV(q.Size)
	return rho / (1 - rho) * q.Size.Moment(1) * (q.CA2 + cs2) / 2
}

// MeanResponse reports E[T] = E[W] + E[X].
func (q GG1) MeanResponse() float64 { return q.MeanWait() + q.Size.Moment(1) }

// MeanSlowdown reports E[S] = 1 + E[W]*E[1/X] (waiting time approximately
// independent of a job's own size under FCFS).
func (q GG1) MeanSlowdown() float64 {
	if q.Load() >= 1 {
		return math.Inf(1)
	}
	return 1 + q.MeanWait()*q.Size.Moment(-1)
}
