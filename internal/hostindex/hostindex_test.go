package hostindex

import (
	"math"
	"testing"

	"sita/internal/sim"
)

// scanArgMin is the oracle every index must reproduce: a lowest-index-wins
// linear scan over clamped work-left values.
func scanArgMin(keys []float64, zero []bool, lo, hi int, now float64) int {
	best, bestLeft := lo, math.Inf(1)
	for i := lo; i < hi; i++ {
		left := 0.0
		if !zero[i] {
			left = keys[i] - now
			if left < 0 {
				left = 0
			}
		}
		if left < bestLeft {
			best, bestLeft = i, left
		}
	}
	return best
}

func TestTreeMatchesScan(t *testing.T) {
	rng := sim.NewRNG(1, 0)
	for _, h := range []int{1, 2, 3, 5, 8, 17, 64, 100, 257} {
		var tree Tree
		tree.Reset(h)
		keys := make([]float64, h)
		for i := range keys {
			keys[i] = math.Inf(1)
		}
		for step := 0; step < 2000; step++ {
			i := rng.IntN(h)
			// Coarse keys force frequent exact ties.
			k := float64(rng.IntN(8))
			tree.Update(i, k)
			keys[i] = k
			// Oracle: lexicographic (key, id) minimum.
			best := 0
			for j := 1; j < h; j++ {
				//lint:allow floateq exact tie-break oracle mirrors the tree's comparator
				if keys[j] < keys[best] {
					best = j
				}
			}
			got, gotKey := tree.Min()
			if got != best || gotKey != keys[best] {
				t.Fatalf("h=%d step=%d: Min()=(%d,%v), scan=(%d,%v)", h, step, got, gotKey, best, keys[best])
			}
			if h > 1 {
				lo := rng.IntN(h - 1)
				hi := lo + 1 + rng.IntN(h-lo-1) + 1
				if hi > h {
					hi = h
				}
				rbest := lo
				for j := lo + 1; j < hi; j++ {
					//lint:allow floateq exact tie-break oracle mirrors the tree's comparator
					if keys[j] < keys[rbest] {
						rbest = j
					}
				}
				rgot, rkey := tree.RangeMin(lo, hi)
				if rgot != rbest || rkey != keys[rbest] {
					t.Fatalf("h=%d step=%d: RangeMin(%d,%d)=(%d,%v), scan=(%d,%v)",
						h, step, lo, hi, rgot, rkey, rbest, keys[rbest])
				}
			}
		}
	}
}

func TestTreeAllInfPicksLowestID(t *testing.T) {
	var tree Tree
	tree.Reset(5)
	if i, k := tree.Min(); i != 0 || !math.IsInf(k, 1) {
		t.Fatalf("all-absent Min = (%d, %v), want (0, +Inf)", i, k)
	}
	tree.Update(3, math.Inf(1)) // explicit +Inf behaves like Reset state
	if i, _ := tree.RangeMin(2, 5); i != 2 {
		t.Fatalf("all-absent RangeMin(2,5) = %d, want 2", i)
	}
}

func TestTreeNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NaN key")
		}
	}()
	var tree Tree
	tree.Reset(2)
	tree.Update(0, math.NaN())
}

func TestBitSetMinQueries(t *testing.T) {
	rng := sim.NewRNG(2, 0)
	for _, h := range []int{1, 3, 63, 64, 65, 128, 200, 1024} {
		var s BitSet
		s.Reset(h)
		marked := make([]bool, h)
		if s.Min() != -1 {
			t.Fatalf("h=%d: fresh set not empty", h)
		}
		for step := 0; step < 1500; step++ {
			i := rng.IntN(h)
			if rng.IntN(2) == 0 {
				s.Set(i)
				marked[i] = true
			} else {
				s.Clear(i)
				marked[i] = false
			}
			want := -1
			for j := range marked {
				if marked[j] {
					want = j
					break
				}
			}
			if got := s.Min(); got != want {
				t.Fatalf("h=%d step=%d: Min=%d, want %d", h, step, got, want)
			}
			lo := rng.IntN(h)
			hi := lo + 1 + rng.IntN(h-lo)
			want = -1
			for j := lo; j < hi; j++ {
				if marked[j] {
					want = j
					break
				}
			}
			if got := s.MinInRange(lo, hi); got != want {
				t.Fatalf("h=%d step=%d: MinInRange(%d,%d)=%d, want %d", h, step, lo, hi, got, want)
			}
		}
	}
}

func TestBitSetSetAllClearsPadding(t *testing.T) {
	for _, h := range []int{1, 5, 63, 64, 65, 130} {
		var s BitSet
		s.Reset(h)
		s.SetAll()
		for i := 0; i < h; i++ {
			if !s.Get(i) {
				t.Fatalf("h=%d: bit %d not set after SetAll", h, i)
			}
		}
		if got := s.Min(); got != 0 {
			t.Fatalf("h=%d: Min after SetAll = %d", h, got)
		}
		for i := 0; i < h; i++ {
			s.Clear(i)
		}
		if got := s.Min(); got != -1 {
			t.Fatalf("h=%d: ghost bit beyond n after SetAll: Min=%d", h, got)
		}
	}
}

// TestTimedMinMatchesScan drives a TimedMin and the clamped-scan oracle
// through a randomized schedule of drains, re-keys, and argmin queries at
// a monotonically advancing clock — the access pattern of a simulation.
func TestTimedMinMatchesScan(t *testing.T) {
	rng := sim.NewRNG(3, 0)
	for _, h := range []int{1, 2, 4, 7, 33, 100, 513} {
		var m TimedMin
		m.Reset(h)
		keys := make([]float64, h)
		zero := make([]bool, h)
		for i := range zero {
			zero[i] = true
		}
		now := 0.0
		for step := 0; step < 3000; step++ {
			now += float64(rng.IntN(3)) // integer steps force exact key==now ties
			switch rng.IntN(3) {
			case 0: // host gains work with a drain instant at or after now
				i := rng.IntN(h)
				k := now + float64(rng.IntN(5))
				m.SetKey(i, k)
				keys[i], zero[i] = k, false
			case 1: // host drains explicitly (the depart-to-idle event)
				i := rng.IntN(h)
				m.SetZero(i)
				zero[i] = true
			case 2: // argmin queries, global and ranged
				want := scanArgMin(keys, zero, 0, h, now)
				if got := m.ArgMin(now); got != want {
					t.Fatalf("h=%d step=%d now=%v: ArgMin=%d, want %d (keys=%v zero=%v)",
						h, step, now, got, want, keys, zero)
				}
				if h > 1 {
					lo := rng.IntN(h - 1)
					hi := lo + 2 + rng.IntN(h-lo-1)
					if hi > h {
						hi = h
					}
					want = scanArgMin(keys, zero, lo, hi, now)
					if got := m.ArgMinRange(lo, hi, now); got != want {
						t.Fatalf("h=%d step=%d now=%v: ArgMinRange(%d,%d)=%d, want %d",
							h, step, now, lo, hi, got, want)
					}
				}
			}
		}
	}
}

// TestTimedMinSweepReclassifies pins the subtle tie case: a host whose
// drain instant equals the query instant ties with explicitly drained
// hosts, and the lowest index — whichever class it is in — must win.
func TestTimedMinSweepReclassifies(t *testing.T) {
	var m TimedMin
	m.Reset(4)
	m.SetKey(1, 5) // drains exactly at the query instant
	m.SetKey(2, 9)
	m.SetZero(3) // long drained
	m.SetKey(0, 7)
	// At now=5: host 1 (key==now) and host 3 (zero) tie at 0; lowest wins.
	if got := m.ArgMin(5); got != 1 {
		t.Fatalf("ArgMin(5) = %d, want 1 (key==now ties with the drained class)", got)
	}
	if !m.IsZero(1) {
		t.Fatal("host 1 not swept into the drained class")
	}
	// Re-keying pulls it back out.
	m.SetKey(1, 12)
	if got := m.ArgMin(5); got != 3 {
		t.Fatalf("ArgMin(5) after re-key = %d, want 3", got)
	}
	// Range query excluding the drained host falls back to the tree.
	if got := m.ArgMinRange(0, 2, 5); got != 0 {
		t.Fatalf("ArgMinRange(0,2,5) = %d, want 0", got)
	}
}

func TestResetReusesWithoutGhostState(t *testing.T) {
	var m TimedMin
	m.Reset(64)
	for i := 0; i < 64; i++ {
		m.SetKey(i, float64(100+i))
	}
	// Shrink: stale keys and bits from the larger run must be invisible.
	m.Reset(3)
	if got := m.ArgMin(0); got != 0 {
		t.Fatalf("after shrink ArgMin = %d, want 0", got)
	}
	m.SetKey(0, 50)
	m.SetKey(1, 40)
	m.SetKey(2, 60)
	if got := m.ArgMin(0); got != 1 {
		t.Fatalf("after shrink+rekey ArgMin = %d, want 1", got)
	}
	// Grow again past the original size.
	m.Reset(100)
	if got := m.ArgMin(0); got != 0 {
		t.Fatalf("after regrow ArgMin = %d, want 0", got)
	}
}

// TestSteadyStateOperationsDoNotAllocate is the package's allocation
// contract: once Reset, every index operation is allocation-free.
func TestSteadyStateOperationsDoNotAllocate(t *testing.T) {
	var m TimedMin
	m.Reset(1024)
	var jobs Tree
	jobs.Reset(1024)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		m.SetKey(i%1024, float64(i%97)+1e6)
		m.SetZero((i + 511) % 1024)
		_ = m.ArgMin(float64(i % 13))
		_ = m.ArgMinRange(100, 900, float64(i%13))
		jobs.Update(i%1024, float64(i%7))
		_, _ = jobs.Min()
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state index operations allocate %v/op, want 0", allocs)
	}
}

func BenchmarkTreeUpdate(b *testing.B) {
	for _, h := range []int{16, 128, 1024} {
		b.Run(sizeLabel(h), func(b *testing.B) {
			var tr Tree
			tr.Reset(h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Update(i%h, float64(i&1023))
			}
		})
	}
}

func BenchmarkTimedMinArgMin(b *testing.B) {
	for _, h := range []int{16, 128, 1024} {
		b.Run(sizeLabel(h), func(b *testing.B) {
			var m TimedMin
			m.Reset(h)
			for i := 0; i < h; i++ {
				m.SetKey(i, float64(i+1))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				host := m.ArgMin(0)
				m.SetKey(host, float64(i%h)+1)
			}
		})
	}
}

func sizeLabel(h int) string {
	switch h {
	case 16:
		return "h=16"
	case 128:
		return "h=128"
	default:
		return "h=1024"
	}
}

// TestTimedMinZeroClassSweepEdges pins the sweep boundary semantics: a
// host whose drain instant equals the query instant has zero work left
// (key <= now sweeps, not key < now), swept hosts tie at zero with
// lowest index winning, SetKey resurrects a drained host, and the
// ranged query applies the same rules inside its window.
func TestTimedMinZeroClassSweepEdges(t *testing.T) {
	var m TimedMin
	m.Reset(4)
	// All hosts start drained: lowest index wins everywhere.
	if got := m.ArgMin(0); got != 0 {
		t.Fatalf("fresh index ArgMin = %d, want 0", got)
	}

	m.SetKey(0, 5)
	m.SetKey(1, 7)
	m.SetKey(2, 5)
	m.SetKey(3, 9)
	// No host drained, no sweep due: tree argmin with ties on key 5
	// resolved to the lowest id.
	if got := m.ArgMin(1); got != 0 {
		t.Fatalf("ArgMin(1) = %d, want 0 (tree tie -> lowest id)", got)
	}
	for i := 0; i < 4; i++ {
		if m.IsZero(i) {
			t.Fatalf("host %d drained prematurely", i)
		}
	}

	// Query exactly at the drain instant: keys 5 must sweep (<=, not <),
	// both tied hosts land in the zero class, lowest index wins.
	if got := m.ArgMin(5); got != 0 {
		t.Fatalf("ArgMin(5) = %d, want 0", got)
	}
	if !m.IsZero(0) || !m.IsZero(2) {
		t.Fatal("hosts with key == now were not swept into the zero class")
	}
	if m.IsZero(1) || m.IsZero(3) {
		t.Fatal("hosts with key > now were swept early")
	}

	// Ranged query over a window whose zero-class member is host 2.
	if got := m.ArgMinRange(1, 4, 5); got != 2 {
		t.Fatalf("ArgMinRange(1, 4, 5) = %d, want 2 (zero class beats live keys)", got)
	}
	// Window with no zero-class host falls through to the tree range-min.
	if got := m.ArgMinRange(1, 2, 5); got != 1 {
		t.Fatalf("ArgMinRange(1, 2, 5) = %d, want 1", got)
	}

	// Resurrect a swept host: SetKey must pull it out of the zero class
	// and it must not win again until its new instant arrives.
	m.SetKey(0, 12)
	if m.IsZero(0) {
		t.Fatal("SetKey left host 0 in the zero class")
	}
	if got := m.ArgMin(5); got != 2 {
		t.Fatalf("ArgMin(5) after resurrecting 0 = %d, want 2", got)
	}
	// Advance past every key: all hosts sweep, lowest index wins again.
	if got := m.ArgMin(12); got != 0 {
		t.Fatalf("ArgMin(12) = %d, want 0", got)
	}
	for i := 0; i < 4; i++ {
		if !m.IsZero(i) {
			t.Fatalf("host %d not swept at now past every key", i)
		}
	}
}
