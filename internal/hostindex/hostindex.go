// Package hostindex provides incremental argmin indices over a fixed set
// of host ids 0..h-1, the data structures behind the O(log h) host
// selection fast path in internal/server and internal/policy.
//
// Three structures compose:
//
//   - Tree: a tournament (complete binary segment) tree computing
//     argmin over (key[i], i) lexicographically — strictly smallest key
//     first, lowest host index among exact key ties, which is precisely
//     the pick of a lowest-index-wins linear scan. Point updates are
//     O(log h); the global argmin is O(1) (the root); range argmin is
//     O(log h).
//   - BitSet: a dense bitmap over host ids with lowest-set-bit queries
//     (global and range), used as an idle-host freelist and as the
//     "drained" class of TimedMin. All operations are O(h/64) or better.
//   - TimedMin: Tree plus a zero-class BitSet, implementing argmin over
//     the *clamped* key max(key[i]-now, 0) that Least-Work-Left-style
//     comparisons use. Hosts whose clamped key is exactly zero tie, and
//     the tie breaks to the lowest index — TimedMin keeps those hosts in
//     the bitmap (where lowest-index is the natural query) and the rest
//     in the tree (where the lexicographic key gives the same pick as a
//     scan of the unclamped differences; see the tie-break note in
//     ARCHITECTURE.md § Host-selection indices).
//
// None of the operations allocate once the structure has been Reset to
// its host count: all state lives in reusable backing arrays, so the
// per-event index maintenance inside a simulation is allocation-free.
package hostindex

import (
	"fmt"
	"math"
	"math/bits"
)

// Tree is an indexed tournament tree over host ids 0..n-1 ordered by
// (key, id). A host with key +Inf is effectively absent: it can still win
// (some id always wins), so callers that use +Inf as "absent" must check
// the winner's key. The zero value is empty; call Reset before use.
type Tree struct {
	n    int       // live host count
	base int       // leaf offset; power of two >= n
	key  []float64 // per-leaf keys, len base (padding leaves stay +Inf)
	win  []int32   // winner ids; node j's winner is win[j], root at 1
}

// Reset sizes the tree for h hosts and sets every key to +Inf, reusing
// the backing arrays when they are large enough. Panics if h < 1.
func (t *Tree) Reset(h int) {
	if h < 1 {
		panic(fmt.Sprintf("hostindex: need at least one host, got %d", h))
	}
	base := 1
	for base < h {
		base <<= 1
	}
	t.n = h
	t.base = base
	if cap(t.key) < base {
		t.key = make([]float64, base)
		t.win = make([]int32, 2*base)
	}
	t.key = t.key[:base]
	t.win = t.win[:2*base]
	for i := range t.key {
		t.key[i] = math.Inf(1)
	}
	for i := 0; i < base; i++ {
		t.win[base+i] = int32(i)
	}
	// With all keys equal (+Inf) every match is an id tie, so the winner
	// of any internal node is its leftmost leaf.
	for j := base - 1; j >= 1; j-- {
		t.win[j] = t.win[2*j]
	}
}

// Len reports the host count the tree was Reset to.
func (t *Tree) Len() int { return t.n }

// Key reports host i's current key (+Inf when absent).
func (t *Tree) Key(i int) float64 { return t.key[i] }

// better resolves one match: smaller key wins, lower id among key ties.
func (t *Tree) better(a, b int32) int32 {
	ka, kb := t.key[a], t.key[b]
	//lint:allow floateq exact key tie-break; equal keys fall through to the id for scan parity
	if ka != kb {
		if ka < kb {
			return a
		}
		return b
	}
	if a < b {
		return a
	}
	return b
}

// Update sets host i's key and replays its matches up the tree. NaN keys
// panic: they have no total order and would corrupt every match above.
//
//sim:noalloc
func (t *Tree) Update(i int, key float64) {
	if math.IsNaN(key) {
		panic(fmt.Sprintf("hostindex: NaN key for host %d", i))
	}
	t.key[i] = key
	for j := (t.base + i) >> 1; j >= 1; j >>= 1 {
		t.win[j] = t.better(t.win[2*j], t.win[2*j+1])
	}
}

// Min reports the host with the lexicographically least (key, id) and its
// key. When every key is +Inf the lowest id wins and the key reports the
// absence.
//
//sim:noalloc
func (t *Tree) Min() (int, float64) {
	w := t.win[1]
	return int(w), t.key[w]
}

// RangeMin reports the argmin over hosts lo <= i < hi and its key.
// Panics if the range is empty or out of bounds: the caller owns range
// validity (policies validate their group bounds).
//
//sim:noalloc
func (t *Tree) RangeMin(lo, hi int) (int, float64) {
	if lo < 0 || hi > t.n || lo >= hi {
		panic(fmt.Sprintf("hostindex: range [%d, %d) invalid for %d hosts", lo, hi, t.n))
	}
	best := int32(-1)
	for l, r := lo+t.base, hi+t.base; l < r; l, r = l>>1, r>>1 {
		if l&1 == 1 {
			if best < 0 {
				best = t.win[l]
			} else {
				best = t.better(best, t.win[l])
			}
			l++
		}
		if r&1 == 1 {
			r--
			if best < 0 {
				best = t.win[r]
			} else {
				best = t.better(best, t.win[r])
			}
		}
	}
	return int(best), t.key[best]
}

// BitSet is a dense bitmap over host ids with lowest-set-bit queries.
// The zero value is empty; call Reset before use.
type BitSet struct {
	w []uint64
	n int
}

// Reset sizes the set for h hosts with every bit clear, reusing the
// backing array when possible. Panics if h < 1.
func (s *BitSet) Reset(h int) {
	if h < 1 {
		panic(fmt.Sprintf("hostindex: need at least one host, got %d", h))
	}
	words := (h + 63) / 64
	if cap(s.w) < words {
		s.w = make([]uint64, words)
	}
	s.w = s.w[:words]
	for i := range s.w {
		s.w[i] = 0
	}
	s.n = h
}

// SetAll sets every host's bit.
func (s *BitSet) SetAll() {
	for i := range s.w {
		s.w[i] = ^uint64(0)
	}
	// Clear the padding bits past n so Min never reports a ghost host.
	if rem := s.n % 64; rem != 0 {
		s.w[len(s.w)-1] = (uint64(1) << rem) - 1
	}
}

// Set marks host i.
func (s *BitSet) Set(i int) { s.w[i>>6] |= 1 << (uint(i) & 63) }

// Clear unmarks host i.
func (s *BitSet) Clear(i int) { s.w[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether host i is marked.
func (s *BitSet) Get(i int) bool { return s.w[i>>6]&(1<<(uint(i)&63)) != 0 }

// Min reports the lowest marked host, or -1 when the set is empty.
//
//sim:noalloc
func (s *BitSet) Min() int {
	for wi, w := range s.w {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// MinInRange reports the lowest marked host in [lo, hi), or -1.
// Panics if the range is empty or out of bounds.
//
//sim:noalloc
func (s *BitSet) MinInRange(lo, hi int) int {
	if lo < 0 || hi > s.n || lo >= hi {
		panic(fmt.Sprintf("hostindex: range [%d, %d) invalid for %d hosts", lo, hi, s.n))
	}
	first, last := lo>>6, (hi-1)>>6
	for wi := first; wi <= last; wi++ {
		w := s.w[wi]
		if wi == first {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == last {
			if rem := uint(hi) & 63; rem != 0 {
				w &= (uint64(1) << rem) - 1
			}
		}
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// TimedMin is an argmin index over the clamped key max(key[i]-now, 0),
// the comparison a Least-Work-Left scan makes: key[i] is the absolute
// instant host i drains (true or believed), now is the query instant,
// and every host at or past its drain instant ties at zero work left.
//
// Hosts live in one of two classes: the tree holds hosts with a live
// drain instant, the zero class holds drained hosts. ArgMin sweeps hosts
// whose key has fallen to or below now into the zero class (each host is
// swept at most once per SetKey, so maintenance stays amortized O(log h))
// and then resolves the scan's pick: the lowest-index zero-class host if
// any — the clamp ties all of them, and a linear scan keeps the first —
// otherwise the tree's (key, id) argmin.
type TimedMin struct {
	tree Tree
	zero BitSet
}

// Reset sizes the index for h hosts, all drained (key 0 at every now >= 0).
// Panics if h < 1.
func (m *TimedMin) Reset(h int) {
	m.tree.Reset(h)
	m.zero.Reset(h)
	m.zero.SetAll()
}

// Len reports the host count.
func (m *TimedMin) Len() int { return m.tree.Len() }

// SetKey gives host i a live drain instant.
//
//sim:noalloc
func (m *TimedMin) SetKey(i int, key float64) {
	m.zero.Clear(i)
	m.tree.Update(i, key)
}

// SetZero moves host i to the drained class.
//
//sim:noalloc
func (m *TimedMin) SetZero(i int) {
	m.tree.Update(i, math.Inf(1))
	m.zero.Set(i)
}

// IsZero reports whether host i is currently in the drained class.
func (m *TimedMin) IsZero(i int) bool { return m.zero.Get(i) }

// Key reports host i's drain instant; only meaningful when !IsZero(i).
func (m *TimedMin) Key(i int) float64 { return m.tree.Key(i) }

// sweep moves every host whose drain instant has arrived (key <= now)
// into the zero class, restoring the invariant that tree keys exceed now.
func (m *TimedMin) sweep(now float64) {
	for {
		i, k := m.tree.Min()
		if !(k <= now) {
			return
		}
		m.SetZero(i)
	}
}

// ArgMin reports the host a lowest-index-wins linear scan over the
// clamped keys would pick at the query instant.
//
//sim:noalloc
func (m *TimedMin) ArgMin(now float64) int {
	m.sweep(now)
	if z := m.zero.Min(); z >= 0 {
		return z
	}
	i, _ := m.tree.Min()
	return i
}

// ArgMinRange is ArgMin restricted to hosts lo <= i < hi.
// Panics if the range is empty or out of bounds.
//
//sim:noalloc
func (m *TimedMin) ArgMinRange(lo, hi int, now float64) int {
	m.sweep(now)
	if z := m.zero.MinInRange(lo, hi); z >= 0 {
		return z
	}
	i, _ := m.tree.RangeMin(lo, hi)
	return i
}
