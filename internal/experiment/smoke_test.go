package experiment

import (
	"strings"
	"testing"
)

// TestEveryDriverSmoke runs every registered experiment driver at a tiny
// scale and validates its output end to end: at least one populated table,
// and all three render formats free of NaN leakage. This is the catch-all
// regression net for new drivers.
func TestEveryDriverSmoke(t *testing.T) {
	cfg := Default()
	cfg.Jobs = 2500
	cfg.Loads = []float64{0.5, 0.7}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			driver := Drivers()[id]
			if driver == nil {
				t.Fatalf("driver %q missing from registry", id)
			}
			tables, err := driver(cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", id)
			}
			for _, tb := range tables {
				if len(tb.SeriesNames()) == 0 || len(tb.Xs()) == 0 {
					t.Errorf("%s/%s: empty table", id, tb.ID)
					continue
				}
				text := tb.Format()
				if strings.Contains(text, "NaN") {
					t.Errorf("%s/%s: NaN leaked into text output:\n%s", id, tb.ID, text)
				}
				if !strings.Contains(text, tb.ID) {
					t.Errorf("%s/%s: table id missing from header", id, tb.ID)
				}
				csv := tb.CSV()
				if strings.Contains(csv, "NaN") {
					t.Errorf("%s/%s: NaN leaked into CSV", id, tb.ID)
				}
				if lines := strings.Count(csv, "\n"); lines < 2 {
					t.Errorf("%s/%s: CSV has only %d lines", id, tb.ID, lines)
				}
				chart := tb.Plot(true)
				if strings.Contains(chart, "NaN") {
					t.Errorf("%s/%s: NaN leaked into chart", id, tb.ID)
				}
			}
		})
	}
}

// TestDriverDeterminism re-runs a simulation driver with the same seed and
// demands identical outputs — the reproducibility guarantee the whole
// experiment suite rests on.
func TestDriverDeterminism(t *testing.T) {
	cfg := Default()
	cfg.Jobs = 4000
	cfg.Loads = []float64{0.6}
	a, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].CSV() != b[i].CSV() {
			t.Fatalf("driver not deterministic for table %s", a[i].ID)
		}
	}
	// A different seed must actually change simulated values.
	cfg.Seed = 999
	c, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].CSV() == c[0].CSV() {
		t.Fatal("different seed produced identical simulation output")
	}
}
