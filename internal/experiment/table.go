package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sita/internal/plot"
)

// Table is one figure or table's worth of results: named series sharing an
// x axis. The zero value is unusable; build with NewTable.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Columns optionally fixes the series order (otherwise first-added
	// order is used).
	Columns []string
	// RowLabels optionally names the x values (Table 1 uses profile names).
	RowLabels []string
	Notes     []string

	order  []string
	series map[string]map[float64]float64
	xs     map[float64]bool
}

// NewTable builds an empty table. Internal containers are presized for a
// typical figure (a handful of series over a load sweep) so that building
// one does not reallocate as rows accumulate.
func NewTable(id, title, xLabel, yLabel string) *Table {
	return &Table{
		ID: id, Title: title, XLabel: xLabel, YLabel: yLabel,
		order:  make([]string, 0, 8),
		series: make(map[string]map[float64]float64, 8),
		xs:     make(map[float64]bool, 16),
	}
}

// Add records one (series, x) -> y observation, overwriting duplicates.
func (t *Table) Add(series string, x, y float64) {
	s, ok := t.series[series]
	if !ok {
		s = make(map[float64]float64)
		t.series[series] = s
		t.order = append(t.order, series)
	}
	s[x] = y
	t.xs[x] = true
}

// SeriesNames returns the series in column order.
func (t *Table) SeriesNames() []string {
	if len(t.Columns) > 0 {
		return t.Columns
	}
	return t.order
}

// Xs returns the sorted x values.
func (t *Table) Xs() []float64 {
	out := make([]float64, 0, len(t.xs))
	for x := range t.xs {
		out = append(out, x)
	}
	sort.Float64s(out)
	return out
}

// Value looks up a point; ok reports whether it exists.
func (t *Table) Value(series string, x float64) (y float64, ok bool) {
	s, ok := t.series[series]
	if !ok {
		return 0, false
	}
	y, ok = s[x]
	return y, ok
}

// MustValue looks up a point and panics when missing (test convenience).
func (t *Table) MustValue(series string, x float64) float64 {
	y, ok := t.Value(series, x)
	if !ok {
		panic(fmt.Sprintf("experiment: table %s has no point (%s, %v)", t.ID, series, x))
	}
	return y
}

// formatCell renders a value compactly: integers plainly, small values with
// precision, large ones in scientific notation.
func formatCell(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsNaN(v):
		return "-"
	//lint:allow floateq exact integrality test choosing the integer format
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s [%s]\n", t.Title, t.ID)
	names := t.SeriesNames()
	xs := t.Xs()

	header := make([]string, 0, len(names)+1)
	header = append(header, t.XLabel)
	header = append(header, names...)
	rows := make([][]string, 0, len(xs))
	for i, x := range xs {
		row := make([]string, 0, len(names)+1)
		if len(t.RowLabels) == len(xs) {
			row = append(row, t.RowLabels[i])
		} else {
			row = append(row, formatCell(x))
		}
		for _, n := range names {
			if y, ok := t.Value(n, x); ok {
				row = append(row, formatCell(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	writeRow(dashRow(widths))
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func dashRow(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var sb strings.Builder
	names := t.SeriesNames()
	sb.WriteString(csvEscape(t.XLabel))
	for _, n := range names {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(n))
	}
	sb.WriteByte('\n')
	for i, x := range t.Xs() {
		if len(t.RowLabels) == len(t.xs) {
			sb.WriteString(csvEscape(t.RowLabels[i]))
		} else {
			fmt.Fprintf(&sb, "%g", x)
		}
		for _, n := range names {
			sb.WriteByte(',')
			if y, ok := t.Value(n, x); ok {
				fmt.Fprintf(&sb, "%g", y)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Plot renders the table as an ASCII line chart; logY selects a log-scale
// y axis (the natural scale for slowdown curves).
func (t *Table) Plot(logY bool) string {
	var series []plot.Series
	for _, name := range t.SeriesNames() {
		s := plot.Series{Name: name}
		for _, x := range t.Xs() {
			if y, ok := t.Value(name, x); ok {
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
		}
		if len(s.X) > 0 {
			series = append(series, s)
		}
	}
	return plot.Chart(series, plot.Options{
		Title:  fmt.Sprintf("%s [%s]", t.Title, t.ID),
		XLabel: t.XLabel,
		YLabel: t.YLabel,
		LogY:   logY,
	})
}
