package experiment

import (
	"testing"

	"sita/internal/streamcache"
)

// BenchmarkSweepStreamCache prices a multi-policy figure sweep with the
// stream cache in its two modes, in the same binary: "bypassed" is the
// pre-cache behavior (every (policy, load) cell regenerates its job
// stream), "cached" generates each load point's stream once and shares it
// across the policy fanout. Figure 10 is the representative driver: a
// plain simSweep over the full policy set, so the stream-generation share
// of its runtime is typical of the result-regenerating sweeps.
func BenchmarkSweepStreamCache(b *testing.B) {
	cfg := Default()
	cfg.Jobs = 20000
	for _, mode := range []struct {
		name   string
		bypass bool
	}{
		{"bypassed", true},
		{"cached", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			streamcache.Shared.SetBypass(mode.bypass)
			defer streamcache.Shared.SetBypass(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tables, err := Figure10(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(tables) == 0 {
					b.Fatal("no output tables")
				}
			}
		})
	}
}
