package experiment

import (
	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/streamcache"
)

// EstimateNoise sweeps the quality of user runtime estimates (lognormal
// error with log-sd sigma) at load 0.7 and compares the two
// estimate-driven policies the paper describes deployed systems using
// (§1.2): Least-Work-Left computed from submitted estimates, and
// size-interval routing by estimate. sigma = 0.69 means estimates are
// typically off by a factor of 2; sigma = 1.6 by a factor of 5 — the range
// reported for real user estimates.
//
//sim:entry
func EstimateNoise(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	jobs := streamcache.Shared.JobsAtLoad(tr, load, 2, true, cfg.Seed)
	fair, err := core.NewDesign(core.SITAUFair, load, size, 2)
	if err != nil {
		return nil, err
	}
	t := NewTable("estimate-noise", "Estimate-driven policies vs estimate quality, load 0.7 (simulation)",
		"estimate log-sd sigma", "mean slowdown")
	for si, sigma := range []float64{0, 0.2, 0.69, 1.1, 1.6} {
		cases := []struct {
			name string
			pol  server.Policy
		}{
			{"LWL-by-estimates", policy.NewEstimatedLWL(sigma, sim.NewRNG(cfg.Seed, 500+uint64(si)))},
			{"SITA-U-fair-by-estimates", policy.NewEstimatedSITA(
				policy.NewSITA(fair.Variant.String(), []float64{fair.Cutoff}),
				sigma, sim.NewRNG(cfg.Seed, 600+uint64(si)))},
		}
		for _, c := range cases {
			res := server.Run(jobs, server.Config{Hosts: 2, Policy: c.pol, WarmupFraction: cfg.Warmup})
			t.Add(c.name, sigma, res.Slowdown.Mean())
		}
	}
	t.Notes = append(t.Notes,
		"SITA needs the estimate to land on the right side of ONE cutoff, so it degrades far more",
		"slowly with estimate error than policies that sum estimates into backlogs (section 7's point)")
	return []Table{*t}, nil
}
