package experiment

import (
	"math"

	"sita/internal/core"
	"sita/internal/dist"
	"sita/internal/policy"
	"sita/internal/queueing"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// The drivers below go beyond the paper's printed figures: ablations and
// sensitivity studies that the paper's text motivates (sections 4.3, 5, 6,
// 7) but does not plot.

// CutoffSensitivity sweeps the SITA cutoff across its feasible range at a
// fixed load and reports analytic mean slowdown — the "what appear to just
// be parameters can have a greater effect than anything else" observation
// of the conclusions, made quantitative.
func CutoffSensitivity(cfg Config) ([]Table, error) {
	size := cfg.Profile.MustSizeDist()
	t := NewTable("cutoff-sensitivity", "Mean slowdown vs SITA cutoff (analysis)",
		"cutoff (s)", "mean slowdown")
	for _, load := range []float64{0.5, 0.7} {
		lambda := 2 * load / size.Moment(1)
		cLo, cHi, err := queueing.FeasibleCutoffRange(lambda, size)
		if err != nil {
			continue
		}
		name := seriesForLoad("load", load)
		logLo, logHi := math.Log(cLo), math.Log(cHi)
		const n = 40
		for i := 0; i <= n; i++ {
			c := math.Exp(logLo + (logHi-logLo)*float64(i)/n)
			r := queueing.NewSITA(lambda, size, []float64{c}).Analyze()
			unstable := false
			for _, h := range r.Hosts {
				if h.Load >= 1 {
					unstable = true
				}
			}
			if unstable {
				continue
			}
			t.Add(name, c, r.MeanSlowdown)
		}
	}
	t.Notes = append(t.Notes,
		"the slowdown-vs-cutoff curve is steep around SITA-E's cutoff and flat near the optimum")
	return []Table{*t}, nil
}

// Misclassification sweeps the probability that a user mislabels a job as
// short/long (section 7) and reports simulated mean slowdown of SITA-U-fair
// under the 2-host system at load 0.7.
func Misclassification(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	d, err := core.NewDesign(core.SITAUFair, load, size, 2)
	if err != nil {
		return nil, err
	}
	t := NewTable("misclassification", "SITA-U-fair under user misclassification, load 0.7 (simulation)",
		"misclassification probability", "mean slowdown")
	jobs := tr.JobsAtLoad(load, 2, true, cfg.Seed)
	modes := []struct {
		name string
		mode policy.MisclassifyMode
	}{
		{"shorts claim long", policy.FlipShortOnly},
		{"longs claim short", policy.FlipLongOnly},
		{"both directions", policy.FlipBoth},
	}
	for _, p := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4} {
		for mi, m := range modes {
			pol := server.Policy(policy.NewSITA(d.Variant.String(), []float64{d.Cutoff}))
			if p > 0 {
				pol = policy.NewMisclassifyMode(pol, d.Cutoff, p, m.mode,
					sim.NewRNG(cfg.Seed, 200+uint64(mi)*17+uint64(p*1000)))
			}
			res := server.Run(jobs, server.Config{Hosts: 2, Policy: pol, WarmupFraction: cfg.Warmup})
			t.Add(m.name, p, res.Slowdown.Mean())
		}
	}
	t.Notes = append(t.Notes,
		"section 7's claim, quantified: a misrouted short job hurts only itself - but its slowdown on the",
		"near-saturated long host is astronomical, so even rare errors dominate the mean; misrouted longs",
		"add modest load to the short host and degrade things far more gently. The paper's incentive",
		"argument holds: the misclassified job itself pays by far the largest price")
	return []Table{*t}, nil
}

// BurstinessSweep fixes the load at 0.7 and sweeps the interarrival-gap
// squared coefficient of variation, quantifying section 6's claim that
// arrival variability eventually dominates and favors Least-Work-Left.
func BurstinessSweep(cfg Config) ([]Table, error) {
	const load = 0.7
	size := cfg.Profile.MustSizeDist()
	t := NewTable("burstiness", "Policies vs arrival burstiness at load 0.7 (simulation)",
		"interarrival gap C^2", "mean slowdown")
	n := cfg.jobsPerPoint()
	dFair, err := core.NewDesign(core.SITAUFair, load, size, 2)
	if err != nil {
		return nil, err
	}
	for _, scv := range []float64{1, 4, 16, 64, 256} {
		jobs := burstyJobs(n, load, 2, size, scv, cfg.Seed)
		for _, spec := range []struct {
			name string
			pol  server.Policy
		}{
			{"Least-Work-Left", policy.NewLeastWorkLeft()},
			{"SITA-U-fair", policy.NewSITA("SITA-U-fair", []float64{dFair.Cutoff})},
		} {
			res := server.Run(jobs, server.Config{Hosts: 2, Policy: spec.pol, WarmupFraction: cfg.Warmup})
			t.Add(spec.name, scv, res.Slowdown.Mean())
		}
	}
	t.Notes = append(t.Notes,
		"SITA reduces size variability but not arrival variability; LWL gains ground as gaps get burstier")
	return []Table{*t}, nil
}

// MultiCutoffAblation compares the paper's grouped 2-cutoff construction
// for h > 2 hosts (section 5) against the full h-1-cutoff SITA the paper
// deems too expensive to search — quantifying what the shortcut costs.
func MultiCutoffAblation(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	t := NewTable("multi-cutoff", "Grouped 2-cutoff SITA vs full multi-cutoff SITA, load 0.7 (simulation)",
		"hosts", "mean slowdown")
	for _, h := range []int{4, 6, 8} {
		jobs := tr.JobsAtLoad(load, h, true, cfg.Seed+uint64(h))
		lambda := float64(h) * load / size.Moment(1)

		if d, err := core.NewDesign(core.SITAUOpt, load, size, h); err == nil {
			res := server.Run(jobs, server.Config{Hosts: h, Policy: d.Policy(), WarmupFraction: cfg.Warmup})
			t.Add("grouped 2-cutoff", float64(h), res.Slowdown.Mean())
		}
		if cuts, err := queueing.OptimalCutoffs(lambda, size, h); err == nil {
			p := policy.NewSITA("SITA-multi", cuts)
			res := server.Run(jobs, server.Config{Hosts: h, Policy: p, WarmupFraction: cfg.Warmup})
			t.Add("full multi-cutoff", float64(h), res.Slowdown.Mean())
		}
		if cuts := queueing.EqualLoadCutoffs(size, h); len(cuts) == h-1 {
			p := policy.NewSITA("SITA-E-multi", cuts)
			res := server.Run(jobs, server.Config{Hosts: h, Policy: p, WarmupFraction: cfg.Warmup})
			t.Add("multi-cutoff equal-load", float64(h), res.Slowdown.Mean())
		}
	}
	return []Table{*t}, nil
}

// FairnessProfile reports mean slowdown per job-size decile for SITA-E,
// SITA-U-fair and Least-Work-Left at load 0.7 — making the fairness claim
// of section 4.3 visible across the whole size spectrum rather than just
// the short/long split.
func FairnessProfile(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	// Decile boundaries of the size distribution.
	bounds := make([]float64, 9)
	for i := range bounds {
		bounds[i] = size.Quantile(float64(i+1) / 10)
	}
	jobs := tr.JobsAtLoad(load, 2, true, cfg.Seed)
	t := NewTable("fairness-profile", "Mean slowdown by job-size decile, load 0.7 (simulation)",
		"size decile (1=smallest)", "mean slowdown")
	specs := []policySpec{specLWL(), specSITA(core.SITAE), specSITA(core.SITAUFair)}
	for _, spec := range specs {
		p, err := spec.build(load, size, 2, cfg.Seed)
		if err != nil {
			continue
		}
		tally := stats.NewDecileTally(bounds)
		res := server.Run(jobs, server.Config{Hosts: 2, Policy: p, WarmupFraction: cfg.Warmup,
			KeepRecords: true})
		for _, r := range res.Records {
			tally.Add(r.Size, r.Slowdown())
		}
		for c := 0; c < tally.Classes(); c++ {
			if tally.Count(c) == 0 {
				continue
			}
			t.Add(spec.name, float64(c+1), tally.Mean(c))
		}
	}
	// Reference: Processor-Sharing hosts (footnote 1's "ultimately fair"
	// ideal, unattainable under run-to-completion) with random splitting.
	psTally := stats.NewDecileTally(bounds)
	psRes := server.RunPS(jobs, server.Config{Hosts: 2,
		Policy: policy.NewRandom(sim.NewRNG(cfg.Seed, 400)), WarmupFraction: cfg.Warmup,
		KeepRecords: true})
	for _, r := range psRes.Records {
		psTally.Add(r.Size, r.Slowdown())
	}
	for c := 0; c < psTally.Classes(); c++ {
		if psTally.Count(c) == 0 {
			continue
		}
		t.Add("PS ideal (reference)", float64(c+1), psTally.Mean(c))
	}
	t.Notes = append(t.Notes,
		"SITA-U-fair flattens expected slowdown across deciles; balancing policies skew against small jobs;",
		"the PS line is footnote 1's perfectly-fair (but non-run-to-completion) ideal")
	return []Table{*t}, nil
}

func seriesForLoad(prefix string, load float64) string {
	return prefix + "=" + formatCell(load)
}

// burstyJobs builds a job stream with lognormal interarrival gaps of the
// given squared coefficient of variation at the target load.
func burstyJobs(n int, load float64, hosts int, size dist.BoundedPareto, scv float64, seed uint64) []workload.Job {
	meanGap := size.Moment(1) / (load * float64(hosts))
	var arr workload.ArrivalProcess
	if scv <= 1 {
		arr = workload.NewPoisson(1 / meanGap)
	} else {
		arr = workload.Renewal{Gap: dist.NewLognormalFromMeanSCV(meanGap, scv)}
	}
	src := workload.NewSource(arr, workload.DistSizes{D: size},
		sim.NewRNG(seed, 300+uint64(scv)), sim.NewRNG(seed, 301))
	return src.Take(n)
}
