package experiment

import (
	"math"

	"sita/internal/core"
	"sita/internal/dist"
	"sita/internal/policy"
	"sita/internal/queueing"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/streamcache"
	"sita/internal/workload"
)

// The drivers below go beyond the paper's printed figures: ablations and
// sensitivity studies that the paper's text motivates (sections 4.3, 5, 6,
// 7) but does not plot.

// CutoffSensitivity sweeps the SITA cutoff across its feasible range at a
// fixed load and reports analytic mean slowdown — the "what appear to just
// be parameters can have a greater effect than anything else" observation
// of the conclusions, made quantitative.
func CutoffSensitivity(cfg Config) ([]Table, error) {
	size := cfg.Profile.MustSizeDist()
	t := NewTable("cutoff-sensitivity", "Mean slowdown vs SITA cutoff (analysis)",
		"cutoff (s)", "mean slowdown")
	for _, load := range []float64{0.5, 0.7} {
		lambda := 2 * load / size.Moment(1)
		cLo, cHi, err := queueing.FeasibleCutoffRange(lambda, size)
		if err != nil {
			continue
		}
		name := seriesForLoad("load", load)
		logLo, logHi := math.Log(cLo), math.Log(cHi)
		const n = 40
		for i := 0; i <= n; i++ {
			c := math.Exp(logLo + (logHi-logLo)*float64(i)/n)
			r := queueing.NewSITA(lambda, size, []float64{c}).Analyze()
			unstable := false
			for _, h := range r.Hosts {
				if h.Load >= 1 {
					unstable = true
				}
			}
			if unstable {
				continue
			}
			t.Add(name, c, r.MeanSlowdown)
		}
	}
	t.Notes = append(t.Notes,
		"the slowdown-vs-cutoff curve is steep around SITA-E's cutoff and flat near the optimum")
	return []Table{*t}, nil
}

// Misclassification sweeps the probability that a user mislabels a job as
// short/long (section 7) and reports simulated mean slowdown of SITA-U-fair
// under the 2-host system at load 0.7.
func Misclassification(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	d, err := core.NewDesign(core.SITAUFair, load, size, 2)
	if err != nil {
		return nil, err
	}
	t := NewTable("misclassification", "SITA-U-fair under user misclassification, load 0.7 (simulation)",
		"misclassification probability", "mean slowdown")
	jobs := streamcache.Shared.JobsAtLoad(tr, load, 2, true, cfg.Seed)
	modes := []struct {
		name string
		mode policy.MisclassifyMode
	}{
		{"shorts claim long", policy.FlipShortOnly},
		{"longs claim short", policy.FlipLongOnly},
		{"both directions", policy.FlipBoth},
	}
	type cell struct {
		p    float64
		mi   int
		name string
		mode policy.MisclassifyMode
	}
	var cells []cell
	for _, p := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4} {
		for mi, m := range modes {
			cells = append(cells, cell{p, mi, m.name, m.mode})
		}
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (float64, error) {
		pol := server.Policy(policy.NewSITA(d.Variant.String(), []float64{d.Cutoff}))
		if cl.p > 0 {
			pol = policy.NewMisclassifyMode(pol, d.Cutoff, cl.p, cl.mode,
				sim.NewRNG(cfg.Seed, 200+uint64(cl.mi)*17+uint64(cl.p*1000)))
		}
		res := server.Run(jobs, server.Config{Hosts: 2, Policy: pol, WarmupFraction: cfg.Warmup})
		return res.Slowdown.Mean(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, y := range outs {
		t.Add(cells[i].name, cells[i].p, y)
	}
	t.Notes = append(t.Notes,
		"section 7's claim, quantified: a misrouted short job hurts only itself - but its slowdown on the",
		"near-saturated long host is astronomical, so even rare errors dominate the mean; misrouted longs",
		"add modest load to the short host and degrade things far more gently. The paper's incentive",
		"argument holds: the misclassified job itself pays by far the largest price")
	return []Table{*t}, nil
}

// BurstinessSweep fixes the load at 0.7 and sweeps the interarrival-gap
// squared coefficient of variation, quantifying section 6's claim that
// arrival variability eventually dominates and favors Least-Work-Left.
func BurstinessSweep(cfg Config) ([]Table, error) {
	const load = 0.7
	size := cfg.Profile.MustSizeDist()
	t := NewTable("burstiness", "Policies vs arrival burstiness at load 0.7 (simulation)",
		"interarrival gap C^2", "mean slowdown")
	n := cfg.jobsPerPoint()
	dFair, err := core.NewDesign(core.SITAUFair, load, size, 2)
	if err != nil {
		return nil, err
	}
	type cell struct {
		scv  float64
		name string
	}
	var cells []cell
	for _, scv := range []float64{1, 4, 16, 64, 256} {
		for _, name := range []string{"Least-Work-Left", "SITA-U-fair"} {
			cells = append(cells, cell{scv, name})
		}
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (float64, error) {
		// Rebuilt per cell from (seed, scv): both policies at an SCV level
		// see identical job streams.
		jobs := burstyJobs(n, load, 2, size, cl.scv, cfg.Seed)
		var pol server.Policy
		if cl.name == "Least-Work-Left" {
			pol = policy.NewLeastWorkLeft()
		} else {
			pol = policy.NewSITA("SITA-U-fair", []float64{dFair.Cutoff})
		}
		res := server.Run(jobs, server.Config{Hosts: 2, Policy: pol, WarmupFraction: cfg.Warmup})
		return res.Slowdown.Mean(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, y := range outs {
		t.Add(cells[i].name, cells[i].scv, y)
	}
	t.Notes = append(t.Notes,
		"SITA reduces size variability but not arrival variability; LWL gains ground as gaps get burstier")
	return []Table{*t}, nil
}

// MultiCutoffAblation compares the paper's grouped 2-cutoff construction
// for h > 2 hosts (section 5) against the full h-1-cutoff SITA the paper
// deems too expensive to search — quantifying what the shortcut costs.
func MultiCutoffAblation(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	t := NewTable("multi-cutoff", "Grouped 2-cutoff SITA vs full multi-cutoff SITA, load 0.7 (simulation)",
		"hosts", "mean slowdown")
	type cell struct {
		hosts int
		name  string
	}
	variants := []string{"grouped 2-cutoff", "full multi-cutoff", "multi-cutoff equal-load"}
	var cells []cell
	for _, h := range []int{4, 6, 8} {
		for _, name := range variants {
			cells = append(cells, cell{h, name})
		}
	}
	type outcome struct {
		ok   bool
		mean float64
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (outcome, error) {
		lambda := float64(cl.hosts) * load / size.Moment(1)
		var pol server.Policy
		switch cl.name {
		case "grouped 2-cutoff":
			d, err := core.NewDesign(core.SITAUOpt, load, size, cl.hosts)
			if err != nil {
				return outcome{}, nil
			}
			pol = d.Policy()
		case "full multi-cutoff":
			cuts, err := queueing.OptimalCutoffs(lambda, size, cl.hosts)
			if err != nil {
				return outcome{}, nil
			}
			pol = policy.NewSITA("SITA-multi", cuts)
		default:
			cuts, err := queueing.EqualLoadCutoffs(size, cl.hosts)
			if err != nil {
				return outcome{}, nil
			}
			pol = policy.NewSITA("SITA-E-multi", cuts)
		}
		jobs := streamcache.Shared.JobsAtLoad(tr, load, cl.hosts, true, cfg.Seed+uint64(cl.hosts))
		res := server.Run(jobs, server.Config{Hosts: cl.hosts, Policy: pol, WarmupFraction: cfg.Warmup})
		return outcome{true, res.Slowdown.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if o.ok {
			t.Add(cells[i].name, float64(cells[i].hosts), o.mean)
		}
	}
	return []Table{*t}, nil
}

// FairnessProfile reports mean slowdown per job-size decile for SITA-E,
// SITA-U-fair and Least-Work-Left at load 0.7 — making the fairness claim
// of section 4.3 visible across the whole size spectrum rather than just
// the short/long split.
func FairnessProfile(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	// Decile boundaries of the size distribution.
	bounds := make([]float64, 9)
	for i := range bounds {
		bounds[i] = size.Quantile(float64(i+1) / 10)
	}
	jobs := streamcache.Shared.JobsAtLoad(tr, load, 2, true, cfg.Seed)
	t := NewTable("fairness-profile", "Mean slowdown by job-size decile, load 0.7 (simulation)",
		"size decile (1=smallest)", "mean slowdown")
	// One cell per policy plus the Processor-Sharing reference (footnote
	// 1's "ultimately fair" ideal, unattainable under run-to-completion)
	// with random splitting. Each cell returns its decile profile.
	specs := []policySpec{specLWL(), specSITA(core.SITAE), specSITA(core.SITAUFair)}
	type cell struct {
		spec policySpec
		ps   bool
	}
	var cells []cell
	for _, spec := range specs {
		cells = append(cells, cell{spec: spec})
	}
	cells = append(cells, cell{ps: true})
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) ([]seriesPoint, error) {
		name := "PS ideal (reference)"
		var res *server.Result
		if cl.ps {
			res = server.RunPS(jobs, server.Config{Hosts: 2,
				Policy: policy.NewRandom(sim.NewRNG(cfg.Seed, 400)), WarmupFraction: cfg.Warmup,
				KeepRecords: true})
		} else {
			p, err := cl.spec.build(load, size, 2, cfg.Seed)
			if err != nil {
				return nil, nil
			}
			name = cl.spec.name
			res = server.Run(jobs, server.Config{Hosts: 2, Policy: p, WarmupFraction: cfg.Warmup,
				KeepRecords: true})
		}
		tally := stats.NewDecileTally(bounds)
		for _, r := range res.Records {
			tally.Add(r.Size, r.Slowdown())
		}
		var pts []seriesPoint
		for c := 0; c < tally.Classes(); c++ {
			if tally.Count(c) == 0 {
				continue
			}
			pts = append(pts, seriesPoint{name, float64(c + 1), tally.Mean(c)})
		}
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pts := range outs {
		for _, p := range pts {
			t.Add(p.series, p.x, p.y)
		}
	}
	t.Notes = append(t.Notes,
		"SITA-U-fair flattens expected slowdown across deciles; balancing policies skew against small jobs;",
		"the PS line is footnote 1's perfectly-fair (but non-run-to-completion) ideal")
	return []Table{*t}, nil
}

func seriesForLoad(prefix string, load float64) string {
	return prefix + "=" + formatCell(load)
}

// seriesPoint is one (series, x, y) observation produced inside a fan-out
// cell and added to a table afterwards, in cell order.
type seriesPoint struct {
	series string
	x, y   float64
}

// burstyJobs builds a job stream with lognormal interarrival gaps of the
// given squared coefficient of variation at the target load.
func burstyJobs(n int, load float64, hosts int, size dist.BoundedPareto, scv float64, seed uint64) []workload.Job {
	meanGap := size.Moment(1) / (load * float64(hosts))
	var arr workload.ArrivalProcess
	if scv <= 1 {
		arr = workload.NewPoisson(1 / meanGap)
	} else {
		arr = workload.Renewal{Gap: dist.NewLognormalFromMeanSCV(meanGap, scv)}
	}
	src := workload.NewSource(arr, workload.DistSizes{D: size},
		sim.NewRNG(seed, 300+uint64(scv)), sim.NewRNG(seed, 301))
	return src.Take(n)
}
