package experiment

import (
	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/server"
)

// DerivationProtocol follows section 4.1's evaluation protocol to the
// letter: the trace is split in half; cutoffs are derived on the first half
// both analytically (M/G/1 formulas on the fitted size distribution) and
// experimentally (grid of simulated cutoffs on the derivation half); each
// cutoff is then evaluated by simulating the *second* half. The paper
// reports that "both methods yielded about the same result" — this driver
// checks that claim on the reconstruction.
func DerivationProtocol(cfg Config) ([]Table, error) {
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	derive, evaluate := tr.SplitHalf()

	cuts := NewTable("derivation-cutoffs", "Cutoffs derived on the first half of the trace",
		"system load", "cutoff (s)")
	perf := NewTable("derivation-perf", "Mean slowdown on the held-out second half",
		"system load", "mean slowdown")
	for _, load := range cfg.Loads {
		lambda := 2 * load / size.Moment(1)
		evalJobs := evaluate.JobsAtLoad(load, 2, true, cfg.Seed+1)
		deriveJobs := derive.JobsAtLoad(load, 2, true, cfg.Seed)

		for _, v := range []core.Variant{core.SITAUOpt, core.SITAUFair} {
			analytic, err := core.DeriveCutoff(v, lambda, size)
			if err != nil {
				continue
			}
			experimental, err := core.ExperimentalCutoff(v, deriveJobs, size, 16)
			if err != nil {
				continue
			}
			cuts.Add(v.String()+" (analytic)", load, analytic)
			cuts.Add(v.String()+" (experimental)", load, experimental)

			for _, c := range []struct {
				suffix string
				cut    float64
			}{
				{" (analytic)", analytic},
				{" (experimental)", experimental},
			} {
				res := server.Run(evalJobs, server.Config{
					Hosts:          2,
					Policy:         policy.NewSITA(v.String(), []float64{c.cut}),
					WarmupFraction: cfg.Warmup,
				})
				perf.Add(v.String()+c.suffix, load, res.Slowdown.Mean())
			}
		}
	}
	perf.Notes = append(perf.Notes,
		"section 4.1 protocol: cutoffs fitted on half the data generalize to the held-out half,",
		"and analytic and experimental derivations land within a small factor of each other")
	return []Table{*cuts, *perf}, nil
}
