package experiment

import (
	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/streamcache"
)

// DerivationProtocol follows section 4.1's evaluation protocol to the
// letter: the trace is split in half; cutoffs are derived on the first half
// both analytically (M/G/1 formulas on the fitted size distribution) and
// experimentally (grid of simulated cutoffs on the derivation half); each
// cutoff is then evaluated by simulating the *second* half. The paper
// reports that "both methods yielded about the same result" — this driver
// checks that claim on the reconstruction.
//
//sim:entry
func DerivationProtocol(cfg Config) ([]Table, error) {
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	derive, evaluate := tr.SplitHalf()

	cuts := NewTable("derivation-cutoffs", "Cutoffs derived on the first half of the trace",
		"system load", "cutoff (s)")
	perf := NewTable("derivation-perf", "Mean slowdown on the held-out second half",
		"system load", "mean slowdown")
	type cell struct {
		load    float64
		variant core.Variant
	}
	var cells []cell
	for _, load := range cfg.Loads {
		for _, v := range []core.Variant{core.SITAUOpt, core.SITAUFair} {
			cells = append(cells, cell{load, v})
		}
	}
	type outcome struct {
		ok                     bool
		analytic, experimental float64
		perfAnalytic, perfExp  float64
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (outcome, error) {
		lambda := 2 * cl.load / size.Moment(1)
		analytic, err := core.DeriveCutoff(cl.variant, lambda, size)
		if err != nil {
			return outcome{}, nil
		}
		deriveJobs := streamcache.Shared.JobsAtLoad(derive, cl.load, 2, true, cfg.Seed)
		experimental, err := core.ExperimentalCutoff(cl.variant, deriveJobs, size, 16)
		if err != nil {
			return outcome{}, nil
		}
		evalJobs := streamcache.Shared.JobsAtLoad(evaluate, cl.load, 2, true, cfg.Seed+1)
		perfs := [2]float64{}
		for i, cut := range []float64{analytic, experimental} {
			res := server.Run(evalJobs, server.Config{
				Hosts:          2,
				Policy:         policy.NewSITA(cl.variant.String(), []float64{cut}),
				WarmupFraction: cfg.Warmup,
			})
			perfs[i] = res.Slowdown.Mean()
		}
		return outcome{true, analytic, experimental, perfs[0], perfs[1]}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if !o.ok {
			continue
		}
		v, load := cells[i].variant, cells[i].load
		cuts.Add(v.String()+" (analytic)", load, o.analytic)
		cuts.Add(v.String()+" (experimental)", load, o.experimental)
		perf.Add(v.String()+" (analytic)", load, o.perfAnalytic)
		perf.Add(v.String()+" (experimental)", load, o.perfExp)
	}
	perf.Notes = append(perf.Notes,
		"section 4.1 protocol: cutoffs fitted on half the data generalize to the held-out half,",
		"and analytic and experimental derivations land within a small factor of each other")
	return []Table{*cuts, *perf}, nil
}
