package experiment

import (
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/streamcache"
)

// ManyHosts sweeps the host count far past the paper's Figure 6 range —
// h = 64 up to 4096 at fixed load — for the policies whose per-arrival
// host selection is now indexed (Least-Work-Left, Shortest-Queue,
// Central-Queue) plus Random as the selection-free baseline. It exists to
// exercise and measure the O(log h) fast path at cluster scale, in the
// regime scalable-dispatching work (Gardner et al.; the "Dispatching
// Odyssey" survey) studies.
//
// The driver is opt-in: registered with Drivers() so `sweep -exp
// many-hosts` runs it, but deliberately absent from IDs(), so `-exp all`
// — and therefore the recorded results/ corpus — does not include it.
// Job seeding follows Figure 6 (seed + host count), so every policy at a
// host count sees the same arrival stream and output stays bit-identical
// at any worker count.
func ManyHosts(cfg Config) ([]Table, error) {
	const load = 0.7
	hostCounts := []int{64, 128, 256, 512, 1024, 2048, 4096}
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	t := NewTable("many-hosts", "Slowdown vs number of hosts at load 0.7, indexed policies (simulation)",
		"hosts", "mean slowdown")
	specs := []policySpec{specLWL(), specShortestQueue(), specCentralQueue(), specRandom()}
	type cell struct {
		hosts int
		spec  policySpec
	}
	cells := make([]cell, 0, len(hostCounts)*len(specs))
	for _, h := range hostCounts {
		for _, spec := range specs {
			cells = append(cells, cell{h, spec})
		}
	}
	type outcome struct {
		ok   bool
		mean float64
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (outcome, error) {
		p, err := cl.spec.build(load, cfg.Profile.MustSizeDist(), cl.hosts, cfg.Seed)
		if err != nil {
			return outcome{}, nil
		}
		jobs := streamcache.Shared.JobsAtLoad(tr, load, cl.hosts, true, cfg.Seed+uint64(cl.hosts))
		res := server.Run(jobs, server.Config{Hosts: cl.hosts, Policy: p, WarmupFraction: cfg.Warmup})
		return outcome{true, res.Slowdown.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if o.ok {
			t.Add(cells[i].spec.name, float64(cells[i].hosts), o.mean)
		}
	}
	return []Table{*t}, nil
}
