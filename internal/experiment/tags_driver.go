package experiment

import (
	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/server"
	"sita/internal/tags"
)

// TAGSComparison pits TAGS — which needs *no* size information — against
// the size-aware SITA-U-fair and the size-blind Random and Least-Work-Left
// baselines across the load sweep. This quantifies the paper's reference
// [10]: load unbalancing survives even when job durations are unknown,
// at the price of wasted (killed-and-restarted) work.
func TAGSComparison(cfg Config) ([]Table, error) {
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	mean := NewTable("tags-mean", "TAGS (unknown sizes) vs size-aware and size-blind policies, 2 hosts (simulation)",
		"system load", "mean slowdown")
	waste := NewTable("tags-waste", "TAGS wasted work", "system load", "wasted-work fraction")
	const hosts = 2
	for _, load := range cfg.Loads {
		jobs := tr.JobsAtLoad(load, hosts, true, cfg.Seed)
		lambda := float64(hosts) * load / size.Moment(1)

		// TAGS with analytically optimized kill cutoffs.
		if cuts, err := tags.OptimalCutoffs(lambda, size, hosts); err == nil {
			res := tags.Simulate(jobs, cuts, cfg.Warmup)
			mean.Add("TAGS", load, res.Slowdown.Mean())
			waste.Add("TAGS", load, res.WasteFraction())
		}

		for _, spec := range []policySpec{specRandom(), specLWL(), specSITA(core.SITAUFair)} {
			p, err := spec.build(load, size, hosts, cfg.Seed)
			if err != nil {
				continue
			}
			res := server.Run(jobs, server.Config{Hosts: hosts, Policy: p, WarmupFraction: cfg.Warmup})
			mean.Add(spec.name, load, res.Slowdown.Mean())
		}
	}
	mean.Notes = append(mean.Notes,
		"TAGS knows nothing about job sizes yet tracks size-aware SITA-U; Random and LWL know nothing and pay for it")
	return []Table{*mean, *waste}, nil
}

// compile-time guard: the policies used above satisfy server.Policy.
var _ server.Policy = policy.NewLeastWorkLeft()
