package experiment

import (
	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/streamcache"
	"sita/internal/tags"
)

// TAGSComparison pits TAGS — which needs *no* size information — against
// the size-aware SITA-U-fair and the size-blind Random and Least-Work-Left
// baselines across the load sweep. This quantifies the paper's reference
// [10]: load unbalancing survives even when job durations are unknown,
// at the price of wasted (killed-and-restarted) work.
func TAGSComparison(cfg Config) ([]Table, error) {
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	mean := NewTable("tags-mean", "TAGS (unknown sizes) vs size-aware and size-blind policies, 2 hosts (simulation)",
		"system load", "mean slowdown")
	waste := NewTable("tags-waste", "TAGS wasted work", "system load", "wasted-work fraction")
	const hosts = 2
	specs := []policySpec{specRandom(), specLWL(), specSITA(core.SITAUFair)}
	type cell struct {
		load float64
		// spec is nil for the TAGS cell at this load.
		spec *policySpec
	}
	var cells []cell
	for _, load := range cfg.Loads {
		cells = append(cells, cell{load: load})
		for i := range specs {
			cells = append(cells, cell{load, &specs[i]})
		}
	}
	type outcome struct {
		ok           bool
		mean         float64
		waste        float64
		wasteTracked bool
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (outcome, error) {
		jobs := streamcache.Shared.JobsAtLoad(tr, cl.load, hosts, true, cfg.Seed)
		if cl.spec == nil {
			// TAGS with analytically optimized kill cutoffs.
			lambda := float64(hosts) * cl.load / size.Moment(1)
			cuts, err := tags.OptimalCutoffs(lambda, size, hosts)
			if err != nil {
				return outcome{}, nil
			}
			res := tags.Simulate(jobs, cuts, cfg.Warmup)
			return outcome{true, res.Slowdown.Mean(), res.WasteFraction(), true}, nil
		}
		p, err := cl.spec.build(cl.load, size, hosts, cfg.Seed)
		if err != nil {
			return outcome{}, nil
		}
		res := server.Run(jobs, server.Config{Hosts: hosts, Policy: p, WarmupFraction: cfg.Warmup})
		return outcome{ok: true, mean: res.Slowdown.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if !o.ok {
			continue
		}
		name := "TAGS"
		if cells[i].spec != nil {
			name = cells[i].spec.name
		}
		mean.Add(name, cells[i].load, o.mean)
		if o.wasteTracked {
			waste.Add("TAGS", cells[i].load, o.waste)
		}
	}
	mean.Notes = append(mean.Notes,
		"TAGS knows nothing about job sizes yet tracks size-aware SITA-U; Random and LWL know nothing and pay for it")
	return []Table{*mean, *waste}, nil
}

// compile-time guard: the policies used above satisfy server.Policy.
var _ server.Policy = policy.NewLeastWorkLeft()
