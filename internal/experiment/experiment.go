// Package experiment regenerates every table and figure of the paper's
// evaluation: the trace characterization (Table 1), the load-balancing
// policy comparison (Figures 2-3), the load-unbalancing policies (Figures
// 4-5), large systems (Figure 6), bursty arrivals (Figure 7), the analytic
// counterparts (Figures 8-9), and the J90/CTC appendices (Figures 10-13),
// plus ablations the paper alludes to but does not run.
//
// Each driver returns Tables: named series over a shared x axis, rendered
// as aligned text or CSV by the caller (cmd/sweep).
//
// Drivers are deterministic: cell seeds derive from cell coordinates
// (runner.CellSeed) before fan-out, so a driver's tables are bit-identical
// for any Config.Workers value — the property the results/ golden files
// pin. Drivers may run cells concurrently through internal/runner, but a
// Config is owned by one driver call at a time; nothing here is safe for
// concurrent mutation.
package experiment

import (
	"fmt"
	"math"
	"sync"

	"sita/internal/core"
	"sita/internal/dist"
	"sita/internal/policy"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/streamcache"
	"sita/internal/trace"
)

// Config is shared experiment configuration.
type Config struct {
	// Profile selects the workload (C90 by default).
	Profile trace.Profile
	// Jobs caps the trace length per simulated point (0 = profile's full
	// length). Smaller values trade statistical stability for speed.
	Jobs int
	// Seed drives all randomness.
	Seed uint64
	// Warmup is the fraction of jobs excluded from statistics.
	Warmup float64
	// Loads is the system-load sweep for the load-axis figures.
	Loads []float64
	// Workers bounds how many simulation cells run concurrently
	// (0 = runtime.GOMAXPROCS(0)). Every driver's output is bit-identical
	// for any worker count: cell seeds are pure functions of the cell's
	// coordinates, and results are collected in cell order.
	Workers int
	// Progress, when non-nil, receives (completed, total) cell counts as a
	// driver's simulation cells finish. Counts reset per fan-out.
	Progress func(done, total int)
}

// pool returns the runner options for fanning this config's cells out.
func (c Config) pool() runner.Options {
	return runner.Options{Workers: c.Workers, Progress: c.Progress}
}

// Default returns the configuration used by the reproduction: the C90
// profile, its full job count, and the paper's plotted load range.
func Default() Config {
	return Config{
		Profile: trace.C90(),
		Seed:    1,
		Warmup:  0.1,
		Loads:   []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
	}
}

// withProfile returns a copy of the config targeting another profile.
func (c Config) withProfile(p trace.Profile) Config {
	c.Profile = p
	return c
}

// jobsPerPoint reports the trace length to simulate.
func (c Config) jobsPerPoint() int {
	if c.Jobs > 0 && c.Jobs < c.Profile.Jobs {
		return c.Jobs
	}
	return c.Profile.Jobs
}

// traceCache memoizes Generate across experiment drivers. A full sweep
// asks for the same (profile, seed) trace dozens of times — once per
// driver — and generation is pure, so the second request onward reuses the
// first trace. Cached traces are shared and must be treated as read-only,
// which every consumer already does (JobsAtLoad, ComputeStats and
// SplitHalf never write the job slice). A plain mutex-guarded map rather
// than sync.Map: struct keys then hash without boxing, so cache hits do
// not allocate.
var (
	traceCacheMu sync.Mutex
	traceCache   = map[traceCacheKey]*trace.Trace{}
)

type traceCacheKey struct {
	profile trace.Profile
	seed    uint64
}

// buildTrace synthesizes the profile's trace once; experiments re-time it
// per load.
func (c Config) buildTrace() (*trace.Trace, error) {
	p := c.Profile
	p.Jobs = c.jobsPerPoint()
	key := traceCacheKey{profile: p, seed: c.Seed}
	traceCacheMu.Lock()
	tr, ok := traceCache[key]
	traceCacheMu.Unlock()
	if ok {
		return tr, nil
	}
	tr, err := trace.Generate(p, c.Seed)
	if err != nil {
		return nil, err
	}
	traceCacheMu.Lock()
	traceCache[key] = tr
	traceCacheMu.Unlock()
	return tr, nil
}

// policySpec names a policy and builds a fresh instance for a given load
// (SITA cutoffs depend on the arrival rate).
type policySpec struct {
	name  string
	build func(load float64, size dist.BoundedPareto, hosts int, seed uint64) (server.Policy, error)
}

func specRandom() policySpec {
	return policySpec{name: "Random", build: func(_ float64, _ dist.BoundedPareto, _ int, seed uint64) (server.Policy, error) {
		return policy.NewRandom(sim.NewRNG(seed, 100)), nil
	}}
}

func specRoundRobin() policySpec {
	return policySpec{name: "Round-Robin", build: func(float64, dist.BoundedPareto, int, uint64) (server.Policy, error) {
		return policy.NewRoundRobin(), nil
	}}
}

func specLWL() policySpec {
	return policySpec{name: "Least-Work-Left", build: func(float64, dist.BoundedPareto, int, uint64) (server.Policy, error) {
		return policy.NewLeastWorkLeft(), nil
	}}
}

func specShortestQueue() policySpec {
	return policySpec{name: "Shortest-Queue", build: func(float64, dist.BoundedPareto, int, uint64) (server.Policy, error) {
		return policy.NewShortestQueue(), nil
	}}
}

func specCentralQueue() policySpec {
	return policySpec{name: "Central-Queue", build: func(float64, dist.BoundedPareto, int, uint64) (server.Policy, error) {
		return policy.NewCentralQueue(), nil
	}}
}

func specSITA(v core.Variant) policySpec {
	return policySpec{name: v.String(), build: func(load float64, size dist.BoundedPareto, hosts int, _ uint64) (server.Policy, error) {
		d, err := core.NewDesign(v, load, size, hosts)
		if err != nil {
			return nil, err
		}
		return d.Policy(), nil
	}}
}

// jobSeed derives the job-stream seed for one load point. It depends on
// (base seed, load) only — never on the policy — so every policy at a load
// point sees the same arrival sequence (common random numbers, which is
// what makes the policy curves directly comparable). The formula predates
// runner.CellSeed and is frozen: the recorded outputs under results/ and
// the measured numbers in EXPERIMENTS.md key on it.
func (c Config) jobSeed(load float64) uint64 {
	return c.Seed + uint64(math.Float64bits(load))
}

// simSweep simulates each policy across the load sweep and returns mean
// slowdown and variance-of-slowdown tables. Cells (one server.Run per
// (policy, load) pair) fan out on the config's worker pool; results are
// collected in cell order, so output is identical for any worker count.
func (c Config) simSweep(id, title string, hosts int, specs []policySpec, poisson bool) ([]Table, error) {
	tr, err := c.buildTrace()
	if err != nil {
		return nil, err
	}
	size := c.Profile.MustSizeDist()
	mean := NewTable(id+"-mean", title+" — mean slowdown", "system load", "mean slowdown")
	vari := NewTable(id+"-var", title+" — variance of slowdown", "system load", "variance of slowdown")
	type cell struct {
		spec policySpec
		load float64
	}
	cells := make([]cell, 0, len(specs)*len(c.Loads))
	for _, spec := range specs {
		for _, load := range c.Loads {
			cells = append(cells, cell{spec, load})
		}
	}
	type outcome struct {
		ok         bool
		mean, vari float64
	}
	outs, err := runner.MapOpts(c.pool(), cells, func(_ int, cl cell) (outcome, error) {
		p, err := cl.spec.build(cl.load, size, hosts, c.Seed)
		if err != nil {
			// Infeasible points (e.g. SITA cutoffs at overload) are
			// skipped, like the unreadable high-load ends of the
			// paper's plots.
			return outcome{}, nil
		}
		jobs := streamcache.Shared.JobsAtLoad(tr, cl.load, hosts, poisson, c.jobSeed(cl.load))
		res := server.Run(jobs, server.Config{
			Hosts:          hosts,
			Policy:         p,
			WarmupFraction: c.Warmup,
		})
		return outcome{true, res.Slowdown.Mean(), res.Slowdown.Variance()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if !o.ok {
			continue
		}
		mean.Add(cells[i].spec.name, cells[i].load, o.mean)
		vari.Add(cells[i].spec.name, cells[i].load, o.vari)
	}
	return []Table{*mean, *vari}, nil
}

// traceStats memoizes ComputeStats through the stream cache's
// identity-keyed memo: the statistic is pure, and identity keying (unlike
// the pointer keying this replaces) shares the entry across regenerations
// of the same recipe and can never alias a recycled pointer.
func traceStats(tr *trace.Trace) trace.Stats {
	return streamcache.Shared.TraceStats(tr)
}

// Table1 regenerates the trace characterization table for all three
// workloads.
//
//sim:entry
func Table1(cfg Config) ([]Table, error) {
	t := NewTable("table1", "Characteristics of the trace data", "profile", "")
	t.Columns = []string{"jobs", "mean(s)", "min(s)", "max(s)", "C^2", "tail@halfload"}
	t.RowLabels = make([]string, 0, 3)
	for i, p := range []trace.Profile{trace.C90(), trace.J90(), trace.CTC()} {
		c := cfg.withProfile(p)
		tr, err := c.buildTrace()
		if err != nil {
			return nil, fmt.Errorf("experiment: table1 %s: %w", p.Name, err)
		}
		st := traceStats(tr)
		x := float64(i)
		t.Add("jobs", x, float64(st.Jobs))
		t.Add("mean(s)", x, st.Mean)
		t.Add("min(s)", x, st.Min)
		t.Add("max(s)", x, st.Max)
		t.Add("C^2", x, st.SquaredCV)
		t.Add("tail@halfload", x, st.TailJobFraction)
		t.RowLabels = append(t.RowLabels, p.Name)
	}
	return []Table{*t}, nil
}

// Figure2 compares the load-balancing policies (Random, Least-Work-Left,
// SITA-E) on a 2-host system by trace-driven simulation.
//
//sim:entry
func Figure2(cfg Config) ([]Table, error) {
	return cfg.simSweep("fig2", "Load-balancing policies, 2 hosts (simulation)", 2,
		[]policySpec{specRandom(), specLWL(), specSITA(core.SITAE)}, true)
}

// Figure3 repeats Figure 2 with 4 hosts.
//
//sim:entry
func Figure3(cfg Config) ([]Table, error) {
	return cfg.simSweep("fig3", "Load-balancing policies, 4 hosts (simulation)", 4,
		[]policySpec{specRandom(), specLWL(), specSITA(core.SITAE)}, true)
}

// Figure4 compares SITA-E against the load-unbalancing SITA-U-opt and
// SITA-U-fair on 2 hosts by simulation.
//
//sim:entry
func Figure4(cfg Config) ([]Table, error) {
	return cfg.simSweep("fig4", "SITA-E vs SITA-U-opt vs SITA-U-fair, 2 hosts (simulation)", 2,
		[]policySpec{specSITA(core.SITAE), specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}, true)
}

// Figure5 reports the fraction of total load sent to Host 1 (the short
// host) under SITA-U-opt and SITA-U-fair, against the rule of thumb rho/2.
//
//sim:entry
func Figure5(cfg Config) ([]Table, error) {
	size := cfg.Profile.MustSizeDist()
	t := NewTable("fig5", "Fraction of load to Host 1 (analysis)", "system load", "load fraction to Host 1")
	for _, load := range cfg.Loads {
		for _, v := range []core.Variant{core.SITAUOpt, core.SITAUFair} {
			d, err := core.NewDesign(v, load, size, 2)
			if err != nil {
				continue
			}
			t.Add(v.String(), load, d.ShortLoadFraction())
		}
		t.Add("rule-of-thumb", load, core.RuleOfThumbFraction(load))
	}
	return []Table{*t}, nil
}

// Figure6 sweeps the number of hosts at fixed system load 0.7: LWL against
// the grouped SITA policies of section 5.
//
//sim:entry
func Figure6(cfg Config) ([]Table, error) {
	const load = 0.7
	// 2..100 are the paper's plotted range; 128..256 extend the crossover
	// region now that indexed host selection makes large h cheap (the
	// many-hosts driver pushes further still).
	hostCounts := []int{2, 4, 8, 16, 32, 48, 64, 80, 100, 128, 192, 256}
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	t := NewTable("fig6", "Slowdown vs number of hosts at load 0.7 (simulation)", "hosts", "mean slowdown")
	specs := []policySpec{specLWL(), specSITA(core.SITAE), specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}
	type cell struct {
		hosts int
		spec  policySpec
	}
	cells := make([]cell, 0, len(hostCounts)*len(specs))
	for _, h := range hostCounts {
		for _, spec := range specs {
			cells = append(cells, cell{h, spec})
		}
	}
	type outcome struct {
		ok   bool
		mean float64
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (outcome, error) {
		p, err := cl.spec.build(load, size, cl.hosts, cfg.Seed)
		if err != nil {
			return outcome{}, nil
		}
		// The job stream depends on the host count only, so every policy at
		// a host count is measured on the same arrivals.
		jobs := streamcache.Shared.JobsAtLoad(tr, load, cl.hosts, true, cfg.Seed+uint64(cl.hosts))
		res := server.Run(jobs, server.Config{Hosts: cl.hosts, Policy: p, WarmupFraction: cfg.Warmup})
		return outcome{true, res.Slowdown.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if o.ok {
			t.Add(cells[i].spec.name, float64(cells[i].hosts), o.mean)
		}
	}
	return []Table{*t}, nil
}

// Figure7 removes the Poisson assumption: the trace's own bursty
// interarrival gaps are rescaled to each load (section 6), with the
// analytic Poisson cutoffs retained, exactly as in the paper.
//
//sim:entry
func Figure7(cfg Config) ([]Table, error) {
	c := cfg
	// The interesting region extends toward saturation; use the paper's
	// high-load sweep unless the caller chose loads explicitly.
	if equalLoads(cfg.Loads, Default().Loads) {
		c.Loads = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98}
	}
	// Section 6's workload has dependencies between arrivals and sizes:
	// bursts of similar-runtime jobs. Regenerate the trace with the
	// correlation switched on.
	c.Profile.BurstSizeBand = 0.15
	tables, err := c.simSweep("fig7", "Bursty (scaled-trace) arrivals, 2 hosts (simulation)", 2,
		[]policySpec{specLWL(), specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}, false)
	if err != nil {
		return nil, err
	}
	return tables, nil
}

// Figure8 is the analytic counterpart of Figure 2: mean slowdown of the
// load-balancing policies from queueing formulas.
//
//sim:entry
func Figure8(cfg Config) ([]Table, error) {
	size := cfg.Profile.MustSizeDist()
	t := NewTable("fig8", "Load-balancing policies, 2 hosts (analysis)", "system load", "mean slowdown")
	const hosts = 2
	for _, load := range cfg.Loads {
		lambda := float64(hosts) * load / size.Moment(1)
		t.Add("Random", load, queueing2MeanSlowdown(queueingRandom, lambda, size, hosts))
		t.Add("Round-Robin", load, queueing2MeanSlowdown(queueingRoundRobin, lambda, size, hosts))
		t.Add("Least-Work-Left", load, queueing2MeanSlowdown(queueingLWL, lambda, size, hosts))
		if d, err := core.NewDesign(core.SITAE, load, size, hosts); err == nil {
			t.Add("SITA-E", load, d.Predicted.MeanSlowdown)
		}
	}
	return []Table{*t}, nil
}

// Figure9 is the analytic counterpart of Figure 4: SITA-E vs SITA-U-opt vs
// SITA-U-fair mean slowdown from queueing formulas.
//
//sim:entry
func Figure9(cfg Config) ([]Table, error) {
	size := cfg.Profile.MustSizeDist()
	t := NewTable("fig9", "SITA variants, 2 hosts (analysis)", "system load", "mean slowdown")
	for _, load := range cfg.Loads {
		for _, v := range []core.Variant{core.SITAE, core.SITAUOpt, core.SITAUFair} {
			d, err := core.NewDesign(v, load, size, 2)
			if err != nil {
				continue
			}
			t.Add(v.String(), load, d.Predicted.MeanSlowdown)
		}
	}
	return []Table{*t}, nil
}

// Figure10 repeats the policy comparison (Figures 2 and 4 combined) on the
// J90 workload.
//
//sim:entry
func Figure10(cfg Config) ([]Table, error) {
	c := cfg.withProfile(trace.J90())
	tables, err := c.simSweep("fig10", "All policies, 2 hosts, J90 (simulation)", 2,
		[]policySpec{specRandom(), specLWL(), specSITA(core.SITAE), specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}, true)
	return tables, err
}

// Figure11 repeats Figure 5 on the J90 workload.
//
//sim:entry
func Figure11(cfg Config) ([]Table, error) {
	tables, err := Figure5(cfg.withProfile(trace.J90()))
	if err != nil {
		return nil, err
	}
	tables[0].ID = "fig11"
	tables[0].Title += " — J90"
	return tables, nil
}

// Figure12 repeats the policy comparison on the CTC workload.
//
//sim:entry
func Figure12(cfg Config) ([]Table, error) {
	c := cfg.withProfile(trace.CTC())
	tables, err := c.simSweep("fig12", "All policies, 2 hosts, CTC (simulation)", 2,
		[]policySpec{specRandom(), specLWL(), specSITA(core.SITAE), specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}, true)
	return tables, err
}

// Figure13 repeats Figure 5 on the CTC workload.
//
//sim:entry
func Figure13(cfg Config) ([]Table, error) {
	tables, err := Figure5(cfg.withProfile(trace.CTC()))
	if err != nil {
		return nil, err
	}
	tables[0].ID = "fig13"
	tables[0].Title += " — CTC"
	return tables, nil
}

// Drivers maps experiment IDs to their driver functions.
func Drivers() map[string]func(Config) ([]Table, error) {
	return map[string]func(Config) ([]Table, error){
		"table1": Table1,
		"fig2":   Figure2,
		"fig3":   Figure3,
		"fig4":   Figure4,
		"fig5":   Figure5,
		"fig6":   Figure6,
		"fig7":   Figure7,
		"fig8":   Figure8,
		"fig9":   Figure9,
		"fig10":  Figure10,
		"fig11":  Figure11,
		"fig12":  Figure12,
		"fig13":  Figure13,
		// Ablations beyond the paper's figures:
		"cutoff-sensitivity": CutoffSensitivity,
		"misclassification":  Misclassification,
		"burstiness":         BurstinessSweep,
		"multi-cutoff":       MultiCutoffAblation,
		"fairness-profile":   FairnessProfile,
		"tags":               TAGSComparison,
		"tail-latency":       TailLatency,
		"derivation":         DerivationProtocol,
		"sjf":                SJFComparison,
		"estimate-noise":     EstimateNoise,
		"response-time":      ResponseTime,
		"variance-analysis":  VarianceAnalysis,
		// Opt-in sweeps, absent from IDs() so `-exp all` (and the recorded
		// results/ corpus) excludes them:
		"many-hosts": ManyHosts,
	}
}

// IDs returns the experiment identifiers in presentation order.
func IDs() []string {
	return []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"cutoff-sensitivity", "misclassification", "burstiness",
		"multi-cutoff", "fairness-profile", "tags", "tail-latency",
		"derivation", "sjf", "estimate-noise", "response-time",
		"variance-analysis",
	}
}

// equalLoads reports whether two load sweeps are identical.
func equalLoads(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:allow floateq sweep-config identity check, not a computed value
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
