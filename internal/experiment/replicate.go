package experiment

import (
	"fmt"

	"sita/internal/stats"
)

// Replicate runs an experiment driver across several seeds and aggregates
// each table point into mean and 95% confidence half-width tables. Single
// long runs are the paper's protocol; replication quantifies how much of
// each curve is estimation noise — essential near saturation, where mean
// slowdown converges very slowly.
func Replicate(driver func(Config) ([]Table, error), cfg Config, seeds []uint64) ([]Table, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: replicate needs at least one seed")
	}
	// accum[tableID][series][x] collects per-seed values.
	type key struct {
		series string
		x      float64
	}
	accum := map[string]map[key]*stats.Stream{}
	var protos []Table
	protoSeen := map[string]bool{}

	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		tables, err := driver(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: replicate seed %d: %w", seed, err)
		}
		for _, t := range tables {
			if !protoSeen[t.ID] {
				protoSeen[t.ID] = true
				protos = append(protos, t)
			}
			m, ok := accum[t.ID]
			if !ok {
				m = map[key]*stats.Stream{}
				accum[t.ID] = m
			}
			for _, s := range t.SeriesNames() {
				for _, x := range t.Xs() {
					if y, ok := t.Value(s, x); ok {
						k := key{s, x}
						st := m[k]
						if st == nil {
							st = &stats.Stream{}
							m[k] = st
						}
						st.Add(y)
					}
				}
			}
		}
	}

	var out []Table
	for _, proto := range protos {
		mean := NewTable(proto.ID+"-repmean",
			fmt.Sprintf("%s — mean of %d replications", proto.Title, len(seeds)),
			proto.XLabel, proto.YLabel)
		ci := NewTable(proto.ID+"-repci",
			fmt.Sprintf("%s — 95%% CI half-width over %d replications", proto.Title, len(seeds)),
			proto.XLabel, proto.YLabel)
		for k, st := range accum[proto.ID] {
			mean.Add(k.series, k.x, st.Mean())
			ci.Add(k.series, k.x, st.CI(0.95))
		}
		out = append(out, *mean, *ci)
	}
	return out, nil
}
