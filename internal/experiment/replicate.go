package experiment

import (
	"fmt"
	"runtime"
	"sort"

	"sita/internal/runner"
	"sita/internal/stats"
)

// Replicate runs an experiment driver across several seeds and aggregates
// each table point into mean and 95% confidence half-width tables. Single
// long runs are the paper's protocol; replication quantifies how much of
// each curve is estimation noise — essential near saturation, where mean
// slowdown converges very slowly.
//
// Replications are independent, so they fan out on the config's worker
// pool; the pool budget is split between the seed level and each driver's
// own cell-level fan-out. Aggregation walks the replications in seed
// order, so the output is identical for any worker count.
//
//sim:entry
func Replicate(driver func(Config) ([]Table, error), cfg Config, seeds []uint64) ([]Table, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: replicate needs at least one seed")
	}

	// Split the worker budget: outer workers run whole replications, each
	// replication's driver gets the remaining share for its cells.
	budget := cfg.Workers
	if budget <= 0 {
		//lint:allow detflow worker-budget default; replication merge order is deterministic at any worker count
		budget = runtime.GOMAXPROCS(0)
	}
	outer := budget
	if outer > len(seeds) {
		outer = len(seeds)
	}
	inner := budget / outer
	if inner < 1 {
		inner = 1
	}

	perSeed, err := runner.MapOpts(runner.Options{Workers: outer, Progress: cfg.Progress}, seeds,
		func(_ int, seed uint64) ([]Table, error) {
			c := cfg
			c.Seed = seed
			c.Workers = inner
			c.Progress = nil // seed-level progress only; inner counts would interleave
			tables, err := driver(c)
			if err != nil {
				return nil, fmt.Errorf("experiment: replicate seed %d: %w", seed, err)
			}
			return tables, nil
		})
	if err != nil {
		return nil, err
	}

	// accum[tableID][series][x] collects per-seed values, walked in seed
	// order so Welford accumulation order (and thus every output bit) is
	// independent of completion order.
	type key struct {
		series string
		x      float64
	}
	accum := map[string]map[key]*stats.Stream{}
	var protos []Table
	protoSeen := map[string]bool{}
	for _, tables := range perSeed {
		for _, t := range tables {
			if !protoSeen[t.ID] {
				protoSeen[t.ID] = true
				protos = append(protos, t)
			}
			m, ok := accum[t.ID]
			if !ok {
				m = map[key]*stats.Stream{}
				accum[t.ID] = m
			}
			for _, s := range t.SeriesNames() {
				for _, x := range t.Xs() {
					if y, ok := t.Value(s, x); ok {
						k := key{s, x}
						st := m[k]
						if st == nil {
							st = &stats.Stream{}
							m[k] = st
						}
						st.Add(y)
					}
				}
			}
		}
	}

	var out []Table
	for _, proto := range protos {
		mean := NewTable(proto.ID+"-repmean",
			fmt.Sprintf("%s — mean of %d replications", proto.Title, len(seeds)),
			proto.XLabel, proto.YLabel)
		ci := NewTable(proto.ID+"-repci",
			fmt.Sprintf("%s — 95%% CI half-width over %d replications", proto.Title, len(seeds)),
			proto.XLabel, proto.YLabel)
		// Walk the first replication's series and x order rather than the
		// accumulator map, so series appear in the prototype's column order
		// instead of Go's randomized map order.
		m := accum[proto.ID]
		for _, s := range proto.SeriesNames() {
			for _, x := range proto.Xs() {
				if st, ok := m[key{s, x}]; ok {
					mean.Add(s, x, st.Mean())
					ci.Add(s, x, st.CI(0.95))
				}
			}
		}
		// Points absent from the prototype (a cell populated under some
		// other seed only) still need to appear; append them in sorted
		// order so output never depends on map iteration.
		var rest []key
		for k := range m {
			if _, ok := mean.Value(k.series, k.x); !ok {
				rest = append(rest, k)
			}
		}
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].series != rest[j].series {
				return rest[i].series < rest[j].series
			}
			return rest[i].x < rest[j].x
		})
		for _, k := range rest {
			mean.Add(k.series, k.x, m[k].Mean())
			ci.Add(k.series, k.x, m[k].CI(0.95))
		}
		out = append(out, *mean, *ci)
	}
	return out, nil
}
