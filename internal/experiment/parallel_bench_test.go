package experiment

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSweepWorkers regenerates a multi-figure batch (Figures 2, 4 and
// 6 — 38 simulation cells) at each worker count. The workers=1 case is the
// sequential baseline; on a 4-core machine workers=4 completes the same
// byte-identical regeneration ≥2× faster (the cells are independent
// simulations with no shared state, so speedup tracks core count until the
// longest single cell dominates).
//
//	go test -bench Sweep -benchtime 3x ./internal/experiment/
func BenchmarkSweepWorkers(b *testing.B) {
	cfg := Default()
	cfg.Jobs = 20000
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		counts = append(counts, g)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := cfg
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				for _, driver := range []func(Config) ([]Table, error){Figure2, Figure4, Figure6} {
					tables, err := driver(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if len(tables) == 0 {
						b.Fatal("no output")
					}
				}
			}
		})
	}
}

// BenchmarkReplicateWorkers measures the replication layer's fan-out: four
// independent replications of Figure 4, the unit of work the -rep flag
// multiplies.
func BenchmarkReplicateWorkers(b *testing.B) {
	cfg := Default()
	cfg.Jobs = 10000
	cfg.Loads = []float64{0.7}
	seeds := []uint64{1, 2, 3, 4}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := cfg
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := Replicate(Figure4, cfg, seeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
