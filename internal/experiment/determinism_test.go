package experiment

import (
	"runtime"
	"strings"
	"testing"
)

// renderAll renders every table of a driver run to one CSV blob, the
// byte-level fingerprint the determinism tests compare.
func renderAll(t *testing.T, driver func(Config) ([]Table, error), cfg Config) string {
	t.Helper()
	tables, err := driver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.ID)
		sb.WriteByte('\n')
		sb.WriteString(tb.CSV())
	}
	return sb.String()
}

// TestWorkerCountInvariance is the contract of the parallel runner: the
// same figure driver must produce byte-identical CSV output for workers=1
// (the sequential fast path), workers=4, and workers=GOMAXPROCS, because
// every cell's seed is a pure function of its coordinates and results are
// collected in cell order.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 6000
	drivers := map[string]func(Config) ([]Table, error){
		"fig4":             Figure4, // representative simSweep driver
		"fig6":             Figure6, // host-count × policy cells
		"misclassify":      Misclassification,
		"fairness-profile": FairnessProfile,
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for name, driver := range drivers {
		name, driver := name, driver
		t.Run(name, func(t *testing.T) {
			cfg := cfg
			cfg.Workers = workerCounts[0]
			want := renderAll(t, driver, cfg)
			for _, w := range workerCounts[1:] {
				cfg.Workers = w
				if got := renderAll(t, driver, cfg); got != want {
					t.Errorf("workers=%d output differs from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s",
						w, want, w, got)
				}
			}
		})
	}
}

// TestReplicateWorkerCountInvariance extends the guarantee through the
// replication layer, which splits the worker budget between whole
// replications and each driver's cells.
func TestReplicateWorkerCountInvariance(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 4000
	cfg.Loads = []float64{0.7}
	seeds := []uint64{1, 2, 3}
	render := func(workers int) string {
		cfg := cfg
		cfg.Workers = workers
		tables, err := Replicate(Figure4, cfg, seeds)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range tables {
			sb.WriteString(tb.ID)
			sb.WriteByte('\n')
			sb.WriteString(tb.CSV())
		}
		return sb.String()
	}
	want := render(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := render(w); got != want {
			t.Errorf("replicate with workers=%d differs from workers=1:\n%s\nvs\n%s", w, want, got)
		}
	}
}

// TestProgressReporting verifies a driver surfaces cell completion through
// Config.Progress exactly once per cell.
func TestProgressReporting(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 2000
	cfg.Loads = []float64{0.5, 0.7}
	var calls, lastTotal int
	cfg.Progress = func(done, total int) {
		calls++
		lastTotal = total
	}
	if _, err := Figure4(cfg); err != nil {
		t.Fatal(err)
	}
	// Figure 4 sweeps 3 SITA variants over 2 loads = 6 cells.
	if lastTotal != 6 || calls != 6 {
		t.Errorf("progress saw %d calls with total %d, want 6 and 6", calls, lastTotal)
	}
}
