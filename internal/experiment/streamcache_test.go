package experiment

import (
	"testing"

	"sita/internal/streamcache"
)

// TestCacheParityAndSharing is the stream cache's contract with the golden
// results: a figure driver must produce byte-identical CSV with the cache
// enabled and bypassed, and with the cache on, a multi-policy sweep must
// generate each distinct (load, seed) stream once — not once per policy.
func TestCacheParityAndSharing(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 6000
	cfg.Workers = 4

	before := streamcache.Shared.Stats()
	cached := renderAll(t, Figure4, cfg)
	after := streamcache.Shared.Stats()

	// Figure 4 sweeps 5 policies over len(cfg.Loads) load points with a
	// per-load job seed: the distinct streams are the load points, so
	// generations must not scale with the policy count. (Another test may
	// have warmed the same keys, so bound rather than pin.)
	newGen := after.Generations - before.Generations
	if maxGen := uint64(len(cfg.Loads)); newGen > maxGen {
		t.Errorf("cached sweep performed %d generations, want <= %d (one per load point)",
			newGen, maxGen)
	}
	cells := after.Hits + after.Misses + after.Joins - before.Hits - before.Misses - before.Joins
	if cells <= uint64(len(cfg.Loads)) {
		t.Errorf("expected policy-fanout lookups, saw only %d", cells)
	}

	streamcache.Shared.SetBypass(true)
	defer streamcache.Shared.SetBypass(false)
	bypassed := renderAll(t, Figure4, cfg)
	if cached != bypassed {
		t.Errorf("cache changes experiment output:\n--- cached\n%s\n--- bypassed\n%s", cached, bypassed)
	}
}
