package experiment

import (
	"fmt"

	"sita/internal/core"
	"sita/internal/server"
	"sita/internal/stats"
)

// TailLatency reports the slowdown distribution's upper percentiles per
// policy at load 0.7 — the "predictability" axis the paper captures with
// variance of slowdown, reported the way modern systems papers would.
func TailLatency(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	jobs := tr.JobsAtLoad(load, 2, true, cfg.Seed)
	t := NewTable("tail-latency", "Slowdown percentiles at load 0.7, 2 hosts (simulation)",
		"percentile", "slowdown")
	percentiles := []float64{0.50, 0.90, 0.95, 0.99, 0.999}
	specs := []policySpec{specRandom(), specLWL(), specSITA(core.SITAE),
		specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}
	for _, spec := range specs {
		p, err := spec.build(load, size, 2, cfg.Seed)
		if err != nil {
			continue
		}
		sample := stats.NewSample(len(jobs))
		res := server.Run(jobs, server.Config{Hosts: 2, Policy: p, WarmupFraction: cfg.Warmup,
			KeepRecords: true})
		for _, r := range res.Records {
			sample.Add(r.Slowdown())
		}
		for _, q := range percentiles {
			t.Add(spec.name, q*100, sample.Quantile(q))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("percentiles over the last %d%% of jobs; SITA-U compresses the whole distribution, not just the mean",
			int(100*(1-cfg.Warmup))))
	return []Table{*t}, nil
}
