package experiment

import (
	"fmt"

	"sita/internal/core"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/stats"
	"sita/internal/streamcache"
)

// TailLatency reports the slowdown distribution's upper percentiles per
// policy at load 0.7 — the "predictability" axis the paper captures with
// variance of slowdown, reported the way modern systems papers would.
func TailLatency(cfg Config) ([]Table, error) {
	const load = 0.7
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	jobs := streamcache.Shared.JobsAtLoad(tr, load, 2, true, cfg.Seed)
	t := NewTable("tail-latency", "Slowdown percentiles at load 0.7, 2 hosts (simulation)",
		"percentile", "slowdown")
	percentiles := []float64{0.50, 0.90, 0.95, 0.99, 0.999}
	specs := []policySpec{specRandom(), specLWL(), specSITA(core.SITAE),
		specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}
	outs, err := runner.MapOpts(cfg.pool(), specs, func(_ int, spec policySpec) ([]seriesPoint, error) {
		p, err := spec.build(load, size, 2, cfg.Seed)
		if err != nil {
			return nil, nil
		}
		sample := stats.NewSample(len(jobs))
		res := server.Run(jobs, server.Config{Hosts: 2, Policy: p, WarmupFraction: cfg.Warmup,
			KeepRecords: true})
		for _, r := range res.Records {
			sample.Add(r.Slowdown())
		}
		pts := make([]seriesPoint, 0, len(percentiles))
		for _, q := range percentiles {
			pts = append(pts, seriesPoint{spec.name, q * 100, sample.Quantile(q)})
		}
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pts := range outs {
		for _, p := range pts {
			t.Add(p.series, p.x, p.y)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("percentiles over the last %d%% of jobs; SITA-U compresses the whole distribution, not just the mean",
			int(100*(1-cfg.Warmup))))
	return []Table{*t}, nil
}
