package experiment

import (
	"sita/internal/core"
	"sita/internal/runner"
	"sita/internal/server"
	"sita/internal/streamcache"
)

// ResponseTime reports mean response time (seconds) per policy across the
// load sweep — the paper's secondary metric ("the same comparisons with
// respect to mean response time are very similar; for system loads greater
// than 0.5, SITA-E outperforms Least-Work-Left by factors of 2-3", §3.2).
func ResponseTime(cfg Config) ([]Table, error) {
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	mean := NewTable("response-mean", "Mean response time, 2 hosts (simulation)",
		"system load", "mean response (s)")
	vari := NewTable("response-var", "Variance of response time, 2 hosts (simulation)",
		"system load", "variance of response")
	const hosts = 2
	specs := []policySpec{specRandom(), specLWL(), specSITA(core.SITAE),
		specSITA(core.SITAUOpt), specSITA(core.SITAUFair)}
	type cell struct {
		spec policySpec
		load float64
	}
	var cells []cell
	for _, spec := range specs {
		for _, load := range cfg.Loads {
			cells = append(cells, cell{spec, load})
		}
	}
	type outcome struct {
		ok         bool
		mean, vari float64
	}
	outs, err := runner.MapOpts(cfg.pool(), cells, func(_ int, cl cell) (outcome, error) {
		p, err := cl.spec.build(cl.load, size, hosts, cfg.Seed)
		if err != nil {
			return outcome{}, nil
		}
		jobs := streamcache.Shared.JobsAtLoad(tr, cl.load, hosts, true, cfg.Seed)
		res := server.Run(jobs, server.Config{Hosts: hosts, Policy: p, WarmupFraction: cfg.Warmup})
		return outcome{true, res.Response.Mean(), res.Response.Variance()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if o.ok {
			mean.Add(cells[i].spec.name, cells[i].load, o.mean)
			vari.Add(cells[i].spec.name, cells[i].load, o.vari)
		}
	}
	mean.Notes = append(mean.Notes,
		"section 3.2: response-time comparisons mirror slowdown but with smaller factors —",
		"response is dominated by the long jobs, slowdown by the short ones")
	return []Table{*mean, *vari}, nil
}
