package experiment

import (
	"math"

	"sita/internal/core"
	"sita/internal/dist"
	"sita/internal/queueing"
)

// analyticModel selects a load-balancing policy's queueing model for the
// analytic figures.
type analyticModel int

const (
	queueingRandom analyticModel = iota
	queueingRoundRobin
	queueingLWL
)

// queueing2MeanSlowdown evaluates a load-balancing policy's analytic mean
// slowdown: Random is Bernoulli splitting into independent M/G/1 queues,
// Round-Robin an E_h/G/1 approximation, Least-Work-Left an M/G/h
// approximation.
func queueing2MeanSlowdown(m analyticModel, lambda float64, size dist.Distribution, hosts int) float64 {
	switch m {
	case queueingRandom:
		return queueing.RandomSplit(lambda, size, hosts).MeanSlowdown()
	case queueingRoundRobin:
		return queueing.RoundRobinSplit(lambda, size, hosts).MeanSlowdown()
	case queueingLWL:
		return queueing.LWL(lambda, size, hosts).MeanSlowdown()
	default:
		//lint:allow panicpolicy invariant: analyticModel is a closed internal enum
		panic("experiment: unknown analytic model")
	}
}

// VarianceAnalysis is the analytic counterpart of the variance-of-slowdown
// panels: Var[S] from the Takacs second-moment formulas for Random and the
// SITA variants (no closed form exists for LWL's variance; the paper also
// omits it analytically).
//
//sim:entry
func VarianceAnalysis(cfg Config) ([]Table, error) {
	size := cfg.Profile.MustSizeDist()
	t := NewTable("variance-analysis", "Variance of slowdown (analysis), 2 hosts",
		"system load", "variance of slowdown")
	const hosts = 2
	for _, load := range cfg.Loads {
		lambda := float64(hosts) * load / size.Moment(1)
		if v := queueing.RandomSplit(lambda, size, hosts).SlowdownVariance(); !math.IsInf(v, 1) {
			t.Add("Random", load, v)
		}
		for _, variant := range []core.Variant{core.SITAE, core.SITAUOpt, core.SITAUFair} {
			d, err := core.NewDesign(variant, load, size, hosts)
			if err != nil {
				continue
			}
			t.Add(variant.String(), load, d.Predicted.VarSlowdown)
		}
	}
	t.Notes = append(t.Notes,
		"uses Takacs' E[W^2] = 2E[W]^2 + lambda E[X^3]/(3(1-rho)) per host; compare with fig2-var/fig4-var")
	return []Table{*t}, nil
}
