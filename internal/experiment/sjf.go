package experiment

import (
	"sita/internal/core"
	"sita/internal/policy"
	"sita/internal/server"
	"sita/internal/streamcache"
)

// SJFComparison quantifies the paper's concluding discussion: favoring
// short jobs (Shortest-Job-First on the central queue) buys mean slowdown
// but "may lead to starvation of certain jobs and undesirable behavior by
// users" — whereas SITA-U-fair gets the mean slowdown benefit while
// guaranteeing equal expected slowdown for short and long jobs. For each
// load the driver reports mean slowdown, the short/long fairness spread
// (max class mean over min, 1 = fair), and the worst single-job slowdown
// (the starvation proxy).
func SJFComparison(cfg Config) ([]Table, error) {
	tr, err := cfg.buildTrace()
	if err != nil {
		return nil, err
	}
	size := cfg.Profile.MustSizeDist()
	mean := NewTable("sjf-mean", "Favoring shorts: SJF vs FCFS central queue vs SITA-U-fair (simulation)",
		"system load", "mean slowdown")
	spread := NewTable("sjf-spread", "Short/long fairness spread (1 = fair)",
		"system load", "max/min class slowdown")
	worst := NewTable("sjf-worst", "Worst single-job slowdown (starvation proxy)",
		"system load", "max slowdown")
	const hosts = 2
	for _, load := range cfg.Loads {
		jobs := streamcache.Shared.JobsAtLoad(tr, load, hosts, true, cfg.Seed)
		fair, err := core.NewDesign(core.SITAUFair, load, size, hosts)
		if err != nil {
			continue
		}
		cases := []struct {
			name  string
			pol   server.Policy
			order server.CentralOrder
		}{
			{"Central-Queue (FCFS)", policy.NewCentralQueue(), server.CentralFCFS},
			{"Central-Queue (SJF)", policy.NewCentralQueue(), server.CentralSJF},
			{"SITA-U-fair", fair.Policy(), server.CentralFCFS},
		}
		for _, c := range cases {
			res := server.Run(jobs, server.Config{
				Hosts: hosts, Policy: c.pol, WarmupFraction: cfg.Warmup,
				CentralOrder: c.order,
				SizeClass:    fair.Classify,
			})
			mean.Add(c.name, load, res.Slowdown.Mean())
			spread.Add(c.name, load, res.Classes.MaxSpread())
			worst.Add(c.name, load, res.Slowdown.Max())
		}
	}
	mean.Notes = append(mean.Notes,
		"SJF improves the mean over FCFS by privileging shorts, but the spread and worst-case rows",
		"show the starvation cost the paper's conclusions warn about; SITA-U-fair avoids the bias")
	return []Table{*mean, *spread, *worst}, nil
}
