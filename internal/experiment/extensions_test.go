package experiment

import (
	"strings"
	"testing"
)

func TestTAGSComparison(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 15000
	cfg.Loads = []float64{0.3, 0.5}
	tables, err := TAGSComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean, waste := tables[0], tables[1]
	// TAGS (no size information) must beat both size-blind baselines.
	for _, load := range cfg.Loads {
		tagsS := mean.MustValue("TAGS", load)
		if random := mean.MustValue("Random", load); tagsS >= random {
			t.Errorf("load %v: TAGS %v should beat Random %v", load, tagsS, random)
		}
		if lwl := mean.MustValue("Least-Work-Left", load); tagsS >= lwl {
			t.Errorf("load %v: TAGS %v should beat LWL %v", load, tagsS, lwl)
		}
	}
	// Wasted work exists but is bounded.
	for _, load := range cfg.Loads {
		w := waste.MustValue("TAGS", load)
		if w <= 0 || w > 0.5 {
			t.Errorf("load %v: waste fraction %v outside (0, 0.5]", load, w)
		}
	}
}

func TestTailLatencyMonotoneAndOrdered(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 12000
	tables, err := TailLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Percentile curves are nondecreasing per policy.
	for _, s := range tb.SeriesNames() {
		prev := -1.0
		for _, x := range tb.Xs() {
			v, ok := tb.Value(s, x)
			if !ok {
				continue
			}
			if v < prev {
				t.Errorf("%s: percentile curve not monotone at p%v", s, x)
			}
			prev = v
		}
	}
	// The tail ordering matches the mean ordering: SITA-U beats SITA-E
	// beats Random at p99.
	if !(tb.MustValue("SITA-U-fair", 99) < tb.MustValue("SITA-E", 99) &&
		tb.MustValue("SITA-E", 99) < tb.MustValue("Random", 99)) {
		t.Error("p99 ordering violated")
	}
}

func TestReplicate(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 4000
	cfg.Loads = []float64{0.5}
	tables, err := Replicate(Figure5, cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want mean + ci", len(tables))
	}
	mean, ci := tables[0], tables[1]
	if !strings.Contains(mean.Title, "3 replications") {
		t.Errorf("title %q should mention replication count", mean.Title)
	}
	// Figure5 is analytic, so replications agree exactly: CI must be ~0.
	if hw := ci.MustValue("rule-of-thumb", 0.5); hw != 0 {
		t.Errorf("analytic replication CI = %v, want 0", hw)
	}
	if got := mean.MustValue("rule-of-thumb", 0.5); got != 0.25 {
		t.Errorf("replicated mean = %v, want 0.25", got)
	}
}

func TestReplicateSimulationVariesBySeed(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 3000
	cfg.Loads = []float64{0.5}
	tables, err := Replicate(Figure4, cfg, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Simulated means must carry nonzero CI half-widths.
	var ci *Table
	for i := range tables {
		if strings.HasSuffix(tables[i].ID, "-repci") && strings.HasPrefix(tables[i].ID, "fig4-mean") {
			ci = &tables[i]
		}
	}
	if ci == nil {
		t.Fatal("missing fig4-mean CI table")
	}
	if hw := ci.MustValue("SITA-E", 0.5); hw <= 0 {
		t.Errorf("simulation CI half-width = %v, want > 0", hw)
	}
}

func TestReplicateErrors(t *testing.T) {
	if _, err := Replicate(Figure5, testConfig(), nil); err == nil {
		t.Fatal("no seeds accepted")
	}
	bad := func(Config) ([]Table, error) { return nil, errFake }
	if _, err := Replicate(bad, testConfig(), []uint64{1}); err == nil {
		t.Fatal("driver error swallowed")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestMultiCutoffAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 8000
	tables, err := MultiCutoffAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Both constructions must produce points at h = 4.
	if _, ok := tb.Value("grouped 2-cutoff", 4); !ok {
		t.Error("missing grouped point")
	}
	if _, ok := tb.Value("full multi-cutoff", 4); !ok {
		t.Error("missing full multi-cutoff point")
	}
}

func TestCutoffSensitivityShape(t *testing.T) {
	tables, err := CutoffSensitivity(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	xs := tb.Xs()
	if len(xs) < 10 {
		t.Fatalf("only %d cutoff points", len(xs))
	}
	// The curve must have an interior minimum (slowdown explodes at both
	// feasibility edges for high enough load).
	name := "load=0.7"
	var best float64 = 1e300
	var bestX float64
	for _, x := range xs {
		if v, ok := tb.Value(name, x); ok && v < best {
			best, bestX = v, x
		}
	}
	if bestX == xs[0] || bestX == xs[len(xs)-1] {
		t.Errorf("optimum at feasibility edge (%v); expected interior minimum", bestX)
	}
}

func TestDerivationProtocol(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 16000
	cfg.Loads = []float64{0.5}
	tables, err := DerivationProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cuts, perf := tables[0], tables[1]
	// Analytic and experimental cutoffs land within an order of magnitude
	// (the slowdown-vs-cutoff curve is flat near the optimum).
	a := cuts.MustValue("SITA-U-opt (analytic)", 0.5)
	e := cuts.MustValue("SITA-U-opt (experimental)", 0.5)
	if r := e / a; r < 0.05 || r > 20 {
		t.Errorf("cutoff derivations disagree wildly: analytic %v vs experimental %v", a, e)
	}
	// Held-out performance of both derivations stays within a small factor.
	pa := perf.MustValue("SITA-U-opt (analytic)", 0.5)
	pe := perf.MustValue("SITA-U-opt (experimental)", 0.5)
	if r := pe / pa; r < 0.2 || r > 5 {
		t.Errorf("held-out performance gap too large: analytic %v vs experimental %v", pa, pe)
	}
}

func TestSJFComparison(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 15000
	cfg.Loads = []float64{0.7}
	tables, err := SJFComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean, spread := tables[0], tables[1]
	// SJF must improve the mean over FCFS on the same central queue.
	if mean.MustValue("Central-Queue (SJF)", 0.7) >= mean.MustValue("Central-Queue (FCFS)", 0.7) {
		t.Error("SJF should beat FCFS on mean slowdown")
	}
	// SITA-U-fair must be far fairer than either central-queue variant.
	fairSpread := spread.MustValue("SITA-U-fair", 0.7)
	if fairSpread >= spread.MustValue("Central-Queue (SJF)", 0.7) {
		t.Errorf("SITA-U-fair spread %v should beat SJF's %v",
			fairSpread, spread.MustValue("Central-Queue (SJF)", 0.7))
	}
}

func TestVarianceAnalysisMatchesSimulationShape(t *testing.T) {
	cfg := testConfig()
	analytic, err := VarianceAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := analytic[0]
	// Ordering at load 0.7 mirrors the simulated fig4-var panel.
	r := tb.MustValue("Random", 0.7)
	e := tb.MustValue("SITA-E", 0.7)
	f := tb.MustValue("SITA-U-fair", 0.7)
	if !(r > e && e > f) {
		t.Fatalf("analytic variance ordering violated: %v %v %v", r, e, f)
	}
	if e/f < 5 {
		t.Fatalf("variance gain E/fair = %v, want large", e/f)
	}
}
