package experiment

import (
	"strings"
	"testing"

	"sita/internal/trace"
)

// testConfig trims the workload so the full driver suite stays fast while
// preserving the qualitative shapes.
func testConfig() Config {
	c := Default()
	c.Jobs = 12000
	c.Loads = []float64{0.5, 0.7}
	return c
}

func TestTable1AllProfiles(t *testing.T) {
	tables, err := Table1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.RowLabels) != 3 {
		t.Fatalf("row labels %v, want 3 profiles", tb.RowLabels)
	}
	// C90 must be far more variable than CTC.
	c90 := tb.MustValue("C^2", 0)
	ctc := tb.MustValue("C^2", 2)
	if c90 < 4*ctc {
		t.Errorf("C90 C^2 %v should dwarf CTC %v", c90, ctc)
	}
	// The heavy tail: a small fraction of jobs carries half the load.
	if tail := tb.MustValue("tail@halfload", 0); tail > 0.05 {
		t.Errorf("C90 tail fraction %v, want < 0.05", tail)
	}
}

func TestFigure2Ordering(t *testing.T) {
	tables, err := Figure2(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := tables[0]
	random := mean.MustValue("Random", 0.7)
	lwl := mean.MustValue("Least-Work-Left", 0.7)
	sitaE := mean.MustValue("SITA-E", 0.7)
	if !(random > lwl && lwl > sitaE) {
		t.Errorf("figure 2 ordering violated: random=%v lwl=%v sitaE=%v", random, lwl, sitaE)
	}
	// Paper: Random exceeds SITA-E by ~an order of magnitude.
	if random/sitaE < 5 {
		t.Errorf("random/sitaE = %v, want >= 5", random/sitaE)
	}
	// Variance gaps are even bigger.
	vari := tables[1]
	if vari.MustValue("Random", 0.7) < vari.MustValue("SITA-E", 0.7) {
		t.Error("variance ordering violated")
	}
}

func TestFigure3FourHostsImproves(t *testing.T) {
	cfg := testConfig()
	t2, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: LWL and SITA-E improve markedly from 2 to 4 hosts.
	lwl2 := t2[0].MustValue("Least-Work-Left", 0.7)
	lwl4 := t4[0].MustValue("Least-Work-Left", 0.7)
	if lwl4 >= lwl2 {
		t.Errorf("LWL at 4 hosts (%v) should beat 2 hosts (%v)", lwl4, lwl2)
	}
}

func TestFigure4UnbalancingWins(t *testing.T) {
	tables, err := Figure4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := tables[0]
	sitaE := mean.MustValue("SITA-E", 0.7)
	opt := mean.MustValue("SITA-U-opt", 0.7)
	fair := mean.MustValue("SITA-U-fair", 0.7)
	if opt >= sitaE || fair >= sitaE {
		t.Errorf("unbalancing should win: E=%v opt=%v fair=%v", sitaE, opt, fair)
	}
	// Paper: improvement of 4-10x in the 0.5-0.8 load range.
	if sitaE/fair < 2 {
		t.Errorf("SITA-E/fair = %v, want >= 2", sitaE/fair)
	}
	// Variance improves by an order of magnitude or more.
	vari := tables[1]
	if vari.MustValue("SITA-E", 0.7)/vari.MustValue("SITA-U-fair", 0.7) < 5 {
		t.Errorf("variance gain %v, want >= 5",
			vari.MustValue("SITA-E", 0.7)/vari.MustValue("SITA-U-fair", 0.7))
	}
}

func TestFigure5RuleOfThumb(t *testing.T) {
	cfg := testConfig()
	cfg.Loads = []float64{0.4, 0.6, 0.8}
	tables, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, load := range cfg.Loads {
		rule := tb.MustValue("rule-of-thumb", load)
		if rule != load/2 {
			t.Errorf("rule series at %v = %v, want %v", load, rule, load/2)
		}
		opt := tb.MustValue("SITA-U-opt", load)
		if opt >= 0.5 {
			t.Errorf("opt fraction at %v = %v, want < 0.5", load, opt)
		}
		if diff := opt - rule; diff > 0.2 || diff < -0.2 {
			t.Errorf("opt fraction at %v = %v too far from rule %v", load, opt, rule)
		}
	}
	// The optimal fraction grows with load (figure 5's upward trend).
	if tb.MustValue("SITA-U-opt", 0.8) <= tb.MustValue("SITA-U-opt", 0.4) {
		t.Error("opt load fraction should increase with load")
	}
}

func TestFigure6Crossover(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 15000
	tables, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Small systems: SITA-U beats LWL (paper: "significantly worse than
	// the modified versions of the two load unbalancing strategies").
	if tb.MustValue("Least-Work-Left", 2) < tb.MustValue("SITA-U-opt", 2) {
		t.Errorf("at 2 hosts LWL (%v) should lose to SITA-U-opt (%v)",
			tb.MustValue("Least-Work-Left", 2), tb.MustValue("SITA-U-opt", 2))
	}
	// Very large systems: LWL overtakes SITA-E (paper's crossover) and all
	// policies converge.
	if tb.MustValue("Least-Work-Left", 100) > tb.MustValue("SITA-E", 100) {
		t.Errorf("at 100 hosts LWL (%v) should beat SITA-E (%v)",
			tb.MustValue("Least-Work-Left", 100), tb.MustValue("SITA-E", 100))
	}
	// LWL improves dramatically as hosts grow.
	if tb.MustValue("Least-Work-Left", 100) > tb.MustValue("Least-Work-Left", 2)/5 {
		t.Error("LWL should improve sharply with more hosts")
	}
}

func TestFigure7BurstyArrivals(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 20000
	cfg.Loads = Default().Loads // let the driver pick its high-load sweep
	tables, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := tables[0]
	// Mid loads: SITA-U wins even with bursty arrivals.
	if mean.MustValue("SITA-U-fair", 0.7) > mean.MustValue("Least-Work-Left", 0.7) {
		t.Errorf("at load 0.7 SITA-U-fair (%v) should beat LWL (%v) despite burstiness",
			mean.MustValue("SITA-U-fair", 0.7), mean.MustValue("Least-Work-Left", 0.7))
	}
	// Very high load points exist for LWL.
	if _, ok := mean.Value("Least-Work-Left", 0.95); !ok {
		t.Error("missing LWL point at load 0.95")
	}
}

func TestFigure8AnalyticOrdering(t *testing.T) {
	cfg := testConfig()
	tables, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	random := tb.MustValue("Random", 0.7)
	rr := tb.MustValue("Round-Robin", 0.7)
	lwl := tb.MustValue("Least-Work-Left", 0.7)
	sitaE := tb.MustValue("SITA-E", 0.7)
	if !(random > rr && rr > lwl && lwl > sitaE) {
		t.Errorf("analytic ordering violated: %v %v %v %v", random, rr, lwl, sitaE)
	}
}

func TestFigure9AnalyticUnbalancing(t *testing.T) {
	tables, err := Figure9(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if tb.MustValue("SITA-U-opt", 0.7) > tb.MustValue("SITA-U-fair", 0.7) {
		t.Error("opt should weakly beat fair")
	}
	if tb.MustValue("SITA-U-fair", 0.7) >= tb.MustValue("SITA-E", 0.7) {
		t.Error("fair should beat SITA-E")
	}
}

func TestAppendixFiguresRun(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 8000
	for _, fn := range []func(Config) ([]Table, error){Figure10, Figure11, Figure12, Figure13} {
		tables, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Xs()) == 0 {
			t.Fatal("appendix figure empty")
		}
	}
}

func TestAppendixProfilesSameStory(t *testing.T) {
	// The paper's appendices show the same qualitative results on J90 and
	// CTC: SITA-U-fair beats SITA-E at medium-high load.
	cfg := testConfig()
	cfg.Jobs = 12000
	for _, fn := range []func(Config) ([]Table, error){Figure10, Figure12} {
		tables, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mean := tables[0]
		if mean.MustValue("SITA-U-fair", 0.7) >= mean.MustValue("Random", 0.7) {
			t.Error("SITA-U-fair should beat Random on every workload")
		}
	}
}

func TestExtensionsRun(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 6000
	for name, fn := range map[string]func(Config) ([]Table, error){
		"cutoff-sensitivity": CutoffSensitivity,
		"misclassification":  Misclassification,
		"burstiness":         BurstinessSweep,
		"fairness-profile":   FairnessProfile,
	} {
		tables, err := fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables) == 0 || len(tables[0].SeriesNames()) == 0 {
			t.Fatalf("%s: empty output", name)
		}
	}
}

func TestMisclassificationDegradesGracefully(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 15000
	tables, err := Misclassification(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	clean := tb.MustValue("both directions", 0)
	heavy := tb.MustValue("both directions", 0.4)
	if heavy < clean {
		t.Errorf("40%% misclassification (%v) should not beat clean routing (%v)", heavy, clean)
	}
	// Directional asymmetry: at a small error rate, shorts-claiming-long is
	// survivable while the system still runs; both series must exist.
	if _, ok := tb.Value("shorts claim long", 0.05); !ok {
		t.Error("missing shorts-claim-long series")
	}
	if _, ok := tb.Value("longs claim short", 0.05); !ok {
		t.Error("missing longs-claim-short series")
	}
}

func TestDriversRegistryComplete(t *testing.T) {
	// Opt-in sweeps are runnable by id but deliberately excluded from
	// IDs(), so `-exp all` — and the recorded results/ corpus — skips them.
	optIn := []string{"many-hosts"}
	drivers := Drivers()
	for _, id := range IDs() {
		if _, ok := drivers[id]; !ok {
			t.Errorf("IDs lists %q but Drivers lacks it", id)
		}
	}
	for _, id := range optIn {
		if _, ok := drivers[id]; !ok {
			t.Errorf("opt-in driver %q missing from Drivers", id)
		}
	}
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
	}
	for _, id := range optIn {
		if ids[id] {
			t.Errorf("opt-in driver %q must not appear in IDs()", id)
		}
	}
	if len(drivers) != len(IDs())+len(optIn) {
		t.Errorf("drivers %d != ids %d + opt-in %d", len(drivers), len(IDs()), len(optIn))
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Default()
	if c.Profile.Name != trace.C90().Name {
		t.Error("default profile should be C90")
	}
	c2 := c.withProfile(trace.CTC())
	if c.Profile.Name != trace.C90().Name || c2.Profile.Name != trace.CTC().Name {
		t.Error("withProfile should not mutate the receiver")
	}
	c.Jobs = 100
	if c.jobsPerPoint() != 100 {
		t.Error("jobs cap ignored")
	}
	c.Jobs = 0
	if c.jobsPerPoint() != c.Profile.Jobs {
		t.Error("zero cap should use profile length")
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tb := NewTable("t", "Title", "x", "y")
	tb.Add("a", 1, 2)
	tb.Add("a", 2, 4)
	tb.Add("b", 1, 3.14159)
	out := tb.Format()
	for _, want := range []string{"Title", "x", "a", "b", "3.142"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "x,a,b\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "2,4,") {
		t.Errorf("csv missing row: %q", csv)
	}
	if _, ok := tb.Value("b", 2); ok {
		t.Error("missing point reported present")
	}
}

func TestTableMustValuePanics(t *testing.T) {
	tb := NewTable("t", "T", "x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.MustValue("nope", 1)
}

func TestCSVEscape(t *testing.T) {
	tb := NewTable("t", "T", `x,"weird"`, "y")
	tb.Add(`se,ries`, 1, 2)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,""weird"""`) || !strings.Contains(csv, `"se,ries"`) {
		t.Errorf("escaping wrong: %q", csv)
	}
}
