// Package core assembles the paper's primary contribution: size-interval
// task assignment with deliberately unbalanced load (SITA-U), derived from a
// workload characterization, packaged as ready-to-run dispatcher policies
// with analytic performance predictions.
//
// The flow a downstream user follows is exactly the paper's:
//
//  1. Characterize the workload (a size distribution, fitted or empirical).
//  2. Derive the size cutoff for the desired variant — equal-load (SITA-E),
//     slowdown-optimal (SITA-U-opt) or fairness (SITA-U-fair) — either
//     analytically from M/G/1 formulas or experimentally on half the trace.
//  3. Build the dispatcher policy (plain SITA for 2 hosts, the grouped
//     SITA+LWL hybrid for larger systems, section 5).
//  4. Predict performance analytically and/or simulate.
package core

import (
	"fmt"
	"math"

	"sita/internal/dist"
	"sita/internal/policy"
	"sita/internal/queueing"
	"sita/internal/server"
	"sita/internal/workload"
)

// Variant selects how the SITA cutoff is chosen.
type Variant int

// The three SITA variants the paper evaluates.
const (
	// SITAE equalizes the load on the two hosts (the best load-balancing
	// policy of section 3).
	SITAE Variant = iota
	// SITAUOpt unbalances load to minimize mean slowdown (section 4).
	SITAUOpt
	// SITAUFair unbalances load to equalize the expected slowdown of short
	// and long jobs (section 4).
	SITAUFair
	// SITARule uses the paper's rule of thumb (section 4.4): send load
	// fraction rho/2 to the short host at system load rho.
	SITARule
)

// String names the variant as the paper does.
func (v Variant) String() string {
	switch v {
	case SITAE:
		return "SITA-E"
	case SITAUOpt:
		return "SITA-U-opt"
	case SITAUFair:
		return "SITA-U-fair"
	case SITARule:
		return "SITA-U-rule"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists all cutoff rules in presentation order.
func Variants() []Variant { return []Variant{SITAE, SITAUOpt, SITAUFair, SITARule} }

// DeriveCutoff computes the 2-host cutoff for the variant analytically.
// lambda is the total arrival rate into the 2-host system and size the job
// size distribution; system load is lambda*E[X]/2.
func DeriveCutoff(v Variant, lambda float64, size dist.Distribution) (float64, error) {
	switch v {
	case SITAE:
		return queueing.EqualLoadCutoff(size), nil
	case SITAUOpt:
		return queueing.OptimalCutoff(lambda, size)
	case SITAUFair:
		return queueing.FairCutoff(lambda, size)
	case SITARule:
		return queueing.RuleOfThumbCutoff(lambda, size), nil
	default:
		return 0, fmt.Errorf("core: unknown variant %d", int(v))
	}
}

// Design is a fully instantiated task assignment design for a distributed
// server: the derived cutoff, the dispatcher policy, and (for 2 hosts) the
// analytic prediction.
type Design struct {
	Variant Variant
	Hosts   int
	Load    float64
	// Cutoff separates short from long jobs (the single 2-host cutoff; for
	// h > 2 the grouped construction reuses it, per section 5).
	Cutoff float64
	// ShortHosts is the number of hosts in the short group (h/2, section
	// 5); 1 when h = 2.
	ShortHosts int
	// Predicted is the 2-host analytic report (per-host loads, mean and
	// variance of slowdown); zero-valued for h > 2 where the grouped
	// system has no closed form.
	Predicted queueing.Report
	// HasPrediction reports whether Predicted is populated.
	HasPrediction bool

	size dist.Distribution
}

// NewDesign derives the cutoff and builds the design for a system of hosts
// identical hosts at the given system load.
func NewDesign(v Variant, load float64, size dist.Distribution, hosts int) (*Design, error) {
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("core: system load %v outside (0, 1)", load)
	}
	if hosts < 2 {
		return nil, fmt.Errorf("core: need at least 2 hosts, got %d", hosts)
	}
	// The cutoff is always derived on the 2-host system at the same system
	// load (the paper's section-5 protocol).
	lambda2 := 2 * load / size.Moment(1)
	cut, err := DeriveCutoff(v, lambda2, size)
	if err != nil {
		return nil, fmt.Errorf("core: deriving %v cutoff: %w", v, err)
	}
	d := &Design{
		Variant:    v,
		Hosts:      hosts,
		Load:       load,
		Cutoff:     cut,
		ShortHosts: hosts / 2,
		size:       size,
	}
	if hosts == 2 {
		d.ShortHosts = 1
		d.Predicted = queueing.NewSITA(lambda2, size, []float64{cut}).Analyze()
		d.HasPrediction = true
	}
	return d, nil
}

// Policy builds a fresh dispatcher policy implementing the design. For two
// hosts it is plain SITA; for more, the section-5 grouped SITA+LWL hybrid.
func (d *Design) Policy() server.Policy {
	if d.Hosts == 2 {
		return policy.NewSITA(d.Variant.String(), []float64{d.Cutoff})
	}
	return policy.NewGroupedSITA(d.Variant.String(), d.Cutoff, d.ShortHosts)
}

// Classify reports 0 for a short job and 1 for a long one, the class labels
// used by the fairness audit.
func (d *Design) Classify(size float64) int {
	if size <= d.Cutoff {
		return 0
	}
	return 1
}

// ShortLoadFraction predicts the fraction of total work routed to the short
// side under this design.
func (d *Design) ShortLoadFraction() float64 {
	work := dist.PartialMoment(d.size, 1, 0, d.Cutoff)
	return work / d.size.Moment(1)
}

// RuleOfThumbFraction is the paper's section 4.4 heuristic: at system load
// rho the short host should carry load fraction rho/2 of the total.
func RuleOfThumbFraction(load float64) float64 { return load / 2 }

// FairnessAudit summarizes how evenly expected slowdown is spread across
// job classes in a simulation result.
type FairnessAudit struct {
	ShortMean float64 // mean slowdown of short jobs
	LongMean  float64 // mean slowdown of long jobs
	// Spread is max/min of the class means; 1 is perfectly fair.
	Spread float64
}

// Audit computes the fairness audit from a per-class simulation tally
// (server.Config.SizeClass must have been Design.Classify).
func (d *Design) Audit(res *server.Result) (FairnessAudit, error) {
	if res.Classes == nil {
		return FairnessAudit{}, fmt.Errorf("core: result has no class tally; set Config.SizeClass")
	}
	var audit FairnessAudit
	if s := res.Classes.Class(0); s != nil {
		audit.ShortMean = s.Mean()
	}
	if l := res.Classes.Class(1); l != nil {
		audit.LongMean = l.Mean()
	}
	audit.Spread = res.Classes.MaxSpread()
	return audit, nil
}

// ExperimentalCutoff derives the cutoff by simulation instead of analysis,
// mirroring the paper's protocol of deriving cutoffs on half the trace
// ("the experimental cutoffs are derived in the same way only that for a
// given cutoff we used simulation instead of analysis"). Candidate cutoffs
// are laid on a geometric grid over the feasible range; for SITAUOpt the
// candidate minimizing simulated mean slowdown wins, for SITAUFair the one
// minimizing the short/long slowdown imbalance, and for SITAE the
// candidate balancing measured host loads.
func ExperimentalCutoff(v Variant, jobs []workload.Job, size dist.Distribution, gridN int) (float64, error) {
	if len(jobs) == 0 {
		return 0, fmt.Errorf("core: no derivation jobs")
	}
	if gridN < 2 {
		gridN = 16
	}
	// Infer the arrival rate from the derivation half itself.
	horizon := jobs[len(jobs)-1].Arrival
	if horizon <= 0 {
		return 0, fmt.Errorf("core: derivation jobs span zero time")
	}
	lambda := float64(len(jobs)) / horizon
	cLo, cHi, err := queueing.FeasibleCutoffRange(lambda, size)
	if err != nil {
		return 0, err
	}
	best, bestScore := 0.0, math.Inf(1)
	logLo, logHi := math.Log(cLo), math.Log(cHi)
	for i := 0; i <= gridN; i++ {
		cut := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(gridN))
		res := server.Run(jobs, server.Config{
			Hosts:          2,
			Policy:         policy.NewSITA("probe", []float64{cut}),
			WarmupFraction: 0.05,
			SizeClass: func(s float64) int {
				if s <= cut {
					return 0
				}
				return 1
			},
		})
		var score float64
		switch v {
		case SITAUOpt:
			score = res.Slowdown.Mean()
		case SITAUFair:
			short, long := 1.0, 1.0
			if s := res.Classes.Class(0); s != nil && s.Count() > 0 {
				short = s.Mean()
			}
			if l := res.Classes.Class(1); l != nil && l.Count() > 0 {
				long = l.Mean()
			}
			score = math.Abs(short - long)
		case SITAE:
			fr := res.LoadFractions()
			score = math.Abs(fr[0] - 0.5)
		default:
			return 0, fmt.Errorf("core: experimental derivation unsupported for %v", v)
		}
		if score < bestScore {
			best, bestScore = cut, score
		}
	}
	return best, nil
}

// NewDesignFull derives a full (h-1)-cutoff SITA design for h hosts — the
// search the paper's section 5 deems too computationally expensive and
// replaces with the grouped 2-cutoff construction. It exists both as an
// ablation (how much does the shortcut cost?) and because on modern
// hardware the coordinate-descent search completes in milliseconds.
func NewDesignFull(v Variant, load float64, size dist.Distribution, hosts int) (*FullDesign, error) {
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("core: system load %v outside (0, 1)", load)
	}
	if hosts < 2 {
		return nil, fmt.Errorf("core: need at least 2 hosts, got %d", hosts)
	}
	lambda := float64(hosts) * load / size.Moment(1)
	var cuts []float64
	var err error
	switch v {
	case SITAE:
		cuts, err = queueing.EqualLoadCutoffs(size, hosts)
	case SITAUOpt:
		cuts, err = queueing.OptimalCutoffs(lambda, size, hosts)
	case SITAUFair:
		cuts, err = queueing.FairCutoffs(lambda, size, hosts)
	default:
		return nil, fmt.Errorf("core: full multi-cutoff design unsupported for %v", v)
	}
	if err != nil {
		return nil, fmt.Errorf("core: deriving full %v cutoffs: %w", v, err)
	}
	return &FullDesign{
		Variant:   v,
		Hosts:     hosts,
		Load:      load,
		Cutoffs:   cuts,
		Predicted: queueing.NewSITA(lambda, size, cuts).Analyze(),
	}, nil
}

// FullDesign is an h-host SITA design with per-host cutoffs and the full
// analytic prediction (which, unlike the grouped construction, has a
// closed form for every h).
type FullDesign struct {
	Variant   Variant
	Hosts     int
	Load      float64
	Cutoffs   []float64
	Predicted queueing.Report
}

// Policy builds the dispatcher policy implementing the design.
func (d *FullDesign) Policy() server.Policy {
	return policy.NewSITA(d.Variant.String()+"-multi", d.Cutoffs)
}
