package core

import (
	"math"
	"testing"

	"sita/internal/dist"
	"sita/internal/server"
	"sita/internal/sim"
	"sita/internal/trace"
	"sita/internal/workload"
)

func c90Size(t *testing.T) dist.BoundedPareto {
	t.Helper()
	d, err := trace.C90().SizeDist()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{
		SITAE:      "SITA-E",
		SITAUOpt:   "SITA-U-opt",
		SITAUFair:  "SITA-U-fair",
		SITARule:   "SITA-U-rule",
		Variant(9): "Variant(9)",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), s)
		}
	}
	if len(Variants()) != 4 {
		t.Errorf("Variants() has %d entries", len(Variants()))
	}
}

func TestNewDesignTwoHosts(t *testing.T) {
	size := c90Size(t)
	for _, v := range Variants() {
		d, err := NewDesign(v, 0.7, size, 2)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !d.HasPrediction {
			t.Errorf("%v: 2-host design should carry a prediction", v)
		}
		if d.Cutoff <= size.K || d.Cutoff >= size.P {
			t.Errorf("%v: cutoff %v outside support", v, d.Cutoff)
		}
		if d.ShortHosts != 1 {
			t.Errorf("%v: short hosts = %d, want 1", v, d.ShortHosts)
		}
		p := d.Policy()
		if p.Name() != v.String() {
			t.Errorf("policy name %q, want %q", p.Name(), v.String())
		}
	}
}

func TestNewDesignValidation(t *testing.T) {
	size := c90Size(t)
	if _, err := NewDesign(SITAE, 0, size, 2); err == nil {
		t.Error("load 0 accepted")
	}
	if _, err := NewDesign(SITAE, 0.5, size, 1); err == nil {
		t.Error("1 host accepted")
	}
	if _, err := NewDesign(Variant(42), 0.5, size, 2); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestDesignUnbalancedVariantsUnderloadShortSide(t *testing.T) {
	size := c90Size(t)
	e, err := NewDesign(SITAE, 0.7, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.ShortLoadFraction()-0.5) > 0.01 {
		t.Errorf("SITA-E short load fraction %v, want 0.5", e.ShortLoadFraction())
	}
	for _, v := range []Variant{SITAUOpt, SITAUFair, SITARule} {
		d, err := NewDesign(v, 0.7, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		if fr := d.ShortLoadFraction(); fr >= 0.5 {
			t.Errorf("%v: short load fraction %v, want < 0.5 (unbalanced)", v, fr)
		}
	}
}

func TestRuleDesignMatchesRuleFraction(t *testing.T) {
	size := c90Size(t)
	for _, load := range []float64{0.4, 0.6, 0.8} {
		d, err := NewDesign(SITARule, load, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := d.ShortLoadFraction(), RuleOfThumbFraction(load); math.Abs(got-want) > 0.01 {
			t.Errorf("load %v: rule fraction %v, want %v", load, got, want)
		}
	}
}

func TestDesignPredictionOrdering(t *testing.T) {
	// Analytic predictions must reproduce figure 9's ordering:
	// opt <= rule/fair < E.
	size := c90Size(t)
	byVariant := map[Variant]float64{}
	for _, v := range Variants() {
		d, err := NewDesign(v, 0.7, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		byVariant[v] = d.Predicted.MeanSlowdown
	}
	if !(byVariant[SITAUOpt] <= byVariant[SITAUFair] && byVariant[SITAUFair] < byVariant[SITAE]) {
		t.Errorf("prediction ordering violated: %v", byVariant)
	}
	if byVariant[SITAE]/byVariant[SITAUOpt] < 2 {
		t.Errorf("opt should improve on E substantially, got %vx", byVariant[SITAE]/byVariant[SITAUOpt])
	}
}

func TestGroupedDesign(t *testing.T) {
	size := c90Size(t)
	d, err := NewDesign(SITAUFair, 0.7, size, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.ShortHosts != 4 {
		t.Fatalf("short hosts = %d, want 4", d.ShortHosts)
	}
	if d.HasPrediction {
		t.Fatal("grouped design should not claim a closed-form prediction")
	}
	// The grouped policy keeps shorts on the first group.
	p := d.Policy()
	jobs := []workload.Job{
		{ID: 0, Arrival: 0, Size: d.Cutoff / 2},
		{ID: 1, Arrival: 1, Size: d.Cutoff * 2},
	}
	res := server.Run(jobs, server.Config{Hosts: 8, Policy: p, KeepRecords: true})
	for _, r := range res.Records {
		if r.Size <= d.Cutoff && r.Host >= 4 {
			t.Errorf("short job on host %d", r.Host)
		}
		if r.Size > d.Cutoff && r.Host < 4 {
			t.Errorf("long job on host %d", r.Host)
		}
	}
}

func TestClassify(t *testing.T) {
	size := c90Size(t)
	d, err := NewDesign(SITAE, 0.5, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Classify(d.Cutoff) != 0 {
		t.Error("boundary size should classify short")
	}
	if d.Classify(d.Cutoff*1.01) != 1 {
		t.Error("above-cutoff size should classify long")
	}
}

func TestAuditRequiresClasses(t *testing.T) {
	size := c90Size(t)
	d, err := NewDesign(SITAUFair, 0.6, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := &server.Result{}
	if _, err := d.Audit(res); err == nil {
		t.Error("audit without class tally should error")
	}
}

func TestSimulatedFairnessOfSITAUFair(t *testing.T) {
	// End-to-end: simulate SITA-U-fair and check short and long jobs see
	// comparable mean slowdowns, while SITA-E heavily favors one class.
	size := c90Size(t)
	load := 0.7
	lambda := 2 * load / size.Moment(1)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(77, 0), sim.NewRNG(77, 1))
	jobs := src.Take(250000)

	audits := map[Variant]FairnessAudit{}
	for _, v := range []Variant{SITAE, SITAUFair} {
		d, err := NewDesign(v, load, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		res := server.Run(jobs, server.Config{
			Hosts:          2,
			Policy:         d.Policy(),
			WarmupFraction: 0.1,
			SizeClass:      d.Classify,
		})
		a, err := d.Audit(res)
		if err != nil {
			t.Fatal(err)
		}
		audits[v] = a
	}
	if audits[SITAUFair].Spread > 2.5 {
		t.Errorf("SITA-U-fair spread = %v, want near 1", audits[SITAUFair].Spread)
	}
	if audits[SITAE].Spread < audits[SITAUFair].Spread {
		t.Errorf("SITA-E spread %v should exceed SITA-U-fair %v",
			audits[SITAE].Spread, audits[SITAUFair].Spread)
	}
}

func TestExperimentalCutoffAgreesWithAnalytic(t *testing.T) {
	// The paper found experimental and analytical cutoffs "about the same".
	// Demand agreement within an order of magnitude on the derivation half
	// (the slowdown curve is flat near its optimum, so the cutoffs
	// themselves can differ more than the performance does).
	size := c90Size(t)
	load := 0.7
	lambda := 2 * load / size.Moment(1)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(88, 0), sim.NewRNG(88, 1))
	jobs := src.Take(60000)

	analytic, err := DeriveCutoff(SITAUOpt, lambda, size)
	if err != nil {
		t.Fatal(err)
	}
	experimental, err := ExperimentalCutoff(SITAUOpt, jobs, size, 16)
	if err != nil {
		t.Fatal(err)
	}
	ratio := experimental / analytic
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("experimental cutoff %v vs analytic %v (ratio %v)", experimental, analytic, ratio)
	}
}

func TestExperimentalCutoffErrors(t *testing.T) {
	size := c90Size(t)
	if _, err := ExperimentalCutoff(SITAUOpt, nil, size, 8); err == nil {
		t.Error("empty jobs accepted")
	}
	if _, err := ExperimentalCutoff(SITARule, []workload.Job{{Arrival: 1, Size: 1}}, size, 8); err == nil {
		t.Error("unsupported variant accepted")
	}
}

func TestNewDesignFull(t *testing.T) {
	size := c90Size(t)
	for _, v := range []Variant{SITAE, SITAUOpt, SITAUFair} {
		d, err := NewDesignFull(v, 0.7, size, 4)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(d.Cutoffs) != 3 {
			t.Fatalf("%v: %d cutoffs, want 3", v, len(d.Cutoffs))
		}
		if d.Predicted.MeanSlowdown <= 1 {
			t.Fatalf("%v: bogus prediction %v", v, d.Predicted.MeanSlowdown)
		}
		p := d.Policy()
		if p.Name() != v.String()+"-multi" {
			t.Fatalf("policy name %q", p.Name())
		}
	}
}

func TestNewDesignFullBeatsGroupedAnalytically(t *testing.T) {
	size := c90Size(t)
	full, err := NewDesignFull(SITAUOpt, 0.7, size, 4)
	if err != nil {
		t.Fatal(err)
	}
	equalLoad, err := NewDesignFull(SITAE, 0.7, size, 4)
	if err != nil {
		t.Fatal(err)
	}
	if full.Predicted.MeanSlowdown >= equalLoad.Predicted.MeanSlowdown {
		t.Fatalf("multi-opt %v should beat multi-E %v",
			full.Predicted.MeanSlowdown, equalLoad.Predicted.MeanSlowdown)
	}
}

func TestNewDesignFullValidation(t *testing.T) {
	size := c90Size(t)
	if _, err := NewDesignFull(SITARule, 0.5, size, 4); err == nil {
		t.Error("rule variant should be unsupported for full designs")
	}
	if _, err := NewDesignFull(SITAE, 0, size, 4); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := NewDesignFull(SITAE, 0.5, size, 1); err == nil {
		t.Error("1 host accepted")
	}
}
