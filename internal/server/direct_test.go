package server

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sita/internal/workload"
)

// scripted replays a fixed job→host assignment (e.g. one recovered from a
// golden record stream). State-blind by construction, so it legitimately
// claims the Oblivious capability.
type scripted struct{ hosts []int }

func (*scripted) Name() string                        { return "scripted" }
func (s *scripted) Assign(j workload.Job, _ View) int { return s.hosts[j.ID] }
func (*scripted) Oblivious() bool                     { return true }

// liar claims obliviousness but reads system state — the contract
// violation the tripwire view must catch.
type liar struct{ method string }

func (*liar) Name() string { return "liar" }
func (l *liar) Assign(_ workload.Job, v View) int {
	switch l.method {
	case "NumJobs":
		return v.NumJobs(0) * 0
	case "WorkLeft":
		_ = v.WorkLeft(0)
	case "Idle":
		_ = v.Idle(0)
	case "MinWorkHost":
		return v.MinWorkHost()
	case "MinWorkHostIn":
		return v.MinWorkHostIn(0, v.Hosts())
	case "MinJobsHost":
		return v.MinJobsHost()
	case "NextIdleHost":
		_ = v.NextIdleHost()
	}
	return 0
}
func (*liar) Oblivious() bool { return true }

// toHostZero is honestly oblivious and trivial.
type toHostZero struct{}

func (toHostZero) Name() string                  { return "to-host-zero" }
func (toHostZero) Assign(workload.Job, View) int { return 0 }
func (toHostZero) Oblivious() bool               { return true }

// parseGoldenHosts recovers the job→host assignment from a golden record
// stream (lines of "ID Host Arrival Size Start Departure").
func parseGoldenHosts(t *testing.T, name string, n int) []int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	hosts := make([]int, n)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		f := strings.Fields(line)
		id, err1 := strconv.Atoi(f[0])
		h, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("bad golden line %q", line)
		}
		hosts[id] = h
	}
	return hosts
}

// TestDirectGoldenReplay replays golden record streams through RunDirect:
// the scripted policy re-issues each golden stream's host assignments, and
// the direct recurrence must reproduce the closure-based engine's exact
// bytes — IDs, hosts, and bit-exact hex start/departure floats in the same
// emission order. Only the FCFS-order goldens qualify: push-lwl and
// central-fcfs serve jobs per host in arrival order (a central FCFS pull
// starts each job at max(predecessor finish, arrival) — Lindley again), and
// ties-push-lwl adds the exact-coincidence traps. The SJF and PS goldens
// reorder service within a host and stay engine-only.
func TestDirectGoldenReplay(t *testing.T) {
	cases := []struct {
		name  string
		jobs  []workload.Job
		hosts int
	}{
		{"push-lwl", goldenJobs(42, 3000), 3},
		{"central-fcfs", goldenJobs(43, 3000), 3},
		{"ties-push-lwl", tieJobs(), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			script := &scripted{hosts: parseGoldenHosts(t, tc.name, len(tc.jobs))}
			res := RunDirect(tc.jobs, Config{Hosts: tc.hosts, Policy: script, KeepRecords: true})
			got := formatRecords(res.Records)
			want, err := os.ReadFile(filepath.Join("testdata", tc.name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Fatalf("direct replay diverged from %s.golden; first lines:\ngot:  %.200s\nwant: %.200s",
					tc.name, got, want)
			}
		})
	}
}

// TestDirectViewTripwire proves the direct path's View fails loudly on
// every state query when a policy's Oblivious claim is false.
func TestDirectViewTripwire(t *testing.T) {
	jobs := []workload.Job{{Arrival: 0, Size: 1}}
	for _, method := range []string{
		"NumJobs", "WorkLeft", "Idle",
		"MinWorkHost", "MinWorkHostIn", "MinJobsHost", "NextIdleHost",
	} {
		t.Run(method, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("View.%s did not panic on the direct path", method)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "claims Oblivious") || !strings.Contains(msg, method) {
					t.Fatalf("panic %v does not name the violated contract and method", r)
				}
			}()
			RunDirect(jobs, Config{Hosts: 2, Policy: &liar{method: method}})
		})
	}
	// Hosts() is configuration, not state: no panic.
	res := RunDirect(jobs, Config{Hosts: 2, Policy: toHostZero{}, KeepRecords: true})
	if len(res.Records) != 1 || res.Records[0].Host != 0 {
		t.Fatalf("honest oblivious policy failed on the direct path: %+v", res.Records)
	}
}

// TestDirectDispatch pins Run's dispatch rule by observing which path a
// lying policy dies on: with the direct path enabled Run hands it the
// tripwire view (panic), disabled or interrupted it gets the engine's real
// view (no panic).
func TestDirectDispatch(t *testing.T) {
	jobs := []workload.Job{{Arrival: 0, Size: 1}, {Arrival: 1, Size: 2}}
	runPanics := func(cfg Config) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		Run(jobs, cfg)
		return
	}
	if !runPanics(Config{Hosts: 2, Policy: &liar{method: "NumJobs"}}) {
		t.Fatal("Run did not take the direct path for a claimed-oblivious policy")
	}
	SetDirectEnabled(false)
	if runPanics(Config{Hosts: 2, Policy: &liar{method: "NumJobs"}}) {
		t.Fatal("Run took the direct path with SetDirectEnabled(false)")
	}
	SetDirectEnabled(true)
	interrupted := Config{Hosts: 2, Policy: &liar{method: "NumJobs"}, Interrupt: func() bool { return false }}
	if runPanics(interrupted) {
		t.Fatal("Run took the direct path despite an interrupt probe")
	}
	if DirectEligible(interrupted) {
		t.Fatal("DirectEligible true with an interrupt probe installed")
	}
	if !DirectEligible(Config{Hosts: 2, Policy: toHostZero{}}) {
		t.Fatal("DirectEligible false for an oblivious policy with no probe")
	}
	if DirectEligible(Config{Hosts: 2, Policy: goldenLWL{}}) {
		t.Fatal("DirectEligible true for a policy without the capability")
	}
}

// TestRunDirectRefusesNonOblivious pins RunDirect's own guard.
func TestRunDirectRefusesNonOblivious(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunDirect accepted a non-oblivious policy")
		}
	}()
	RunDirect([]workload.Job{{Arrival: 0, Size: 1}}, Config{Hosts: 2, Policy: goldenLWL{}})
}

// TestRunDirectRefusesUnsortedArrivals pins the sorted-input contract
// shared with Simulate.
func TestRunDirectRefusesUnsortedArrivals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunDirect accepted out-of-order arrivals")
		}
	}()
	RunDirect([]workload.Job{{Arrival: 5, Size: 1}, {Arrival: 1, Size: 1}},
		Config{Hosts: 2, Policy: toHostZero{}})
}

// TestDirectEngineParityInPackage is the in-package differential: a
// round-robin-by-ID script through both paths on the tie-trap stream and a
// heavy-tailed stream, full Result equality including warmup filtering and
// per-class streams. The cross-package differential over the real policies
// and trace profiles lives in internal/policy.
func TestDirectEngineParityInPackage(t *testing.T) {
	streams := map[string][]workload.Job{
		"ties":  tieJobs(),
		"heavy": goldenJobs(47, 4000),
	}
	for name, jobs := range streams {
		t.Run(name, func(t *testing.T) {
			mk := func() Config {
				hosts := make([]int, len(jobs))
				for i := range hosts {
					hosts[i] = i % 3
				}
				return Config{
					Hosts:          3,
					Policy:         &scripted{hosts: hosts},
					WarmupFraction: 0.25,
					KeepRecords:    true,
					SizeClass:      func(size float64) int { return int(size) & 1 },
				}
			}
			direct := RunDirect(jobs, mk())
			SetDirectEnabled(false)
			engine := Run(jobs, mk())
			SetDirectEnabled(true)
			if got, want := formatRecords(direct.Records), formatRecords(engine.Records); got != want {
				t.Fatalf("record streams differ:\ndirect: %.300s\nengine: %.300s", got, want)
			}
			if direct.Slowdown != engine.Slowdown || direct.Response != engine.Response || direct.Wait != engine.Wait {
				t.Fatalf("delay streams differ: %+v vs %+v", direct, engine)
			}
			if direct.Horizon != engine.Horizon {
				t.Fatalf("horizons differ: %v vs %v", direct.Horizon, engine.Horizon)
			}
		})
	}
}
