package server

import (
	"fmt"
	"math"

	"sita/internal/hostindex"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// Processor-Sharing hosts. The paper's architectural model forbids
// time-sharing (run-to-completion is the norm for memory-bound
// supercomputing jobs), but its fairness definition is motivated by
// footnote 1: "Processor-Sharing ... is ultimately fair in that every job
// experiences the same expected slowdown." This file provides PS hosts so
// that experiments can draw that ideal-fairness reference line: an M/G/1-PS
// host gives every job expected slowdown 1/(1-rho) regardless of its size.

// psJob tracks one job's remaining work inside a PS host.
type psJob struct {
	job       workload.Job
	remaining float64
}

// psHost serves all resident jobs simultaneously, each at rate 1/n.
type psHost struct {
	index      int
	jobs       []psJob
	lastUpdate float64
	pending    sim.Handle // scheduled completion of the current minimum
	engine     *sim.Engine
	onDone     func(rec JobRecord)
	workDone   float64
}

// advance charges elapsed processing time to every resident job.
//
//sim:noalloc
func (h *psHost) advance(now float64) {
	if len(h.jobs) > 0 {
		each := (now - h.lastUpdate) / float64(len(h.jobs))
		for i := range h.jobs {
			h.jobs[i].remaining -= each
		}
	}
	h.lastUpdate = now
}

// reschedule cancels any pending completion and schedules the next one as
// a typed event — canceling and rescheduling recycles the engine's slot
// arena, so the churn of PS arrivals never allocates.
//
//sim:noalloc
func (h *psHost) reschedule(now float64) {
	h.pending.Cancel()
	if len(h.jobs) == 0 {
		return
	}
	minRemaining := math.Inf(1)
	for i := range h.jobs {
		if h.jobs[i].remaining < minRemaining {
			minRemaining = h.jobs[i].remaining
		}
	}
	if minRemaining < 0 {
		minRemaining = 0
	}
	delay := minRemaining * float64(len(h.jobs))
	h.pending = h.engine.ScheduleAfter(delay, sim.Ev{Kind: evPSComplete, Host: int32(h.index)})
}

// complete retires the job whose completion this event was scheduled for —
// any state change since scheduling would have canceled the event, so the
// current minimum-remaining job is finishing now — plus every other job
// within floating-point reach of zero. Retiring by comparison with the
// minimum (rather than an absolute epsilon) avoids a livelock when the
// remaining sliver is smaller than the clock's ulp and virtual time can no
// longer advance.
//
//sim:noalloc
func (h *psHost) complete(now float64) {
	h.advance(now)
	if len(h.jobs) == 0 {
		return
	}
	minRemaining := h.jobs[0].remaining
	for _, pj := range h.jobs[1:] {
		if pj.remaining < minRemaining {
			minRemaining = pj.remaining
		}
	}
	tol := minRemaining + 1e-9*(1+math.Abs(now))
	kept := h.jobs[:0]
	for _, pj := range h.jobs {
		if pj.remaining <= tol {
			h.workDone += pj.job.Size
			// Record Start so that Wait() + Size == Departure - Arrival:
			// under PS the whole sharing-induced stretch counts as "wait".
			rec := JobRecord{
				ID:        pj.job.ID,
				Host:      h.index,
				Arrival:   pj.job.Arrival,
				Size:      pj.job.Size,
				Start:     now - pj.job.Size,
				Departure: now,
			}
			if h.onDone != nil {
				h.onDone(rec)
			}
		} else {
			kept = append(kept, pj) //lint:allow allocfree kept reuses jobs' backing array (kept := h.jobs[:0]); never grows
		}
	}
	h.jobs = kept
	h.reschedule(now)
}

// add admits a job at the current instant.
//
//sim:noalloc
func (h *psHost) add(job workload.Job, now float64) {
	h.advance(now)
	h.jobs = append(h.jobs, psJob{job: job, remaining: job.Size}) //lint:allow allocfree backing array grows to the high-water job count, then recycles
	h.reschedule(now)
}

// PSSystem is a distributed server whose hosts run Processor-Sharing
// instead of FCFS run-to-completion. Pull-based policies (Central) are not
// meaningful under PS — a PS host is never "busy" — so Assign must return a
// host index.
type PSSystem struct {
	engine *sim.Engine
	hosts  []*psHost
	policy Policy

	feed     []workload.Job
	feedNext int
	feedBase uint64

	// Host-selection indices (see System): the idle freelist is always
	// maintained, the jobs argmin activates on the first MinJobsHost query.
	// There is no incremental work index here — see MinWorkHost.
	idle    hostindex.BitSet
	jobsIdx hostindex.Tree
	jobsOn  bool
}

// NewPS builds a PS distributed server.
// Panics if h < 1 or p is nil.
func NewPS(h int, p Policy, onComplete func(JobRecord)) *PSSystem {
	if h <= 0 {
		panic(fmt.Sprintf("server: need at least one host, got %d", h))
	}
	if p == nil {
		panic("server: nil policy")
	}
	return newPSOn(&sim.Engine{}, h, p, onComplete)
}

// newPSOn wires a PSSystem onto an existing engine (fresh or pooled).
func newPSOn(eng *sim.Engine, h int, p Policy, onComplete func(JobRecord)) *PSSystem {
	s := &PSSystem{engine: eng, policy: p}
	for i := 0; i < h; i++ {
		s.hosts = append(s.hosts, &psHost{index: i, engine: eng, onDone: onComplete})
	}
	s.idle.Reset(h)
	s.idle.SetAll()
	eng.SetHandler(s)
	return s
}

// Hosts reports the host count.
func (s *PSSystem) Hosts() int { return len(s.hosts) }

// NumJobs reports jobs resident at host i.
func (s *PSSystem) NumJobs(i int) int { return len(s.hosts[i].jobs) }

// WorkLeft reports the unfinished work at host i at the current instant.
func (s *PSSystem) WorkLeft(i int) float64 {
	h := s.hosts[i]
	h.advance(s.engine.Now())
	total := 0.0
	for _, pj := range h.jobs {
		total += pj.remaining
	}
	return total
}

// Idle reports whether host i has no jobs.
func (s *PSSystem) Idle(i int) bool { return len(s.hosts[i].jobs) == 0 }

// NextIdleHost reports the lowest-indexed empty host, or -1.
func (s *PSSystem) NextIdleHost() int { return s.idle.Min() }

// MinWorkHost reports the host a lowest-index-wins scan of WorkLeft would
// pick.
//
// Unlike the FCFS System, the PS path answers this by an exact linear scan:
// a PS host's work left is a floating-point sum over resident jobs whose
// value depends on the whole advance() subdivision history, so an
// incrementally maintained drain-instant key could differ from the
// recomputed sum by an ulp and flip an exact tie. PS experiments run at
// small h (the fairness reference line), so the O(h) scan is not a hot
// path; the indexed fast path covers the FCFS many-hosts sweeps.
func (s *PSSystem) MinWorkHost() int { return s.minWorkIn(0, len(s.hosts)) }

// MinWorkHostIn is MinWorkHost over hosts lo <= i < hi.
// Panics if the range is empty or out of bounds.
func (s *PSSystem) MinWorkHostIn(lo, hi int) int {
	if lo < 0 || hi > len(s.hosts) || lo >= hi {
		panic(fmt.Sprintf("server: range [%d, %d) invalid for %d hosts", lo, hi, len(s.hosts)))
	}
	return s.minWorkIn(lo, hi)
}

//sim:noalloc
func (s *PSSystem) minWorkIn(lo, hi int) int {
	best, bestW := lo, s.WorkLeft(lo)
	for i := lo + 1; i < hi; i++ {
		if w := s.WorkLeft(i); w < bestW {
			best, bestW = i, w
		}
	}
	return best
}

// MinJobsHost reports the host with the fewest resident jobs, ties to the
// lowest index, from a lazily built incremental index. The first call
// allocates the index (so no //sim:noalloc here); steady state is
// allocation-free through the annotated Tree.Update path.
func (s *PSSystem) MinJobsHost() int {
	if !s.jobsOn {
		s.jobsIdx.Reset(len(s.hosts))
		for i := range s.hosts {
			s.jobsIdx.Update(i, float64(len(s.hosts[i].jobs)))
		}
		s.jobsOn = true
	}
	i, _ := s.jobsIdx.Min()
	return i
}

// noteJobs refreshes host i's standing in the idle freelist and (when
// active) the jobs argmin; call after any change to its resident set.
func (s *PSSystem) noteJobs(i int) {
	if len(s.hosts[i].jobs) == 0 {
		s.idle.Set(i)
	} else {
		s.idle.Clear(i)
	}
	if s.jobsOn {
		s.jobsIdx.Update(i, float64(len(s.hosts[i].jobs)))
	}
}

// Simulate runs the jobs (sorted by arrival) to completion, feeding
// arrivals lazily exactly like System.Simulate.
// Panics if the jobs are not sorted by arrival time or the policy routes
// a job outside the host range.
func (s *PSSystem) Simulate(jobs []workload.Job) {
	prev := 0.0
	for i, j := range jobs {
		if j.Arrival < prev {
			panic(fmt.Sprintf("server: job %d arrives at %v before %v", i, j.Arrival, prev))
		}
		prev = j.Arrival
	}
	s.feed = jobs
	s.feedNext = 0
	s.feedBase = s.engine.ReserveSeq(len(jobs))
	s.feedNextArrival()
	s.engine.Run()
	s.feed = nil
}

// feedNextArrival schedules the next unscheduled arrival, if any.
func (s *PSSystem) feedNextArrival() {
	if s.feedNext >= len(s.feed) {
		return
	}
	j := s.feed[s.feedNext]
	s.engine.ScheduleReserved(j.Arrival, s.feedBase+uint64(s.feedNext), sim.Ev{Kind: evPSArrival, Job: j})
	s.feedNext++
}

// HandleEvent dispatches the engine's typed events.
// Panics if the policy routes a job outside the host range.
//
//sim:noalloc
func (s *PSSystem) HandleEvent(now float64, ev sim.Ev) {
	switch ev.Kind {
	case evPSArrival:
		s.feedNextArrival()
		idx := s.policy.Assign(ev.Job, s)
		if idx < 0 || idx >= len(s.hosts) {
			panic(fmt.Sprintf("server: PS policy %q returned host %d of %d",
				s.policy.Name(), idx, len(s.hosts)))
		}
		s.hosts[idx].add(ev.Job, now)
		s.noteJobs(idx)
	case evPSComplete:
		s.hosts[ev.Host].complete(now)
		s.noteJobs(int(ev.Host))
	}
}

// RunPS simulates the job list on PS hosts and aggregates metrics like Run.
// A record's Wait is the sharing-induced stretch (response minus size), so
// Wait + Size = Response holds exactly as under FCFS.
// The jobs slice is never written: hosts copy each job into host-local
// pjob state, so callers may share one job list across concurrent runs
// (the package's read-only input contract).
// Panics if cfg.Hosts <= 0 or cfg.WarmupFraction is outside [0, 1).
//
//sim:entry
//sim:readonly jobs
func RunPS(jobs []workload.Job, cfg Config) *Result {
	if cfg.Hosts <= 0 {
		panic(fmt.Sprintf("server: config needs hosts > 0, got %d", cfg.Hosts))
	}
	if cfg.WarmupFraction < 0 || cfg.WarmupFraction >= 1 {
		panic(fmt.Sprintf("server: warmup fraction %v outside [0, 1)", cfg.WarmupFraction))
	}
	renumbered := renumber(jobs)
	warmup := int(cfg.WarmupFraction * float64(len(jobs)))
	res := &Result{
		PolicyName:  cfg.Policy.Name() + "/PS",
		Hosts:       cfg.Hosts,
		PerHostJobs: make([]int64, cfg.Hosts),
		PerHostWork: make([]float64, cfg.Hosts),
	}
	if cfg.SizeClass != nil {
		res.Classes = stats.NewClassTally()
	}
	eng := sim.Acquire()
	defer sim.Release(eng)
	if cfg.Interrupt != nil {
		eng.SetCancelCheck(cfg.interruptEvery(), cfg.Interrupt)
	}
	sys := newPSOn(eng, cfg.Hosts, cfg.Policy, func(rec JobRecord) {
		if cfg.OnRecord != nil {
			cfg.OnRecord(rec)
		}
		res.PerHostJobs[rec.Host]++
		if rec.Departure > res.Horizon {
			res.Horizon = rec.Departure
		}
		if rec.ID < warmup {
			return
		}
		slow := rec.Slowdown()
		if slow < 1 {
			slow = 1 // floating-point guard for lone jobs
		}
		res.Slowdown.Add(slow)
		res.Response.Add(rec.Response())
		res.Wait.Add(rec.Wait())
		if res.Classes != nil {
			res.Classes.Add(cfg.SizeClass(rec.Size), slow)
		}
		if cfg.KeepRecords {
			res.Records = append(res.Records, rec)
		}
	})
	sys.Simulate(renumbered)
	res.Interrupted = eng.Interrupted()
	for i, h := range sys.hosts {
		res.PerHostWork[i] = h.workDone
	}
	return res
}
