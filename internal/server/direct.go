package server

import (
	"fmt"
	"math"
	"sync"

	"sita/internal/workload"
)

// This file is the oblivious-policy fast path. When the assignment
// decision never reads system state (see Oblivious), each FCFS host
// evolves as an independent single-server queue and every job's service
// window follows Lindley's recurrence:
//
//	start  = max(free[host], arrival)
//	finish = start + size
//	free[host] = finish
//
// — exactly the float-op sequence the event-heap path performs, so the
// record stream is reproduced bit for bit without a sim.Engine, without
// per-event heap traffic, and without View index maintenance. The replay
// runs in two phases:
//
// Phase 1 (arrival order): assign every job (same Assign call sequence,
// hence same RNG draw order, as the engine's arrival events), run the
// recurrence, and thread each host's jobs onto a FIFO chain. No heap, no
// event interleaving — a branch-light array pass.
//
// Phase 2 (emission order): the engine delivers completions globally
// sorted by (departure time, schedule order), where schedule order is the
// order service starts were issued. Per host, departures are already in
// chain order, so the global order is an h-way merge of sorted lists: a
// loser tree over the hosts' current chain heads yields each next
// departure in O(log h) — one comparison per level, against the loser
// stored at each node, with the running winner carried in a register —
// and the per-record accounting (the same Welford-stream adds, in the
// same order, as Result.observe) happens inline at the emission site.
//
// The only subtlety is the tie-break. The engine breaks equal departure
// times by event sequence number: arrivals hold block-reserved seqs 0..n-1
// (sim.ReserveSeq) and each departure is scheduled — and numbered — at the
// instant its job starts service, so equal-time departures emit in
// service-start order. Start order itself is lexicographic in
// (start time, trigger seq): a start is triggered either by the job's own
// arrival event (host idle; trigger seq = arrival ordinal < n) or by its
// FCFS predecessor's departure event (trigger seq = that departure's seq
// >= n). The replay reproduces that order exactly without interleaving by
// keying each pending departure with the triple
//
//	(finish, start, trigger)
//
// where trigger is the job's own arrival ordinal for idle starts — known
// in phase 1 — and n + (predecessor's emission rank) for queued starts —
// known in phase 2 the moment the predecessor is emitted, which is exactly
// when the job's key enters the tree. Comparing triples is equivalent to
// comparing the engine's (at, seq) pairs: equal finishes compare start
// instants (earlier start was scheduled first), and equal start instants
// compare triggers, where every idle start (trigger < n) precedes every
// queued start (trigger >= n) at the same instant — the engine's
// arrivals-first rule — and triggers within each class carry the engine's
// processing order by construction.
//
// Policies that do read system state (Shortest-Queue, Least-Work-Left,
// Central-Queue, Grouped-SITA), pull policies, processor sharing, and
// interrupted runs still require the engine; Run dispatches automatically
// and RunDirect refuses non-oblivious policies outright.

// queuedTrigger marks a job whose service start is triggered by its FCFS
// predecessor's departure; the real trigger key is assigned in phase 2
// when that predecessor is emitted.
const queuedTrigger = ^uint32(0)

// directJob is the phase-2 view of one job, packed so an emission touches
// a single 32-byte struct instead of four parallel arrays. The job's ID is
// its index (renumber guarantees arrival ordinals), so it is not stored.
type directJob struct {
	arr    float64
	size   float64
	start  float64
	finish float64
}

// directLink is the chain metadata for one job: the same-host successor in
// arrival order (-1 when none) and the start trigger (the job's own
// arrival ordinal for idle starts, queuedTrigger until resolved for queued
// starts).
type directLink struct {
	next int32
	trig uint32
}

// departKey orders one host's next pending departure: finish time, then
// service start time, then start trigger — the engine's (time, seq) event
// order, decomposed per the file comment. Hosts with nothing pending hold
// +Inf sentinels.
//
// The time fields hold IEEE-754 bit patterns (math.Float64bits), not
// floats: simulated clocks live in [0, +Inf], where the bit patterns are
// order-isomorphic to the doubles, so an integer compare is the exact
// float compare — and unlike floats, integers are eligible for CMOV, so
// the tournament replay's data-dependent winner selects compile
// branch-free instead of as unpredictable branches. (The differential
// tests against the engine are the oracle that this encoding never
// reorders a tie.)
type departKey struct {
	at   uint64
	st   uint64
	trig uint64
}

// directRunner holds the direct path's reusable scratch state. Acquired
// from directPool per run, so steady-state sweeps stop touching the
// allocator once the arrays have grown to the largest (jobs, hosts) seen.
type directRunner struct {
	// Per-host state.
	free []float64 // Lindley clock: finish of the last job assigned to the host
	last []int32   // most recently assigned job, -1 when none yet
	head []int32   // next job to depart (phase 2 chain cursor), -1 when drained

	// Loser tree over the hosts' pending departures. keys is sized to the
	// leaf count m (smallest power of two >= hosts); lose[0] is the
	// overall winner and lose[1..m-1] the loser at each internal node.
	// win is build-time scratch.
	keys []departKey
	lose []int32
	win  []int32
	m    int

	// Per-job state, indexed by arrival ordinal.
	job  []directJob
	link []directLink

	policy   Policy
	view     View // tripwire handed to Assign; see directView
	tripwire directView

	// Accounting sinks: phase 2 folds each emission into res inline —
	// the same update sequence as Result.observe. cold is non-nil only
	// when the run needs per-record extras (Classes, KeepRecords).
	res    *Result
	warmup int
	cold   func(JobRecord)
}

// directPool recycles runner scratch across simulation cells, mirroring
// sim's engine pool: a sweep acquires thousands of times but allocates a
// handful of runners.
var directPool = sync.Pool{New: func() any { return new(directRunner) }}

// setup sizes the scratch for one run and resets per-host state. Per-job
// arrays are not cleared: phase 1 writes every slot phase 2 reads. Slot n
// of the job/link arrays is the sentinel a drained chain points at: its
// +Inf key never wins the tree, which spares the emission loop a
// successor-exists branch. Slots n+1..n+h are per-host dummy chain tails:
// last[w] starts at dummy w, so appending to a chain is one unconditional
// link store instead of a first-job branch, and the chain head is read
// back as link[n+1+w].next. The Lindley clocks start at -Inf, not 0: the
// max with any finite arrival is unchanged, and it makes "host idle at
// this arrival" a single float compare (a fresh host's clock is below
// every arrival by construction).
func (d *directRunner) setup(n, h int, p Policy) {
	m := 1
	for m < h {
		m <<= 1
	}
	if cap(d.free) < h || cap(d.keys) < m {
		d.free = make([]float64, h)
		d.last = make([]int32, h)
		d.head = make([]int32, h)
		d.keys = make([]departKey, m)
		d.lose = make([]int32, m)
		d.win = make([]int32, 2*m)
	}
	d.free = d.free[:h]
	d.last = d.last[:h]
	d.head = d.head[:h]
	d.keys = d.keys[:m]
	d.lose = d.lose[:m]
	d.win = d.win[:2*m]
	d.m = m
	if cap(d.job) < n+1+h {
		d.job = make([]directJob, n+1+h)
		d.link = make([]directLink, n+1+h)
	}
	d.job = d.job[:n+1+h]
	d.link = d.link[:n+1+h]
	inf := math.Inf(1)
	sentinel := int32(n)
	d.job[n] = directJob{arr: inf, size: inf, start: inf, finish: inf}
	d.link[n] = directLink{next: sentinel, trig: 0}
	ninf := math.Inf(-1)
	for i := 0; i < h; i++ {
		d.free[i] = ninf
		d.last[i] = int32(n+1) + int32(i)
		d.link[n+1+i] = directLink{next: sentinel, trig: 0}
	}
	d.policy = p
	d.tripwire = directView{hosts: h, policy: p}
	d.view = &d.tripwire
}

// release drops the per-run references (policy, result, cold closure) so a
// pooled runner never retains a caller's objects, then returns it to the
// pool.
func (d *directRunner) release() {
	d.policy = nil
	d.tripwire = directView{}
	d.view = nil
	d.res = nil
	d.cold = nil
	directPool.Put(d)
}

// replay runs both phases over the renumbered job list, folding one
// completion per job into d.res in the engine's exact emission order.
// O(n log h); in practice two branch-light array passes, since h is small
// next to n.
//
//sim:noalloc
func (d *directRunner) replay(jobs []workload.Job) {
	d.assign(jobs)
	d.emitAll(len(jobs))
}

// assign is phase 1: dispatch every job in arrival order, run Lindley's
// recurrence on the chosen host's clock, and thread the per-host FCFS
// chains that phase 2 merges. Doubles as the sorted-arrival check, saving
// a separate pass over the trace. Panics if the jobs are not sorted by
// arrival or the policy returns an out-of-range host.
//
//sim:noalloc
func (d *directRunner) assign(jobs []workload.Job) {
	sentinel := int32(len(jobs))
	prev := 0.0
	for i := range jobs {
		j := jobs[i]
		if j.Arrival < prev {
			panic(fmt.Sprintf("server: job %d arrives at %v before %v", i, j.Arrival, prev))
		}
		prev = j.Arrival
		idx := d.policy.Assign(j, d.view)
		if idx < 0 || idx >= len(d.free) {
			panic(fmt.Sprintf("server: policy %q returned host %d of %d on the direct path", d.policy.Name(), idx, len(d.free)))
		}
		free := d.free[idx]
		st := j.Arrival
		if free > st {
			st = free
		}
		// Idle start: the predecessor (if any) finished strictly before
		// this arrival — a fresh host's -Inf clock is below every arrival.
		// At an exact tie the host is still busy when the arrival is
		// processed (arrival seqs precede departure seqs), so the job
		// queues and its trigger is the predecessor's departure.
		tk := queuedTrigger
		if j.Arrival > free {
			tk = uint32(i)
		}
		fin := st + j.Size
		d.job[i] = directJob{arr: j.Arrival, size: j.Size, start: st, finish: fin}
		d.link[i] = directLink{next: sentinel, trig: tk}
		d.free[idx] = fin
		d.link[d.last[idx]].next = int32(i)
		d.last[idx] = int32(i)
	}
}

// emitAll is phase 2: merge the per-host departure chains through the
// loser tree and fold every completion into d.res, in the engine's
// (time, seq) emission order, via the same update sequence as
// Result.observe.
//
//sim:noalloc
func (d *directRunner) emitAll(n int) {
	inf := math.Float64bits(math.Inf(1))
	for i := 0; i < d.m; i++ {
		if i < len(d.head) {
			// A chain head — read off host i's dummy tail slot — is always
			// an idle start, so its trigger is already resolved; an unused
			// host's head is the sentinel, whose job carries the same +Inf
			// key as a padding leaf.
			e := d.link[n+1+i].next
			d.head[i] = e
			d.keys[i] = departKey{
				at:   math.Float64bits(d.job[e].finish),
				st:   math.Float64bits(d.job[e].start),
				trig: uint64(d.link[e].trig),
			}
		} else {
			d.keys[i] = departKey{at: inf, st: inf, trig: uint64(i)}
		}
	}
	// Build: compute the winner tree bottom-up in scratch, store the loser
	// of each match at its node; lose[0] is the overall winner.
	for i := 0; i < d.m; i++ {
		d.win[d.m+i] = int32(i)
	}
	for i := d.m - 1; i >= 1; i-- {
		w, l := d.win[2*i], d.win[2*i+1]
		if d.nodeLess(l, w) {
			w, l = l, w
		}
		d.win[i] = w
		d.lose[i] = l
	}
	if d.m == 1 {
		d.lose[0] = 0
	} else {
		d.lose[0] = d.win[1]
	}

	res := d.res
	for r := 0; r < n; r++ {
		w := d.lose[0]
		e := d.head[w]
		dj := d.job[e]

		res.PerHostJobs[w]++
		res.PerHostWork[w] += dj.size
		if dj.finish > res.Horizon {
			res.Horizon = dj.finish
		}
		if int(e) >= d.warmup {
			wait := dj.start - dj.arr
			resp := wait + dj.size
			res.Slowdown.Add(resp / dj.size)
			res.Response.Add(resp)
			res.Wait.Add(wait)
		}
		if d.cold != nil {
			d.cold(JobRecord{
				ID: int(e), Host: int(w),
				Arrival: dj.arr, Size: dj.size,
				Start: dj.start, Departure: dj.finish,
			})
		}

		// Advance the chain. A drained chain lands on the sentinel job,
		// whose +Inf key never wins, so no successor-exists branch is
		// needed. The trigger select compiles branch-free: a queued
		// successor's service starts now, triggered by this departure, so
		// its key is n + this emission's rank — which sorts after every
		// arrival trigger (< n) and in emission order among departure
		// triggers, the engine's event sequence order.
		s := d.link[e].next
		tk := uint64(d.link[s].trig)
		if tk == uint64(queuedTrigger) {
			tk = uint64(n + r)
		}
		ck := departKey{at: math.Float64bits(d.job[s].finish), st: math.Float64bits(d.job[s].start), trig: tk}
		d.keys[w] = ck
		d.head[w] = s

		// Replay the loser-tree path: carry the candidate winner up from
		// the changed leaf, swapping with any stored loser that beats it.
		// The carried winner's key rides in registers (ck) so each level
		// is one independent load pair plus integer compare-and-selects —
		// the winner flips are data-dependent coin tosses a branch
		// predictor cannot learn, so they must be CMOVs, which the
		// bit-pattern keys make possible.
		c := w
		for i := (d.m + int(w)) >> 1; i >= 1; i >>= 1 {
			li := d.lose[i]
			lk := d.keys[li]
			swap := keyLess(lk, ck)
			nl := li
			if swap {
				nl = c
			}
			d.lose[i] = nl
			if swap {
				c = li
				ck = lk
			}
		}
		d.lose[0] = c
	}
}

// keyLess orders pending departures by (finish, start, trigger) — the
// event heap's (time, seq) order decomposed per the file comment. The
// compares are integer compares on float bit patterns; see departKey.
// The equality branches are near-perfectly predicted (distinct finish
// times dominate); only the result is unpredictable, and it feeds CMOVs
// at the call sites.
func keyLess(a, b departKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.st != b.st {
		return a.st < b.st
	}
	return a.trig < b.trig
}

// nodeLess is the index form of keyLess, used by the build pass.
func (d *directRunner) nodeLess(a, b int32) bool {
	return keyLess(d.keys[a], d.keys[b])
}

// DirectEligible reports whether Run would take the direct path for this
// configuration: the policy claims obliviousness, no interrupt probe or
// order check is installed, and the path is globally enabled. Callers
// that install per-request interrupt probes (internal/service) use this
// to skip the probe when the run will be too fast to need one.
// cfg.OrderCheck asserts event-heap dispatch order, so it pins the run
// to the engine — which also makes it the per-run engine-forcing knob
// the property harness uses for heap-vs-direct comparisons.
func DirectEligible(cfg Config) bool {
	return cfg.Interrupt == nil && !cfg.OrderCheck && DirectEnabled() && IsOblivious(cfg.Policy)
}

// RunDirect simulates the job list under an oblivious policy without the
// discrete-event engine, producing a Result bit-identical to Run's engine
// path: same float-op sequence, same JobRecord fields, same emission
// order, same RNG draw order (Assign is called once per job in arrival
// order, exactly as the engine's arrival events do). Panics if the policy
// does not claim the Oblivious capability or the jobs are not sorted by
// arrival, and shares Run's other contracts: cfg.Hosts > 0, warmup in
// [0, 1). cfg.Interrupt is not supported here — Run falls back to the
// engine when a probe is installed.
//
//sim:entry
//sim:readonly jobs
func RunDirect(jobs []workload.Job, cfg Config) *Result {
	validateConfig(cfg)
	if !IsOblivious(cfg.Policy) {
		panic(fmt.Sprintf("server: RunDirect needs an oblivious policy; %q does not claim the capability", cfg.Policy.Name()))
	}
	renumbered := renumber(jobs)
	warmup := int(cfg.WarmupFraction * float64(len(jobs)))
	res := newResult(cfg)
	d := directPool.Get().(*directRunner)
	d.setup(len(renumbered), cfg.Hosts, cfg.Policy)
	d.res = res
	d.warmup = warmup
	if cfg.SizeClass != nil || cfg.KeepRecords || cfg.OnRecord != nil {
		// Per-record extras run off the hot path, in the same emission
		// order and after the same stream adds as Result.observe. The
		// hook fires for every record (warmup included, matching
		// Result.observe); the per-class and record-keeping extras apply
		// only past the warmup prefix, exactly as on the engine path.
		d.cold = func(rec JobRecord) {
			if cfg.OnRecord != nil {
				cfg.OnRecord(rec)
			}
			if rec.ID < warmup {
				return
			}
			if res.Classes != nil {
				res.Classes.Add(cfg.SizeClass(rec.Size), rec.Slowdown())
			}
			if cfg.KeepRecords {
				res.Records = append(res.Records, rec)
			}
		}
	}
	d.replay(renumbered)
	d.release()
	return res
}
