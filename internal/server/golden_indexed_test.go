package server

import (
	"os"
	"path/filepath"
	"testing"

	"sita/internal/workload"
)

// Golden replay through the indexed host-selection paths: the scenarios
// below re-run golden workloads with policies that answer through the
// View argmin queries (MinWorkHost, NextIdleHost) instead of the linear
// scans the golden files were generated with. Matching the same golden
// bytes proves the indices reproduce the scans' picks — including every
// tie — on the exact traces that pin the kernel's event ordering.

// indexedLWL is least-work-left through the incremental work index.
type indexedLWL struct{}

func (indexedLWL) Name() string                      { return "lwl-indexed" }
func (indexedLWL) Assign(_ workload.Job, v View) int { return v.MinWorkHost() }

// indexedCQ routes to the lowest idle host via the freelist, else holds
// centrally. Under CentralFCFS this is record-equivalent to holding every
// job (the toCentral golden policy): a held job drains immediately to the
// same lowest-indexed idle host with the same start instant.
type indexedCQ struct{}

func (indexedCQ) Name() string { return "cq-indexed" }
func (indexedCQ) Assign(_ workload.Job, v View) int {
	if i := v.NextIdleHost(); i >= 0 {
		return i
	}
	return Central
}

func TestKernelGoldenIndexedReplay(t *testing.T) {
	scenarios := []struct {
		golden string
		run    func() *Result
	}{
		{"push-lwl", func() *Result {
			return Run(goldenJobs(42, 3000), Config{Hosts: 3, Policy: indexedLWL{}, KeepRecords: true})
		}},
		{"ties-push-lwl", func() *Result {
			return Run(tieJobs(), Config{Hosts: 2, Policy: indexedLWL{}, KeepRecords: true})
		}},
		{"ps-cancel", func() *Result {
			return RunPS(goldenJobs(46, 1500), Config{Hosts: 2, Policy: indexedLWL{}, KeepRecords: true})
		}},
		{"central-fcfs", func() *Result {
			return Run(goldenJobs(43, 3000), Config{Hosts: 3, Policy: indexedCQ{}, CentralOrder: CentralFCFS, KeepRecords: true})
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", sc.golden+".golden"))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			if got := formatRecords(sc.run().Records); got != string(want) {
				t.Fatalf("indexed replay diverged from %s.golden; first lines:\ngot:  %.200s\nwant: %.200s",
					sc.golden, got, want)
			}
		})
	}
}

// TestIndexedSelectionSurvivesEngineReuse interleaves indexed-policy runs
// at different host counts so the pooled engines (sim.Acquire/Release
// inside Run) and the index backing arrays are reused across shrinking and
// regrowing systems; any ghost state — a stale idle bit, a leftover tree
// key — would perturb the replayed record stream.
func TestIndexedSelectionSurvivesEngineReuse(t *testing.T) {
	run := func(hosts int) string {
		return formatRecords(Run(goldenJobs(42, 2000),
			Config{Hosts: hosts, Policy: indexedLWL{}, KeepRecords: true}).Records)
	}
	first5 := run(5)
	first2 := run(2)
	run(7) // grow past both, touching fresh index capacity
	if again := run(5); again != first5 {
		t.Fatal("h=5 run diverged after engine/pool reuse at other host counts")
	}
	if again := run(2); again != first2 {
		t.Fatal("h=2 run diverged after engine/pool reuse at other host counts")
	}
}
