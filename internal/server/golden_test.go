package server

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/workload"
)

// The golden kernel-equivalence suite pins the exact per-job record stream
// of the simulator — IDs, host assignments, and bit-exact start/departure
// times — across engine rewrites. The files under testdata/ were generated
// from the original closure-based event engine (one heap-allocated item and
// one Event closure per scheduled event, all arrivals pre-scheduled); any
// kernel change that reorders simultaneous events, perturbs a float, or
// breaks the FIFO tie-break shows up as a diff here before it can corrupt
// results/.
//
// Regenerate (only when the *model*, not the kernel, changes) with:
//
//	go test ./internal/server -run TestKernelGolden -update

var updateGolden = flag.Bool("update", false, "rewrite golden kernel-equivalence files")

// alternating pushes every third job to the central queue and spreads the
// rest round-robin: a mixed push/pull schedule that exercises the central
// queue and the per-host FIFO queues in one run.
type alternating struct{ n int }

func (*alternating) Name() string { return "alternating" }
func (a *alternating) Assign(j workload.Job, v View) int {
	a.n++
	if a.n%3 == 0 {
		return Central
	}
	return a.n % v.Hosts()
}

// toCentral holds every job at the dispatcher.
type toCentral struct{}

func (toCentral) Name() string                  { return "to-central" }
func (toCentral) Assign(workload.Job, View) int { return Central }

// goldenLWL is least-work-left without importing internal/policy.
type goldenLWL struct{}

func (goldenLWL) Name() string { return "lwl" }
func (goldenLWL) Assign(_ workload.Job, v View) int {
	best, bestW := 0, v.WorkLeft(0)
	for i := 1; i < v.Hosts(); i++ {
		if w := v.WorkLeft(i); w < bestW {
			best, bestW = i, w
		}
	}
	return best
}

// goldenJobs synthesizes a heavy-tailed job stream at high load so queues,
// central holds, and simultaneous-completion races all occur.
func goldenJobs(seed uint64, n int) []workload.Job {
	size := dist.NewBoundedPareto(1.2, 1, 1e4)
	lambda := workload.RateForLoad(0.9, size.Moment(1), 3)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(seed, 0), sim.NewRNG(seed, 1))
	return src.Take(n)
}

// tieJobs is a handcrafted stream of exact floating-point coincidences:
// simultaneous arrivals, arrivals landing exactly on earlier departures,
// and equal-size SJF candidates — the cases where only the engine's
// (time, seq) tie-break determines the outcome.
func tieJobs() []workload.Job {
	return []workload.Job{
		{Arrival: 0, Size: 5},
		{Arrival: 0, Size: 5}, // simultaneous with job 0, equal size
		{Arrival: 0, Size: 2}, // simultaneous, shorter (SJF must pick it first)
		{Arrival: 2, Size: 3}, // arrives exactly at job 2's departure (2 = 0+2)
		{Arrival: 5, Size: 1}, // arrives exactly at jobs 0/1's departure
		{Arrival: 5, Size: 1}, // and its twin
		{Arrival: 5, Size: 7},
		{Arrival: 6, Size: 1},   // arrives exactly when the size-1 twins depart
		{Arrival: 13, Size: 13}, // lone straggler after a full drain
		{Arrival: 13, Size: 13},
	}
}

func goldenScenarios() []struct {
	name string
	run  func() *Result
} {
	return []struct {
		name string
		run  func() *Result
	}{
		{"push-lwl", func() *Result {
			return Run(goldenJobs(42, 3000), Config{Hosts: 3, Policy: goldenLWL{}, KeepRecords: true})
		}},
		{"central-fcfs", func() *Result {
			return Run(goldenJobs(43, 3000), Config{Hosts: 3, Policy: toCentral{}, CentralOrder: CentralFCFS, KeepRecords: true})
		}},
		{"central-sjf", func() *Result {
			return Run(goldenJobs(44, 3000), Config{Hosts: 3, Policy: toCentral{}, CentralOrder: CentralSJF, KeepRecords: true})
		}},
		{"mixed-push-pull", func() *Result {
			return Run(goldenJobs(45, 3000), Config{Hosts: 3, Policy: &alternating{}, CentralOrder: CentralSJF, KeepRecords: true})
		}},
		{"ps-cancel", func() *Result {
			return RunPS(goldenJobs(46, 1500), Config{Hosts: 2, Policy: goldenLWL{}, KeepRecords: true})
		}},
		{"ties-central-sjf", func() *Result {
			return Run(tieJobs(), Config{Hosts: 2, Policy: toCentral{}, CentralOrder: CentralSJF, KeepRecords: true})
		}},
		{"ties-push-lwl", func() *Result {
			return Run(tieJobs(), Config{Hosts: 2, Policy: goldenLWL{}, KeepRecords: true})
		}},
	}
}

// formatRecords renders records bit-exactly: hex float literals round-trip
// every float64 without decimal rounding, so a one-ulp drift fails the diff.
func formatRecords(recs []JobRecord) string {
	var b strings.Builder
	hx := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	for _, r := range recs {
		fmt.Fprintf(&b, "%d %d %s %s %s %s\n",
			r.ID, r.Host, hx(r.Arrival), hx(r.Size), hx(r.Start), hx(r.Departure))
	}
	return b.String()
}

func TestKernelGoldenRecords(t *testing.T) {
	for _, sc := range goldenScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			got := formatRecords(sc.run().Records)
			path := filepath.Join("testdata", sc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to generate): %v", err)
			}
			if got != string(want) {
				t.Fatalf("record stream diverged from the closure-based engine's golden output (%s); first lines:\ngot:  %.200s\nwant: %.200s",
					path, got, want)
			}
		})
	}
}

// TestKernelGoldenDeterminism guards the goldens themselves: two runs of a
// scenario in one process must produce identical bytes, otherwise the files
// pin noise instead of semantics.
func TestKernelGoldenDeterminism(t *testing.T) {
	for _, sc := range goldenScenarios() {
		a := formatRecords(sc.run().Records)
		b := formatRecords(sc.run().Records)
		if a != b {
			t.Fatalf("%s: scenario is not deterministic within one process", sc.name)
		}
	}
}
