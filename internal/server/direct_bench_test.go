package server

import (
	"testing"
)

// BenchmarkDirectReplayCore isolates the direct path's steady-state inner
// loop — pooled scratch, assignment pass, tournament-merge emission — from
// the per-run Result construction, pinning the //sim:noalloc contract
// empirically: after the first iteration grows the scratch arrays,
// allocs/op must report 0.
func BenchmarkDirectReplayCore(b *testing.B) {
	jobs := goldenJobs(48, 100000)
	hosts := make([]int, len(jobs))
	for i := range hosts {
		hosts[i] = i % 32
	}
	pol := &scripted{hosts: hosts}
	res := &Result{
		PerHostJobs: make([]int64, 32),
		PerHostWork: make([]float64, 32),
	}
	d := directPool.Get().(*directRunner)
	defer d.release()
	d.res = res
	d.setup(len(jobs), 32, pol)
	d.replay(jobs)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.setup(len(jobs), 32, pol)
		d.replay(jobs)
	}
	b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	if res.Slowdown.Count() == 0 {
		b.Fatal("no jobs observed")
	}
}
