package server

import (
	"fmt"

	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	Hosts  int
	Policy Policy
	// WarmupFraction is the fraction of jobs (in arrival order) whose
	// completions are excluded from statistics; they still occupy the
	// system. Mean slowdown is tail-sensitive, so excluding the cold-start
	// transient matters at high load.
	WarmupFraction float64
	// KeepRecords retains every per-job record in the result (memory
	// proportional to the number of jobs).
	KeepRecords bool
	// SizeClass, when non-nil, maps a job size to a class label for
	// per-class slowdown statistics (the fairness analyses).
	SizeClass func(size float64) int
	// CentralOrder selects the central-queue discipline for pull policies
	// (default CentralFCFS).
	CentralOrder CentralOrder
	// Interrupt, when non-nil, is polled every InterruptEvery simulated
	// events (default 4096); when it reports true the simulation stops
	// early and the Result carries Interrupted=true with statistics over
	// the jobs completed so far. Serving paths use this to honor request
	// deadlines; batch paths leave it nil, which costs nothing and keeps
	// output byte-identical. The callback must be cheap and must not
	// block (e.g. a non-blocking context poll).
	Interrupt func() bool
	// OnRecord, when non-nil, receives every completed job's record in
	// emission order — warmup jobs included, unlike KeepRecords — on both
	// simulation paths (event heap and direct recurrence), before the
	// record is folded into the statistics. The correctness harness
	// (internal/simtest) streams invariant checks through it without
	// buffering the whole run; nil costs nothing. The callback must not
	// mutate shared state used by the simulation and must not retain the
	// record past the call if it holds references (it does not — records
	// are plain values).
	OnRecord func(JobRecord)
	// InterruptEvery overrides the polling interval in events (<= 0 means
	// the default). Ignored when Interrupt is nil.
	InterruptEvery int
	// OrderCheck arms the event kernel's dispatch-order assertion
	// (sim.Engine.SetOrderCheck) for the run: the engine panics if it
	// ever fires an event out of (time, seq) order. Only meaningful on
	// the engine path — the direct recurrence has no event heap — and
	// intended for the property harness (internal/simtest), not
	// production sweeps.
	OrderCheck bool
}

// defaultInterruptEvery balances deadline latency against probe overhead:
// at millions of events per second, 4096 events bound the reaction time to
// well under a millisecond while keeping the poll far off the hot path.
const defaultInterruptEvery = 4096

// interruptEvery resolves the configured polling interval.
func (c Config) interruptEvery() int {
	if c.InterruptEvery > 0 {
		return c.InterruptEvery
	}
	return defaultInterruptEvery
}

// Result aggregates one run's metrics.
//
// A Result is single-goroutine: it is populated by Run's completion
// callback on the goroutine executing Run, with no internal locking, and
// must not be read until Run returns nor shared with other goroutines
// while being written. Concurrent experiment runners (internal/runner)
// must give every simulation cell its own Result — which Run does by
// construction, allocating a fresh one per call.
type Result struct {
	PolicyName string
	Hosts      int

	Slowdown stats.Stream
	Response stats.Stream
	Wait     stats.Stream

	// PerHostJobs and PerHostWork count completed jobs and completed work
	// per host (warmup included: they describe where load went, not delay).
	PerHostJobs []int64
	PerHostWork []float64

	// Horizon is the completion time of the last job.
	Horizon float64

	// Interrupted reports that Config.Interrupt stopped the simulation
	// before the job list drained; every other field then covers only the
	// prefix of jobs that completed in time.
	Interrupted bool

	// MeanQueueLen is the time-averaged number of waiting jobs over the
	// simulated horizon, accrued event by event by the FCFS engine path
	// (System.MeanQueueLength) — an accounting of E[Q] that is
	// independent of the per-job records, which is what makes Little's
	// law (E[Q] = lambda * E[W]) a genuine cross-check of the event
	// bookkeeping rather than an identity. Populated only by the engine
	// FCFS path; 0 on the direct-recurrence and PS paths.
	MeanQueueLen float64

	// Classes holds per-class slowdown streams when Config.SizeClass is
	// set.
	Classes *stats.ClassTally

	Records []JobRecord
}

// LoadFractions reports each host's share of the total completed work.
func (r *Result) LoadFractions() []float64 {
	total := 0.0
	for _, w := range r.PerHostWork {
		total += w
	}
	out := make([]float64, len(r.PerHostWork))
	if total == 0 {
		return out
	}
	for i, w := range r.PerHostWork {
		out[i] = w / total
	}
	return out
}

// Utilization reports the fraction of the run each host spent busy.
func (r *Result) Utilization(i int) float64 {
	if r.Horizon == 0 {
		return 0
	}
	return r.PerHostWork[i] / r.Horizon
}

// validateConfig checks the contracts shared by Run and RunDirect.
// Panics if cfg.Hosts <= 0 or cfg.WarmupFraction is outside [0, 1).
func validateConfig(cfg Config) {
	if cfg.Hosts <= 0 {
		panic(fmt.Sprintf("server: config needs hosts > 0, got %d", cfg.Hosts))
	}
	// Affirmative form so NaN is rejected too (int(NaN * n) is not a
	// warmup count).
	if !(cfg.WarmupFraction >= 0 && cfg.WarmupFraction < 1) {
		panic(fmt.Sprintf("server: warmup fraction %v outside [0, 1)", cfg.WarmupFraction))
	}
}

// newResult builds the empty Result for one run.
func newResult(cfg Config) *Result {
	res := &Result{
		PolicyName:  cfg.Policy.Name(),
		Hosts:       cfg.Hosts,
		PerHostJobs: make([]int64, cfg.Hosts),
		PerHostWork: make([]float64, cfg.Hosts),
	}
	if cfg.SizeClass != nil {
		res.Classes = stats.NewClassTally()
	}
	return res
}

// observe folds one completed job into the result: per-host accounting
// always, delay statistics past the warmup prefix. Both simulation paths
// — the event-heap engine and the direct recurrence — emit records
// through this single function, in the same order, so the accumulated
// streams are bit-identical by construction.
func (res *Result) observe(rec JobRecord, warmup int, cfg *Config) {
	if cfg.OnRecord != nil {
		cfg.OnRecord(rec)
	}
	res.PerHostJobs[rec.Host]++
	res.PerHostWork[rec.Host] += rec.Size
	if rec.Departure > res.Horizon {
		res.Horizon = rec.Departure
	}
	if rec.ID < warmup {
		return
	}
	res.Slowdown.Add(rec.Slowdown())
	res.Response.Add(rec.Response())
	res.Wait.Add(rec.Wait())
	if res.Classes != nil {
		res.Classes.Add(cfg.SizeClass(rec.Size), rec.Slowdown())
	}
	if cfg.KeepRecords {
		res.Records = append(res.Records, rec)
	}
}

// Run simulates the job list under the configuration and returns aggregated
// metrics. Jobs are renumbered by arrival order; records carry that
// ordinal as their ID.
//
// Dispatch: when the policy claims the Oblivious capability, no interrupt
// probe is installed, and the direct path is enabled (SetDirectEnabled),
// Run takes the O(1)-per-job direct recurrence (RunDirect) instead of the
// discrete-event engine. The two paths produce bit-identical Results —
// same float sequence, same record emission order, same RNG draw order —
// so the dispatch is invisible to callers; -direct=0 on cmd/sweep forces
// the engine for parity checks.
//
// Concurrency: Run itself is synchronous and single-goroutine — the
// completion accounting (Result.observe) updates the Result's Horizon,
// PerHost and stream fields without locks, which is safe because both
// simulation paths deliver completions sequentially on the calling
// goroutine. Concurrent Run calls are safe provided each call gets its own
// cfg.Policy instance (policies are stateful; see Policy) and its own
// SizeClass func if that func is stateful. The jobs slice is never
// written (it is copied first when renumbering is needed), so callers may
// share one job list across concurrent runs — the package's read-only
// input contract, which internal/streamcache relies on.
// Panics if cfg.Hosts <= 0 or cfg.WarmupFraction is outside [0, 1).
//
//sim:entry
//sim:readonly jobs
func Run(jobs []workload.Job, cfg Config) *Result {
	validateConfig(cfg)
	if DirectEligible(cfg) {
		return RunDirect(jobs, cfg)
	}
	return runEngine(jobs, cfg)
}

// runEngine is the discrete-event path: every arrival and departure is an
// event on the sim.Engine heap, which is what supports state-reading
// policies, central-queue pulls, and cooperative interruption.
//
//sim:readonly jobs
func runEngine(jobs []workload.Job, cfg Config) *Result {
	renumbered := renumber(jobs)
	warmup := int(cfg.WarmupFraction * float64(len(jobs)))

	res := newResult(cfg)
	eng := sim.Acquire()
	defer sim.Release(eng)
	if cfg.Interrupt != nil {
		eng.SetCancelCheck(cfg.interruptEvery(), cfg.Interrupt)
	}
	if cfg.OrderCheck {
		eng.SetOrderCheck(true)
	}
	sys := newSystemOn(eng, cfg.Hosts, cfg.Policy, cfg.CentralOrder, func(rec JobRecord) {
		res.observe(rec, warmup, &cfg)
	})
	sys.Simulate(renumbered)
	res.Interrupted = eng.Interrupted()
	res.MeanQueueLen = sys.MeanQueueLength()
	return res
}

// renumber gives jobs arrival-order ordinals as their IDs. Job streams
// from workload.Source already carry ordinal IDs, in which case the input
// is returned as-is (Simulate never writes the slice); otherwise a
// renumbered copy is made so callers can share one job list across
// concurrent runs.
func renumber(jobs []workload.Job) []workload.Job {
	ordinal := true
	for i := range jobs {
		if jobs[i].ID != i {
			ordinal = false
			break
		}
	}
	if ordinal {
		return jobs
	}
	renumbered := make([]workload.Job, len(jobs))
	copy(renumbered, jobs)
	for i := range renumbered {
		renumbered[i].ID = i
	}
	return renumbered
}
