package server

import (
	"sync"
	"testing"

	"sita/internal/workload"
)

// These tests pin the package's read-only input contract (see the package
// doc and //sim:readonly): internal/streamcache hands one generated job
// slice to every policy at a load point, so Run, RunPS, and the TAGS
// simulator must never write the slice they are given — neither on the
// ordinal fast path (where renumber returns the input as-is) nor on the
// renumbering path (which must copy first).

// TestRunLeavesInputIntact runs every golden scenario's engine entry off
// one snapshot-checked slice: any mutation of any element fails.
func TestRunLeavesInputIntact(t *testing.T) {
	shared := goldenJobs(42, 3000)
	snapshot := append([]workload.Job(nil), shared...)

	Run(shared, Config{Hosts: 3, Policy: goldenLWL{}, KeepRecords: true})
	Run(shared, Config{Hosts: 3, Policy: toCentral{}, CentralOrder: CentralFCFS})
	Run(shared, Config{Hosts: 3, Policy: toCentral{}, CentralOrder: CentralSJF})
	Run(shared, Config{Hosts: 3, Policy: &alternating{}, CentralOrder: CentralSJF})
	RunPS(shared, Config{Hosts: 2, Policy: goldenLWL{}})

	for i := range shared {
		if shared[i] != snapshot[i] {
			t.Fatalf("job %d mutated: %+v, was %+v", i, shared[i], snapshot[i])
		}
	}
}

// TestRenumberPathLeavesInputIntact feeds non-ordinal IDs so Run takes
// the renumbering path, which must copy rather than rewrite in place.
func TestRenumberPathLeavesInputIntact(t *testing.T) {
	shared := goldenJobs(43, 500)
	for i := range shared {
		shared[i].ID = 1000 + i // force renumber's copying branch
	}
	snapshot := append([]workload.Job(nil), shared...)

	res := Run(shared, Config{Hosts: 2, Policy: goldenLWL{}, KeepRecords: true})
	for i := range shared {
		if shared[i] != snapshot[i] {
			t.Fatalf("renumber path mutated job %d: %+v, was %+v", i, shared[i], snapshot[i])
		}
	}
	for _, rec := range res.Records {
		if rec.ID < 0 || rec.ID >= len(shared) {
			t.Fatalf("records should carry arrival ordinals in [0,%d), got ID %d", len(shared), rec.ID)
		}
	}
}

// TestSharedSliceDifferential is the contract end to end: several
// policies run concurrently off ONE shared slice, repeatedly, and every
// run's bit-exact record stream must match a solo run on a private copy.
// If any run wrote the shared slice, a sibling (or a later round) would
// replay different golden records.
func TestSharedSliceDifferential(t *testing.T) {
	shared := goldenJobs(44, 2000)

	type scenario struct {
		name string
		run  func(jobs []workload.Job) *Result
	}
	scenarios := []scenario{
		{"push-lwl", func(jobs []workload.Job) *Result {
			return Run(jobs, Config{Hosts: 3, Policy: goldenLWL{}, KeepRecords: true})
		}},
		{"central-sjf", func(jobs []workload.Job) *Result {
			return Run(jobs, Config{Hosts: 3, Policy: toCentral{}, CentralOrder: CentralSJF, KeepRecords: true})
		}},
		{"ps", func(jobs []workload.Job) *Result {
			return RunPS(jobs, Config{Hosts: 2, Policy: goldenLWL{}, KeepRecords: true})
		}},
	}

	// Golden records from solo runs on private copies.
	golden := make([]string, len(scenarios))
	for i, sc := range scenarios {
		private := append([]workload.Job(nil), shared...)
		golden[i] = formatRecords(sc.run(private).Records)
	}

	const rounds = 3
	var wg sync.WaitGroup
	got := make([][rounds]string, len(scenarios))
	for i, sc := range scenarios {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(i, r int, sc scenario) {
				defer wg.Done()
				got[i][r] = formatRecords(sc.run(shared).Records)
			}(i, r, sc)
		}
	}
	wg.Wait()

	for i, sc := range scenarios {
		for r := 0; r < rounds; r++ {
			if got[i][r] != golden[i] {
				t.Errorf("%s round %d off the shared slice diverged from its solo golden records", sc.name, r)
			}
		}
	}
}
