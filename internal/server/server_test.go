package server

import (
	"math"
	"testing"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/workload"
)

// toHost always assigns to a fixed host.
type toHost int

func (toHost) Name() string                    { return "fixed" }
func (h toHost) Assign(workload.Job, View) int { return int(h) }

// pull always holds jobs centrally.
type pull struct{}

func (pull) Name() string { return "pull" }
func (pull) Assign(_ workload.Job, v View) int {
	for i := 0; i < v.Hosts(); i++ {
		if v.Idle(i) {
			return i
		}
	}
	return Central
}

func jobs(list ...[2]float64) []workload.Job {
	out := make([]workload.Job, len(list))
	for i, a := range list {
		out[i] = workload.Job{ID: i, Arrival: a[0], Size: a[1]}
	}
	return out
}

func TestSingleHostFCFS(t *testing.T) {
	// Three jobs on one host: classic FCFS hand calculation.
	var recs []JobRecord
	sys := New(1, toHost(0), func(r JobRecord) { recs = append(recs, r) })
	sys.Simulate(jobs([2]float64{0, 10}, [2]float64{2, 5}, [2]float64{20, 1}))
	if len(recs) != 3 {
		t.Fatalf("completed %d jobs, want 3", len(recs))
	}
	// Job 0: starts 0, departs 10. Job 1: waits until 10, departs 15.
	// Job 2: arrives 20 to an idle host, departs 21.
	want := [][3]float64{{0, 10, 10}, {10, 15, 5}, {20, 21, 1}}
	for i, w := range want {
		r := recs[i]
		if r.Start != w[0] || r.Departure != w[1] {
			t.Errorf("job %d: start %v departure %v, want %v %v", i, r.Start, r.Departure, w[0], w[1])
		}
	}
	if got := recs[1].Wait(); got != 8 {
		t.Errorf("job 1 wait = %v, want 8", got)
	}
	if got := recs[1].Slowdown(); got != 13.0/5 {
		t.Errorf("job 1 slowdown = %v, want 2.6", got)
	}
}

func TestSlowdownAtLeastOne(t *testing.T) {
	src := workload.NewSource(workload.NewPoisson(0.5),
		workload.DistSizes{D: dist.NewBoundedPareto(1.1, 1, 1e4)},
		sim.NewRNG(1, 0), sim.NewRNG(1, 1))
	sys := New(2, toHost(0), func(r JobRecord) {
		if r.Slowdown() < 1 {
			t.Fatalf("slowdown %v < 1 for job %d", r.Slowdown(), r.ID)
		}
		if r.Start < r.Arrival {
			t.Fatalf("job %d starts before arrival", r.ID)
		}
	})
	sys.Simulate(src.Take(5000))
}

func TestFCFSOrderPreservedPerHost(t *testing.T) {
	// Departure order on a host must follow arrival order of its jobs.
	lastDeparture := map[int]float64{}
	lastArrival := map[int]float64{}
	sys := New(3, toHost(1), func(r JobRecord) {
		if r.Departure < lastDeparture[r.Host] {
			t.Fatalf("departures out of order on host %d", r.Host)
		}
		if r.Arrival < lastArrival[r.Host] {
			t.Fatalf("service order violates arrival order on host %d", r.Host)
		}
		lastDeparture[r.Host] = r.Departure
		lastArrival[r.Host] = r.Arrival
	})
	src := workload.NewSource(workload.NewPoisson(1),
		workload.DistSizes{D: dist.NewExponential(1)},
		sim.NewRNG(2, 0), sim.NewRNG(2, 1))
	sys.Simulate(src.Take(3000))
}

func TestCentralQueueDrainsIdleHosts(t *testing.T) {
	var recs []JobRecord
	sys := New(2, pull{}, func(r JobRecord) { recs = append(recs, r) })
	// Two long jobs occupy both hosts; two short jobs queue centrally and
	// start when hosts free, in FCFS order.
	sys.Simulate(jobs(
		[2]float64{0, 10}, [2]float64{0, 20},
		[2]float64{1, 1}, [2]float64{2, 1},
	))
	if len(recs) != 4 {
		t.Fatalf("completed %d jobs, want 4", len(recs))
	}
	byID := map[int]JobRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	// Job 2 starts when host 0 frees at t=10; job 3 follows at t=11.
	if byID[2].Start != 10 || byID[3].Start != 11 {
		t.Fatalf("central queue starts %v, %v; want 10, 11", byID[2].Start, byID[3].Start)
	}
}

func TestWorkLeftAndNumJobsViews(t *testing.T) {
	sys := New(2, toHost(0), nil)
	sys.Simulate(nil) // initialize
	if sys.WorkLeft(0) != 0 || sys.NumJobs(0) != 0 || !sys.Idle(0) {
		t.Fatal("fresh system should be idle")
	}
	// Probe views mid-simulation via a policy.
	probe := probePolicy{t: t}
	sys2 := New(2, &probe, nil)
	sys2.Simulate(jobs([2]float64{0, 10}, [2]float64{1, 10}, [2]float64{2, 3}))
	if !probe.sawBacklog {
		t.Fatal("policy never observed a backlog")
	}
}

type probePolicy struct {
	t          *testing.T
	n          int
	sawBacklog bool
}

func (*probePolicy) Name() string { return "probe" }

func (p *probePolicy) Assign(j workload.Job, v View) int {
	switch p.n {
	case 0:
		if v.WorkLeft(0) != 0 {
			p.t.Errorf("first arrival: work left %v, want 0", v.WorkLeft(0))
		}
	case 1:
		// t=1: host 0 has 9 seconds of its first job left.
		if math.Abs(v.WorkLeft(0)-9) > 1e-9 {
			p.t.Errorf("second arrival: work left %v, want 9", v.WorkLeft(0))
		}
		if v.NumJobs(0) != 1 {
			p.t.Errorf("second arrival: jobs %d, want 1", v.NumJobs(0))
		}
	case 2:
		// t=2: host 0 holds both earlier jobs: 8 + 10 = 18 left.
		if math.Abs(v.WorkLeft(0)-18) > 1e-9 {
			p.t.Errorf("third arrival: work left %v, want 18", v.WorkLeft(0))
		}
		if v.NumJobs(0) != 2 {
			p.t.Errorf("third arrival: jobs %d, want 2", v.NumJobs(0))
		}
		p.sawBacklog = true
	}
	p.n++
	return 0
}

func TestRunResultAggregation(t *testing.T) {
	js := jobs([2]float64{0, 2}, [2]float64{0, 2}, [2]float64{1, 2})
	res := Run(js, Config{Hosts: 1, Policy: toHost(0), KeepRecords: true})
	if res.Slowdown.Count() != 3 {
		t.Fatalf("slowdown count = %d, want 3", res.Slowdown.Count())
	}
	// Host 0 did all the work: 6 seconds over horizon 6.
	if res.Horizon != 6 {
		t.Fatalf("horizon = %v, want 6", res.Horizon)
	}
	if got := res.Utilization(0); got != 1 {
		t.Fatalf("utilization = %v, want 1", got)
	}
	if fr := res.LoadFractions(); fr[0] != 1 {
		t.Fatalf("load fraction = %v, want 1", fr[0])
	}
	if len(res.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(res.Records))
	}
}

func TestRunWarmupDiscards(t *testing.T) {
	js := jobs([2]float64{0, 1}, [2]float64{10, 1}, [2]float64{20, 1}, [2]float64{30, 1})
	res := Run(js, Config{Hosts: 1, Policy: toHost(0), WarmupFraction: 0.5})
	if res.Slowdown.Count() != 2 {
		t.Fatalf("warmup kept %d observations, want 2", res.Slowdown.Count())
	}
	// Load accounting still covers all jobs.
	if res.PerHostJobs[0] != 4 {
		t.Fatalf("per-host jobs = %d, want 4", res.PerHostJobs[0])
	}
}

func TestRunSizeClassTally(t *testing.T) {
	js := jobs([2]float64{0, 1}, [2]float64{0, 100})
	res := Run(js, Config{
		Hosts:  2,
		Policy: sizeSplit{},
		SizeClass: func(s float64) int {
			if s <= 10 {
				return 0
			}
			return 1
		},
	})
	if res.Classes == nil {
		t.Fatal("classes not collected")
	}
	if res.Classes.Class(0).Count() != 1 || res.Classes.Class(1).Count() != 1 {
		t.Fatal("class counts wrong")
	}
}

type sizeSplit struct{}

func (sizeSplit) Name() string { return "split" }
func (sizeSplit) Assign(j workload.Job, _ View) int {
	if j.Size <= 10 {
		return 0
	}
	return 1
}

func TestRunMG1AgainstPollaczekKhinchine(t *testing.T) {
	// A 1-host system under Poisson arrivals is an M/G/1 queue; the
	// simulated mean wait must match the PK formula. This validates the
	// entire simulation pipeline end to end.
	size := dist.NewBoundedPareto(1.5, 1, 1e3)
	lambda := 0.5 / size.Moment(1)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(5, 0), sim.NewRNG(5, 1))
	res := Run(src.Take(400000), Config{Hosts: 1, Policy: toHost(0), WarmupFraction: 0.1})
	wantW := lambda * size.Moment(2) / (2 * (1 - 0.5))
	if math.Abs(res.Wait.Mean()-wantW)/wantW > 0.08 {
		t.Fatalf("simulated E[W] = %v, PK = %v", res.Wait.Mean(), wantW)
	}
	wantS := 1 + wantW*size.Moment(-1)
	if math.Abs(res.Slowdown.Mean()-wantS)/wantS > 0.08 {
		t.Fatalf("simulated E[S] = %v, analytic = %v", res.Slowdown.Mean(), wantS)
	}
}

func TestUnsortedJobsPanic(t *testing.T) {
	sys := New(1, toHost(0), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted arrivals")
		}
	}()
	sys.Simulate(jobs([2]float64{5, 1}, [2]float64{1, 1}))
}

func TestConfigValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { New(0, toHost(0), nil) },
		func() { New(1, nil, nil) },
		func() { Run(nil, Config{Hosts: 0, Policy: toHost(0)}) },
		func() { Run(nil, Config{Hosts: 1, Policy: toHost(0), WarmupFraction: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBadPolicyIndexPanics(t *testing.T) {
	sys := New(2, toHost(7), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range host")
		}
	}()
	sys.Simulate(jobs([2]float64{0, 1}))
}
