package server

import (
	"fmt"
	"sync/atomic"
)

// Oblivious marks a Policy whose Assign decision is a pure function of the
// arriving job and the policy's own sequential state — it never consults
// the system state behind View (queue lengths, backlogs, idleness). Under
// an oblivious policy each FCFS host evolves as an independent single-
// server queue, so the whole simulation collapses to Lindley's recurrence
// (start = max(free, arrival); finish = start + size) and Run can take the
// heap-free direct path (RunDirect) instead of the discrete-event engine.
//
// The capability is a method rather than a bare marker interface because
// wrappers (Misclassify, EstimatedSITA) must forward their inner policy's
// answer at runtime: wrapping Shortest-Queue is not oblivious, wrapping
// SITA is. Implementations may read View.Hosts() — the host count is
// static configuration, not system state. The contract is enforced three
// ways: the `oblivious` analyzer in internal/analysis rejects capability
// declarations whose Assign statically reaches a View state query, the
// direct path hands policies a tripwire View whose state queries panic,
// and the differential tests replay every oblivious policy through both
// paths and diff the record streams.
type Oblivious interface {
	Policy
	// Oblivious reports whether this instance's Assign is state-blind.
	Oblivious() bool
}

// IsOblivious reports whether p declares and currently claims the
// oblivious capability.
func IsOblivious(p Policy) bool {
	o, ok := p.(Oblivious)
	return ok && o.Oblivious()
}

// directEnabled gates the automatic Run → RunDirect dispatch. On by
// default; cmd/sweep's -direct=0 and cmd/simd's -direct=false clear it so
// parity smokes can diff the two paths byte for byte. Atomic because
// sweep workers and service handlers read it concurrently; it is written
// only at process startup (or under test), and output is byte-identical
// either way.
var directEnabled atomic.Bool

func init() { directEnabled.Store(true) }

// SetDirectEnabled turns the oblivious-policy direct path on or off
// process-wide. Intended for flag wiring and tests; simulation output is
// byte-identical in both states.
func SetDirectEnabled(on bool) { directEnabled.Store(on) }

// DirectEnabled reports whether Run may take the direct path.
func DirectEnabled() bool { return directEnabled.Load() }

// directView is the View handed to claimed-oblivious policies on the
// direct path. Hosts answers — the host count is configuration, not
// state — and every state query panics: a policy that claims obliviousness
// and then reads system state would silently simulate garbage on the
// direct path, so the contract violation fails loudly instead.
type directView struct {
	hosts  int
	policy Policy
}

// Hosts reports the host count.
func (v *directView) Hosts() int { return v.hosts }

// violate reports a broken capability claim. Panics if called at all:
// reaching any state query through this view means the policy's Oblivious
// declaration is wrong, and simulating on would produce records that
// silently diverge from the engine.
func (v *directView) violate(method string) int {
	panic(fmt.Sprintf("server: policy %q claims Oblivious but read View.%s on the direct path", v.policy.Name(), method))
}

// NumJobs panics: oblivious policies must not read system state.
func (v *directView) NumJobs(int) int { return v.violate("NumJobs") }

// WorkLeft panics: oblivious policies must not read system state.
func (v *directView) WorkLeft(int) float64 { return float64(v.violate("WorkLeft")) }

// Idle panics: oblivious policies must not read system state.
func (v *directView) Idle(int) bool { return v.violate("Idle") != 0 }

// MinWorkHost panics: oblivious policies must not read system state.
func (v *directView) MinWorkHost() int { return v.violate("MinWorkHost") }

// MinWorkHostIn panics: oblivious policies must not read system state.
func (v *directView) MinWorkHostIn(lo, hi int) int { return v.violate("MinWorkHostIn") }

// MinJobsHost panics: oblivious policies must not read system state.
func (v *directView) MinJobsHost() int { return v.violate("MinJobsHost") }

// NextIdleHost panics: oblivious policies must not read system state.
func (v *directView) NextIdleHost() int { return v.violate("NextIdleHost") }
