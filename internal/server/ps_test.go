package server

import (
	"math"
	"testing"

	"sita/internal/dist"
	"sita/internal/sim"
	"sita/internal/workload"
)

func TestPSSingleJob(t *testing.T) {
	var recs []JobRecord
	sys := NewPS(1, toHost(0), func(r JobRecord) { recs = append(recs, r) })
	sys.Simulate(jobs([2]float64{0, 10}))
	if len(recs) != 1 {
		t.Fatalf("completed %d jobs", len(recs))
	}
	if recs[0].Departure != 10 || recs[0].Response() != 10 {
		t.Fatalf("lone PS job should finish at its size: %+v", recs[0])
	}
}

func TestPSTwoJobsShareExactly(t *testing.T) {
	// Two equal jobs arriving together each run at rate 1/2 and finish at
	// 2x their size.
	var recs []JobRecord
	sys := NewPS(1, toHost(0), func(r JobRecord) { recs = append(recs, r) })
	sys.Simulate(jobs([2]float64{0, 10}, [2]float64{0, 10}))
	if len(recs) != 2 {
		t.Fatalf("completed %d jobs", len(recs))
	}
	for _, r := range recs {
		if math.Abs(r.Departure-20) > 1e-9 {
			t.Fatalf("shared equal jobs should finish at 20, got %v", r.Departure)
		}
	}
}

func TestPSHandComputedSchedule(t *testing.T) {
	// Job A (size 4) at t=0; job B (size 1) at t=2.
	// 0-2: A alone, 2 units done (2 left).
	// 2-4: both at rate 1/2; at t=4 B has 0 left and departs.
	// 4-5: A alone finishes its last unit; departs at 5.
	var recs []JobRecord
	sys := NewPS(1, toHost(0), func(r JobRecord) { recs = append(recs, r) })
	sys.Simulate(jobs([2]float64{0, 4}, [2]float64{2, 1}))
	byID := map[int]JobRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	if math.Abs(byID[1].Departure-4) > 1e-9 {
		t.Fatalf("B departs at %v, want 4", byID[1].Departure)
	}
	if math.Abs(byID[0].Departure-5) > 1e-9 {
		t.Fatalf("A departs at %v, want 5", byID[0].Departure)
	}
}

func TestPSMatchesMG1PSFormula(t *testing.T) {
	// Simulated M/G/1-PS mean slowdown must approach 1/(1-rho) — the
	// insensitivity property — even for a heavy-tailed size distribution.
	size := dist.NewBoundedPareto(1.5, 1, 1e3)
	const load = 0.6
	lambda := load / size.Moment(1)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(8, 0), sim.NewRNG(8, 1))
	res := RunPS(src.Take(150000), Config{Hosts: 1, Policy: toHost(0), WarmupFraction: 0.1})
	want := 1 / (1 - load)
	if math.Abs(res.Slowdown.Mean()-want)/want > 0.08 {
		t.Fatalf("PS mean slowdown %v, want ~%v", res.Slowdown.Mean(), want)
	}
}

func TestPSFairnessAcrossSizes(t *testing.T) {
	// PS expected slowdown must be (nearly) independent of job size — the
	// paper's definition of perfect fairness.
	size := dist.NewBoundedPareto(1.2, 1, 1e4)
	const load = 0.7
	lambda := load / size.Moment(1)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(9, 0), sim.NewRNG(9, 1))
	cut := size.LoadCutoff(0.5)
	res := RunPS(src.Take(200000), Config{
		Hosts: 1, Policy: toHost(0), WarmupFraction: 0.1,
		SizeClass: func(s float64) int {
			if s <= cut {
				return 0
			}
			return 1
		},
	})
	if res.Classes == nil {
		t.Fatal("classes missing")
	}
	spread := res.Classes.MaxSpread()
	if spread > 1.5 {
		t.Fatalf("PS class-slowdown spread = %v, want near 1 (fair)", spread)
	}
}

func TestPSWorkConservation(t *testing.T) {
	size := dist.NewExponential(2)
	lambda := workload.RateForLoad(0.8, size.Moment(1), 2)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(10, 0), sim.NewRNG(10, 1))
	js := src.Take(20000)
	res := RunPS(js, Config{Hosts: 2, Policy: lwlPolicy{}})
	if res.Slowdown.Count() != int64(len(js)) {
		t.Fatalf("completed %d of %d", res.Slowdown.Count(), len(js))
	}
	var total, done float64
	for _, j := range js {
		total += j.Size
	}
	for _, w := range res.PerHostWork {
		done += w
	}
	if math.Abs(total-done) > 1e-6*total {
		t.Fatalf("work not conserved: %v vs %v", done, total)
	}
}

func TestPSSlowdownAtLeastOne(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e4)
	lambda := workload.RateForLoad(0.7, size.Moment(1), 2)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(11, 0), sim.NewRNG(11, 1))
	res := RunPS(src.Take(20000), Config{Hosts: 2, Policy: lwlPolicy{}})
	if res.Slowdown.Min() < 1 {
		t.Fatalf("PS slowdown %v < 1", res.Slowdown.Min())
	}
}

func TestPSViewMethods(t *testing.T) {
	probe := &psProbe{t: t}
	sys := NewPS(2, probe, nil)
	sys.Simulate(jobs([2]float64{0, 10}, [2]float64{1, 10}))
	if !probe.sawResident {
		t.Fatal("probe never observed a resident job")
	}
}

type psProbe struct {
	t           *testing.T
	n           int
	sawResident bool
}

func (*psProbe) Name() string { return "ps-probe" }
func (p *psProbe) Assign(_ workload.Job, v View) int {
	if p.n == 1 {
		if v.NumJobs(0) != 1 {
			p.t.Errorf("host 0 jobs = %d, want 1", v.NumJobs(0))
		}
		if got := v.WorkLeft(0); math.Abs(got-9) > 1e-9 {
			p.t.Errorf("host 0 work left = %v, want 9", got)
		}
		if v.Idle(0) || !v.Idle(1) {
			p.t.Error("idle flags wrong")
		}
		p.sawResident = true
	}
	p.n++
	return 0
}

func TestPSValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewPS(0, toHost(0), nil) },
		func() { NewPS(1, nil, nil) },
		func() { RunPS(nil, Config{Hosts: 0, Policy: toHost(0)}) },
		func() {
			sys := NewPS(1, toHost(5), nil)
			sys.Simulate(jobs([2]float64{0, 1}))
		},
		func() {
			sys := NewPS(1, toHost(0), nil)
			sys.Simulate(jobs([2]float64{5, 1}, [2]float64{1, 1}))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
