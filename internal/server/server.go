// Package server simulates the paper's architectural model: a distributed
// server of h identical hosts fed by one job stream through a dispatcher.
// Each host serves its queue in FCFS order, one job at a time,
// run-to-completion (no preemption, no time-sharing). The dispatcher runs a
// pluggable task assignment policy; pull-based policies (Central-Queue) hold
// jobs at the dispatcher until a host goes idle.
//
// A simulation run is deterministic and single-goroutine: given the same
// policy, job stream, and options, Run and RunPS produce bit-identical
// Results on every execution. Steady-state runs are allocation-free —
// host queues, the event heap, and statistics accumulators all live in
// reusable storage owned by the sim.Engine. Concurrency happens one
// level up (internal/runner for sweeps, internal/service for the HTTP
// server), always with one engine, one policy, and one Result per cell.
//
// Read-only input contract: Run and RunPS never write the jobs slice they
// are given — when renumbering is needed they copy first (see renumber),
// and the FCFS and PS systems read job values out of the feed without
// aliasing slice elements. This is what lets internal/streamcache hand one
// generated stream to every policy at a load point, copy-free and from
// many goroutines at once. The contract is enforced by the //sim:readonly
// directive (checked by the readonly analyzer under cmd/simvet) and by
// checksum tests in readonly_test.go; any future mutation of the input
// must copy first.
package server

import (
	"fmt"

	"sita/internal/hostindex"
	"sita/internal/sim"
	"sita/internal/workload"
)

// Central is returned by a Policy to hold the arriving job in the
// dispatcher's central queue instead of pushing it to a host.
const Central = -1

// CentralOrder selects the order in which the dispatcher's central queue
// releases held jobs to idle hosts.
type CentralOrder int

// Central-queue disciplines.
const (
	// CentralFCFS releases held jobs in arrival order (the paper's
	// Central-Queue policy, equivalent to Least-Work-Left).
	CentralFCFS CentralOrder = iota
	// CentralSJF releases the shortest held job first — the
	// "favor short jobs" direction the paper's conclusions discuss, which
	// improves mean slowdown but starves long jobs under heavy tails.
	CentralSJF
)

// Typed-event kinds for this package's simulations (the FCFS System and
// the PS variant each own their engine, so one namespace serves both).
const (
	evArrival    uint8 = iota + 1 // Ev.Job arrives at the dispatcher
	evDepart                      // Ev.Job finishes on host Ev.Host (service began at Ev.T0)
	evPSArrival                   // Ev.Job arrives at the PS dispatcher
	evPSComplete                  // PS host Ev.Host reaches its next completion
)

// View is the system state a policy may consult when assigning a job. All
// queries refer to the instant of the arrival being dispatched.
//
// The per-host queries (NumJobs, WorkLeft, Idle) cost O(1) each, so a
// policy scanning all hosts pays O(h) per arrival. The argmin queries
// (MinWorkHost, MinWorkHostIn, MinJobsHost, NextIdleHost) answer the
// scans the standard policies actually perform from incrementally
// maintained indices in O(log h) or better, and are guaranteed to return
// exactly the host a lowest-index-wins linear scan would: strictly
// smallest value first, lowest host index among exact ties (see
// ARCHITECTURE.md § Host-selection indices for the tie-break argument).
type View interface {
	// Hosts reports the number of hosts.
	Hosts() int
	// NumJobs reports how many jobs are at host i (queued plus running).
	NumJobs(i int) int
	// WorkLeft reports the total unfinished work at host i, including the
	// remainder of the running job.
	WorkLeft(i int) float64
	// Idle reports whether host i has no work at all.
	Idle(i int) bool
	// MinWorkHost reports the host a lowest-index-wins scan of WorkLeft
	// over all hosts would pick.
	MinWorkHost() int
	// MinWorkHostIn is MinWorkHost restricted to hosts lo <= i < hi (the
	// grouped-SITA within-group dispatch). Panics if the range is empty
	// or out of bounds: group bounds are the policy's contract.
	MinWorkHostIn(lo, hi int) int
	// MinJobsHost reports the host a lowest-index-wins scan of NumJobs
	// would pick.
	MinJobsHost() int
	// NextIdleHost reports the lowest-indexed host with no work at all,
	// or -1 when every host is busy.
	NextIdleHost() int
}

// Policy is a task assignment rule. Assign returns a host index in
// [0, view.Hosts()) or Central. Policies may be stateful (Round-Robin) and
// are therefore not shared across concurrent simulations.
type Policy interface {
	Name() string
	Assign(job workload.Job, v View) int
}

// JobRecord is the outcome of one simulated job.
type JobRecord struct {
	ID        int
	Host      int
	Arrival   float64
	Size      float64
	Start     float64
	Departure float64
}

// Wait reports time spent queued.
func (r JobRecord) Wait() float64 { return r.Start - r.Arrival }

// Response reports arrival-to-completion time, computed as wait plus
// service so that a job served immediately has response exactly equal to
// its size (Departure - Arrival can round below Size in floating point).
func (r JobRecord) Response() float64 { return r.Wait() + r.Size }

// Slowdown reports response time divided by service requirement (>= 1).
func (r JobRecord) Slowdown() float64 { return r.Response() / r.Size }

// host is the simulator's per-host state. The waiting queue is a
// head-indexed FIFO over a reusable backing array, so steady-state
// enqueue/dequeue cycles stop touching the allocator once the array has
// grown to the high-water mark.
type host struct {
	queue   []workload.Job // waiting jobs, FIFO from queue[head:]
	head    int
	running bool
	readyAt float64 // when all currently assigned work completes
	// jobs counts queued+running; workDone accumulates service time of
	// completed work for utilization accounting.
	jobs     int
	workDone float64
}

// queued reports how many jobs are waiting (excluding the one in service).
func (h *host) queued() int { return len(h.queue) - h.head }

// enqueue appends a waiting job.
//
//sim:noalloc
func (h *host) enqueue(j workload.Job) { h.queue = append(h.queue, j) } //lint:allow allocfree queue grows to the high-water depth, then dequeue recycles it

// dequeue removes and returns the oldest waiting job, recycling the
// backing array once drained.
//
//sim:noalloc
func (h *host) dequeue() workload.Job {
	j := h.queue[h.head]
	h.head++
	if h.head == len(h.queue) {
		h.queue = h.queue[:0]
		h.head = 0
	}
	return j
}

// centralItem is one held job plus its insertion sequence, the FIFO
// tie-break among equal sizes.
type centralItem struct {
	job workload.Job
	seq uint64
}

// centralQueue holds jobs at the dispatcher for pull policies. FCFS mode
// is a head-indexed FIFO like the per-host queues; SJF mode is a binary
// min-heap on (size, insertion seq), so a pull is O(log n) instead of the
// former O(n) scan while preserving that scan's stable pick: strictly
// smallest size first, earliest-held first among exact ties.
type centralQueue struct {
	order CentralOrder
	fifo  []workload.Job
	head  int
	heap  []centralItem
	seq   uint64
}

// Len reports how many jobs are held.
func (q *centralQueue) Len() int {
	if q.order == CentralSJF {
		return len(q.heap)
	}
	return len(q.fifo) - q.head
}

// Push holds one job.
//
//sim:noalloc
func (q *centralQueue) Push(j workload.Job) {
	if q.order != CentralSJF {
		q.fifo = append(q.fifo, j) //lint:allow allocfree fifo grows to the high-water depth, then Pop recycles it
		return
	}
	q.heap = append(q.heap, centralItem{job: j, seq: q.seq}) //lint:allow allocfree heap grows to the high-water depth, then shrinks in place
	q.seq++
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// Pop releases the next job under the queue's discipline.
//
//sim:noalloc
func (q *centralQueue) Pop() workload.Job {
	if q.order != CentralSJF {
		j := q.fifo[q.head]
		q.head++
		if q.head == len(q.fifo) {
			q.fifo = q.fifo[:0]
			q.head = 0
		}
		return j
	}
	j := q.heap[0].job
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && q.less(r, l) {
			small = r
		}
		if !q.less(small, i) {
			break
		}
		q.heap[i], q.heap[small] = q.heap[small], q.heap[i]
		i = small
	}
	return j
}

// less orders the SJF heap by (size, insertion seq).
func (q *centralQueue) less(i, j int) bool {
	a, b := &q.heap[i], &q.heap[j]
	//lint:allow floateq exact size tie-break; equal sizes fall through to seq for FIFO stability
	if a.job.Size != b.job.Size {
		return a.job.Size < b.job.Size
	}
	return a.seq < b.seq
}

// System is the simulated distributed server. Build with New, feed jobs in
// arrival order via the Run functions.
type System struct {
	engine *sim.Engine
	hosts  []host
	policy Policy

	central centralQueue // dispatcher queue for pull policies

	onComplete func(JobRecord)

	// Lazy arrival feeding: Simulate keeps exactly one pending arrival
	// event, so the event heap holds O(hosts) entries instead of the whole
	// trace. feedBase is the block of FIFO sequence numbers reserved for
	// the arrivals, which keeps simultaneous-event ordering identical to
	// eager pre-scheduling (see sim.ReserveSeq).
	feed     []workload.Job
	feedNext int
	feedBase uint64

	// Little's-law accounting: time-integral of the number of waiting jobs
	// (queued at hosts or held centrally, excluding jobs in service).
	queueArea   float64
	waitingJobs int
	lastAccrual float64

	// Host-selection indices. The idle freelist is always maintained (two
	// bit operations per job); the work and jobs argmin indices activate
	// on a policy's first MinWorkHost/MinJobsHost query, so policies that
	// never ask pay nothing beyond the bitset. Once active they are
	// updated incrementally — O(log h) per host state change, no
	// allocations — by the arrive/depart/startNextCentral transitions.
	idle    hostindex.BitSet   // hosts with no jobs at all
	work    hostindex.TimedMin // hosts keyed by readyAt; drained class = idle
	jobsIdx hostindex.Tree     // hosts keyed by their job count
	workOn  bool
	jobsOn  bool
}

// New builds a distributed server with h hosts and the given policy, using
// a FCFS central queue.
func New(h int, p Policy, onComplete func(JobRecord)) *System {
	return NewWithOrder(h, p, CentralFCFS, onComplete)
}

// NewWithOrder builds a distributed server with an explicit central-queue
// discipline. Panics if h < 1 or p is nil.
func NewWithOrder(h int, p Policy, order CentralOrder, onComplete func(JobRecord)) *System {
	if h <= 0 {
		panic(fmt.Sprintf("server: need at least one host, got %d", h))
	}
	if p == nil {
		panic("server: nil policy")
	}
	return newSystemOn(&sim.Engine{}, h, p, order, onComplete)
}

// newSystemOn wires a System onto an existing engine (fresh or pooled).
func newSystemOn(eng *sim.Engine, h int, p Policy, order CentralOrder, onComplete func(JobRecord)) *System {
	s := &System{
		engine:     eng,
		hosts:      make([]host, h),
		policy:     p,
		central:    centralQueue{order: order},
		onComplete: onComplete,
	}
	s.idle.Reset(h)
	s.idle.SetAll()
	eng.SetHandler(s)
	return s
}

// View interface implementation: the System itself is the policy's view.

// Hosts reports the host count.
func (s *System) Hosts() int { return len(s.hosts) }

// NumJobs reports queued+running jobs at host i.
func (s *System) NumJobs(i int) int { return s.hosts[i].jobs }

// WorkLeft reports remaining work at host i at the current instant.
func (s *System) WorkLeft(i int) float64 {
	left := s.hosts[i].readyAt - s.engine.Now()
	if left < 0 || !s.hosts[i].running && s.hosts[i].queued() == 0 {
		return 0
	}
	return left
}

// Idle reports whether host i is empty.
func (s *System) Idle(i int) bool { return s.hosts[i].jobs == 0 }

// NextIdleHost reports the lowest-indexed empty host, or -1.
func (s *System) NextIdleHost() int { return s.idle.Min() }

// MinWorkHost reports the host with the least unfinished work, ties to
// the lowest index — the pick of a linear WorkLeft scan, in O(log h).
func (s *System) MinWorkHost() int {
	if !s.workOn {
		s.buildWorkIndex()
	}
	return s.work.ArgMin(s.engine.Now())
}

// MinWorkHostIn is MinWorkHost over hosts lo <= i < hi.
// Panics if the range is empty or out of bounds.
func (s *System) MinWorkHostIn(lo, hi int) int {
	if !s.workOn {
		s.buildWorkIndex()
	}
	return s.work.ArgMinRange(lo, hi, s.engine.Now())
}

// MinJobsHost reports the host with the fewest jobs, ties to the lowest
// index — the pick of a linear NumJobs scan, in O(log h).
func (s *System) MinJobsHost() int {
	if !s.jobsOn {
		s.jobsIdx.Reset(len(s.hosts))
		for i := range s.hosts {
			s.jobsIdx.Update(i, float64(s.hosts[i].jobs))
		}
		s.jobsOn = true
	}
	i, _ := s.jobsIdx.Min()
	return i
}

// buildWorkIndex activates the work argmin on a policy's first query:
// hosts with work enter the tree keyed by their drain instant (readyAt),
// empty hosts form the drained class. From here on every host state
// change keeps the index current.
func (s *System) buildWorkIndex() {
	s.work.Reset(len(s.hosts))
	for i := range s.hosts {
		if s.hosts[i].jobs > 0 {
			s.work.SetKey(i, s.hosts[i].readyAt)
		}
	}
	s.workOn = true
}

// Simulate runs the full job list through the system and waits for every
// job to finish. Jobs must be sorted by arrival time; Simulate panics if
// they are not.
//
// Arrivals are fed lazily: exactly one arrival event is pending at any
// instant, and firing it schedules the next, so the event heap stays
// O(hosts) deep regardless of trace length. The arrivals' FIFO sequence
// numbers are reserved as a block up front, which makes the event order —
// and therefore every simulated record — identical to pre-scheduling the
// whole trace.
func (s *System) Simulate(jobs []workload.Job) {
	prev := 0.0
	for i, j := range jobs {
		if j.Arrival < prev {
			panic(fmt.Sprintf("server: job %d arrives at %v before %v", i, j.Arrival, prev))
		}
		prev = j.Arrival
	}
	s.feed = jobs
	s.feedNext = 0
	s.feedBase = s.engine.ReserveSeq(len(jobs))
	s.feedNextArrival()
	s.engine.Run()
	s.feed = nil
}

// feedNextArrival schedules the next unscheduled arrival, if any.
func (s *System) feedNextArrival() {
	if s.feedNext >= len(s.feed) {
		return
	}
	j := s.feed[s.feedNext]
	s.engine.ScheduleReserved(j.Arrival, s.feedBase+uint64(s.feedNext), sim.Ev{Kind: evArrival, Job: j})
	s.feedNext++
}

// HandleEvent dispatches the engine's typed events.
//
//sim:noalloc
func (s *System) HandleEvent(now float64, ev sim.Ev) {
	switch ev.Kind {
	case evArrival:
		s.feedNextArrival()
		s.arrive(ev.Job, now)
	case evDepart:
		s.depart(int(ev.Host), JobRecord{
			ID: ev.Job.ID, Host: int(ev.Host),
			Arrival: ev.Job.Arrival, Size: ev.Job.Size,
			Start: ev.T0, Departure: now,
		}, now)
	}
}

// arrive routes one job through the policy at its arrival instant.
// Panics if the policy returns a host outside the valid range, which is a
// contract violation by the Policy implementation.
//
//sim:noalloc
func (s *System) arrive(job workload.Job, now float64) {
	idx := s.policy.Assign(job, s)
	if idx == Central {
		// Hold at the dispatcher; a host will pull it when free. If some
		// host is already idle the policy should have returned it, but be
		// robust and drain immediately — the freelist hands out idle hosts
		// lowest-index-first, exactly the order the old full scan used, in
		// O(1) per started job instead of O(h) per arrival.
		s.accrueQueue(now)
		s.waitingJobs++
		s.central.Push(job)
		for s.central.Len() > 0 {
			i := s.idle.Min()
			if i < 0 {
				break
			}
			s.startNextCentral(i, now)
		}
		return
	}
	if idx < 0 || idx >= len(s.hosts) {
		panic(fmt.Sprintf("server: policy %q returned host %d of %d", s.policy.Name(), idx, len(s.hosts)))
	}
	h := &s.hosts[idx]
	h.jobs++
	s.noteJobs(idx)
	if h.running {
		// The job's work joins the backlog now; start() must not add it
		// again when the job is later dequeued.
		s.accrueQueue(now)
		s.waitingJobs++
		h.enqueue(job)
		h.readyAt += job.Size
		s.noteWork(idx)
		return
	}
	s.idle.Clear(idx)
	h.readyAt = now + job.Size
	s.noteWork(idx)
	s.start(idx, job, now)
}

// start begins service for a job whose work is already accounted in the
// host's readyAt backlog. The departure event carries the job and the
// service-start instant, from which the JobRecord is rebuilt bit-exactly
// at completion.
//
//sim:noalloc
func (s *System) start(idx int, job workload.Job, now float64) {
	h := &s.hosts[idx]
	h.running = true
	s.engine.Schedule(now+job.Size, sim.Ev{Kind: evDepart, Host: int32(idx), T0: now, Job: job})
}

//sim:noalloc
func (s *System) depart(idx int, rec JobRecord, now float64) {
	h := &s.hosts[idx]
	h.running = false
	h.jobs--
	h.workDone += rec.Size
	s.noteJobs(idx)
	if s.onComplete != nil {
		s.onComplete(rec)
	}
	if h.queued() > 0 {
		// readyAt already accounts for the queued work; the work index
		// needs no update.
		next := h.dequeue()
		s.accrueQueue(now)
		s.waitingJobs--
		s.start(idx, next, now)
		return
	}
	if s.central.Len() > 0 {
		s.startNextCentral(idx, now)
		return
	}
	s.idle.Set(idx)
	if s.workOn {
		s.work.SetZero(idx)
	}
}

//sim:noalloc
func (s *System) startNextCentral(idx int, now float64) {
	job := s.central.Pop()
	s.accrueQueue(now)
	s.waitingJobs--
	s.idle.Clear(idx)
	h := &s.hosts[idx]
	h.jobs++
	h.readyAt = now + job.Size
	s.noteJobs(idx)
	s.noteWork(idx)
	s.start(idx, job, now)
}

// noteJobs propagates host i's job count into the jobs argmin, when active.
func (s *System) noteJobs(i int) {
	if s.jobsOn {
		s.jobsIdx.Update(i, float64(s.hosts[i].jobs))
	}
}

// noteWork propagates host i's drain instant into the work argmin, when
// active. Only call when host i has live work (jobs > 0).
func (s *System) noteWork(i int) {
	if s.workOn {
		s.work.SetKey(i, s.hosts[i].readyAt)
	}
}

// accrueQueue advances the waiting-jobs time integral to the current
// instant; call before every change to the waiting population.
func (s *System) accrueQueue(now float64) {
	s.queueArea += float64(s.waitingJobs) * (now - s.lastAccrual)
	s.lastAccrual = now
}

// MeanQueueLength reports the time-averaged number of waiting jobs over the
// simulated horizon — E[Q] in the paper's theorem 1, for checking Little's
// law E[Q] = lambda*E[W] against the simulated mean wait.
func (s *System) MeanQueueLength() float64 {
	if s.engine.Now() == 0 {
		return 0
	}
	s.accrueQueue(s.engine.Now())
	return s.queueArea / s.engine.Now()
}

// WorkDone reports the total service time completed by host i so far.
func (s *System) WorkDone(i int) float64 { return s.hosts[i].workDone }

// Now reports the simulator clock.
func (s *System) Now() float64 { return s.engine.Now() }
