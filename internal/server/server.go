// Package server simulates the paper's architectural model: a distributed
// server of h identical hosts fed by one job stream through a dispatcher.
// Each host serves its queue in FCFS order, one job at a time,
// run-to-completion (no preemption, no time-sharing). The dispatcher runs a
// pluggable task assignment policy; pull-based policies (Central-Queue) hold
// jobs at the dispatcher until a host goes idle.
package server

import (
	"fmt"

	"sita/internal/sim"
	"sita/internal/workload"
)

// Central is returned by a Policy to hold the arriving job in the
// dispatcher's central queue instead of pushing it to a host.
const Central = -1

// CentralOrder selects the order in which the dispatcher's central queue
// releases held jobs to idle hosts.
type CentralOrder int

// Central-queue disciplines.
const (
	// CentralFCFS releases held jobs in arrival order (the paper's
	// Central-Queue policy, equivalent to Least-Work-Left).
	CentralFCFS CentralOrder = iota
	// CentralSJF releases the shortest held job first — the
	// "favor short jobs" direction the paper's conclusions discuss, which
	// improves mean slowdown but starves long jobs under heavy tails.
	CentralSJF
)

// View is the system state a policy may consult when assigning a job. All
// queries refer to the instant of the arrival being dispatched.
type View interface {
	// Hosts reports the number of hosts.
	Hosts() int
	// NumJobs reports how many jobs are at host i (queued plus running).
	NumJobs(i int) int
	// WorkLeft reports the total unfinished work at host i, including the
	// remainder of the running job.
	WorkLeft(i int) float64
	// Idle reports whether host i has no work at all.
	Idle(i int) bool
}

// Policy is a task assignment rule. Assign returns a host index in
// [0, view.Hosts()) or Central. Policies may be stateful (Round-Robin) and
// are therefore not shared across concurrent simulations.
type Policy interface {
	Name() string
	Assign(job workload.Job, v View) int
}

// JobRecord is the outcome of one simulated job.
type JobRecord struct {
	ID        int
	Host      int
	Arrival   float64
	Size      float64
	Start     float64
	Departure float64
}

// Wait reports time spent queued.
func (r JobRecord) Wait() float64 { return r.Start - r.Arrival }

// Response reports arrival-to-completion time, computed as wait plus
// service so that a job served immediately has response exactly equal to
// its size (Departure - Arrival can round below Size in floating point).
func (r JobRecord) Response() float64 { return r.Wait() + r.Size }

// Slowdown reports response time divided by service requirement (>= 1).
func (r JobRecord) Slowdown() float64 { return r.Response() / r.Size }

// host is the simulator's per-host state.
type host struct {
	queue   []workload.Job // waiting jobs, FIFO
	running bool
	readyAt float64 // when all currently assigned work completes
	// jobs counts queued+running; workDone accumulates service time of
	// completed work for utilization accounting.
	jobs     int
	workDone float64
}

// System is the simulated distributed server. Build with New, feed jobs in
// arrival order via the Run functions.
type System struct {
	engine *sim.Engine
	hosts  []host
	policy Policy

	central      []workload.Job // dispatcher queue for pull policies
	centralOrder CentralOrder

	onComplete func(JobRecord)

	// Little's-law accounting: time-integral of the number of waiting jobs
	// (queued at hosts or held centrally, excluding jobs in service).
	queueArea   float64
	waitingJobs int
	lastAccrual float64
}

// New builds a distributed server with h hosts and the given policy, using
// a FCFS central queue.
func New(h int, p Policy, onComplete func(JobRecord)) *System {
	return NewWithOrder(h, p, CentralFCFS, onComplete)
}

// NewWithOrder builds a distributed server with an explicit central-queue
// discipline. Panics if h < 1 or p is nil.
func NewWithOrder(h int, p Policy, order CentralOrder, onComplete func(JobRecord)) *System {
	if h <= 0 {
		panic(fmt.Sprintf("server: need at least one host, got %d", h))
	}
	if p == nil {
		panic("server: nil policy")
	}
	return &System{
		engine:       &sim.Engine{},
		hosts:        make([]host, h),
		policy:       p,
		centralOrder: order,
		onComplete:   onComplete,
	}
}

// View interface implementation: the System itself is the policy's view.

// Hosts reports the host count.
func (s *System) Hosts() int { return len(s.hosts) }

// NumJobs reports queued+running jobs at host i.
func (s *System) NumJobs(i int) int { return s.hosts[i].jobs }

// WorkLeft reports remaining work at host i at the current instant.
func (s *System) WorkLeft(i int) float64 {
	left := s.hosts[i].readyAt - s.engine.Now()
	if left < 0 || !s.hosts[i].running && len(s.hosts[i].queue) == 0 {
		return 0
	}
	return left
}

// Idle reports whether host i is empty.
func (s *System) Idle(i int) bool { return s.hosts[i].jobs == 0 }

// Simulate runs the full job list through the system and waits for every
// job to finish. Jobs must be sorted by arrival time; Simulate panics if
// they are not.
func (s *System) Simulate(jobs []workload.Job) {
	prev := 0.0
	for i, j := range jobs {
		if j.Arrival < prev {
			panic(fmt.Sprintf("server: job %d arrives at %v before %v", i, j.Arrival, prev))
		}
		prev = j.Arrival
		job := j
		s.engine.At(j.Arrival, func(now float64) { s.arrive(job, now) })
	}
	s.engine.Run()
}

// arrive routes one job through the policy at its arrival instant.
// Panics if the policy returns a host outside the valid range, which is a
// contract violation by the Policy implementation.
func (s *System) arrive(job workload.Job, now float64) {
	idx := s.policy.Assign(job, s)
	if idx == Central {
		// Hold at the dispatcher; a host will pull it when free. If some
		// host is already idle the policy should have returned it, but be
		// robust and drain immediately.
		s.accrueQueue(now)
		s.waitingJobs++
		s.central = append(s.central, job)
		for i := range s.hosts {
			if s.hosts[i].jobs == 0 && len(s.central) > 0 {
				s.startNextCentral(i, now)
			}
		}
		return
	}
	if idx < 0 || idx >= len(s.hosts) {
		panic(fmt.Sprintf("server: policy %q returned host %d of %d", s.policy.Name(), idx, len(s.hosts)))
	}
	h := &s.hosts[idx]
	h.jobs++
	if h.running {
		// The job's work joins the backlog now; start() must not add it
		// again when the job is later dequeued.
		s.accrueQueue(now)
		s.waitingJobs++
		h.queue = append(h.queue, job)
		h.readyAt += job.Size
		return
	}
	h.readyAt = now + job.Size
	s.start(idx, job, now)
}

// start begins service for a job whose work is already accounted in the
// host's readyAt backlog.
func (s *System) start(idx int, job workload.Job, now float64) {
	h := &s.hosts[idx]
	h.running = true
	depart := now + job.Size
	rec := JobRecord{
		ID: job.ID, Host: idx,
		Arrival: job.Arrival, Size: job.Size,
		Start: now, Departure: depart,
	}
	s.engine.At(depart, func(t float64) { s.depart(idx, rec, t) })
}

func (s *System) depart(idx int, rec JobRecord, now float64) {
	h := &s.hosts[idx]
	h.running = false
	h.jobs--
	h.workDone += rec.Size
	if s.onComplete != nil {
		s.onComplete(rec)
	}
	if len(h.queue) > 0 {
		next := h.queue[0]
		// Re-slice; allow the backing array to be reused when drained.
		h.queue = h.queue[1:]
		if len(h.queue) == 0 {
			h.queue = nil
		}
		s.accrueQueue(now)
		s.waitingJobs--
		s.start(idx, next, now)
		return
	}
	if len(s.central) > 0 {
		s.startNextCentral(idx, now)
	}
}

func (s *System) startNextCentral(idx int, now float64) {
	pick := 0
	if s.centralOrder == CentralSJF {
		for i, j := range s.central[1:] {
			if j.Size < s.central[pick].Size {
				pick = i + 1
			}
		}
	}
	job := s.central[pick]
	if pick == 0 {
		s.central = s.central[1:]
	} else {
		s.central = append(s.central[:pick], s.central[pick+1:]...)
	}
	if len(s.central) == 0 {
		s.central = nil
	}
	s.accrueQueue(now)
	s.waitingJobs--
	h := &s.hosts[idx]
	h.jobs++
	h.readyAt = now + job.Size
	s.start(idx, job, now)
}

// accrueQueue advances the waiting-jobs time integral to the current
// instant; call before every change to the waiting population.
func (s *System) accrueQueue(now float64) {
	s.queueArea += float64(s.waitingJobs) * (now - s.lastAccrual)
	s.lastAccrual = now
}

// MeanQueueLength reports the time-averaged number of waiting jobs over the
// simulated horizon — E[Q] in the paper's theorem 1, for checking Little's
// law E[Q] = lambda*E[W] against the simulated mean wait.
func (s *System) MeanQueueLength() float64 {
	if s.engine.Now() == 0 {
		return 0
	}
	s.accrueQueue(s.engine.Now())
	return s.queueArea / s.engine.Now()
}

// WorkDone reports the total service time completed by host i so far.
func (s *System) WorkDone(i int) float64 { return s.hosts[i].workDone }

// Now reports the simulator clock.
func (s *System) Now() float64 { return s.engine.Now() }
