package server

import (
	"math"
	"testing"
	"testing/quick"

	"sita/internal/dist"
	"sita/internal/queueing"
	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/workload"
)

// TestWorkLeftAfterDequeue is a regression test for a double-counting bug:
// a queued job's size was added to the host's backlog both on arrival and
// again when the job was dequeued, inflating WorkLeft and corrupting
// Least-Work-Left decisions.
func TestWorkLeftAfterDequeue(t *testing.T) {
	probe := &dequeueProbe{t: t}
	sys := New(1, probe, nil)
	sys.Simulate(jobs(
		[2]float64{0, 10}, // runs 0-10
		[2]float64{1, 5},  // queued, runs 10-15
		[2]float64{12, 1}, // arrives mid-second-job: backlog must be 3
	))
	if !probe.checked {
		t.Fatal("probe never reached the third arrival")
	}
}

type dequeueProbe struct {
	t       *testing.T
	n       int
	checked bool
}

func (*dequeueProbe) Name() string { return "dequeue-probe" }

func (p *dequeueProbe) Assign(j workload.Job, v View) int {
	if p.n == 2 {
		if got := v.WorkLeft(0); math.Abs(got-3) > 1e-9 {
			p.t.Errorf("work left after dequeue = %v, want 3", got)
		}
		if got := v.NumJobs(0); got != 1 {
			p.t.Errorf("jobs after dequeue = %d, want 1", got)
		}
		p.checked = true
	}
	p.n++
	return 0
}

// lwlPolicy is a local copy of least-work-left for property tests without
// importing internal/policy (which would create an import cycle in tests).
type lwlPolicy struct{}

func (lwlPolicy) Name() string { return "lwl" }
func (lwlPolicy) Assign(_ workload.Job, v View) int {
	best, bestW := 0, v.WorkLeft(0)
	for i := 1; i < v.Hosts(); i++ {
		if w := v.WorkLeft(i); w < bestW {
			best, bestW = i, w
		}
	}
	return best
}

func TestWorkConservationProperty(t *testing.T) {
	// Completed work per host must sum exactly to the total job size mass,
	// and every job completes, for random workloads and host counts.
	size := dist.NewBoundedPareto(1.3, 1, 1e4)
	f := func(seed uint64, hostsRaw uint8) bool {
		hosts := 1 + int(hostsRaw)%7
		lambda := workload.RateForLoad(0.8, size.Moment(1), hosts)
		src := workload.NewSource(workload.NewPoisson(lambda),
			workload.DistSizes{D: size},
			sim.NewRNG(seed, 0), sim.NewRNG(seed, 1))
		js := src.Take(2000)
		res := Run(js, Config{Hosts: hosts, Policy: lwlPolicy{}})
		if res.Slowdown.Count() != int64(len(js)) {
			return false
		}
		var total, done float64
		for _, j := range js {
			total += j.Size
		}
		for _, w := range res.PerHostWork {
			done += w
		}
		return math.Abs(total-done) < 1e-6*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationNeverExceedsOne(t *testing.T) {
	size := dist.NewBoundedPareto(1.1, 1, 1e5)
	lambda := workload.RateForLoad(0.9, size.Moment(1), 2)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(3, 0), sim.NewRNG(3, 1))
	res := Run(src.Take(30000), Config{Hosts: 2, Policy: lwlPolicy{}})
	for i := 0; i < 2; i++ {
		if u := res.Utilization(i); u > 1+1e-9 {
			t.Errorf("host %d utilization %v > 1", i, u)
		}
	}
}

func TestResponseDecomposition(t *testing.T) {
	// response = wait + size exactly, for every record.
	size := dist.NewExponential(3)
	lambda := workload.RateForLoad(0.7, size.Moment(1), 2)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(4, 0), sim.NewRNG(4, 1))
	res := Run(src.Take(5000), Config{Hosts: 2, Policy: lwlPolicy{}, KeepRecords: true})
	for _, r := range res.Records {
		if math.Abs(r.Response()-(r.Wait()+r.Size)) > 1e-12 {
			t.Fatalf("job %d: response %v != wait %v + size %v", r.ID, r.Response(), r.Wait(), r.Size)
		}
		if r.Wait() < 0 {
			t.Fatalf("job %d: negative wait %v", r.ID, r.Wait())
		}
	}
}

func TestLoadFractionsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		size := dist.NewBoundedPareto(1.2, 1, 1e3)
		lambda := workload.RateForLoad(0.6, size.Moment(1), 3)
		src := workload.NewSource(workload.NewPoisson(lambda),
			workload.DistSizes{D: size},
			sim.NewRNG(seed, 0), sim.NewRNG(seed, 1))
		res := Run(src.Take(1000), Config{Hosts: 3, Policy: lwlPolicy{}})
		sum := 0.0
		for _, fr := range res.LoadFractions() {
			if fr < 0 {
				return false
			}
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestEmptyRunLoadFractions(t *testing.T) {
	res := Run(nil, Config{Hosts: 2, Policy: lwlPolicy{}})
	fr := res.LoadFractions()
	if fr[0] != 0 || fr[1] != 0 {
		t.Fatalf("empty run load fractions %v, want zeros", fr)
	}
	if res.Utilization(0) != 0 {
		t.Fatal("empty run utilization should be 0")
	}
}

// TestSlowdownVarianceAgainstTakacs validates the full second-moment
// analysis chain (Takacs E[W^2] + E[1/X^2] factorization) against a long
// simulation of a single M/G/1 host.
func TestSlowdownVarianceAgainstTakacs(t *testing.T) {
	size := dist.NewBoundedPareto(1.6, 1, 500) // light enough tail for stable Var estimates
	const load = 0.5
	lambda := load / size.Moment(1)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(14, 0), sim.NewRNG(14, 1))
	res := Run(src.Take(600000), Config{Hosts: 1, Policy: lwlPolicy{}, WarmupFraction: 0.1})

	q := queueing.NewMG1(lambda, size)
	wantMean := q.MeanSlowdown()
	wantVar := q.SlowdownVariance()
	if got := res.Slowdown.Mean(); math.Abs(got-wantMean)/wantMean > 0.05 {
		t.Fatalf("mean slowdown %v vs analytic %v", got, wantMean)
	}
	if got := res.Slowdown.Variance(); math.Abs(got-wantVar)/wantVar > 0.25 {
		t.Fatalf("slowdown variance %v vs analytic %v (off > 25%%)", got, wantVar)
	}
}

// TestLittlesLaw checks E[Q] = lambda * E[W] (theorem 1) on the simulated
// waiting room: time-averaged waiting jobs vs arrival rate times mean wait.
func TestLittlesLaw(t *testing.T) {
	size := dist.NewBoundedPareto(1.5, 1, 1e3)
	const load = 0.6
	lambda := load / size.Moment(1)
	src := workload.NewSource(workload.NewPoisson(lambda),
		workload.DistSizes{D: size},
		sim.NewRNG(17, 0), sim.NewRNG(17, 1))
	jobs := src.Take(300000)

	var wait stats.Stream
	sys := New(1, lwlPolicy{}, func(r JobRecord) { wait.Add(r.Wait()) })
	sys.Simulate(jobs)

	horizon := sys.Now()
	realizedLambda := float64(len(jobs)) / horizon
	littles := realizedLambda * wait.Mean()
	measured := sys.MeanQueueLength()
	if math.Abs(measured-littles)/littles > 0.02 {
		t.Fatalf("Little's law violated: E[Q] measured %v vs lambda*E[W] %v", measured, littles)
	}
}
