package service

import (
	"container/list"
	"sync"
)

// CacheStatus classifies how a request's response body was obtained.
type CacheStatus string

// Cache outcomes, also exposed as the X-Cache response header.
const (
	// CacheHit: the body came straight from the cache.
	CacheHit CacheStatus = "hit"
	// CacheMiss: this request ran the computation (and, on success,
	// populated the cache).
	CacheMiss CacheStatus = "miss"
	// CacheJoin: an identical request was already computing; this one
	// waited for its result instead of re-running the simulation.
	CacheJoin CacheStatus = "join"
)

// flight is one in-progress computation other requests may join.
type flight struct {
	done chan struct{} // closed when body/err are final
	body []byte
	err  error
}

// centry is one cached response body.
type centry struct {
	key  string
	body []byte
}

// Cache is a bounded LRU of response bodies keyed by canonical request,
// with single-flight request coalescing: at most one computation per key
// runs at a time, concurrent identical requests wait for it, and every
// caller receives the exact same byte slice — the property that makes
// "deterministic simulation" visible as byte-identical HTTP responses.
//
// Errors are never cached: a timed-out or failed computation is forgotten
// so the next identical request retries. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64 // <= 0 disables storage (single-flight still applies)
	bytes    int64
	ll       *list.List // front = most recent; values are *centry
	items    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, joins, evictions uint64
}

// NewCache returns a cache bounded to maxBytes of body data. maxBytes <= 0
// disables storage entirely while keeping request coalescing.
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the response body for key, computing it at most once across
// concurrent callers. The caller must treat the returned body as read-only:
// it is shared with the cache and with concurrent requests.
func (c *Cache) Do(key string, compute func() ([]byte, error)) ([]byte, CacheStatus, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		body := el.Value.(*centry).body
		c.mu.Unlock()
		return body, CacheHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.joins++
		c.mu.Unlock()
		<-f.done
		return f.body, CacheJoin, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	body, err := compute()
	f.body, f.err = body, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.store(key, body)
	}
	c.mu.Unlock()
	close(f.done)
	return body, CacheMiss, err
}

// store inserts a body and evicts least-recently-used entries until the
// byte bound holds again. Bodies larger than the whole bound are not
// stored. Caller holds c.mu.
func (c *Cache) store(key string, body []byte) {
	if c.maxBytes <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok { // lost a race against a re-insert
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.body))
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits, Misses, Joins, Evictions uint64
	Entries                        int
	Bytes                          int64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Joins: c.joins, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes,
	}
}
