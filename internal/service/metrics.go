package service

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"sita/internal/sim"
	"sita/internal/stats"
	"sita/internal/streamcache"
)

// reqKey labels one requests_total counter cell.
type reqKey struct {
	endpoint string
	code     int
}

// Metrics aggregates the service's counters: per-endpoint/status request
// counts, a log-bucketed request latency histogram (reusing the
// experiment harness's stats.LogHistogram), and admission/deadline
// counters. Gauges (queue depth, in-flight requests) and cache/pool
// counters live with their owners and are gathered at scrape time by
// writePrometheus. Safe for concurrent use.
type Metrics struct {
	mu           sync.Mutex
	requests     map[reqKey]uint64
	latency      *stats.LogHistogram // request latency in seconds
	latencySum   float64
	latencyCount uint64
	simulations  uint64 // simulations actually run (cache misses that computed)
	rejected     uint64 // 429 admission rejections
	deadlines    uint64 // 503 deadline-exceeded responses
}

// newMetrics builds an empty metrics registry. Latency buckets double per
// bin: sub-millisecond resolution at the bottom, seconds at the top, O(1)
// memory regardless of traffic.
func newMetrics() *Metrics {
	return &Metrics{
		requests: make(map[reqKey]uint64),
		latency:  stats.NewLogHistogram(2),
	}
}

// observe records one finished request.
func (m *Metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	m.requests[reqKey{endpoint, code}]++
	m.latency.Add(seconds)
	m.latencySum += seconds
	m.latencyCount++
	m.mu.Unlock()
}

func (m *Metrics) addSimulation() {
	m.mu.Lock()
	m.simulations++
	m.mu.Unlock()
}

func (m *Metrics) addRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *Metrics) addDeadline() {
	m.mu.Lock()
	m.deadlines++
	m.mu.Unlock()
}

// snapshot reads the scalar counters under the lock (used by tests and
// by writePrometheus).
func (m *Metrics) snapshot() (sims, rejected, deadlines uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.simulations, m.rejected, m.deadlines
}

// writePrometheus renders every counter and gauge in Prometheus text
// exposition format. Output order is deterministic (sorted label sets) so
// consecutive scrapes diff cleanly.
func (s *Server) writePrometheus(w io.Writer) {
	m := s.metrics
	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintln(w, "# HELP simd_requests_total Finished HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE simd_requests_total counter")
	for _, k := range keys {
		fmt.Fprintf(w, "simd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP simd_request_seconds Request latency.")
	fmt.Fprintln(w, "# TYPE simd_request_seconds histogram")
	cum := uint64(m.latency.Underflow())
	for _, bin := range m.latency.Bins() {
		cum += uint64(bin.Count)
		fmt.Fprintf(w, "simd_request_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", bin.Hi), cum)
	}
	fmt.Fprintf(w, "simd_request_seconds_bucket{le=\"+Inf\"} %d\n", m.latencyCount)
	fmt.Fprintf(w, "simd_request_seconds_sum %g\n", m.latencySum)
	fmt.Fprintf(w, "simd_request_seconds_count %d\n", m.latencyCount)

	sims, rejected, deadlines := m.simulations, m.rejected, m.deadlines
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP simd_simulations_total Simulations actually executed (cache misses that ran an engine).")
	fmt.Fprintln(w, "# TYPE simd_simulations_total counter")
	fmt.Fprintf(w, "simd_simulations_total %d\n", sims)
	fmt.Fprintln(w, "# HELP simd_rejected_total Requests rejected with 429 by admission control.")
	fmt.Fprintln(w, "# TYPE simd_rejected_total counter")
	fmt.Fprintf(w, "simd_rejected_total %d\n", rejected)
	fmt.Fprintln(w, "# HELP simd_deadline_total Requests that hit their deadline and returned 503.")
	fmt.Fprintln(w, "# TYPE simd_deadline_total counter")
	fmt.Fprintf(w, "simd_deadline_total %d\n", deadlines)

	cs := s.cache.Stats()
	fmt.Fprintln(w, "# HELP simd_cache_hits_total Responses served straight from the cache.")
	fmt.Fprintln(w, "# TYPE simd_cache_hits_total counter")
	fmt.Fprintf(w, "simd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintln(w, "# HELP simd_cache_misses_total Requests that had to compute.")
	fmt.Fprintln(w, "# TYPE simd_cache_misses_total counter")
	fmt.Fprintf(w, "simd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintln(w, "# HELP simd_cache_joins_total Requests coalesced onto an identical in-flight computation.")
	fmt.Fprintln(w, "# TYPE simd_cache_joins_total counter")
	fmt.Fprintf(w, "simd_cache_joins_total %d\n", cs.Joins)
	fmt.Fprintln(w, "# HELP simd_cache_evictions_total Entries evicted to hold the byte bound.")
	fmt.Fprintln(w, "# TYPE simd_cache_evictions_total counter")
	fmt.Fprintf(w, "simd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintln(w, "# HELP simd_cache_entries Cached response bodies.")
	fmt.Fprintln(w, "# TYPE simd_cache_entries gauge")
	fmt.Fprintf(w, "simd_cache_entries %d\n", cs.Entries)
	fmt.Fprintln(w, "# HELP simd_cache_bytes Bytes of cached response bodies.")
	fmt.Fprintln(w, "# TYPE simd_cache_bytes gauge")
	fmt.Fprintf(w, "simd_cache_bytes %d\n", cs.Bytes)

	ss := streamcache.Shared.Stats()
	fmt.Fprintln(w, "# HELP simd_streamcache_hits_total Job streams served from the shared stream cache.")
	fmt.Fprintln(w, "# TYPE simd_streamcache_hits_total counter")
	fmt.Fprintf(w, "simd_streamcache_hits_total %d\n", ss.Hits)
	fmt.Fprintln(w, "# HELP simd_streamcache_misses_total Stream requests that generated a new stream.")
	fmt.Fprintln(w, "# TYPE simd_streamcache_misses_total counter")
	fmt.Fprintf(w, "simd_streamcache_misses_total %d\n", ss.Misses)
	fmt.Fprintln(w, "# HELP simd_streamcache_joins_total Stream requests coalesced onto an in-flight generation.")
	fmt.Fprintln(w, "# TYPE simd_streamcache_joins_total counter")
	fmt.Fprintf(w, "simd_streamcache_joins_total %d\n", ss.Joins)
	fmt.Fprintln(w, "# HELP simd_streamcache_evictions_total Streams evicted to hold the byte bound.")
	fmt.Fprintln(w, "# TYPE simd_streamcache_evictions_total counter")
	fmt.Fprintf(w, "simd_streamcache_evictions_total %d\n", ss.Evictions)
	fmt.Fprintln(w, "# HELP simd_streamcache_generations_total Stream generations performed (misses plus bypasses).")
	fmt.Fprintln(w, "# TYPE simd_streamcache_generations_total counter")
	fmt.Fprintf(w, "simd_streamcache_generations_total %d\n", ss.Generations)
	fmt.Fprintln(w, "# HELP simd_streamcache_entries Cached job streams.")
	fmt.Fprintln(w, "# TYPE simd_streamcache_entries gauge")
	fmt.Fprintf(w, "simd_streamcache_entries %d\n", ss.Entries)
	fmt.Fprintln(w, "# HELP simd_streamcache_bytes Bytes of cached job streams.")
	fmt.Fprintln(w, "# TYPE simd_streamcache_bytes gauge")
	fmt.Fprintf(w, "simd_streamcache_bytes %d\n", ss.Bytes)

	fmt.Fprintln(w, "# HELP simd_queue_depth Admitted requests waiting for a simulation slot.")
	fmt.Fprintln(w, "# TYPE simd_queue_depth gauge")
	fmt.Fprintf(w, "simd_queue_depth %d\n", s.queued.Load())
	fmt.Fprintln(w, "# HELP simd_inflight_requests Requests currently being served.")
	fmt.Fprintln(w, "# TYPE simd_inflight_requests gauge")
	fmt.Fprintf(w, "simd_inflight_requests %d\n", s.inflight.Load())

	acquires, news := sim.PoolStats()
	fmt.Fprintln(w, "# HELP simd_engine_acquires_total Simulation engines handed out by the process-wide pool.")
	fmt.Fprintln(w, "# TYPE simd_engine_acquires_total counter")
	fmt.Fprintf(w, "simd_engine_acquires_total %d\n", acquires)
	fmt.Fprintln(w, "# HELP simd_engine_allocs_total Engines the pool had to allocate fresh (acquires minus reuses).")
	fmt.Fprintln(w, "# TYPE simd_engine_allocs_total counter")
	fmt.Fprintf(w, "simd_engine_allocs_total %d\n", news)
}
