package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sita"
	"sita/internal/catalog"
	"sita/internal/core"
	"sita/internal/dist"
	"sita/internal/server"
	"sita/internal/streamcache"
)

// SimRequest is the body of POST /v1/simulate. Every field except Policy
// is optional; zero values take the documented defaults. TimeoutMS bounds
// the request's total time (queueing + simulation) and is deliberately
// excluded from the cache key: it changes when an answer arrives, never
// what the answer is.
type SimRequest struct {
	Policy    string  `json:"policy"`
	Hosts     int     `json:"hosts"`      // default 2
	Load      float64 `json:"load"`       // default 0.7
	Profile   string  `json:"profile"`    // default "psc-c90"
	Seed      uint64  `json:"seed"`       // default 1
	Jobs      int     `json:"jobs"`       // cap on trace length; 0 = profile default
	Warmup    float64 `json:"warmup"`     // default 0.1; -1 means exactly 0
	Bursty    bool    `json:"bursty"`     // trace-driven bursty arrivals instead of Poisson
	PS        bool    `json:"ps"`         // Processor-Sharing hosts instead of FCFS
	TimeoutMS int     `json:"timeout_ms"` // 0 = server default
}

// normalize applies defaults and validates against the shared catalog
// contracts. It returns a canonicalized copy (aliases resolved) so that
// e.g. "LWL" and "least-work-left" share one cache entry.
func (q SimRequest) normalize(maxJobs int) (SimRequest, error) {
	if q.Policy == "" {
		return q, errors.New("policy is required")
	}
	c, err := catalog.CanonicalPolicy(q.Policy)
	if err != nil {
		return q, err
	}
	q.Policy = c
	if q.Hosts == 0 {
		q.Hosts = 2
	}
	if q.Load == 0 {
		q.Load = 0.7
	}
	if q.Profile == "" {
		q.Profile = "psc-c90"
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	switch {
	case q.Warmup == 0:
		q.Warmup = 0.1
	//lint:allow floateq sentinel check against the exact literal -1, not a computed float
	case q.Warmup == -1:
		q.Warmup = 0
	}
	if err := catalog.CheckHosts(q.Hosts); err != nil {
		return q, err
	}
	if err := catalog.CheckLoad(q.Load); err != nil {
		return q, err
	}
	if err := catalog.CheckProfile(q.Profile); err != nil {
		return q, err
	}
	if err := catalog.CheckWarmup(q.Warmup); err != nil {
		return q, err
	}
	if err := catalog.CheckJobs(q.Jobs); err != nil {
		return q, err
	}
	if q.Jobs > maxJobs {
		return q, fmt.Errorf("jobs %d exceeds the server's limit of %d", q.Jobs, maxJobs)
	}
	if q.TimeoutMS < 0 {
		return q, fmt.Errorf("timeout_ms must be >= 0, got %d", q.TimeoutMS)
	}
	return q, nil
}

// cacheKey is the canonical identity of the simulation this request asks
// for: every field that influences the output, in fixed order, and
// nothing else (TimeoutMS is excluded). Deterministic simulation makes
// this key a complete description of the response bytes.
func (q SimRequest) cacheKey() string {
	return fmt.Sprintf("sim|p=%s|h=%d|l=%g|pr=%s|s=%d|j=%d|w=%g|b=%t|ps=%t",
		q.Policy, q.Hosts, q.Load, q.Profile, q.Seed, q.Jobs, q.Warmup, q.Bursty, q.PS)
}

// timeout resolves the request's effective deadline under the server's
// default and ceiling.
func (q SimRequest) timeout(cfg Config) time.Duration {
	d := cfg.DefaultTimeout
	if q.TimeoutMS > 0 {
		d = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	if d > cfg.MaxTimeout {
		d = cfg.MaxTimeout
	}
	return d
}

// SimResponse is the body of a successful POST /v1/simulate.
type SimResponse struct {
	Policy  string  `json:"policy"` // the policy's display name
	Hosts   int     `json:"hosts"`
	Load    float64 `json:"load"`
	Profile string  `json:"profile"`
	Seed    uint64  `json:"seed"`
	Jobs    int     `json:"jobs"` // jobs simulated
	Warmup  float64 `json:"warmup"`
	Bursty  bool    `json:"bursty"`
	PS      bool    `json:"ps"`

	MeanSlowdown float64 `json:"mean_slowdown"`
	VarSlowdown  float64 `json:"var_slowdown"`
	MaxSlowdown  float64 `json:"max_slowdown"`
	MeanResponse float64 `json:"mean_response_s"`
	MeanWait     float64 `json:"mean_wait_s"`
	Horizon      float64 `json:"horizon_s"`

	HostLoadShare  []float64 `json:"host_load_share"`
	HostUtilize    []float64 `json:"host_utilization"`
	ShortSlowdown  *float64  `json:"short_slowdown,omitempty"` // SITA designs only
	LongSlowdown   *float64  `json:"long_slowdown,omitempty"`
	FairnessSpread *float64  `json:"fairness_spread,omitempty"`
}

// badRequest marks a client error (400) carried through the cache layer.
type badRequest struct{ msg string }

func (e badRequest) Error() string { return e.msg }

// handleSimulate is the POST /v1/simulate lifecycle: parse and normalize,
// consult/populate the cache under the canonical key (coalescing
// concurrent identical requests onto one simulation), and map failures to
// 400 (bad request), 429 (queue full) or 503 (deadline).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req SimRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req, err := req.normalize(s.cfg.MaxJobs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	body, status, err := s.cache.Do(req.cacheKey(), func() ([]byte, error) {
		return s.runSimulation(req)
	})
	if err != nil {
		var bad badRequest
		switch {
		case errors.As(err, &bad):
			writeError(w, http.StatusBadRequest, bad.msg)
		case errors.Is(err, errBusy):
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, errDeadline):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", string(status))
	w.Write(body)
}

// runSimulation executes one admitted simulation end to end: claim a
// slot, build the (memoized) workload and a fresh policy, run the engine
// with the deadline's cancel probe installed, and marshal the response.
// The deadline context is deliberately detached from the client
// connection: once admitted, a simulation runs to completion (or its own
// deadline) even if the client goes away, so a drain always converges and
// coalesced followers still get their answer.
func (s *Server) runSimulation(req SimRequest) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), req.timeout(s.cfg))
	defer cancel()

	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}

	wl, err := s.workloads.get(req.Profile, req.Seed, req.Jobs)
	if err != nil {
		return nil, badRequest{err.Error()}
	}
	p, design, err := catalog.Build(req.Policy, req.Load, wl, req.Hosts, req.Seed)
	if err != nil {
		return nil, badRequest{err.Error()}
	}
	// The stream cache dedupes identical (workload, load, hosts, seed)
	// requests — repeated or coalesced simulations share one generated
	// stream, which the engines' read-only contract makes safe.
	jobs := streamcache.Shared.JobsAtLoad(wl.Trace, req.Load, req.Hosts, !req.Bursty, req.Seed)

	cfg := server.Config{
		Hosts:          req.Hosts,
		Policy:         p,
		WarmupFraction: req.Warmup,
	}
	if design != nil {
		cfg.SizeClass = design.Classify
	}
	// Oblivious policies take the direct-recurrence path, which finishes in
	// milliseconds at service scale and does not support the cancel probe —
	// installing one would force these runs back onto the engine. PS always
	// needs the engine, and any engine run keeps the deadline probe.
	if req.PS || !server.DirectEligible(cfg) {
		cfg.Interrupt = func() bool {
			return ctx.Err() != nil
		}
	}
	s.metrics.addSimulation()
	var res *server.Result
	if req.PS {
		res = server.RunPS(jobs, cfg)
	} else {
		res = server.Run(jobs, cfg)
	}
	if res.Interrupted {
		s.metrics.addDeadline()
		return nil, errDeadline
	}

	resp := SimResponse{
		Policy: res.PolicyName, Hosts: req.Hosts, Load: req.Load,
		Profile: req.Profile, Seed: req.Seed, Jobs: len(jobs),
		Warmup: req.Warmup, Bursty: req.Bursty, PS: req.PS,
		MeanSlowdown:  res.Slowdown.Mean(),
		VarSlowdown:   res.Slowdown.Variance(),
		MaxSlowdown:   res.Slowdown.Max(),
		MeanResponse:  res.Response.Mean(),
		MeanWait:      res.Wait.Mean(),
		Horizon:       res.Horizon,
		HostLoadShare: res.LoadFractions(),
	}
	resp.HostUtilize = make([]float64, req.Hosts)
	for i := range resp.HostUtilize {
		resp.HostUtilize[i] = res.Utilization(i)
	}
	if design != nil {
		if audit, err := design.Audit(res); err == nil {
			short, long, spread := audit.ShortMean, audit.LongMean, audit.Spread
			resp.ShortSlowdown, resp.LongSlowdown, resp.FairnessSpread = &short, &long, &spread
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// AdviseResponse is the body of GET /v1/advise: the workload
// characterization, each SITA variant's derived design with its analytic
// prediction, and the recommendation the paper argues for (SITA-U-fair,
// falling back to SITA-U-opt when the fairness derivation is infeasible).
type AdviseResponse struct {
	Profile  string  `json:"profile"`
	Load     float64 `json:"load"`
	Hosts    int     `json:"hosts"`
	MeanSize float64 `json:"mean_size_s"`
	SizeSCV  float64 `json:"size_scv"`
	// TailCutoff is the size above which the biggest jobs carry half the
	// load; TailFraction is how few jobs those are.
	TailCutoff   float64         `json:"tail_cutoff_s"`
	TailFraction float64         `json:"tail_job_fraction"`
	Variants     []VariantAdvice `json:"variants"`
	Recommended  string          `json:"recommended"`
}

// VariantAdvice is one SITA variant's derived design.
type VariantAdvice struct {
	Variant       string    `json:"variant"`
	Cutoff        float64   `json:"cutoff_s,omitempty"`
	ShortHosts    int       `json:"short_hosts,omitempty"`
	ShortLoadFrac float64   `json:"short_load_fraction,omitempty"`
	PredictedES   float64   `json:"predicted_mean_slowdown,omitempty"`
	PredictedVarS float64   `json:"predicted_var_slowdown,omitempty"`
	HostLoads     []float64 `json:"host_loads,omitempty"`
	Error         string    `json:"error,omitempty"`
}

// handleAdvise serves GET /v1/advise. Advice is pure analysis (no
// simulation), so it bypasses the admission queue but still flows through
// the cache: repeated dashboards polling the same question cost one
// derivation.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	profile := q.Get("profile")
	if profile == "" {
		profile = "psc-c90"
	}
	load := 0.7
	if v := q.Get("load"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad load: "+err.Error())
			return
		}
		load = f
	}
	hosts := 2
	if v := q.Get("hosts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad hosts: "+err.Error())
			return
		}
		hosts = n
	}
	var seed uint64 = 1
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		seed = n
	}
	if err := catalog.CheckProfile(profile); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := catalog.CheckLoad(load); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := catalog.CheckHosts(hosts); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	key := fmt.Sprintf("advise|pr=%s|l=%g|h=%d|s=%d", profile, load, hosts, seed)
	body, status, err := s.cache.Do(key, func() ([]byte, error) {
		return s.runAdvise(profile, load, hosts, seed)
	})
	if err != nil {
		var bad badRequest
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, bad.msg)
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", string(status))
	w.Write(body)
}

// runAdvise derives every SITA variant's design for the workload and
// packages the recommendation.
func (s *Server) runAdvise(profile string, load float64, hosts int, seed uint64) ([]byte, error) {
	wl, err := s.workloads.get(profile, seed, 0)
	if err != nil {
		return nil, badRequest{err.Error()}
	}
	tail := wl.Size.LoadCutoff(0.5)
	resp := AdviseResponse{
		Profile:      profile,
		Load:         load,
		Hosts:        hosts,
		MeanSize:     wl.Size.Moment(1),
		SizeSCV:      dist.SquaredCV(wl.Size),
		TailCutoff:   tail,
		TailFraction: 1 - wl.Size.CDF(tail),
	}
	for _, v := range core.Variants() {
		adv := VariantAdvice{Variant: v.String()}
		d, err := sita.NewDesign(v, load, wl.Size, hosts)
		if err != nil {
			adv.Error = err.Error()
		} else {
			adv.Cutoff = d.Cutoff
			adv.ShortHosts = d.ShortHosts
			adv.ShortLoadFrac = d.ShortLoadFraction()
			adv.PredictedES = d.Predicted.MeanSlowdown
			adv.PredictedVarS = d.Predicted.VarSlowdown
			for _, h := range d.Predicted.Hosts {
				adv.HostLoads = append(adv.HostLoads, h.Load)
			}
		}
		resp.Variants = append(resp.Variants, adv)
	}
	// The paper's bottom line: SITA-U-fair is nearly optimal and fair;
	// fall back to SITA-U-opt when the fairness derivation is infeasible.
	for _, want := range []string{core.SITAUFair.String(), core.SITAUOpt.String()} {
		for _, adv := range resp.Variants {
			if adv.Variant == want && adv.Error == "" {
				resp.Recommended = want
				break
			}
		}
		if resp.Recommended != "" {
			break
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// workloadMemo caches generated workloads by (profile, seed, jobs cap):
// trace generation is the expensive part of a cold request, and a handful
// of profiles serve most traffic. Bounded to a small fixed size with LRU
// replacement; entries are immutable once built and shared read-only
// across requests (JobsAtLoad never mutates the trace).
type workloadMemo struct {
	mu      sync.Mutex
	entries []wlEntry // front = most recently used
}

type wlEntry struct {
	key wlKey
	wl  *sita.Workload
}

type wlKey struct {
	profile string
	seed    uint64
	jobs    int
}

// memoCap bounds the workload memo; 3 profiles x a few seeds fit easily.
const memoCap = 16

func newWorkloadMemo() *workloadMemo { return &workloadMemo{} }

// get returns the memoized workload, generating (and truncating to the
// jobs cap, matching the cmd/simserver semantics of truncating the trace
// before re-timing) on first use.
func (m *workloadMemo) get(profile string, seed uint64, jobs int) (*sita.Workload, error) {
	key := wlKey{profile, seed, jobs}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, e := range m.entries {
		if e.key == key {
			copy(m.entries[1:], m.entries[:i])
			m.entries[0] = e
			return e.wl, nil
		}
	}
	wl, err := sita.LoadWorkload(profile, seed)
	if err != nil {
		return nil, err
	}
	if jobs > 0 && jobs < wl.Trace.Len() {
		// Truncate derives a child trace (sharing the backing array, with
		// its own cache identity and size mean); the full-trace entry for
		// the same (profile, seed) may be cached too and stays intact.
		wl = &sita.Workload{Profile: wl.Profile, Size: wl.Size, Trace: wl.Trace.Truncate(jobs)}
	}
	if len(m.entries) >= memoCap {
		m.entries = m.entries[:memoCap-1]
	}
	m.entries = append([]wlEntry{{key, wl}}, m.entries...)
	return wl, nil
}
