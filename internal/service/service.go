// Package service turns the deterministic simulation library into a
// long-running HTTP serving stack: request parsing and validation on top
// of internal/catalog, a canonical-request LRU cache with single-flight
// coalescing (identical requests are simulated exactly once and answered
// with byte-identical bodies), bounded-concurrency admission with
// backpressure (429 + Retry-After once the wait queue is full),
// per-request deadlines wired into the engine's cooperative cancel probe
// (503 on expiry, no leaked engines), graceful drain (admitted requests
// complete, new ones are refused), and an observability surface: /healthz,
// Prometheus-text /metrics, expvar, pprof, and structured JSON access
// logs.
//
// Concurrency contract: a Server is safe for arbitrary concurrent
// requests. Simulations themselves stay single-goroutine — concurrency
// enters only through the admission semaphore, and every simulation cell
// owns its engine (sim.Acquire/Release), policy instance, and Result, the
// same discipline internal/runner enforces for sweeps. Wall-clock time is
// confined to serving concerns (latency metrics, deadlines, Retry-After);
// simulated time still advances only through sim.Engine, which is why a
// cached body stays valid forever.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// MaxConcurrent bounds simultaneously executing simulations
	// (default: GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a simulation slot beyond
	// MaxConcurrent; requests arriving past the bound are refused with
	// 429 (default 64; negative means no waiting at all).
	MaxQueue int
	// CacheBytes bounds the response cache (default 64 MiB; negative
	// disables caching while keeping request coalescing).
	CacheBytes int64
	// MaxJobs rejects requests asking to simulate more jobs than this
	// (default 2,000,000): the per-request memory and latency bound.
	MaxJobs int
	// DefaultTimeout applies when a request does not set timeout_ms
	// (default 30s). MaxTimeout caps what a request may ask for
	// (default 120s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// AccessLog, when non-nil, receives one JSON line per finished
	// request. Writes are serialized.
	AccessLog io.Writer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2_000_000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	return c
}

// Server is the simd HTTP service. Build one with New, expose
// Handler() on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg       Config
	cache     *Cache
	metrics   *Metrics
	workloads *workloadMemo
	mux       *http.ServeMux

	sem      chan struct{} // simulation slots
	queued   atomic.Int64  // requests waiting for a slot
	inflight atomic.Int64  // requests currently being served

	drainMu  sync.RWMutex // guards draining against in-flight tracking
	draining bool
	wg       sync.WaitGroup // in-flight requests

	logMu sync.Mutex // serializes AccessLog writes

	// testHookAdmitted, when non-nil, runs inside every admitted
	// simulation after its slot is claimed and before the engine starts.
	// Tests use it to hold simulations open at a deterministic point;
	// production paths leave it nil.
	testHookAdmitted func()
}

// New builds a Server from cfg (zero-value fields get defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheBytes),
		metrics:   newMetrics(),
		workloads: newWorkloadMemo(),
		sem:       make(chan struct{}, cfg.MaxConcurrent),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /v1/advise", s.handleAdvise)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// wallNow is the service's single wall-clock read point: latency metrics,
// deadlines, and access-log timestamps are serving-path concerns and never
// feed simulation output (simulated time comes from sim.Engine).
func wallNow() time.Time {
	//lint:allow nowallclock serving-path latency/deadline/log timestamps, never simulation output
	return time.Now()
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Handler returns the service's root handler: the API mux wrapped with
// in-flight tracking, drain refusal, latency metrics, and access logging.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := wallNow()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		finish, ok := s.track()
		if !ok {
			writeError(rec, http.StatusServiceUnavailable, "server is draining")
		} else {
			s.mux.ServeHTTP(rec, r)
			finish()
		}
		elapsed := wallNow().Sub(start)
		s.metrics.observe(r.URL.Path, rec.code, elapsed.Seconds())
		s.accessLog(r, rec, start, elapsed)
	})
}

// track registers an in-flight request unless the server is draining. The
// read lock orders the WaitGroup.Add against Shutdown's drain flag, so no
// request can slip in after wg.Wait started observing a zero counter.
func (s *Server) track() (func(), bool) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return nil, false
	}
	s.wg.Add(1)
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		s.wg.Done()
	}, true
}

// Shutdown begins the drain: new requests (including health checks) are
// refused with 503 while every already-admitted request runs to
// completion. It returns once all in-flight requests finished, or with
// ctx's error if the context expires first. Shutdown ordering for a full
// process is: stop the listener (http.Server.Shutdown), then Server.
// Shutdown to wait out the simulations; see cmd/simd.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Admission errors. errBusy maps to 429 + Retry-After, errDeadline to 503.
var (
	errBusy     = errors.New("service: at capacity, try again later")
	errDeadline = errors.New("service: deadline exceeded before the simulation finished")
)

// admit claims a simulation slot, waiting in the bounded queue when all
// slots are busy. It fails fast with errBusy when the queue is full and
// with errDeadline when ctx expires while queued. The returned release
// must be called exactly once.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}: // free slot, skip the queue
		return func() { <-s.sem }, nil
	default:
	}
	if depth := s.queued.Add(1); depth > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.metrics.addRejected()
		return nil, errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		s.metrics.addDeadline()
		return nil, errDeadline
	}
}

// handleHealthz reports liveness: 200 while serving, 503 once draining so
// load balancers stop routing here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
}

// writeError emits the uniform JSON error body. Errors are never cached.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep ">=" etc. readable in error messages
	enc.Encode(map[string]string{"error": msg})
	w.Write(buf.Bytes())
}

// accessLine is one structured access-log record.
type accessLine struct {
	Time    string  `json:"t"`
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Status  int     `json:"status"`
	Bytes   int64   `json:"bytes"`
	Millis  float64 `json:"ms"`
	Cache   string  `json:"cache,omitempty"`
	Remote  string  `json:"remote,omitempty"`
	Querier string  `json:"ua,omitempty"`
}

// accessLog writes one JSON line per finished request.
func (s *Server) accessLog(r *http.Request, rec *statusRecorder, start time.Time, elapsed time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line := accessLine{
		Time:    start.UTC().Format(time.RFC3339Nano),
		Method:  r.Method,
		Path:    r.URL.Path,
		Status:  rec.code,
		Bytes:   rec.bytes,
		Millis:  float64(elapsed.Microseconds()) / 1000,
		Cache:   rec.Header().Get("X-Cache"),
		Remote:  r.RemoteAddr,
		Querier: r.Header.Get("User-Agent"),
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(buf, '\n'))
	s.logMu.Unlock()
}
