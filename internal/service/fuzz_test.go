package service

import (
	"bytes"
	"encoding/json"
	"testing"

	"sita/internal/catalog"
)

// FuzzSimRequestDecode drives the exact decode path of POST /v1/simulate
// — strict JSON (unknown fields rejected) into SimRequest, then
// normalize — with arbitrary request bodies. Neither step may panic, and
// every accepted request must come out inside the contract ranges with a
// canonical policy name and a deterministic cache key; anything outside
// the contract must be rejected, never silently clamped.
func FuzzSimRequestDecode(f *testing.F) {
	f.Add([]byte(`{"policy":"lwl"}`))
	f.Add([]byte(`{"policy":"RR","hosts":8,"load":0.9,"seed":7,"jobs":5000,"warmup":-1}`))
	f.Add([]byte(`{"policy":"sita-e","profile":"psc-c90","bursty":true,"ps":true,"timeout_ms":50}`))
	f.Add([]byte(`{"policy":"random","load":1.5}`))
	f.Add([]byte(`{"policy":"random","warmup":1e308}`))
	f.Add([]byte(`{"policy":"random","unknown_field":1}`))
	f.Add([]byte(`{"policy":"random","hosts":-3}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"policy":"random","load":5e-324}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		const maxJobs = 60000
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var req SimRequest
		if err := dec.Decode(&req); err != nil {
			return // malformed bodies are rejected before normalize
		}
		q, err := req.normalize(maxJobs)
		if err != nil {
			return // contract rejections are fine; panics are not
		}
		if c, cerr := catalog.CanonicalPolicy(q.Policy); cerr != nil || c != q.Policy {
			t.Fatalf("accepted request has non-canonical policy %q (%v)", q.Policy, cerr)
		}
		if q.Hosts < 1 {
			t.Fatalf("accepted hosts %d", q.Hosts)
		}
		if !(q.Load > 0 && q.Load < 1) {
			t.Fatalf("accepted load %v", q.Load)
		}
		if !(q.Warmup >= 0 && q.Warmup < 1) {
			t.Fatalf("accepted warmup %v", q.Warmup)
		}
		if q.Jobs < 0 || q.Jobs > maxJobs {
			t.Fatalf("accepted jobs %d outside [0, %d]", q.Jobs, maxJobs)
		}
		if err := catalog.CheckProfile(q.Profile); err != nil {
			t.Fatalf("accepted profile %q: %v", q.Profile, err)
		}
		if q.Seed == 0 {
			t.Fatal("accepted request kept seed 0 instead of the default")
		}
		if q.TimeoutMS < 0 {
			t.Fatalf("accepted timeout_ms %d", q.TimeoutMS)
		}
		// Normalization and the cache key are deterministic: the same raw
		// request must always land on the same cache entry.
		q2, err2 := req.normalize(maxJobs)
		if err2 != nil || q2 != q {
			t.Fatalf("normalize not deterministic: %+v vs %+v (%v)", q, q2, err2)
		}
		if q.cacheKey() != q2.cacheKey() || q.cacheKey() == "" {
			t.Fatalf("cache key not deterministic: %q vs %q", q.cacheKey(), q2.cacheKey())
		}
	})
}
