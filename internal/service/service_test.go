package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postSim fires one POST /v1/simulate and returns status, X-Cache and body.
func postSim(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

// TestConcurrentIdenticalRequests is the cache contract end to end:
// concurrent identical requests produce byte-identical bodies and exactly
// one simulation runs.
func TestConcurrentIdenticalRequests(t *testing.T) {
	svc := New(Config{MaxConcurrent: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const n = 8
	req := `{"policy":"lwl","hosts":2,"load":0.7,"jobs":5000}`
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, body := postSim(t, ts.URL, req)
			codes[i], bodies[i] = code, body
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if sims, _, _ := svc.metrics.snapshot(); sims != 1 {
		t.Fatalf("ran %d simulations for %d identical requests, want exactly 1", sims, n)
	}
	cs := svc.cache.Stats()
	if cs.Misses != 1 || cs.Hits+cs.Joins != n-1 {
		t.Fatalf("cache stats %+v: want 1 miss and %d hits+joins", cs, n-1)
	}

	// A later identical request is a plain hit with the same bytes.
	code, cache, body := postSim(t, ts.URL, req)
	if code != http.StatusOK || cache != "hit" || !bytes.Equal(body, bodies[0]) {
		t.Fatalf("follow-up: status %d cache %q, body match %v", code, cache, bytes.Equal(body, bodies[0]))
	}
}

// TestDeadlineReturns503 checks the cancellation contract: a request whose
// deadline expires mid-simulation gets 503, releases its engine and slot,
// and the same simulation succeeds afterwards.
func TestDeadlineReturns503(t *testing.T) {
	svc := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Full-profile sim (55k jobs) with a 1ms budget: the cancel probe
	// fires within its first few polls.
	code, _, body := postSim(t, ts.URL, `{"policy":"lwl","load":0.9,"timeout_ms":1}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("deadline request: status %d, body %s, want 503", code, body)
	}
	if _, _, deadlines := svc.metrics.snapshot(); deadlines == 0 {
		t.Fatal("deadline metric not incremented")
	}
	if got := svc.inflight.Load(); got != 0 {
		t.Fatalf("inflight %d after deadline response, want 0", got)
	}
	if got := svc.queued.Load(); got != 0 {
		t.Fatalf("queued %d after deadline response, want 0", got)
	}

	// The error was not cached and no slot leaked: the identical
	// simulation (same cache key — timeout_ms is excluded) now succeeds.
	code, cache, body := postSim(t, ts.URL, `{"policy":"lwl","load":0.9}`)
	if code != http.StatusOK {
		t.Fatalf("retry after deadline: status %d, body %s", code, body)
	}
	if cache != "miss" {
		t.Fatalf("retry after deadline was a cache %q, want miss (errors must not be cached)", cache)
	}
}

// TestBackpressure429 checks admission control: with one slot and no
// queue, a second distinct request is refused with 429 + Retry-After.
func TestBackpressure429(t *testing.T) {
	svc := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	gate := make(chan struct{})
	admitted := make(chan struct{}, 16)
	svc.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-gate // hold the slot until the test releases it
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	slow := make(chan struct{})
	go func() {
		defer close(slow)
		code, _, body := postSim(t, ts.URL, `{"policy":"lwl","load":0.9,"seed":11,"jobs":2000}`)
		if code != http.StatusOK {
			t.Errorf("slow request: status %d, body %s", code, body)
		}
	}()
	<-admitted // the slow request now holds the only slot

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"policy":"random","load":0.5,"seed":12}`))
	if err != nil {
		t.Fatalf("overflow request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if _, rejected, _ := svc.metrics.snapshot(); rejected == 0 {
		t.Fatal("rejected metric not incremented")
	}
	close(gate)
	<-slow
}

// TestShutdownDrains checks the drain contract: every admitted request
// completes with 200, new requests are refused, and Shutdown returns.
func TestShutdownDrains(t *testing.T) {
	svc := New(Config{MaxConcurrent: 2, MaxQueue: 8})
	gate := make(chan struct{})
	admitted := make(chan struct{}, 16)
	svc.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-gate // hold the slot until the test releases it
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const n = 3 // 2 running + 1 queued when the drain starts
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"policy":"lwl","load":0.9,"seed":%d}`, 100+i)
			codes[i], _, _ = postSim(t, ts.URL, body)
		}(i)
	}
	// Two requests hold the slots; wait until the third is tracked in the
	// queue, then begin the drain with all three in flight.
	<-admitted
	<-admitted
	deadline := time.Now().Add(5 * time.Second)
	for svc.inflight.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests in flight", svc.inflight.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- svc.Shutdown(ctx) }()

	// New work is refused while draining.
	refusedDeadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ := postSim(t, ts.URL, `{"policy":"random","load":0.5,"seed":999}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(refusedDeadline) {
			t.Fatalf("draining server still accepts new requests (last status %d)", code)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate) // release the held slots; every admitted request completes
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request %d finished with status %d, want 200", i, code)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestMetricsAndHealth checks the observability surface end to end.
func TestMetricsAndHealth(t *testing.T) {
	svc := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if code, _, body := postSim(t, ts.URL, `{"policy":"round-robin","jobs":2000}`); code != http.StatusOK {
		t.Fatalf("simulate: status %d body %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status %d", err, resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The request counter is recorded just after the response is written,
	// so poll briefly instead of racing the middleware.
	wants := []string{
		`simd_requests_total{endpoint="/v1/simulate",code="200"} 1`,
		"simd_simulations_total 1",
		"simd_cache_misses_total 1",
		"simd_request_seconds_count",
		"simd_engine_acquires_total",
		"simd_streamcache_generations_total",
		"simd_streamcache_bytes",
		"simd_queue_depth 0",
	}
	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		metrics := scrape()
		missing := ""
		for _, want := range wants {
			if !strings.Contains(metrics, want) {
				missing = want
				break
			}
		}
		if missing == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics output missing %q:\n%s", missing, metrics)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdvise checks GET /v1/advise: a valid recommendation, caching, and
// parameter validation naming the valid values.
func TestAdvise(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(q string) (int, string, []byte) {
		resp, err := http.Get(ts.URL + "/v1/advise" + q)
		if err != nil {
			t.Fatalf("GET /v1/advise%s: %v", q, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Cache"), b
	}

	code, cache, body := get("?profile=psc-c90&load=0.7&hosts=2")
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("advise: status %d cache %q body %s", code, cache, body)
	}
	var adv AdviseResponse
	if err := json.Unmarshal(body, &adv); err != nil {
		t.Fatalf("advise unmarshal: %v", err)
	}
	if adv.Recommended != "SITA-U-fair" && adv.Recommended != "SITA-U-opt" {
		t.Fatalf("recommended %q, want a SITA-U variant", adv.Recommended)
	}
	if len(adv.Variants) != 4 {
		t.Fatalf("%d variants, want 4", len(adv.Variants))
	}

	code2, cache2, body2 := get("?profile=psc-c90&load=0.7&hosts=2")
	if code2 != http.StatusOK || cache2 != "hit" || !bytes.Equal(body, body2) {
		t.Fatalf("repeat advise: status %d cache %q identical=%v", code2, cache2, bytes.Equal(body, body2))
	}

	code, _, body = get("?load=1.5")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "(0,1)") {
		t.Fatalf("bad load: status %d body %s", code, body)
	}
	code, _, body = get("?profile=nope")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "psc-c90") {
		t.Fatalf("bad profile should name valid values: status %d body %s", code, body)
	}
}

// TestValidation checks the request contract rejections.
func TestValidation(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		body string
		want string
	}{
		{`{"load":0.7}`, "policy is required"},
		{`{"policy":"nope"}`, "unknown policy"},
		{`{"policy":"lwl","load":1.2}`, "(0,1)"},
		{`{"policy":"lwl","warmup":0.99999,"load":0.5,"wrmup":1}`, "unknown field"},
		{`{"policy":"lwl","hosts":-1}`, "hosts must be >= 1"},
		{`{"policy":"lwl","jobs":-5}`, "jobs must be >= 0"},
		{`{"policy":"lwl","profile":"bogus"}`, "unknown profile"},
	}
	for _, tc := range cases {
		code, _, body := postSim(t, ts.URL, tc.body)
		if code != http.StatusBadRequest || !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: status %d body %s, want 400 mentioning %q", tc.body, code, body, tc.want)
		}
	}
}

// TestCacheEviction checks the LRU byte bound directly.
func TestCacheEviction(t *testing.T) {
	c := NewCache(100)
	put := func(key string, n int) {
		c.Do(key, func() ([]byte, error) { return make([]byte, n), nil })
	}
	put("a", 40)
	put("b", 40)
	put("c", 40) // evicts a
	if _, status, _ := c.Do("a", func() ([]byte, error) { return []byte("x"), nil }); status != CacheMiss {
		t.Fatalf("a should have been evicted, got %v", status)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if st.Bytes > 100 {
		t.Fatalf("cache holds %d bytes, bound is 100", st.Bytes)
	}
}
