package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"sita/internal/service"
)

// Example shows the full simd client flow: stand the service up on its
// HTTP handler, POST a simulation request to /v1/simulate, and decode
// the JSON response. The simulation is deterministic — same policy,
// profile, seed, and job count always produce the identical response —
// which is why the output below is stable enough to assert on.
func Example() {
	srv := httptest.NewServer(service.New(service.Config{}).Handler())
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{
		"policy": "lwl", // accepted aliases: "least-work-left"
		"hosts":  2,
		"load":   0.7,
		"seed":   3,
		"jobs":   2000, // cap the trace for a fast example run
	})
	resp, err := http.Post(srv.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println("request failed:", err)
		return
	}
	defer resp.Body.Close()

	var out service.SimResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Println("decode failed:", err)
		return
	}
	fmt.Println("status:", resp.StatusCode)
	fmt.Println("policy:", out.Policy)
	fmt.Println("hosts:", out.Hosts)
	fmt.Println("jobs simulated:", out.Jobs)
	fmt.Printf("mean slowdown: %.4f\n", out.MeanSlowdown)
	fmt.Printf("mean response (s): %.2f\n", out.MeanResponse)

	// A repeated identical request is served from the response cache.
	resp2, err := http.Post(srv.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println("request failed:", err)
		return
	}
	defer resp2.Body.Close()
	fmt.Println("second request X-Cache:", resp2.Header.Get("X-Cache"))

	// Output:
	// status: 200
	// policy: Least-Work-Left
	// hosts: 2
	// jobs simulated: 2000
	// mean slowdown: 1295.2640
	// mean response (s): 200833.21
	// second request X-Cache: hit
}
