package sita_test

import (
	"fmt"

	"sita"
)

// Example_quickstart is the README's quick start, verbatim: load the
// calibrated C90 workload, derive the fair load-unbalancing design at
// system load 0.7, simulate it, and compare against SITA-E. A coarse
// bucket is printed rather than the exact means so the example output is
// robust to workload recalibration.
func Example_quickstart() {
	wl, _ := sita.LoadWorkload("psc-c90", 42) // calibrated workload
	design, _ := sita.NewDesign(sita.SITAUFair, 0.7, wl.Size, 2)
	jobs := wl.JobsAtLoad(0.7, 2, true, 42) // Poisson arrivals at load 0.7
	res := sita.SimulateOpts(design.Policy(), jobs, 2, sita.SimOptions{Warmup: 0.1})
	if m := res.Slowdown.Mean(); m > 30 && m < 150 { // measured ~66; SITA-E ~660
		fmt.Println("SITA-U-fair mean slowdown ~66, an order of magnitude below SITA-E")
	}
	// Output:
	// SITA-U-fair mean slowdown ~66, an order of magnitude below SITA-E
}

// ExampleNewDesign derives the paper's fair load-unbalancing design for a
// 2-host Cray-C90-like server at system load 0.7 and prints the analytic
// prediction.
func ExampleNewDesign() {
	wl, err := sita.LoadWorkload("psc-c90", 42)
	if err != nil {
		panic(err)
	}
	design, err := sita.NewDesign(sita.SITAUFair, 0.7, wl.Size, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("variant: %s\n", design.Variant)
	fmt.Printf("short host gets %.0f%% of the load\n", 100*design.ShortLoadFraction())
	fmt.Printf("predicted mean slowdown: %.0f\n", design.Predicted.MeanSlowdown)
	// Output:
	// variant: SITA-U-fair
	// short host gets 31% of the load
	// predicted mean slowdown: 67
}

// ExamplePredict ranks the policy families analytically without running a
// single simulation.
func ExamplePredict() {
	wl, err := sita.LoadWorkload("psc-c90", 1)
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"Random", "Least-Work-Left", "SITA-E", "SITA-U-fair"} {
		s, err := sita.Predict(name, 0.5, wl.Size, 2)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %6.0f\n", name, s)
	}
	// Output:
	// Random             1936
	// Least-Work-Left     646
	// SITA-E              304
	// SITA-U-fair          14
}

// ExampleSimulate runs a small trace-driven simulation and reports the
// measured mean slowdown, demonstrating the simulate side of the API.
func ExampleSimulate() {
	wl, err := sita.LoadWorkload("psc-c90", 42)
	if err != nil {
		panic(err)
	}
	design, err := sita.NewDesign(sita.SITAE, 0.5, wl.Size, 2)
	if err != nil {
		panic(err)
	}
	jobs := wl.JobsAtLoad(0.5, 2, true, 42)[:20000]
	res := sita.SimulateOpts(design.Policy(), jobs, 2, sita.SimOptions{Warmup: 0.1})
	// Analysis predicts ~304 for SITA-E at this load; the simulated value
	// lands nearby. Print a stable coarse bucket rather than the exact
	// number so the example output is robust.
	s := res.Slowdown.Mean()
	switch {
	case s > 150 && s < 600:
		fmt.Println("simulated mean slowdown within 2x of the analytic 304")
	default:
		fmt.Printf("unexpected slowdown %v\n", s)
	}
	// Output:
	// simulated mean slowdown within 2x of the analytic 304
}
