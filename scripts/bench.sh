#!/usr/bin/env bash
# scripts/bench.sh — benchmark snapshot of the simulation hot path.
#
# Runs the experiment-level benchmarks the perf PRs track (Table 1, the
# h-sweep Figure 6, the analytic Figure 9), the per-policy simulator
# throughput benchmark, and the kernel micro-benchmarks in internal/sim,
# all with -benchmem so allocs/op regressions are visible.
#
# Usage:
#   scripts/bench.sh [outfile]        # default /tmp/bench.txt
#
# The paired before/after numbers for each perf PR are recorded in
# BENCH_<pr>.json and summarized in EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-/tmp/bench.txt}"
count="${BENCH_COUNT:-5}"

{
  echo "# go: $(go version)"
  echo "# date: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
  echo "# commit: $(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  # Experiment-level drivers: one full driver invocation per iteration
  # (-benchtime 1x bounds the walltime; -count gives the samples).
  go test -run '^$' -bench 'BenchmarkTable1$|BenchmarkFigure6$|BenchmarkFigure9$' \
    -benchmem -benchtime 1x -count "$count" .
  # Raw simulator throughput per policy (jobs/s through the event kernel).
  go test -run '^$' -bench 'BenchmarkSimulatorThroughput' -benchmem -count "$count" .
  # Indexed vs linear-scan host selection at h = 16 / 128 / 1024
  # (<policy> vs <policy>-scan is the O(log h) fast path's speedup).
  go test -run '^$' -bench 'BenchmarkManyHosts' -benchmem -benchtime 1x -count "$count" .
  # Kernel micro-benchmarks: event scheduling, typed events, cancel, reuse.
  go test -run '^$' -bench . -benchmem -count "$count" ./internal/sim/
  # Host-selection index micro-benchmarks (must stay 0 allocs/op).
  go test -run '^$' -bench . -benchmem -count "$count" ./internal/hostindex/
  # Stream-cache: cached vs bypassed multi-policy sweep in the same binary,
  # and the per-acquisition hit/generate costs (hit must stay 0 allocs/op).
  go test -run '^$' -bench 'BenchmarkSweepStreamCache' -benchmem -benchtime 1x \
    -count "$count" ./internal/experiment/
  go test -run '^$' -bench 'BenchmarkJobsAtLoad' -benchmem -count "$count" \
    ./internal/streamcache/
  # Direct-recurrence fast path vs the event-heap engine on the same
  # 100k-job stream (<policy>/hN direct-to-engine ns/op ratio is the
  # speedup; output bytes are identical, proven by the differential tests),
  # and the pooled replay core (must stay 0 allocs/op).
  go test -run '^$' -bench 'BenchmarkDirectVsEngine' -benchmem -benchtime 1s \
    -count "$count" .
  go test -run '^$' -bench 'BenchmarkDirectReplayCore' -benchmem \
    -count "$count" ./internal/server/
} | tee "$out"
