// Package sita is a library for studying task assignment in distributed
// supercomputing servers, reproducing Schroeder and Harchol-Balter,
// "Evaluation of Task Assignment Policies for Supercomputing Servers: The
// Case for Load Unbalancing and Fairness" (HPDC 2000 / Cluster Computing 7).
//
// The model is a bank of identical hosts fed by one stream of batch jobs:
// each job is dispatched to exactly one host and hosts run their queues
// FCFS, one job at a time, run-to-completion. The library provides
//
//   - every task assignment policy the paper evaluates (Random, Round-Robin,
//     Shortest-Queue, Least-Work-Left, Central-Queue, SITA-E) plus the
//     paper's contribution, the load-unbalancing SITA-U-opt and SITA-U-fair;
//   - an exact discrete-event simulator of the distributed server;
//   - the M/G/1 / M/M/h / M/G/h queueing analysis behind the paper's proofs,
//     including the cutoff optimizers that define the SITA variants;
//   - calibrated reconstructions of the paper's PSC C90 / J90 and CTC SP2
//     workloads, a synthetic trace generator, and SWF trace interchange;
//   - drivers regenerating every table and figure of the paper.
//
// # Quick start
//
//	wl, _ := sita.LoadWorkload("psc-c90", 42)
//	design, _ := sita.NewDesign(sita.SITAUFair, 0.7, wl.Size, 2)
//	res := sita.Simulate(design.Policy(), wl.JobsAtLoad(0.7, 2, true, 42), 2)
//	fmt.Println(res.Slowdown.Mean())
//
// The deeper machinery lives in the internal packages (dist, queueing,
// server, policy, trace, experiment); this package re-exports the surface a
// downstream user needs.
package sita

import (
	"fmt"
	"os"

	"sita/internal/core"
	"sita/internal/dist"
	"sita/internal/experiment"
	"sita/internal/server"
	"sita/internal/trace"
	"sita/internal/workload"
)

// Variant selects a SITA cutoff rule; see the constants below.
type Variant = core.Variant

// The SITA variants: equal-load, slowdown-optimal, fairness, and the
// paper's rho/2 rule of thumb.
const (
	SITAE     = core.SITAE
	SITAUOpt  = core.SITAUOpt
	SITAUFair = core.SITAUFair
	SITARule  = core.SITARule
)

// Design is a derived task assignment design (cutoff, policy factory,
// analytic prediction); see internal/core.
type Design = core.Design

// NewDesign derives the cutoff for a variant and packages it as a design
// for a system of hosts at the given system load.
func NewDesign(v Variant, load float64, size dist.Distribution, hosts int) (*Design, error) {
	return core.NewDesign(v, load, size, hosts)
}

// Policy is a task assignment rule usable with Simulate.
type Policy = server.Policy

// Result aggregates a simulation's metrics (slowdown/response/wait streams,
// per-host load accounting).
type Result = server.Result

// Job is one batch job: arrival time and service requirement.
type Job = workload.Job

// Profile describes a calibrated workload reconstruction.
type Profile = trace.Profile

// Trace is an ordered job log.
type Trace = trace.Trace

// Workload bundles a size distribution with a synthetic trace drawn from
// it, ready to re-time at any system load.
type Workload struct {
	Profile Profile
	// Size is the calibrated Bounded Pareto job-size distribution.
	Size dist.BoundedPareto
	// Trace is the generated job log (sizes plus bursty raw arrivals).
	Trace *Trace
}

// LoadWorkload generates the named built-in workload ("psc-c90", "psc-j90",
// "ctc-sp2") with the given seed.
func LoadWorkload(profile string, seed uint64) (*Workload, error) {
	p, err := trace.ByName(profile)
	if err != nil {
		return nil, err
	}
	return WorkloadFromProfile(p, seed)
}

// WorkloadFromProfile generates a workload from an arbitrary profile.
func WorkloadFromProfile(p Profile, seed uint64) (*Workload, error) {
	size, err := p.SizeDist()
	if err != nil {
		return nil, err
	}
	tr, err := trace.Generate(p, seed)
	if err != nil {
		return nil, err
	}
	return &Workload{Profile: p, Size: size, Trace: tr}, nil
}

// WorkloadFromSWF reads a Standard Workload Format job log and calibrates a
// Bounded Pareto to its min/max/mean, so both trace-driven simulation and
// the analytic machinery are available.
func WorkloadFromSWF(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sita: %w", err)
	}
	defer f.Close()
	tr, err := trace.ReadSWF(path, f)
	if err != nil {
		return nil, err
	}
	st := tr.ComputeStats()
	size, err := dist.FitBoundedParetoMean(st.Mean, st.Min, st.Max)
	if err != nil {
		return nil, fmt.Errorf("sita: calibrating %s: %w", path, err)
	}
	return &Workload{
		Profile: Profile{
			Name:        path,
			Description: "imported SWF trace",
			MinService:  st.Min,
			MaxService:  st.Max,
			MeanService: st.Mean,
			Jobs:        tr.Len(),
			GapSCV:      st.GapSCV,
		},
		Size:  size,
		Trace: tr,
	}, nil
}

// JobsAtLoad re-times the workload's trace to drive hosts unit-speed hosts
// at the target system load. poisson selects fresh Poisson arrivals
// (sections 2-5 of the paper) versus the trace's own bursty gaps rescaled
// (section 6).
func (w *Workload) JobsAtLoad(load float64, hosts int, poisson bool, seed uint64) []Job {
	return w.Trace.JobsAtLoad(load, hosts, poisson, seed)
}

// SimOptions tunes Simulate.
type SimOptions struct {
	// Warmup is the fraction of jobs excluded from statistics (default 0).
	Warmup float64
	// KeepRecords retains per-job records on the result.
	KeepRecords bool
	// SizeClass labels jobs for per-class statistics.
	SizeClass func(size float64) int
}

// Simulate runs the job list through a distributed server of hosts
// identical hosts under the policy.
func Simulate(p Policy, jobs []Job, hosts int) *Result {
	return SimulateOpts(p, jobs, hosts, SimOptions{})
}

// SimulateOpts is Simulate with explicit options.
func SimulateOpts(p Policy, jobs []Job, hosts int, opts SimOptions) *Result {
	return server.Run(jobs, server.Config{
		Hosts:          hosts,
		Policy:         p,
		WarmupFraction: opts.Warmup,
		KeepRecords:    opts.KeepRecords,
		SizeClass:      opts.SizeClass,
	})
}

// Experiment runs a named experiment driver ("table1", "fig2" ... "fig13",
// or an extension id) under the given configuration; see ExperimentIDs.
func Experiment(id string, cfg experiment.Config) ([]experiment.Table, error) {
	fn, ok := experiment.Drivers()[id]
	if !ok {
		return nil, fmt.Errorf("sita: unknown experiment %q", id)
	}
	return fn(cfg)
}

// ExperimentIDs lists the available experiment drivers in presentation
// order.
func ExperimentIDs() []string { return experiment.IDs() }

// DefaultExperimentConfig returns the configuration the reproduction uses.
func DefaultExperimentConfig() experiment.Config { return experiment.Default() }

// SimulatePS runs the job list on Processor-Sharing hosts instead of FCFS
// run-to-completion — the paper's footnote-1 perfectly-fair reference
// discipline (every job's expected slowdown is 1/(1-rho) on an M/G/1-PS
// host, independent of size).
func SimulatePS(p Policy, jobs []Job, hosts int, opts SimOptions) *Result {
	return server.RunPS(jobs, server.Config{
		Hosts:          hosts,
		Policy:         p,
		WarmupFraction: opts.Warmup,
		KeepRecords:    opts.KeepRecords,
		SizeClass:      opts.SizeClass,
	})
}
