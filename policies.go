package sita

import (
	"fmt"
	"math/rand/v2"

	"sita/internal/dist"
	"sita/internal/policy"
	"sita/internal/queueing"
	"sita/internal/sim"
)

// The baseline policy constructors, re-exported so a caller can compare the
// paper's whole policy space through one import.

// NewRandomPolicy dispatches each job to a uniformly random host.
func NewRandomPolicy(rng *rand.Rand) Policy { return policy.NewRandom(rng) }

// NewRoundRobinPolicy dispatches jobs cyclically.
func NewRoundRobinPolicy() Policy { return policy.NewRoundRobin() }

// NewShortestQueuePolicy dispatches to the host with the fewest jobs.
func NewShortestQueuePolicy() Policy { return policy.NewShortestQueue() }

// NewLeastWorkLeftPolicy dispatches to the host with the least unfinished
// work.
func NewLeastWorkLeftPolicy() Policy { return policy.NewLeastWorkLeft() }

// NewCentralQueuePolicy holds jobs at the dispatcher until a host idles
// (equivalent to Least-Work-Left).
func NewCentralQueuePolicy() Policy { return policy.NewCentralQueue() }

// NewSITAPolicy builds a size-interval policy from explicit cutoffs.
func NewSITAPolicy(label string, cutoffs []float64) Policy {
	return policy.NewSITA(label, cutoffs)
}

// NewRNG derives a deterministic generator from a seed and stream index,
// for policies that need randomness.
func NewRNG(seed, stream uint64) *rand.Rand { return sim.NewRNG(seed, stream) }

// BaselinePolicies builds one fresh instance of every load-balancing
// baseline, keyed by display name.
func BaselinePolicies(seed uint64) map[string]Policy {
	return map[string]Policy{
		"Random":          NewRandomPolicy(NewRNG(seed, 100)),
		"Round-Robin":     NewRoundRobinPolicy(),
		"Shortest-Queue":  NewShortestQueuePolicy(),
		"Least-Work-Left": NewLeastWorkLeftPolicy(),
		"Central-Queue":   NewCentralQueuePolicy(),
	}
}

// Predict analytically evaluates a policy family's mean slowdown for a
// system of hosts at the given load under the workload's size distribution.
// Supported names: "Random", "Round-Robin", "Least-Work-Left"/
// "Central-Queue", "SITA-E", "SITA-U-opt", "SITA-U-fair", "SITA-U-rule".
func Predict(name string, load float64, size dist.Distribution, hosts int) (meanSlowdown float64, err error) {
	lambda := float64(hosts) * load / size.Moment(1)
	switch name {
	case "Random":
		return queueing.RandomSplit(lambda, size, hosts).MeanSlowdown(), nil
	case "Round-Robin":
		return queueing.RoundRobinSplit(lambda, size, hosts).MeanSlowdown(), nil
	case "Least-Work-Left", "Central-Queue":
		return queueing.LWL(lambda, size, hosts).MeanSlowdown(), nil
	case "SITA-E", "SITA-U-opt", "SITA-U-fair", "SITA-U-rule":
		var v Variant
		switch name {
		case "SITA-E":
			v = SITAE
		case "SITA-U-opt":
			v = SITAUOpt
		case "SITA-U-fair":
			v = SITAUFair
		default:
			v = SITARule
		}
		if hosts != 2 {
			return 0, fmt.Errorf("sita: analytic SITA prediction is closed-form for 2 hosts only, got %d", hosts)
		}
		d, err := NewDesign(v, load, size, hosts)
		if err != nil {
			return 0, err
		}
		return d.Predicted.MeanSlowdown, nil
	default:
		return 0, fmt.Errorf("sita: unknown policy %q", name)
	}
}
