// Fairness audit: simulate three policies and report the expected slowdown
// per job-size decile. The paper's claim — SITA-U-fair helps short jobs
// without starving long ones — becomes a visible flat profile, while
// balancing policies skew sharply against small jobs.
//
// Run with: go run ./examples/fairness_audit
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"sita"
	"sita/internal/stats"
)

func main() {
	wl, err := sita.LoadWorkload("psc-c90", 11)
	if err != nil {
		log.Fatal(err)
	}
	if wl.Trace.Len() > 30000 {
		wl.Trace.Jobs = wl.Trace.Jobs[:30000]
	}
	const load, hosts = 0.7, 2
	jobs := wl.JobsAtLoad(load, hosts, true, 11)

	// Decile boundaries of the analytic size distribution.
	bounds := make([]float64, 9)
	for i := range bounds {
		bounds[i] = wl.Size.Quantile(float64(i+1) / 10)
	}

	type candidate struct {
		name string
		pol  sita.Policy
	}
	var candidates []candidate
	candidates = append(candidates, candidate{"Least-Work-Left", sita.NewLeastWorkLeftPolicy()})
	for _, v := range []sita.Variant{sita.SITAE, sita.SITAUFair} {
		d, err := sita.NewDesign(v, load, wl.Size, hosts)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, candidate{d.Variant.String(), d.Policy()})
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "size decile\tmedian size(s)")
	for _, c := range candidates {
		fmt.Fprintf(w, "\t%s", c.name)
	}
	fmt.Fprintln(w)

	profiles := make([][]float64, len(candidates))
	spreads := make([]float64, len(candidates))
	for i, c := range candidates {
		tally := stats.NewDecileTally(bounds)
		res := sita.SimulateOpts(c.pol, jobs, hosts, sita.SimOptions{Warmup: 0.1, KeepRecords: true})
		for _, r := range res.Records {
			tally.Add(r.Size, r.Slowdown())
		}
		row := make([]float64, tally.Classes())
		for cl := 0; cl < tally.Classes(); cl++ {
			row[cl] = tally.Mean(cl)
		}
		profiles[i] = row
		spreads[i] = tally.Spread()
	}
	for cl := 0; cl < 10; cl++ {
		median := wl.Size.Quantile((float64(cl) + 0.5) / 10)
		fmt.Fprintf(w, "%d\t%.0f", cl+1, median)
		for i := range candidates {
			fmt.Fprintf(w, "\t%.1f", profiles[i][cl])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "max/min spread\t")
	for i := range candidates {
		fmt.Fprintf(w, "\t%.1f", spreads[i])
	}
	fmt.Fprintln(w)
	w.Flush()

	fmt.Println("\n" + strings.TrimSpace(`
reading: a perfectly fair policy shows the same expected slowdown in every
decile (spread 1). Balancing policies crush small jobs behind elephants;
SITA-U-fair flattens the profile by giving shorts an underloaded host while
long jobs amortize their waiting over long lifetimes.`))
}
