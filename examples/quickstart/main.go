// Quickstart: load a calibrated supercomputing workload, derive the paper's
// fair load-unbalancing policy (SITA-U-fair), and compare it against
// equal-load assignment (SITA-E) by simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sita"
)

func main() {
	// 1. Workload: a synthetic reconstruction of the PSC Cray C90 log —
	//    heavy-tailed job sizes where ~1% of jobs carry half the work.
	wl, err := sita.LoadWorkload("psc-c90", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d jobs, mean service %.0fs\n",
		wl.Profile.Name, wl.Trace.Len(), wl.Size.Moment(1))

	// 2. Design: derive the SITA-U-fair size cutoff for a 2-host server at
	//    system load 0.7. The design carries an analytic prediction.
	const load, hosts = 0.7, 2
	fair, err := sita.NewDesign(sita.SITAUFair, load, wl.Size, hosts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SITA-U-fair cutoff: %.0fs (short host gets %.0f%% of the load)\n",
		fair.Cutoff, 100*fair.ShortLoadFraction())
	fmt.Printf("analytic prediction: mean slowdown %.1f\n", fair.Predicted.MeanSlowdown)

	// 3. Simulate: re-time the trace to load 0.7 with Poisson arrivals and
	//    push it through the distributed-server simulator.
	jobs := wl.JobsAtLoad(load, hosts, true, 42)
	resFair := sita.SimulateOpts(fair.Policy(), jobs, hosts, sita.SimOptions{
		Warmup:    0.1,
		SizeClass: fair.Classify,
	})

	// 4. Baseline: the best load-balancing policy, SITA-E.
	equal, err := sita.NewDesign(sita.SITAE, load, wl.Size, hosts)
	if err != nil {
		log.Fatal(err)
	}
	resEqual := sita.SimulateOpts(equal.Policy(), jobs, hosts, sita.SimOptions{Warmup: 0.1})

	fmt.Printf("\nsimulated mean slowdown:\n")
	fmt.Printf("  SITA-E      %8.1f\n", resEqual.Slowdown.Mean())
	fmt.Printf("  SITA-U-fair %8.1f   (%.1fx better)\n",
		resFair.Slowdown.Mean(), resEqual.Slowdown.Mean()/resFair.Slowdown.Mean())

	// 5. Fairness: short and long jobs should see comparable slowdown.
	audit, err := fair.Audit(resFair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfairness audit (SITA-U-fair): short jobs E[S]=%.1f, long jobs E[S]=%.1f\n",
		audit.ShortMean, audit.LongMean)
}
