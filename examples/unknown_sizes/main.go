// Unknown sizes: what if users cannot (or will not) estimate runtimes at
// all? SITA needs a size at dispatch time; TAGS (the paper's reference
// [10]) does not — jobs start on host 1 and are killed-and-restarted up the
// chain when they outlive each host's cutoff. This example quantifies the
// price of size-blindness on a heavy-tailed workload.
//
// Run with: go run ./examples/unknown_sizes
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sita"
)

func main() {
	wl, err := sita.LoadWorkload("psc-c90", 23)
	if err != nil {
		log.Fatal(err)
	}
	if wl.Trace.Len() > 30000 {
		wl.Trace.Jobs = wl.Trace.Jobs[:30000]
	}
	const hosts = 2
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "load\tpolicy\tneeds sizes?\tmean slowdown\twasted work\n")

	for _, load := range []float64{0.3, 0.5, 0.7} {
		jobs := wl.JobsAtLoad(load, hosts, true, 23)
		lambda := float64(hosts) * load / wl.Size.Moment(1)

		// TAGS: optimize the kill cutoffs analytically, then simulate.
		cuts, err := sita.OptimalTAGSCutoffs(lambda, wl.Size, hosts)
		if err != nil {
			log.Fatalf("load %v: %v", load, err)
		}
		tagsRes := sita.SimulateTAGS(jobs, cuts, 0.1)
		fmt.Fprintf(w, "%.1f\tTAGS (cutoff %.0fs)\tno\t%.1f\t%.1f%%\n",
			load, cuts[0], tagsRes.Slowdown.Mean(), 100*tagsRes.WasteFraction())

		// Size-blind baseline: Least-Work-Left needs backlog estimates,
		// Random needs nothing.
		for _, e := range []struct {
			name string
			pol  sita.Policy
		}{
			{"Random", sita.NewRandomPolicy(sita.NewRNG(23, 100))},
			{"Least-Work-Left", sita.NewLeastWorkLeftPolicy()},
		} {
			res := sita.SimulateOpts(e.pol, jobs, hosts, sita.SimOptions{Warmup: 0.1})
			fmt.Fprintf(w, "%.1f\t%s\tno*\t%.1f\t-\n", load, e.name, res.Slowdown.Mean())
		}

		// Size-aware reference: SITA-U-fair.
		d, err := sita.NewDesign(sita.SITAUFair, load, wl.Size, hosts)
		if err != nil {
			log.Fatal(err)
		}
		res := sita.SimulateOpts(d.Policy(), jobs, hosts, sita.SimOptions{Warmup: 0.1})
		fmt.Fprintf(w, "%.1f\tSITA-U-fair\tyes\t%.1f\t-\n", load, res.Slowdown.Mean())
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()
	fmt.Println("*  LWL needs per-host backlog estimates (submitted runtime estimates in practice)")
	fmt.Println("reading: TAGS pays a wasted-work tax for size-blindness yet stays within reach of")
	fmt.Println("size-aware SITA-U, and far ahead of the balancing baselines — load unbalancing,")
	fmt.Println("not size knowledge, is what exploits the heavy tail.")
}
