// Capacity planning: given a slowdown objective ("jobs should on average be
// slowed by at most a factor F"), find the highest system load each task
// assignment policy can sustain — entirely from the analytic models, the
// way an operator would size a distributed server before buying hardware.
//
// Run with: go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sita"
)

func main() {
	wl, err := sita.LoadWorkload("psc-c90", 1)
	if err != nil {
		log.Fatal(err)
	}
	const hosts = 2
	objectives := []float64{20, 50, 100, 500}
	policies := []string{"Random", "Round-Robin", "Least-Work-Left", "SITA-E", "SITA-U-fair", "SITA-U-opt"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\\E[S] target")
	for _, o := range objectives {
		fmt.Fprintf(w, "\t<= %.0f", o)
	}
	fmt.Fprintln(w)
	for _, name := range policies {
		fmt.Fprintf(w, "%s", name)
		for _, obj := range objectives {
			fmt.Fprintf(w, "\t%s", formatLoad(maxLoad(name, obj, wl)))
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println("\nreading: each cell is the highest system load the policy sustains while")
	fmt.Println("keeping analytic mean slowdown under the column's target. Unbalancing the")
	fmt.Println("load (SITA-U-*) buys dramatically more usable capacity at every objective.")
}

// maxLoad bisects the highest load whose predicted mean slowdown stays
// under the objective; returns 0 when even tiny loads violate it.
func maxLoad(policy string, objective float64, wl *sita.Workload) float64 {
	ok := func(load float64) bool {
		m, err := sita.Predict(policy, load, wl.Size, 2)
		if err != nil {
			return false
		}
		return m <= objective
	}
	lo, hi := 0.0, 0.999
	if !ok(0.05) {
		return 0
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func formatLoad(l float64) string {
	if l <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", l)
}
