// Policy comparison: run every task assignment policy the paper evaluates
// on the same job stream across a range of system loads, printing mean and
// variance of slowdown side by side — a miniature of the paper's figures 2
// and 4 you can point at your own workload.
//
// Run with: go run ./examples/policy_comparison [profile]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sita"
)

func main() {
	profile := "psc-c90"
	if len(os.Args) > 1 {
		profile = os.Args[1]
	}
	wl, err := sita.LoadWorkload(profile, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Trim for a snappy example; raise for tighter estimates.
	if wl.Trace.Len() > 25000 {
		wl.Trace.Jobs = wl.Trace.Jobs[:25000]
	}

	const hosts = 2
	loads := []float64{0.5, 0.7, 0.9}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "load\tpolicy\tmean E[S]\tVar[S]\tpredicted E[S]\n")
	for _, load := range loads {
		jobs := wl.JobsAtLoad(load, hosts, true, 7)

		// Baselines are stateless or carry their own RNG; build fresh per
		// load.
		type entry struct {
			name string
			pol  sita.Policy
		}
		entries := []entry{
			{"Random", sita.NewRandomPolicy(sita.NewRNG(7, 100))},
			{"Round-Robin", sita.NewRoundRobinPolicy()},
			{"Shortest-Queue", sita.NewShortestQueuePolicy()},
			{"Least-Work-Left", sita.NewLeastWorkLeftPolicy()},
		}
		for _, v := range []sita.Variant{sita.SITAE, sita.SITAUOpt, sita.SITAUFair} {
			d, err := sita.NewDesign(v, load, wl.Size, hosts)
			if err != nil {
				continue // infeasible at this load
			}
			entries = append(entries, entry{d.Variant.String(), d.Policy()})
		}

		for _, e := range entries {
			res := sita.SimulateOpts(e.pol, jobs, hosts, sita.SimOptions{Warmup: 0.1})
			pred := "-"
			if m, err := sita.Predict(e.name, load, wl.Size, hosts); err == nil {
				pred = fmt.Sprintf("%.1f", m)
			}
			fmt.Fprintf(w, "%.1f\t%s\t%.1f\t%.3g\t%s\n",
				load, e.name, res.Slowdown.Mean(), res.Slowdown.Variance(), pred)
		}
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()
	fmt.Println("note: size-interval policies with unbalanced load (SITA-U-*) dominate at every load;")
	fmt.Println("      the heavier the size tail, the bigger the win (try: go run ./examples/policy_comparison ctc-sp2)")
}
