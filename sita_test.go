package sita

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"sita/internal/trace"
)

func TestLoadWorkloadProfiles(t *testing.T) {
	for _, name := range []string{"psc-c90", "psc-j90", "ctc-sp2"} {
		wl, err := LoadWorkload(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wl.Trace.Len() == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		if wl.Size.Moment(1) <= 0 {
			t.Fatalf("%s: bad size distribution", name)
		}
	}
	if _, err := LoadWorkload("nope", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	wl, err := LoadWorkload("psc-c90", 42)
	if err != nil {
		t.Fatal(err)
	}
	design, err := NewDesign(SITAUFair, 0.7, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	jobs := wl.JobsAtLoad(0.7, 2, true, 42)[:20000]
	res := SimulateOpts(design.Policy(), jobs, 2, SimOptions{Warmup: 0.1})
	if res.Slowdown.Count() == 0 {
		t.Fatal("no observations")
	}
	if res.Slowdown.Mean() < 1 {
		t.Fatalf("mean slowdown %v < 1", res.Slowdown.Mean())
	}
	// The unbalancing design should beat SITA-E on the same jobs.
	e, err := NewDesign(SITAE, 0.7, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	resE := SimulateOpts(e.Policy(), jobs, 2, SimOptions{Warmup: 0.1})
	if res.Slowdown.Mean() >= resE.Slowdown.Mean() {
		t.Fatalf("SITA-U-fair (%v) should beat SITA-E (%v)",
			res.Slowdown.Mean(), resE.Slowdown.Mean())
	}
}

func TestBaselinePoliciesComplete(t *testing.T) {
	ps := BaselinePolicies(1)
	for _, name := range []string{"Random", "Round-Robin", "Shortest-Queue", "Least-Work-Left", "Central-Queue"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing baseline %q", name)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
}

func TestPredict(t *testing.T) {
	wl, err := LoadWorkload("psc-c90", 1)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Predict("Random", 0.7, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	sitaE, err := Predict("SITA-E", 0.7, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Predict("SITA-U-fair", 0.7, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(random > sitaE && sitaE > fair) {
		t.Fatalf("prediction ordering: random=%v sitaE=%v fair=%v", random, sitaE, fair)
	}
	lwl, err := Predict("Central-Queue", 0.7, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	lwl2, err := Predict("Least-Work-Left", 0.7, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lwl != lwl2 {
		t.Fatal("CQ and LWL predictions should coincide")
	}
	if _, err := Predict("nonesuch", 0.7, wl.Size, 2); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Predict("SITA-E", 0.7, wl.Size, 4); err == nil {
		t.Fatal("4-host closed-form SITA prediction should be rejected")
	}
}

func TestWorkloadFromSWFRoundTrip(t *testing.T) {
	wl, err := LoadWorkload("ctc-sp2", 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	small := &Trace{Name: "small", Jobs: wl.Trace.Jobs[:2000]}
	if err := trace.WriteSWF(small, f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back, err := WorkloadFromSWF(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trace.Len() != 2000 {
		t.Fatalf("roundtrip len = %d", back.Trace.Len())
	}
	st := back.Trace.ComputeStats()
	if math.Abs(back.Size.Moment(1)-st.Mean)/st.Mean > 0.01 {
		t.Fatalf("calibrated mean %v vs trace mean %v", back.Size.Moment(1), st.Mean)
	}
	if _, err := WorkloadFromSWF(filepath.Join(dir, "missing.swf")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestExperimentFacade(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Jobs = 4000
	cfg.Loads = []float64{0.5}
	tables, err := Experiment("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	if _, err := Experiment("nope", cfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ids := ExperimentIDs()
	if len(ids) < 13 {
		t.Fatalf("expected at least 13 experiment ids, got %d", len(ids))
	}
}

func TestSimulatePSFacade(t *testing.T) {
	wl, err := LoadWorkload("psc-c90", 2)
	if err != nil {
		t.Fatal(err)
	}
	jobs := wl.JobsAtLoad(0.5, 2, true, 2)[:5000]
	res := SimulatePS(NewRandomPolicy(NewRNG(2, 50)), jobs, 2, SimOptions{Warmup: 0.1})
	if res.Slowdown.Count() == 0 {
		t.Fatal("no PS observations")
	}
	if res.Slowdown.Min() < 1 {
		t.Fatalf("PS slowdown %v < 1", res.Slowdown.Min())
	}
}

func TestTAGSFacade(t *testing.T) {
	wl, err := LoadWorkload("psc-c90", 3)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 2 * 0.4 / wl.Size.Moment(1)
	cuts, err := OptimalTAGSCutoffs(lambda, wl.Size, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewTAGSAnalysis(lambda, wl.Size, cuts)
	if !a.Feasible() {
		t.Fatal("optimized TAGS cutoffs infeasible")
	}
	jobs := wl.JobsAtLoad(0.4, 2, true, 3)[:15000]
	res := SimulateTAGS(jobs, cuts, 0.1)
	if res.Slowdown.Count() == 0 {
		t.Fatal("no TAGS observations")
	}
	pred := a.MeanSlowdown()
	got := res.Slowdown.Mean()
	if got > pred*5 || got < pred/5 {
		t.Fatalf("TAGS simulated %v vs predicted %v (off > 5x)", got, pred)
	}
}

func TestCompare(t *testing.T) {
	wl, err := LoadWorkload("psc-c90", 6)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := Compare(wl, 0.7, 2, 15000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) < 8 {
		t.Fatalf("only %d outcomes", len(outcomes))
	}
	// Sorted best-first, and the winner is a SITA-U variant.
	for i := 1; i < len(outcomes); i++ {
		if outcomes[i].MeanSlowdown < outcomes[i-1].MeanSlowdown {
			t.Fatal("outcomes not sorted")
		}
	}
	best := outcomes[0].Name
	if best != "SITA-U-opt" && best != "SITA-U-fair" {
		t.Fatalf("winner = %q, expected a SITA-U variant", best)
	}
	// Central-Queue and LWL tie exactly.
	byName := map[string]PolicyOutcome{}
	for _, o := range outcomes {
		byName[o.Name] = o
	}
	if byName["Central-Queue"].MeanSlowdown != byName["Least-Work-Left"].MeanSlowdown {
		t.Fatal("CQ and LWL should coincide")
	}
	// SITA designs carry fairness data; baselines don't.
	if byName["SITA-U-fair"].ShortMean == 0 {
		t.Fatal("SITA-U-fair missing class means")
	}
	if byName["Random"].ShortMean != 0 {
		t.Fatal("Random should not have class means")
	}
	if !byName["Random"].HasPrediction {
		t.Fatal("Random should carry an analytic prediction")
	}
	if _, err := Compare(nil, 0.5, 2, 0, 1); err == nil {
		t.Fatal("nil workload accepted")
	}
}
